"""Certificate-cache tests: hit/miss/corruption recovery, key stability
across processes, and cache bypass."""

import pickle
import subprocess
import sys

import numpy as np
import pytest

from repro.engine import CertificateCache
from repro.engine.cache import default_cache_dir
from repro.polynomial import Polynomial, VariableVector, make_variables
from repro.sdp import (
    SolverResult,
    SolverStatus,
    canonical_solver_options,
    reset_solve_counters,
    set_solve_cache,
    solve_cache_key,
    solve_counters,
)
from repro.sos import SOSProgram


@pytest.fixture()
def cache(tmp_path):
    return CertificateCache(tmp_path / "cache")


@pytest.fixture()
def tiny_program():
    variables = VariableVector(make_variables("x", "y"))
    x = Polynomial.from_variable(variables[0], variables)
    y = Polynomial.from_variable(variables[1], variables)
    program = SOSProgram("cache_test")
    program.add_sos_constraint(x * x + 2.0 * y * y + 1.0, name="c")
    return program


def _result(objective=1.25):
    return SolverResult(status=SolverStatus.OPTIMAL,
                        x=np.array([1.0, 2.0, 3.0]),
                        objective=objective, iterations=7)


def _rebuild(program):
    builder, _, _ = program.compile()
    return builder.build()


class TestCacheStore:
    def test_put_get_roundtrip(self, cache):
        key = "ab" * 32
        cache.put(key, _result())
        loaded = cache.get(key)
        assert loaded is not None
        assert loaded.status is SolverStatus.OPTIMAL
        assert np.allclose(loaded.x, [1.0, 2.0, 3.0])
        assert cache.stats.writes == 1 and cache.stats.hits == 1

    def test_miss(self, cache):
        assert cache.get("cd" * 32) is None
        assert cache.stats.misses == 1

    def test_len_and_clear(self, cache):
        for i in range(3):
            cache.put(f"{i:02x}" * 32, _result())
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_corrupted_entry_recovered(self, cache):
        key = "ef" * 32
        cache.put(key, _result())
        path = cache.path_for(key)
        path.write_bytes(b"not a pickle")
        fresh = CertificateCache(cache.root)  # bypass the in-memory front
        assert fresh.get(key) is None
        assert fresh.stats.corrupted == 1
        assert not path.exists()          # the bad entry was dropped
        # A subsequent put repopulates it.
        fresh.put(key, _result())
        assert fresh.get(key) is not None

    def test_wrong_type_entry_treated_as_corrupt(self, cache):
        key = "0a" * 32
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(pickle.dumps({"not": "a result"}))
        assert cache.get(key) is None
        assert cache.stats.corrupted == 1

    def test_invalid_key_rejected(self, cache):
        with pytest.raises(ValueError):
            cache.path_for("../escape")

    def test_default_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        assert default_cache_dir() == tmp_path / "custom"


class TestCacheKeys:
    def test_fingerprint_deterministic_within_process(self, tiny_program):
        variables = VariableVector(make_variables("x", "y"))
        x = Polynomial.from_variable(variables[0], variables)
        y = Polynomial.from_variable(variables[1], variables)
        other = SOSProgram("cache_test_again")
        other.add_sos_constraint(x * x + 2.0 * y * y + 1.0, name="c")
        assert _rebuild(tiny_program).fingerprint() == _rebuild(other).fingerprint()

    def test_fingerprint_sensitive_to_data(self):
        variables = VariableVector(make_variables("x", "y"))
        x = Polynomial.from_variable(variables[0], variables)
        y = Polynomial.from_variable(variables[1], variables)
        a = SOSProgram("a")
        a.add_sos_constraint(x * x + 2.0 * y * y + 1.0, name="c")
        b = SOSProgram("b")
        b.add_sos_constraint(x * x + 2.5 * y * y + 1.0, name="c")
        assert _rebuild(a).fingerprint() != _rebuild(b).fingerprint()

    def test_key_includes_solver_options(self, tiny_program):
        problem = _rebuild(tiny_program)
        k1 = solve_cache_key(problem, None, {})
        k2 = solve_cache_key(problem, None, {"max_iterations": 123})
        k3 = solve_cache_key(problem, "projection", {})
        assert len({k1, k2, k3}) == 3

    def test_canonical_options_sorted(self):
        a = canonical_solver_options("admm", {"b": 1, "a": 2})
        b = canonical_solver_options("admm", {"a": 2, "b": 1})
        assert a == b

    def test_key_stable_across_processes(self, tiny_program):
        """The content hash must not depend on Python hash randomisation."""
        local = _rebuild(tiny_program).fingerprint()
        script = (
            "from repro.polynomial import Polynomial, VariableVector, make_variables\n"
            "from repro.sos import SOSProgram\n"
            "v = VariableVector(make_variables('x', 'y'))\n"
            "x = Polynomial.from_variable(v[0], v)\n"
            "y = Polynomial.from_variable(v[1], v)\n"
            "p = SOSProgram('cache_test')\n"
            "p.add_sos_constraint(x * x + 2.0 * y * y + 1.0, name='c')\n"
            "builder, _, _ = p.compile()\n"
            "print(builder.build().fingerprint())\n"
        )
        for seed in ("0", "1"):
            out = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, check=True,
                env={"PYTHONPATH": "src", "PYTHONHASHSEED": seed,
                     "PATH": "/usr/bin:/bin"},
                cwd=str(__import__("pathlib").Path(__file__).resolve().parent.parent),
            )
            assert out.stdout.strip() == local


class TestSolveCacheIntegration:
    def test_hit_miss_and_bypass(self, cache, tiny_program):
        previous = set_solve_cache(cache)
        try:
            reset_solve_counters()
            tiny_program.solve()
            counters = solve_counters()
            assert counters["solved"] == 1 and counters["cache_hit"] == 0
            # Solve counters are additionally keyed by cone-layout kind.
            assert counters["solved:psd"] == 1

            # A structurally identical program is served from the cache.
            variables = VariableVector(make_variables("x", "y"))
            x = Polynomial.from_variable(variables[0], variables)
            y = Polynomial.from_variable(variables[1], variables)
            clone = SOSProgram("clone")
            clone.add_sos_constraint(x * x + 2.0 * y * y + 1.0, name="c")
            solution = clone.solve()
            assert solution.is_success
            counters = solve_counters()
            assert counters["solved"] == 1 and counters["cache_hit"] == 1
            assert counters["cache_hit:psd"] == 1

            # Bypassing the cache solves again.
            set_solve_cache(None)
            clone2 = SOSProgram("clone2")
            clone2.add_sos_constraint(x * x + 2.0 * y * y + 1.0, name="c")
            clone2.solve()
            assert solve_counters()["solved"] == 2
        finally:
            set_solve_cache(previous)
            reset_solve_counters()

    def test_cached_result_reused_across_cache_instances(self, tmp_path,
                                                         tiny_program):
        """Key stability on disk: a fresh cache object over the same directory
        serves the results written by another instance (as worker processes
        sharing one cache directory do)."""
        first = CertificateCache(tmp_path / "shared")
        previous = set_solve_cache(first)
        try:
            reset_solve_counters()
            tiny_program.solve()
            set_solve_cache(CertificateCache(tmp_path / "shared"))
            variables = VariableVector(make_variables("x", "y"))
            x = Polynomial.from_variable(variables[0], variables)
            y = Polynomial.from_variable(variables[1], variables)
            clone = SOSProgram("clone")
            clone.add_sos_constraint(x * x + 2.0 * y * y + 1.0, name="c")
            clone.solve()
            counters = solve_counters()
            assert counters["solved"] == 1 and counters["cache_hit"] == 1
        finally:
            set_solve_cache(previous)
            reset_solve_counters()
