"""Acceptance: ``relaxation="auto"`` on the 3rd-order PLL produces a
validated attractive invariant end to end, with at least one pipeline step
certified by a non-PSD Gram cone, and a warm-cache re-verification that
performs zero SDP solves.

One cold engine run is shared module-wide (it is the expensive part: the
auto ladder tries DSOS, escalates the Lyapunov search to SDSOS, and settles
the per-mode level sets on DSOS certificates over the SDSOS Lyapunov
functions).
"""

import pytest

from repro.core import VerificationStatus
from repro.engine import EngineOptions, VerificationEngine

NON_PSD = ("dsos", "sdsos")


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("pll3_auto_cache"))


@pytest.fixture(scope="module")
def auto_cold(cache_dir):
    engine = VerificationEngine(EngineOptions(jobs=1, cache_dir=cache_dir,
                                              relaxation="auto"))
    return engine.run(["pll3"])


class TestPll3AutoAcceptance:
    def test_validated_invariant_end_to_end(self, auto_cold):
        outcome = auto_cold.outcome("pll3")
        assert outcome.matches_expected
        assert outcome.report.property_one.status is VerificationStatus.VERIFIED
        invariant = outcome.report.property_one.invariant
        assert invariant is not None
        levels = {name: level for name, level, _ in invariant.summary_rows()}
        assert set(levels) == {"mode1", "mode2", "mode3"}
        assert all(level > 0 for level in levels.values())

    def test_at_least_one_step_certified_by_non_psd_cone(self, auto_cold):
        outcome = auto_cold.outcome("pll3")
        relaxations = {job.step: job.relaxation for job in outcome.jobs
                       if job.relaxation is not None}
        assert any(value in NON_PSD for value in relaxations.values()), \
            f"no non-PSD certificate in {relaxations}"
        # The keyed solve counters confirm cheap cones actually solved.
        assert any(auto_cold.counters.get(f"solved:{kind}", 0) > 0
                   for kind in ("dd", "sdd"))
        # ...and the report's relaxation column records the rungs used.
        timing_relaxations = {relaxation
                              for _, _, _, relaxation
                              in outcome.report.table2_rows() if relaxation}
        assert timing_relaxations & set(NON_PSD)

    def test_warm_cache_performs_zero_sdp_solves(self, auto_cold, cache_dir):
        warm = VerificationEngine(EngineOptions(
            jobs=1, cache_dir=cache_dir, relaxation="auto")).run(["pll3"])
        assert warm.counters["solved"] == 0
        assert warm.counters["cache_hit"] > 0
        assert warm.outcome("pll3").statuses == auto_cold.outcome("pll3").statuses
        # The replayed ladder lands on the same relaxations.
        assert {job.job_id: job.relaxation for job in warm.outcome("pll3").jobs} \
            == {job.job_id: job.relaxation for job in auto_cold.outcome("pll3").jobs}
