"""Verification-engine orchestration tests (DAG, statuses, reports) plus the
report-rendering and falsification-reproducibility satellites."""

import json

import numpy as np
import pytest

from repro.analysis import random_initial_states, run_falsification
from repro.core import (
    PropertyOneResult,
    PropertyTwoResult,
    STEP_ATTRACTIVE_INVARIANT,
    VerificationReport,
    VerificationStatus,
)
from repro.core.inevitability import InevitabilityOptions
from repro.core.levelset import MaximizedLevelSet
from repro.core.attractive import AttractiveInvariant
from repro.engine import (
    EngineOptions,
    JobStatus,
    VerificationEngine,
    polynomial_from_data,
    polynomial_to_data,
)
from repro.engine.engine import _ScenarioDriver, _prepared_problem
from repro.polynomial import Polynomial
from repro.scenarios import ScenarioProblem, build_problem, register_scenario
from repro.scenarios.registry import _REGISTRY
from repro.hybrid import HybridSystem, Mode
from repro.polynomial import VariableVector, make_variables
from repro.sos import SemialgebraicSet


class TestPlanning:
    def test_pll3_dag(self):
        engine = VerificationEngine(EngineOptions())
        plan = {spec.job_id: spec for spec in engine.plan("pll3")}
        assert "pll3/lyapunov" in plan
        for mode in ("mode1", "mode2", "mode3"):
            spec = plan[f"pll3/levelset:{mode}"]
            assert spec.depends_on == ("pll3/lyapunov",)
        for mode in ("mode2", "mode3"):
            spec = plan[f"pll3/advection:{mode}"]
            assert set(spec.depends_on) == {f"pll3/levelset:{m}"
                                            for m in ("mode1", "mode2", "mode3")}
        assert "pll3/advection:mode1" not in plan  # idle mode is not advected
        assert "pll3/falsification" in plan

    def test_property_two_disabled_drops_advection(self):
        plan = [spec.job_id for spec in
                VerificationEngine(EngineOptions()).plan("vanderpol")]
        assert plan == ["vanderpol/lyapunov", "vanderpol/levelset:flow"]


@pytest.fixture()
def unstable_scenario():
    """A registered scenario whose Lyapunov synthesis must fail (x' = x)."""
    name = "_test_unstable"
    variables = VariableVector(make_variables("x"))
    x = Polynomial.from_variable(variables[0], variables)
    mode = Mode(name="flow", index=1, state_variables=variables,
                flow_map=(x,),
                flow_set=SemialgebraicSet(variables, name="all"),
                contains_equilibrium=True)
    system = HybridSystem(name="unstable", state_variables=variables,
                          modes=(mode,), equilibrium=np.zeros(1))

    @register_scenario(name, "unstable test system", expected="inconclusive")
    def _build(spec):
        options = InevitabilityOptions()
        options.verify_property_two = False
        options.lyapunov.validate_samples = 200
        options.lyapunov.lock_tube_radius = 0.0
        options.lyapunov.solver_settings = dict(max_iterations=1500)
        return ScenarioProblem(system=system, bounds=[(-1.0, 1.0)],
                               options=options)

    yield name
    _REGISTRY.pop(name, None)


class TestExecution:
    def test_failed_dependency_skips_downstream(self, unstable_scenario, tmp_path):
        engine = VerificationEngine(EngineOptions(jobs=1, cache_dir=str(tmp_path)))
        report = engine.run([unstable_scenario])
        outcome = report.outcomes[0]
        statuses = outcome.statuses
        assert statuses[f"{unstable_scenario}/lyapunov"] == "failed"
        assert statuses[f"{unstable_scenario}/levelset:flow"] == "skipped"
        assert outcome.report.property_one.status is VerificationStatus.INCONCLUSIVE
        assert outcome.matches_expected  # the scenario promises inconclusive

    def test_engine_report_is_json_serialisable(self, unstable_scenario, tmp_path):
        engine = VerificationEngine(EngineOptions(jobs=1, cache_dir=str(tmp_path)))
        report = engine.run([unstable_scenario])
        payload = json.dumps(report.to_json_dict())
        assert unstable_scenario in payload
        # Cache accounting reaches the aggregated report.
        assert report.cache_stats.get("writes", 0) > 0

    def test_timeout_marks_job_and_skips_dependents(self):
        problem = _prepared_problem("vanderpol")
        driver = _ScenarioDriver("vanderpol", problem,
                                 EngineOptions(job_timeout=0.5))
        ready = driver.take_ready()
        assert [spec.job_id for spec, _ in ready] == ["vanderpol/lyapunov"]
        driver.record_timeout(ready[0][0], seconds=0.6)
        assert driver.results["vanderpol/lyapunov"].status is JobStatus.TIMEOUT
        # The dependent level-set job resolves as skipped, completing the DAG.
        assert driver.take_ready() == []
        assert driver.done
        assert driver.results["vanderpol/levelset:flow"].status is JobStatus.SKIPPED


class TestSerialization:
    def test_polynomial_roundtrip_is_exact(self):
        variables = VariableVector(make_variables("x", "y", "z"))
        x = Polynomial.from_variable(variables[0], variables)
        y = Polynomial.from_variable(variables[1], variables)
        z = Polynomial.from_variable(variables[2], variables)
        poly = 1.5 * x ** 4 - 2.25 * x * y * z + z * z - 0.125
        data = polynomial_to_data(poly)
        json.dumps(data)  # plain data
        back = polynomial_from_data(data)
        assert (poly - back).max_abs_coefficient() == 0.0

    def test_term_order_deterministic(self):
        variables = VariableVector(make_variables("x", "y"))
        x = Polynomial.from_variable(variables[0], variables)
        y = Polynomial.from_variable(variables[1], variables)
        a = polynomial_to_data(x * y + y * y + x)
        b = polynomial_to_data(y * y + x + x * y)
        assert a == b


class TestReportSatellite:
    def _empty_report(self):
        return VerificationReport(
            system_name="sys",
            property_one=PropertyOneResult(
                status=VerificationStatus.INCONCLUSIVE, lyapunov=None,
                invariant=None),
            property_two=PropertyTwoResult(
                status=VerificationStatus.INCONCLUSIVE),
        )

    def test_zero_timings_render_cleanly(self):
        report = self._empty_report()
        text = report.render_text()
        assert "no steps executed" in text
        assert report.table2_rows() == []
        assert report.total_time == 0.0

    def test_non_canonical_steps_ordered_deterministically(self):
        report = self._empty_report()
        report.add_timing("Zeta Custom", 1.0)
        report.add_timing("Alpha Custom", 2.0)
        report.add_timing(STEP_ATTRACTIVE_INVARIANT, 3.0)
        steps = [step for step, _, _, _ in report.table2_rows()]
        # Canonical first, then extras alphabetically — insertion order must
        # not leak through.
        assert steps == [STEP_ATTRACTIVE_INVARIANT, "Alpha Custom", "Zeta Custom"]
        text = report.render_text()
        assert text.index("Alpha Custom") < text.index("Zeta Custom")

    def test_to_json_dict(self):
        report = self._empty_report()
        report.add_timing(STEP_ATTRACTIVE_INVARIANT, 1.5, detail="degree 2")
        payload = report.to_json_dict()
        json.dumps(payload)
        assert payload["inevitability"] == "inconclusive"
        assert payload["timings"][0]["step"] == STEP_ATTRACTIVE_INVARIANT


class TestFalsificationReproducibility:
    @pytest.fixture(scope="class")
    def model(self):
        return build_problem("pll3").pll_model

    def test_rng_threading(self, model):
        a = random_initial_states(model, 4, rng=np.random.default_rng(42))
        b = random_initial_states(model, 4, rng=np.random.default_rng(42))
        c = random_initial_states(model, 4, rng=np.random.default_rng(43))
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_seed_parameter_still_works(self, model):
        a = random_initial_states(model, 3, seed=7)
        b = random_initial_states(model, 3, seed=7)
        assert np.array_equal(a, b)

    def test_run_falsification_deterministic(self, model):
        variables = model.state_variables
        V = Polynomial.zero(variables)
        for v in variables:
            xi = Polynomial.from_variable(v, variables)
            V = V + xi * xi
        invariant = AttractiveInvariant(
            {"mode1": MaximizedLevelSet("mode1", V, 4.0, iterations=0)},
            variables)
        kwargs = dict(count=2, duration=2.0, lock_radius=5.0)
        first = run_falsification(model, invariant,
                                  rng=np.random.default_rng(5), **kwargs)
        second = run_falsification(model, invariant,
                                   rng=np.random.default_rng(5), **kwargs)
        assert [str(f) for f in first] == [str(f) for f in second]
