"""Unit tests for variables, monomials and the Polynomial class."""

import numpy as np
import pytest

from repro.polynomial import (
    Monomial,
    Polynomial,
    Variable,
    VariableVector,
    make_variables,
    monomial_basis,
    basis_size,
    polynomial_vector,
)


@pytest.fixture()
def xyz():
    x, y, z = make_variables("x", "y", "z")
    return VariableVector([x, y, z])


class TestVariables:
    def test_equality_by_name(self):
        assert Variable("x") == Variable("x")
        assert Variable("x") != Variable("y")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Variable("")

    def test_vector_rejects_duplicates(self):
        with pytest.raises(ValueError):
            VariableVector([Variable("x"), Variable("x")])

    def test_vector_index_and_union(self, xyz):
        assert xyz.index(Variable("y")) == 1
        other = VariableVector(make_variables("z", "w"))
        merged = xyz.union(other)
        assert merged.names == ("x", "y", "z", "w")

    def test_variable_arithmetic_promotes_to_polynomial(self):
        x, y = make_variables("x", "y")
        p = x + 2 * y
        assert isinstance(p, Polynomial)
        assert p(1.0, 3.0) == pytest.approx(7.0)


class TestMonomial:
    def test_degree_and_multiplication(self):
        m1 = Monomial((1, 2, 0))
        m2 = Monomial((0, 1, 3))
        assert m1.degree == 3
        assert (m1 * m2).exponents == (1, 3, 3)

    def test_division(self):
        m1 = Monomial((2, 1))
        m2 = Monomial((1, 0))
        assert (m1 / m2).exponents == (1, 1)
        with pytest.raises(ValueError):
            _ = m2 / m1

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            Monomial((1, -1))

    def test_differentiate(self):
        coeff, dm = Monomial((3, 1)).differentiate(0)
        assert coeff == 3.0
        assert dm.exponents == (2, 1)
        coeff0, _ = Monomial((0, 1)).differentiate(0)
        assert coeff0 == 0.0

    def test_evaluate(self):
        assert Monomial((2, 1)).evaluate([3.0, 2.0]) == pytest.approx(18.0)

    def test_evaluate_many_matches_scalar(self):
        m = Monomial((1, 2))
        pts = np.array([[1.0, 2.0], [3.0, -1.0]])
        np.testing.assert_allclose(m.evaluate_many(pts),
                                   [m.evaluate(p) for p in pts])


class TestBasis:
    def test_basis_count_matches_formula(self):
        basis = monomial_basis(3, 2)
        assert len(basis) == basis_size(3, 2) == 10

    def test_min_degree_excludes_constant(self):
        basis = monomial_basis(2, 2, min_degree=1)
        assert all(m.degree >= 1 for m in basis)

    def test_sorted_by_degree(self):
        basis = monomial_basis(2, 3)
        degrees = [m.degree for m in basis]
        assert degrees == sorted(degrees)


class TestPolynomialArithmetic:
    def test_addition_and_subtraction(self, xyz):
        x = Polynomial.from_variable(xyz[0], xyz)
        y = Polynomial.from_variable(xyz[1], xyz)
        p = (x + y) * (x - y)
        expected = x * x - y * y
        assert p.almost_equal(expected)

    def test_scalar_operations(self, xyz):
        x = Polynomial.from_variable(xyz[0], xyz)
        p = 2 * x + 1 - x / 2
        assert p(2.0, 0.0, 0.0) == pytest.approx(4.0)

    def test_power(self, xyz):
        x = Polynomial.from_variable(xyz[0], xyz)
        y = Polynomial.from_variable(xyz[1], xyz)
        p = (x + y) ** 3
        assert p.coefficient((2, 1, 0)) == pytest.approx(3.0)
        assert p.degree == 3

    def test_zero_power(self, xyz):
        x = Polynomial.from_variable(xyz[0], xyz)
        assert (x ** 0).constant_term() == pytest.approx(1.0)

    def test_negative_power_rejected(self, xyz):
        x = Polynomial.from_variable(xyz[0], xyz)
        with pytest.raises(ValueError):
            _ = x ** -1

    def test_mixed_variable_vectors_align(self):
        x, y = make_variables("x", "y")
        px = Polynomial.from_variable(x)
        py = Polynomial.from_variable(y)
        p = px + py
        assert set(p.variables.names) == {"x", "y"}
        assert p.evaluate([1.0, 2.0]) == pytest.approx(3.0)

    def test_equality_and_hash(self, xyz):
        x = Polynomial.from_variable(xyz[0], xyz)
        assert x + x == 2 * x
        assert hash(x * 1.0) == hash(x)


class TestPolynomialCalculus:
    def test_gradient(self, xyz):
        x = Polynomial.from_variable(xyz[0], xyz)
        y = Polynomial.from_variable(xyz[1], xyz)
        p = x * x * y + y
        grad = p.gradient()
        assert grad[0].almost_equal(2 * x * y)
        assert grad[1].almost_equal(x * x + 1)

    def test_lie_derivative_linear_system(self, xyz):
        x = Polynomial.from_variable(xyz[0], xyz)
        y = Polynomial.from_variable(xyz[1], xyz)
        z = Polynomial.from_variable(xyz[2], xyz)
        V = x * x + y * y + z * z
        field = [-x, -y, -z]
        lie = V.lie_derivative(field)
        assert lie.almost_equal(-2 * V)

    def test_hessian_symmetric(self, xyz):
        x = Polynomial.from_variable(xyz[0], xyz)
        y = Polynomial.from_variable(xyz[1], xyz)
        p = x * x * y
        hess = p.hessian()
        assert hess[0][1].almost_equal(hess[1][0])


class TestSubstitution:
    def test_numeric_substitution(self):
        x, y = make_variables("x", "y")
        xv = VariableVector([x, y])
        p = Polynomial.from_variable(x, xv) ** 2 + Polynomial.from_variable(y, xv)
        q = p.substitute({y: 2.0})
        assert q.num_variables == 1
        assert q.evaluate([3.0]) == pytest.approx(11.0)

    def test_polynomial_composition(self):
        x, y = make_variables("x", "y")
        xv = VariableVector([x, y])
        px = Polynomial.from_variable(x, xv)
        py = Polynomial.from_variable(y, xv)
        p = px * px + py
        composed = p.compose([px - py, py * 2])
        assert composed.evaluate([1.0, 2.0]) == pytest.approx((1 - 2) ** 2 + 4)

    def test_shift_moves_evaluation_point(self):
        x, y = make_variables("x", "y")
        xv = VariableVector([x, y])
        p = Polynomial.from_variable(x, xv) ** 2
        shifted = p.shift([1.0, 0.0])
        assert shifted.evaluate([0.0, 0.0]) == pytest.approx(1.0)

    def test_scale_variables(self):
        x, = make_variables("x")
        xv = VariableVector([x])
        p = Polynomial.from_variable(x, xv) ** 2
        scaled = p.scale_variables([3.0])
        assert scaled.evaluate([1.0]) == pytest.approx(9.0)


class TestConstructors:
    def test_quadratic_form(self, xyz):
        Q = np.diag([1.0, 2.0, 3.0])
        p = Polynomial.from_quadratic_form(xyz, Q)
        assert p.evaluate([1.0, 1.0, 1.0]) == pytest.approx(6.0)

    def test_affine_vector_field(self, xyz):
        A = [[0.0, 1.0, 0.0], [-1.0, 0.0, 0.0], [0.0, 0.0, -2.0]]
        field = polynomial_vector(xyz, A, constants=[0.0, 0.5, 0.0])
        values = [f.evaluate([1.0, 2.0, 3.0]) for f in field]
        np.testing.assert_allclose(values, [2.0, -0.5, -6.0])

    def test_coefficient_vector_roundtrip(self, xyz):
        basis = monomial_basis(3, 2)
        rng = np.random.default_rng(1)
        vec = rng.normal(size=len(basis))
        p = Polynomial.from_coefficient_vector(xyz, basis, vec)
        np.testing.assert_allclose(p.coefficient_vector(basis), vec)

    def test_coefficient_vector_outside_basis_raises(self, xyz):
        basis = monomial_basis(3, 1)
        x = Polynomial.from_variable(xyz[0], xyz)
        with pytest.raises(ValueError):
            (x ** 2).coefficient_vector(basis)

    def test_evaluate_many(self, xyz):
        x = Polynomial.from_variable(xyz[0], xyz)
        y = Polynomial.from_variable(xyz[1], xyz)
        p = x * y + 1
        pts = np.array([[1.0, 2.0, 0.0], [0.0, 5.0, 1.0]])
        np.testing.assert_allclose(p.evaluate_many(pts), [3.0, 1.0])

    def test_to_string_nonempty(self, xyz):
        x = Polynomial.from_variable(xyz[0], xyz)
        assert "x" in (2 * x + 1).to_string()
        assert Polynomial.zero(xyz).to_string() == "0"
