"""Acceptance tests on the 3rd-order PLL: engine/direct-API parity, identical
statuses across worker counts, and zero SDP solves on a warm cache.

The first run is the expensive one (it populates the shared cache); every
later run in this module — including the CLI subprocess — replays certificates
from disk.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core import InevitabilityVerifier, VerificationStatus
from repro.engine import CertificateCache, EngineOptions, VerificationEngine
from repro.scenarios import build_problem
from repro.sdp import reset_solve_counters, set_solve_cache, solve_counters
from repro.sos import compile_counters

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("pll3_cache"))


@pytest.fixture(scope="module")
def cold_run(cache_dir):
    engine = VerificationEngine(EngineOptions(jobs=1, cache_dir=cache_dir))
    return engine.run(["pll3"])


class TestPll3Acceptance:
    def test_cold_run_matches_expected(self, cold_run):
        outcome = cold_run.outcome("pll3")
        assert outcome.matches_expected
        assert outcome.report.property_one.status is VerificationStatus.VERIFIED
        assert outcome.report.property_one.invariant is not None
        levels = dict((name, level) for name, level, _
                      in outcome.report.property_one.invariant.summary_rows())
        assert set(levels) == {"mode1", "mode2", "mode3"}
        assert all(level > 0 for level in levels.values())
        assert cold_run.counters["solved"] > 0

    def test_jobs_1_and_4_produce_identical_statuses(self, cold_run, cache_dir):
        pooled = VerificationEngine(
            EngineOptions(jobs=4, cache_dir=cache_dir)).run(["pll3"])
        cold = cold_run.outcome("pll3")
        warm = pooled.outcome("pll3")
        assert cold.statuses == warm.statuses
        assert warm.matches_expected
        cold_levels = cold.report.property_one.invariant.summary_rows()
        warm_levels = warm.report.property_one.invariant.summary_rows()
        assert cold_levels == warm_levels

    def test_warm_cache_performs_zero_sdp_solves(self, cold_run, cache_dir):
        compile_before = compile_counters()
        warm = VerificationEngine(
            EngineOptions(jobs=1, cache_dir=cache_dir)).run(["pll3"])
        compile_after = compile_counters()
        assert warm.counters["solved"] == 0
        assert warm.counters["cache_hit"] > 0
        # The pipeline genuinely re-ran: programs were (re)compiled, only the
        # conic solves were replayed from the persistent cache.
        assert compile_after["full"] + compile_after["memoised"] > \
            compile_before["full"] + compile_before["memoised"]
        assert warm.outcome("pll3").statuses == cold_run.outcome("pll3").statuses

    def test_no_cache_flag_bypasses_cache(self, cold_run, cache_dir):
        """--no-cache semantics: a tiny scenario re-solves despite a warm dir."""
        engine = VerificationEngine(
            EngineOptions(jobs=1, use_cache=False, cache_dir=cache_dir))
        # vanderpol is cheap; with use_cache=False it must perform real solves
        # even though a cache directory exists.
        VerificationEngine(EngineOptions(jobs=1, cache_dir=cache_dir)).run(
            ["vanderpol"])  # warm the cache for vanderpol
        report = engine.run(["vanderpol"])
        assert report.counters["solved"] > 0
        assert report.counters["cache_hit"] == 0

    def test_engine_matches_direct_api(self, cold_run, cache_dir):
        """Engine results must equal a direct InevitabilityVerifier run."""
        problem = build_problem("pll3")
        previous = set_solve_cache(CertificateCache(cache_dir))
        try:
            reset_solve_counters()
            report = InevitabilityVerifier(problem, problem.options).verify()
            # The direct run replays the same SDPs the engine solved.
            assert solve_counters()["solved"] == 0
        finally:
            set_solve_cache(previous)
            reset_solve_counters()
        engine_report = cold_run.outcome("pll3").report
        assert report.property_one.status is engine_report.property_one.status
        direct_levels = report.property_one.invariant.summary_rows()
        engine_levels = engine_report.property_one.invariant.summary_rows()
        assert [(name, degree) for name, _, degree in direct_levels] == \
            [(name, degree) for name, _, degree in engine_levels]
        for (_, direct_level, _), (_, engine_level, _) in zip(direct_levels,
                                                              engine_levels):
            assert direct_level == pytest.approx(engine_level, rel=1e-9)
        assert report.property_two.status is engine_report.property_two.status


class TestCli:
    def _run(self, args, cache_dir):
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        env["REPRO_CACHE_DIR"] = cache_dir
        return subprocess.run(
            [sys.executable, "-m", "repro", *args],
            capture_output=True, text=True, cwd=str(REPO_ROOT), env=env)

    def test_list_shows_all_scenarios(self, cache_dir):
        out = self._run(["list", "--json"], cache_dir)
        assert out.returncode == 0, out.stderr
        names = [row["name"] for row in json.loads(out.stdout)["scenarios"]]
        assert len(names) >= 6
        assert "pll3" in names

    def test_verify_pll3_succeeds_and_writes_json(self, cold_run, cache_dir,
                                                  tmp_path):
        json_path = tmp_path / "pll3.json"
        out = self._run(["verify", "pll3", "--jobs", "1",
                         "--json", str(json_path)], cache_dir)
        assert out.returncode == 0, out.stdout + out.stderr
        assert "MATCH" in out.stdout
        payload = json.loads(json_path.read_text())
        scenario = payload["scenarios"][0]
        assert scenario["scenario"] == "pll3"
        assert scenario["matches_expected"] is True
        # Warm cache: the subprocess performed no SDP solves at all.
        assert payload["engine"]["counters"]["solved"] == 0

    def test_report_renders_last_run(self, cold_run, cache_dir, tmp_path):
        json_path = tmp_path / "for_report.json"
        verify = self._run(["verify", "vanderpol", "--jobs", "1",
                            "--json", str(json_path)], cache_dir)
        assert verify.returncode == 0
        out = self._run(["report", "--input", str(json_path)], cache_dir)
        assert out.returncode == 0, out.stderr
        assert "vanderpol" in out.stdout

    def test_unknown_scenario_is_a_usage_error(self, cache_dir):
        out = self._run(["verify", "definitely_not_a_scenario"], cache_dir)
        assert out.returncode == 2  # usage error, not a verification mismatch
        assert "unknown scenario" in out.stderr
