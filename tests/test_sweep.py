"""Tests for the parameter-sweep subsystem (repro.sweep)."""

import json

import numpy as np
import pytest

from repro.engine.cache import CertificateCache, cache_rate_summary
from repro.engine.engine import _execute_job
from repro.engine.jobs import STEP_LYAPUNOV, STEP_SWEEP
from repro.scenarios import build_problem, get_scenario
from repro.sweep import (
    GridSweep,
    SweepError,
    SweepOptions,
    SweepProgress,
    SweepRunner,
    get_sweep_family,
    sweep_family_names,
)


SMALL_GRID = {"mu": (0.8, 1.2, 2), "stiffness": (0.9, 1.1, 2)}


def _small_family():
    return get_sweep_family("vanderpol_grid").reconfigure(grid=SMALL_GRID)


def _frontier_blob(report):
    return json.dumps(report.frontier, sort_keys=True)


# ----------------------------------------------------------------------
# Registry parameter overrides (the path families expand through)
# ----------------------------------------------------------------------
class TestScenarioParameters:
    def test_declared_axes_have_nominals(self):
        spec = get_scenario("vanderpol")
        assert spec.sweep_axes == {"mu": 1.0, "stiffness": 1.0}

    def test_unknown_parameter_rejected(self):
        spec = get_scenario("vanderpol")
        with pytest.raises(ValueError, match="bogus"):
            spec.with_parameters({"bogus": 2.0})

    def test_override_changes_dynamics(self):
        nominal = build_problem("vanderpol")
        stiff = build_problem("vanderpol", params={"stiffness": 2.0})
        nom_flow = nominal.system.modes[0].flow_map
        new_flow = stiff.system.modes[0].flow_map
        assert [str(p) for p in nom_flow] != [str(p) for p in new_flow]

    def test_no_override_is_identity(self):
        # params=None must keep the historical build (and its cache keys).
        spec = get_scenario("pll3")
        assert spec.build().uncertainty == get_scenario("pll3").build().uncertainty

    def test_pll3_axes_are_table1_centres(self):
        axes = get_scenario("pll3").sweep_axes
        assert axes["i_p"] == pytest.approx(5e-4)
        assert set(axes) >= {"i_p", "k_vco", "r", "c1", "c2"}


# ----------------------------------------------------------------------
# Family expansion
# ----------------------------------------------------------------------
class TestFamilies:
    def test_catalog_registered(self):
        names = sweep_family_names()
        assert {"vanderpol_grid", "pll3_ip_ladder", "pll3_mc"} <= set(names)

    def test_grid_row_major_and_stable(self):
        family = _small_family()
        points = list(family.points())
        assert [p.index for p in points] == [0, 1, 2, 3]
        assert points[0].params_dict == {"mu": 0.8, "stiffness": 0.9}
        assert points[1].params_dict == {"mu": 0.8, "stiffness": 1.1}
        assert points[3].params_dict == {"mu": 1.2, "stiffness": 1.1}

    def test_monte_carlo_same_seed_identical_points(self):
        family = get_sweep_family("pll3_mc").reconfigure(samples=8, seed=7)
        again = get_sweep_family("pll3_mc").reconfigure(samples=8, seed=7)
        points = [p.params for p in family.points()]
        repeat = [p.params for p in again.points()]
        assert points == repeat  # bit-identical floats, not approx
        other = get_sweep_family("pll3_mc").reconfigure(samples=8, seed=8)
        assert points != [p.params for p in other.points()]

    def test_monte_carlo_draws_inside_ranges(self):
        family = get_sweep_family("pll3_mc").reconfigure(samples=32)
        nominal = get_scenario("pll3").sweep_axes
        for point in family.points():
            params = point.params_dict
            assert 0.8 * nominal["i_p"] <= params["i_p"] <= 1.2 * nominal["i_p"]

    def test_degradation_ladder_fractions_of_nominal(self):
        family = get_sweep_family("pll3_ip_ladder").reconfigure(samples=5)
        nominal = get_scenario("pll3").sweep_axes["i_p"]
        values = [p.params_dict["i_p"] for p in family.points()]
        np.testing.assert_allclose(
            values, np.linspace(0.2, 1.0, 5) * nominal)

    def test_reconfigure_validation(self):
        grid = get_sweep_family("vanderpol_grid")
        with pytest.raises(ValueError, match="--samples"):
            grid.reconfigure(samples=5)
        with pytest.raises(ValueError, match="unknown axes"):
            grid.reconfigure(grid={"bogus": (0, 1, 2)})
        ladder = get_sweep_family("pll3_ip_ladder")
        with pytest.raises(ValueError, match="--seed"):
            ladder.reconfigure(seed=3)

    def test_fingerprint_tracks_configuration(self):
        family = get_sweep_family("vanderpol_grid")
        assert family.fingerprint() == family.fingerprint()
        assert family.fingerprint() != _small_family().fingerprint()

    def test_register_rejects_undeclared_axes(self):
        from repro.sweep import register_sweep_family

        with pytest.raises(ValueError, match="declares no axes"):
            register_sweep_family(GridSweep(
                name="bad_family", scenario="vanderpol",
                grid_axes=(("nonsense", 0.0, 1.0, 2),)))


# ----------------------------------------------------------------------
# Shard execution through the engine job layer
# ----------------------------------------------------------------------
class TestSweepShard:
    def _anchor(self, cache):
        outcome = _execute_job(
            {"scenario": "vanderpol", "step": STEP_LYAPUNOV, "mode": None,
             "seed": 0, "relaxation": None, "params": None},
            cache_override=cache, override_cache=True)
        assert outcome["status"] == "ok"
        return outcome["data"]["certificates"]

    def test_sweep_shard_job(self, tmp_path):
        cache = CertificateCache(tmp_path / "cache")
        certificates = self._anchor(cache)
        outcome = _execute_job(
            {"scenario": "vanderpol", "step": STEP_SWEEP, "mode": None,
             "certificates": certificates, "rungs": ["sos"],
             "base": {"mu": 0.8, "stiffness": 0.9},
             "steps": {"mu": 0.4, "stiffness": 0.2},
             "anchor_params": {}, "probe_settings": {},
             "points": [{"index": 0, "params": {"mu": 0.8, "stiffness": 0.9}},
                        {"index": 1, "params": {"mu": 1.2, "stiffness": 1.1}}]},
            cache_override=cache, override_cache=True)
        assert outcome["status"] == "ok"
        points = outcome["data"]["points"]
        assert [p["index"] for p in points] == [0, 1]
        assert all(p["certified"] for p in points)
        assert all(p["rung"] == "sos" for p in points)
        stats = outcome["data"]["structures"]["sos"]
        assert stats["mode"] == "parametric"
        assert stats["binds"] == 2

    def test_unknown_step_still_errors(self):
        outcome = _execute_job({"scenario": "vanderpol", "step": "nonsense"})
        assert outcome["status"] == "error"


# ----------------------------------------------------------------------
# The planner end to end
# ----------------------------------------------------------------------
class TestSweepRunner:
    def test_end_to_end_and_determinism_across_jobs(self, tmp_path):
        family = _small_family()
        r1 = SweepRunner(SweepOptions(
            jobs=1, cache_dir=str(tmp_path / "c1"))).run(family)
        assert r1.frontier["summary"]["points"] == 4
        assert r1.certified == 4
        for point in r1.points:
            assert point["rung"] in r1.frontier["ladder"]

        r4 = SweepRunner(SweepOptions(
            jobs=4, cache_dir=str(tmp_path / "c4"))).run(family)
        assert _frontier_blob(r1) == _frontier_blob(r4)

    def test_warm_resweep_zero_solves(self, tmp_path):
        family = _small_family()
        options = SweepOptions(jobs=1, cache_dir=str(tmp_path))
        cold = SweepRunner(options).run(family)
        assert cold.run["counters"].get("solved", 0) > 0

        warm = SweepRunner(SweepOptions(
            jobs=1, cache_dir=str(tmp_path))).run(family)
        assert warm.run["counters"].get("solved", 0) == 0
        assert warm.run["cache"]["hit_rate"] == 1.0
        assert warm.run["cache"]["lookups"] > 0
        assert _frontier_blob(cold) == _frontier_blob(warm)

    def test_resume_skips_completed_points(self, tmp_path):
        family = _small_family()
        options = SweepOptions(jobs=1, cache_dir=str(tmp_path))
        full = SweepRunner(options).run(family)

        progress = SweepProgress(tmp_path / "sweeps", family.name,
                                 family.fingerprint())
        progress.save({p["index"]: p for p in full.points[:3]})
        resumed = SweepRunner(SweepOptions(
            jobs=1, cache_dir=str(tmp_path), use_cache=False,
            resume=True)).run(family)
        assert resumed.run["resumed_points"] == 3
        assert resumed.run["structures"]["dsos"]["binds"] == 1
        assert _frontier_blob(resumed) == _frontier_blob(full)

    def test_fingerprint_mismatch_discards_progress(self, tmp_path):
        family = _small_family()
        progress = SweepProgress(tmp_path / "sweeps", family.name,
                                 "0123456789abcdef")
        progress.save({0: {"index": 0, "params": {}, "certified": True,
                           "rung": "sos", "sampling": True, "attempts": []}})
        runner = SweepRunner(SweepOptions(jobs=1, cache_dir=str(tmp_path),
                                          resume=True))
        report = runner.run(family)
        assert report.run["resumed_points"] == 0
        assert report.frontier["summary"]["points"] == 4

    def test_frontier_shape(self, tmp_path):
        report = SweepRunner(SweepOptions(
            jobs=1, cache_dir=str(tmp_path))).run(_small_family())
        frontier = report.frontier
        assert set(frontier["axes"]) == {"mu", "stiffness"}
        mu = frontier["axes"]["mu"]
        assert [row["value"] for row in mu["bins"]] == [0.8, 1.2]
        assert all(row["total"] == 2 for row in mu["bins"])
        assert mu["certified_range"] == [0.8, 1.2]
        summary = frontier["summary"]
        assert summary["certified"] + summary["uncertified"] == summary["points"]
        assert sum(summary["by_rung"].values()) == summary["certified"]
        text = report.render_text()
        assert "Sweep frontier: vanderpol_grid" in text
        assert "axis mu" in text

    def test_relaxation_override_pins_ladder(self, tmp_path):
        report = SweepRunner(SweepOptions(
            jobs=1, cache_dir=str(tmp_path),
            relaxation="sos")).run(_small_family())
        assert report.frontier["ladder"] == ["sos"]
        assert set(report.run["structures"]) == {"sos"}

    def test_grid_reshape_through_options(self, tmp_path):
        report = SweepRunner(SweepOptions(
            jobs=1, cache_dir=str(tmp_path), use_cache=False,
            grid={"mu": (1.0, 1.0, 1), "stiffness": (1.0, 1.0, 1)},
        )).run("vanderpol_grid")
        assert report.frontier["summary"]["points"] == 1
        assert tuple(report.frontier["family"]["grid_axes"][0]) == \
            ("mu", 1.0, 1.0, 1)

    def test_bad_reconfigure_is_sweep_error(self):
        runner = SweepRunner(SweepOptions(samples=5))
        with pytest.raises(SweepError, match="--samples"):
            runner.resolve_family("vanderpol_grid")


# ----------------------------------------------------------------------
# Cache telemetry surfaces (satellite: hit rates in reports)
# ----------------------------------------------------------------------
class TestCacheTelemetry:
    def test_cache_rate_summary(self):
        summary = cache_rate_summary({"hits": 3, "misses": 1, "writes": 1})
        assert summary["lookups"] == 4
        assert summary["hit_rate"] == pytest.approx(0.75)
        empty = cache_rate_summary({})
        assert empty["lookups"] == 0 and empty["hit_rate"] == 0.0

    def test_engine_report_includes_cache_section(self, tmp_path):
        from repro.engine import EngineOptions, VerificationEngine

        options = EngineOptions(jobs=1, cache_dir=str(tmp_path))
        report = VerificationEngine(options).run(["vanderpol"])
        engine = report.to_json_dict()["engine"]
        assert "cache" in engine
        assert engine["cache"]["lookups"] == \
            engine["cache"]["hits"] + engine["cache"]["misses"]
        warm = VerificationEngine(EngineOptions(
            jobs=1, cache_dir=str(tmp_path))).run(["vanderpol"])
        summary = warm.to_json_dict()["engine"]["cache"]
        assert summary["hit_rate"] == 1.0
        assert "Certificate cache:" in warm.render_text()


# ----------------------------------------------------------------------
# Session facade
# ----------------------------------------------------------------------
class TestSessionSweep:
    def test_session_sweep_with_disk_cache(self, tmp_path):
        from repro.api import VerificationSession

        session = VerificationSession(cache_dir=tmp_path, name="sweeper")
        report = session.sweep("vanderpol_grid", grid=SMALL_GRID)
        assert report.certified == 4

    def test_session_sweep_inline_cache_object(self):
        from repro.api import VerificationSession

        class DictCache:
            def __init__(self):
                self.store = {}

            def get(self, key):
                return self.store.get(key)

            def put(self, key, value):
                self.store[key] = value

        cache = DictCache()
        session = VerificationSession(cache=cache, name="sweeper")
        report = session.sweep("vanderpol_grid",
                               grid={"mu": (1.0, 1.0, 1),
                                     "stiffness": (1.0, 1.0, 1)})
        assert report.frontier["summary"]["points"] == 1
        # the solves went through the session's live cache object (the
        # planner must stay inline for it — no process boundary)
        assert len(cache.store) > 0
