"""Unit tests of the fleet building blocks: wire protocol framing, schema
versioning, the prioritised scheduler (requeue / quarantine / deadlines /
persistence) and the serialization hardening (round-trip properties of the
JobSpec/JobResult/SolverResult codecs, payload fingerprints, memo replay).

Everything here runs without sockets bound to real fleets — socketpairs for
framing, direct scheduler calls for queue semantics.
"""

import json
import socket
import struct
import threading

import numpy as np
import pytest

from repro.engine.jobs import JobResult, JobSpec, JobStatus
from repro.engine.serialize import (
    SCHEMA_VERSION,
    WireSchemaError,
    from_jsonable,
    job_result_from_wire,
    job_result_to_wire,
    job_spec_from_wire,
    job_spec_to_wire,
    memo_outcome,
    memoizable_status,
    payload_fingerprint,
    solver_result_from_wire,
    solver_result_to_wire,
    to_jsonable,
)
from repro.fleet.protocol import (
    ProtocolError,
    SchemaVersionError,
    WIRE_VERSION,
    format_address,
    parse_address,
    recv_message,
    send_message,
)
from repro.fleet.scheduler import (
    PRIORITY_BACKGROUND,
    PRIORITY_INTERACTIVE,
    FleetScheduler,
)
from repro.sdp.result import SolveHistory, SolverResult, SolverStatus


# ----------------------------------------------------------------------
# Wire protocol framing
# ----------------------------------------------------------------------
class TestProtocol:
    def test_round_trip_over_socketpair(self):
        left, right = socket.socketpair()
        try:
            message = {"type": "ping", "nested": {"x": [1, 2.5, "s", None]}}
            send_message(left, message)
            assert recv_message(right) == message
        finally:
            left.close()
            right.close()

    def test_clean_eof_returns_none(self):
        left, right = socket.socketpair()
        left.close()
        try:
            assert recv_message(right) is None
        finally:
            right.close()

    def test_mid_frame_eof_is_a_protocol_error(self):
        left, right = socket.socketpair()
        try:
            body = json.dumps({"v": WIRE_VERSION, "m": {}}).encode()
            left.sendall(struct.pack(">I", len(body)) + body[:3])
            left.close()
            with pytest.raises(ProtocolError):
                recv_message(right)
        finally:
            right.close()

    def test_version_mismatch_is_a_schema_error_not_keyerror(self):
        left, right = socket.socketpair()
        try:
            body = json.dumps({"v": 99, "m": {"type": "ping"}}).encode()
            left.sendall(struct.pack(">I", len(body)) + body)
            with pytest.raises(SchemaVersionError, match="wire schema"):
                recv_message(right)
        finally:
            left.close()
            right.close()

    def test_non_json_frame_is_a_protocol_error(self):
        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack(">I", 4) + b"\xff\xfe\x00\x01")
            with pytest.raises(ProtocolError):
                recv_message(right)
        finally:
            left.close()
            right.close()

    def test_parse_and_format_address(self):
        assert parse_address("host:1234") == ("host", 1234)
        assert parse_address(":1234") == ("127.0.0.1", 1234)
        assert parse_address("host")[0] == "host"
        assert format_address(("a", 7)) == "a:7"
        with pytest.raises(ValueError, match="not an integer"):
            parse_address("host:notaport")


# ----------------------------------------------------------------------
# Scheduler semantics
# ----------------------------------------------------------------------
class TestScheduler:
    def test_priority_preempts_and_fifo_within_priority(self):
        sched = FleetScheduler()
        low_a = sched.enqueue({"n": 1}, priority=PRIORITY_BACKGROUND)
        low_b = sched.enqueue({"n": 2}, priority=PRIORITY_BACKGROUND)
        high = sched.enqueue({"n": 3}, priority=PRIORITY_INTERACTIVE)
        order = [sched.next_job("w", wait_timeout=0).key for _ in range(3)]
        assert order == [high.key, low_a.key, low_b.key]

    def test_complete_resolves_future_and_returns_job(self):
        sched = FleetScheduler()
        queued = sched.enqueue({"n": 1}, label="job-a")
        job = sched.next_job("w", wait_timeout=0)
        outcome = {"status": "ok", "detail": "done"}
        returned = sched.complete("w", job.key, outcome)
        assert returned is queued
        assert queued.future.result(timeout=1) == outcome
        # A second (stale) report is discarded.
        assert sched.complete("w", job.key, {"status": "ok"}) is None

    def test_complete_from_wrong_worker_is_discarded(self):
        sched = FleetScheduler()
        sched.enqueue({"n": 1})
        job = sched.next_job("w1", wait_timeout=0)
        assert sched.complete("w2", job.key, {"status": "ok"}) is None
        assert sched.complete("w1", job.key, {"status": "ok"}) is not None

    def test_worker_death_requeues_with_attempt_count(self):
        sched = FleetScheduler(max_retries=2)
        queued = sched.enqueue({"n": 1})
        job = sched.next_job("w1", wait_timeout=0)
        assert job.attempts == 1
        assert sched.worker_died("w1") == [queued.key]
        job = sched.next_job("w2", wait_timeout=0)
        assert job.key == queued.key
        assert job.attempts == 2
        assert sched.stats["requeued"] == 1

    def test_poison_job_quarantined_after_max_retries(self):
        sched = FleetScheduler(max_retries=1)
        queued = sched.enqueue({"n": 1})
        for round_no in range(2):  # attempts 1 and 2 both die
            job = sched.next_job(f"w{round_no}", wait_timeout=0)
            assert job is not None
            sched.worker_died(f"w{round_no}")
        outcome = queued.future.result(timeout=1)
        assert outcome["status"] == "error"
        assert "poison" in outcome["detail"]
        assert sched.stats["quarantined"] == 1
        assert sched.next_job("w9", wait_timeout=0) is None

    def test_deadline_expiry_resolves_as_timeout(self):
        sched = FleetScheduler(default_timeout=0.5)
        queued = sched.enqueue({"n": 1})
        job = sched.next_job("w", wait_timeout=0)
        assert sched.check_deadlines(now=job.started_at + 0.4) == []
        assert sched.check_deadlines(now=job.started_at + 0.6) == [job.key]
        outcome = queued.future.result(timeout=1)
        assert outcome["status"] == "timeout"
        # The late worker report after the timeout is discarded.
        assert sched.complete("w", job.key, {"status": "ok"}) is None

    def test_long_poll_wakes_on_enqueue(self):
        sched = FleetScheduler()
        seen = []

        def puller():
            seen.append(sched.next_job("w", wait_timeout=5.0))

        thread = threading.Thread(target=puller)
        thread.start()
        queued = sched.enqueue({"n": 1})
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert seen and seen[0].key == queued.key

    def test_persist_and_restore_pending_queue(self, tmp_path):
        sched = FleetScheduler()
        sched.enqueue({"n": 1}, priority=3, label="a", timeout=7.0)
        sched.enqueue({"n": 2}, priority=1, label="b")
        path = tmp_path / "queue.json"
        assert sched.persist(path) == 2
        fresh = FleetScheduler()
        assert fresh.restore(path) == 2
        assert not path.exists()  # consumed, not replayed on every start
        first = fresh.next_job("w", wait_timeout=0)
        assert first.label == "a" and first.priority == 3
        assert first.timeout == 7.0
        assert fresh.next_job("w", wait_timeout=0).label == "b"

    def test_restore_ignores_garbage(self, tmp_path):
        path = tmp_path / "queue.json"
        path.write_text("{not json")
        assert FleetScheduler().restore(path) == 0

    def test_stop_refuses_new_work(self):
        sched = FleetScheduler()
        sched.stop()
        with pytest.raises(RuntimeError, match="shutting down"):
            sched.enqueue({"n": 1})
        assert sched.next_job("w", wait_timeout=0) is None


# ----------------------------------------------------------------------
# Serialization hardening: round-trip properties
# ----------------------------------------------------------------------
def _random_job_result(rng: np.random.Generator, index: int) -> JobResult:
    statuses = list(JobStatus)
    layouts = ["psd", "sdd", "dd"]
    counters = {"solved": int(rng.integers(0, 50)),
                "cache_hit": int(rng.integers(0, 50))}
    for layout in rng.choice(layouts, size=rng.integers(0, 3), replace=False):
        counters[f"solved:{layout}"] = int(rng.integers(0, 50))
    backend_stats = {}
    for name in ("numpy", "torch")[: rng.integers(0, 3)]:
        backend_stats[name] = {"solves": float(rng.integers(0, 9)),
                               "iterations": float(rng.integers(0, 999)),
                               "seconds": float(rng.random())}
    return JobResult(
        job_id=f"scenario{index}/step",
        scenario=f"scenario{index}",
        step=str(rng.choice(["lyapunov", "levelset", "advection"])),
        mode=None if rng.random() < 0.5 else "flow",
        status=statuses[int(rng.integers(0, len(statuses)))],
        seconds=float(rng.random() * 100),
        detail="detail with unicode ±∞ and \"quotes\"",
        data={"level": float(rng.standard_normal()),
              "nested": {"values": [float(v) for v in rng.standard_normal(3)]}},
        counters=counters,
        cache_stats={"hits": int(rng.integers(0, 9)),
                     "misses": int(rng.integers(0, 9)),
                     "writes": int(rng.integers(0, 9)), "corrupted": 0},
        array_backend_stats=backend_stats,
        relaxation=None if rng.random() < 0.3 else str(
            rng.choice(["sos", "sdsos", "dsos"])),
    )


class TestSerialization:
    def test_job_spec_round_trip(self):
        spec = JobSpec(job_id="s/advection:m1", scenario="s", step="advection",
                       mode="m1", depends_on=("s/lyapunov", "s/levelset:m1"))
        wire = json.loads(json.dumps(job_spec_to_wire(spec)))
        assert job_spec_from_wire(wire) == spec

    def test_job_result_round_trip_property(self):
        rng = np.random.default_rng(1234)
        for index in range(50):
            result = _random_job_result(rng, index)
            wire = json.loads(json.dumps(job_result_to_wire(result)))
            back = job_result_from_wire(wire)
            assert back == result, f"round-trip changed result #{index}"

    def test_solver_result_round_trip_preserves_float64_and_history(self):
        rng = np.random.default_rng(7)
        x = rng.standard_normal(37)
        history = SolveHistory(primal=[1e-3, 1e-5], dual=[2e-3, 2e-5],
                               objective=[0.5, 0.25])
        result = SolverResult(
            status=SolverStatus.OPTIMAL, x=x, objective=float(x.sum()),
            primal_residual=1.23e-9, dual_residual=4.56e-10,
            equality_residual=7.89e-11, cone_violation=0.0,
            iterations=321, solve_time=0.125,
            info={"history": history, "scaled": True,
                  "warm_start_data": {"x": x, "z": x * 2, "u": x * 3},
                  "array_backend": "numpy"})
        wire = json.loads(json.dumps(solver_result_to_wire(result)))
        back = solver_result_from_wire(wire)
        assert back.status is result.status
        np.testing.assert_array_equal(back.x, x)  # bit-exact float64
        assert back.objective == result.objective
        assert back.primal_residual == result.primal_residual
        assert isinstance(back.info["history"], SolveHistory)
        assert back.info["history"].primal == history.primal
        np.testing.assert_array_equal(back.info["warm_start_data"]["z"], x * 2)

    def test_unknown_schema_version_rejected_clearly(self):
        wire = job_result_to_wire(_random_job_result(np.random.default_rng(0), 0))
        wire["schema"] = SCHEMA_VERSION + 1
        with pytest.raises(WireSchemaError, match="schema version"):
            job_result_from_wire(wire)
        with pytest.raises(WireSchemaError):
            solver_result_from_wire({"status": "optimal"})  # no tag at all
        with pytest.raises(WireSchemaError):
            job_spec_from_wire([1, 2, 3])  # not even an object

    def test_opaque_objects_survive_lenient_encoding(self):
        class Diagnostic:
            pass

        encoded = to_jsonable({"weird": Diagnostic(), "fine": 3}, strict=False)
        json.dumps(encoded)  # must be JSON-safe
        decoded = from_jsonable(encoded)
        assert decoded["fine"] == 3
        assert decoded["weird"] is None


# ----------------------------------------------------------------------
# Job memo: fingerprints and replay
# ----------------------------------------------------------------------
class TestJobMemo:
    def test_fingerprint_ignores_transport_fields(self):
        base = {"scenario": "vanderpol", "step": "lyapunov", "mode": None,
                "seed": 0, "use_cache": True, "cache_dir": "/a/b"}
        other = dict(base, use_cache=False, cache_dir=None)
        assert payload_fingerprint(base) == payload_fingerprint(other)

    def test_fingerprint_separates_semantic_fields(self):
        base = {"scenario": "vanderpol", "step": "lyapunov", "seed": 0}
        for field, value in [("scenario", "buck"), ("step", "levelset"),
                             ("seed", 1), ("relaxation", "dsos"),
                             ("backend", "projection"),
                             ("array_backend", "numpy")]:
            assert payload_fingerprint(dict(base, **{field: value})) != \
                payload_fingerprint(base), field

    def test_memo_outcome_counters_match_a_warm_redispatch(self):
        stored = {"status": "ok", "detail": "d", "seconds": 3.5,
                  "data": {"level": 1.0},
                  "counters": {"solved": 4, "cache_hit": 1,
                               "solved:psd": 3, "solved:sdd": 1,
                               "cache_hit:psd": 1},
                  "cache_stats": {"hits": 1, "misses": 4, "writes": 4,
                                  "corrupted": 0},
                  "array_backend_stats": {"numpy": {"solves": 4}}}
        replay = memo_outcome(stored)
        # Every solve the original performed (or replayed) is now a hit.
        assert replay["counters"] == {"solved": 0, "cache_hit": 5,
                                      "cache_hit:psd": 4, "cache_hit:sdd": 1}
        assert replay["cache_stats"] == {"hits": 5, "misses": 0,
                                         "writes": 0, "corrupted": 0}
        assert replay["array_backend_stats"] == {}
        assert replay["seconds"] == 0.0
        assert replay["status"] == "ok" and replay["data"] == stored["data"]
        assert stored["counters"]["solved"] == 4  # input not mutated

    def test_only_deterministic_outcomes_are_memoizable(self):
        assert memoizable_status("ok")
        assert memoizable_status("failed")
        for status in ("error", "timeout", "skipped", None, ""):
            assert not memoizable_status(status)
