"""Representation-equivalence tests for the array-backed pipeline.

The polynomial layer stores terms as an exponent matrix + coefficient vector;
these tests pin the array semantics to the reference ``{Monomial: float}``
dict semantics, check that batched evaluation agrees with scalar evaluation,
and assert that a cached recompile of a structurally identical SOS program
yields a bit-identical :class:`ConicProblem`.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.polynomial import (
    Monomial,
    Polynomial,
    PolynomialStack,
    VariableVector,
    gram_product_table,
    make_variables,
    monomial_basis,
)
from repro.sdp import (
    ConeDims,
    cone_violation,
    project_onto_cone,
    project_psd_svec,
    smat,
    svec_dim,
    unpack_warm_start,
)
from repro.sdp.cones import smat_many, svec_many
from repro.sos import SOSProgram, add_positivity_on_set, SemialgebraicSet, ball_constraint

small_coeffs = st.floats(min_value=-5.0, max_value=5.0, allow_nan=False,
                         allow_infinity=False)


def _poly_strategy(num_vars=2, max_degree=3):
    basis = monomial_basis(num_vars, max_degree)
    xv = VariableVector(make_variables(*[f"x{i}" for i in range(num_vars)]))

    @st.composite
    def build(draw):
        coeffs = draw(st.lists(small_coeffs, min_size=len(basis), max_size=len(basis)))
        return Polynomial(xv, dict(zip(basis, coeffs)))

    return build()


def _dict_add(p, q):
    coeffs = dict(p.coefficients)
    for mono, c in q.coefficients.items():
        coeffs[mono] = coeffs.get(mono, 0.0) + c
    return coeffs


def _dict_mul(p, q):
    coeffs = {}
    for m1, c1 in p.coefficients.items():
        for m2, c2 in q.coefficients.items():
            prod = m1 * m2
            coeffs[prod] = coeffs.get(prod, 0.0) + c1 * c2
    return coeffs


def _assert_coeffs_close(poly, reference, tol=1e-9):
    keys = set(poly.coefficients) | set(reference)
    for mono in keys:
        assert poly.coefficients.get(mono, 0.0) == pytest.approx(
            reference.get(mono, 0.0), abs=tol)


class TestArrayDictEquivalence:
    @given(_poly_strategy(), _poly_strategy())
    @settings(max_examples=60, deadline=None)
    def test_addition_matches_dict_semantics(self, p, q):
        _assert_coeffs_close(p + q, _dict_add(p, q))

    @given(_poly_strategy(), _poly_strategy())
    @settings(max_examples=60, deadline=None)
    def test_multiplication_matches_dict_semantics(self, p, q):
        _assert_coeffs_close(p * q, _dict_mul(p, q))

    @given(_poly_strategy())
    @settings(max_examples=60, deadline=None)
    def test_differentiation_matches_dict_semantics(self, p):
        for index in range(p.num_variables):
            reference = {}
            for mono, coeff in p.coefficients.items():
                factor, dmono = mono.differentiate(index)
                if factor:
                    reference[dmono] = reference.get(dmono, 0.0) + coeff * factor
            _assert_coeffs_close(p.differentiate(index), reference)

    def test_non_integer_exponents_rejected(self):
        x, y = make_variables("x", "y")
        xv = VariableVector([x, y])
        with pytest.raises(ValueError):
            Polynomial(xv, {(1, 0.5): 2.0})
        with pytest.raises(ValueError):
            Polynomial(xv, {(1, -1): 2.0})

    @given(_poly_strategy())
    @settings(max_examples=40, deadline=None)
    def test_array_views_are_consistent(self, p):
        assert p.exponent_matrix.shape == (len(p), p.num_variables)
        rebuilt = {
            Monomial(tuple(int(e) for e in row)): float(c)
            for row, c in zip(p.exponent_matrix, p.coefficient_array)
        }
        assert rebuilt == p.coefficients


class TestBatchedEvaluation:
    @given(_poly_strategy(),
           st.lists(st.tuples(small_coeffs, small_coeffs), min_size=1, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_evaluate_many_matches_scalar_call(self, p, points):
        points = np.asarray(points, dtype=float)
        batched = p.evaluate_many(points)
        scalar = np.array([p(*pt) for pt in points])
        np.testing.assert_allclose(batched, scalar, rtol=1e-9, atol=1e-9)

    @given(_poly_strategy(), _poly_strategy(),
           st.lists(st.tuples(small_coeffs, small_coeffs), min_size=1, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_polynomial_stack_matches_individual_evaluation(self, p, q, points):
        points = np.asarray(points, dtype=float)
        stack = PolynomialStack([p, q])
        values = stack.evaluate_many(points)
        np.testing.assert_allclose(values[:, 0], p.evaluate_many(points),
                                   rtol=1e-9, atol=1e-9)
        np.testing.assert_allclose(values[:, 1], q.evaluate_many(points),
                                   rtol=1e-9, atol=1e-9)
        np.testing.assert_allclose(stack.evaluate(points[0]),
                                   [p.evaluate(points[0]), q.evaluate(points[0])],
                                   rtol=1e-9, atol=1e-9)


class TestGramProductTable:
    @pytest.mark.parametrize("num_vars,degree", [(1, 2), (2, 2), (2, 3), (3, 2)])
    def test_table_matches_brute_force(self, num_vars, degree):
        basis = monomial_basis(num_vars, degree)
        table = gram_product_table(basis)
        brute = {}
        for i in range(len(basis)):
            for j in range(i, len(basis)):
                prod = basis[i] * basis[j]
                brute[prod] = brute.get(prod, 0.0) + (1.0 if i == j else 2.0)
        accumulated = {}
        for k in range(len(table.pair_i)):
            mono = table.products[table.pair_product[k]]
            accumulated[mono] = accumulated.get(mono, 0.0) + table.pair_weight[k]
        assert accumulated == brute

    def test_table_is_cached(self):
        basis = monomial_basis(2, 2)
        assert gram_product_table(basis) is gram_product_table(basis)


def _build_lyapunov_like_program(scale: float) -> SOSProgram:
    """A small S-procedure program parameterised by a numeric sweep value."""
    x, y = make_variables("x", "y")
    xv = VariableVector([x, y])
    program = SOSProgram(name="sweep")
    V = program.new_polynomial_variable(xv, 2, name="V", min_degree=1)
    px = Polynomial.from_variable(x, xv)
    py = Polynomial.from_variable(y, xv)
    domain = SemialgebraicSet(variables=xv,
                              inequalities=(ball_constraint(xv, 2.0 * scale),))
    add_positivity_on_set(program, V - scale * (px * px + py * py), domain,
                          multiplier_degree=2, name="pos")
    field = [-scale * px, -py]
    lie = V.lie_derivative([f for f in field])
    add_positivity_on_set(program, -lie, domain, multiplier_degree=2, name="dec")
    return program


class TestCompileCache:
    def test_recompile_same_program_is_memoised(self):
        program = _build_lyapunov_like_program(1.0)
        first = program.compile()
        second = program.compile()
        assert first is second
        problem = first[0].build()
        assert first[0].build() is problem  # built problem memoised too

    def test_structurally_identical_program_is_bit_identical(self):
        problems = []
        for _ in range(2):
            program = _build_lyapunov_like_program(1.0)
            builder, _, _ = program.compile()
            problems.append(builder.build())
        a, b = problems
        assert a.dims == b.dims
        assert np.array_equal(a.b, b.b)
        assert np.array_equal(a.c, b.c)
        assert a.A.shape == b.A.shape
        diff = a.A - b.A
        assert diff.nnz == 0 or abs(diff).max() == 0.0

    def test_parameter_sweep_changes_only_coefficients(self):
        builder_a, _, _ = _build_lyapunov_like_program(1.0).compile()
        builder_b, _, _ = _build_lyapunov_like_program(2.0).compile()
        a, b = builder_a.build(), builder_b.build()
        # Same structure (dims and sparsity pattern), different numbers.
        assert a.dims == b.dims
        assert np.array_equal(a.A.indices, b.A.indices)
        assert np.array_equal(a.A.indptr, b.A.indptr)
        assert not np.array_equal(a.A.data, b.A.data)

    def test_mutating_the_program_invalidates_the_cache(self):
        program = _build_lyapunov_like_program(1.0)
        first = program.compile()
        program.new_variable("extra")
        second = program.compile()
        assert first is not second


class TestBatchedCones:
    def test_smat_many_round_trip(self):
        rng = np.random.default_rng(3)
        order = 4
        vecs = rng.normal(size=(5, svec_dim(order)))
        mats = smat_many(vecs, order)
        for k in range(5):
            np.testing.assert_allclose(mats[k], smat(vecs[k], order))
        np.testing.assert_allclose(svec_many(mats, order), vecs, atol=1e-12)

    def test_grouped_projection_matches_per_block(self):
        rng = np.random.default_rng(5)
        dims = ConeDims(free=3, nonneg=2, psd=(3, 2, 3, 2, 3))
        vector = rng.normal(size=dims.total)
        projected = project_onto_cone(vector, dims)
        # Reference: project each block separately.
        expected = vector.copy()
        free_slice, nonneg_slice, psd_slices = dims.slices()
        expected[nonneg_slice] = np.clip(vector[nonneg_slice], 0.0, None)
        for order, sl in zip(dims.psd, psd_slices):
            expected[sl], _ = project_psd_svec(vector[sl], order)
        np.testing.assert_allclose(projected, expected, atol=1e-10)
        assert cone_violation(projected, dims) <= 1e-8


class TestWarmStart:
    def test_unpack_rejects_dimension_mismatch(self):
        assert unpack_warm_start({"x": np.zeros(3), "z": np.zeros(3),
                                  "u": np.zeros(3)}, 4) is None
        x, z, u = unpack_warm_start((np.zeros(4), np.ones(4), np.zeros(4)), 4)
        assert x.shape == (4,) and z[0] == 1.0

    def test_warm_started_resolve_succeeds_and_reports_flag(self):
        program = _build_lyapunov_like_program(1.0)
        first = program.solve(max_iterations=4000)
        assert first.solver_result.info.get("warm_started") is False
        warm = first.solver_result.info["warm_start_data"]
        again = _build_lyapunov_like_program(1.0).solve(
            max_iterations=4000, warm_start=warm)
        assert again.solver_result.info.get("warm_started") is True
        assert again.is_success == first.is_success
        if first.is_success:
            assert again.solver_result.iterations <= first.solver_result.iterations
