"""Unit tests for the conic SDP substrate (cones, builder, solvers)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.sdp import (
    ADMMConicSolver,
    ADMMSettings,
    AlternatingProjectionSolver,
    BatchADMMSolver,
    ConeDims,
    ConicProblem,
    ConicProblemBuilder,
    SolverResult,
    SolverStatus,
    available_backends,
    column_inf_norms,
    cone_violation,
    drop_zero_rows,
    equilibrate,
    make_solver,
    presolve,
    project_onto_cone,
    row_inf_norms,
    smat,
    solve_conic_problem,
    svec,
    svec_dim,
    unpack_warm_start,
)


class TestSvec:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        A = rng.normal(size=(4, 4))
        A = 0.5 * (A + A.T)
        np.testing.assert_allclose(smat(svec(A), 4), A, atol=1e-12)

    def test_inner_product_preserved(self):
        rng = np.random.default_rng(1)
        A = rng.normal(size=(3, 3)); A = A + A.T
        B = rng.normal(size=(3, 3)); B = B + B.T
        assert np.dot(svec(A), svec(B)) == pytest.approx(np.trace(A @ B))

    def test_dimension(self):
        assert svec_dim(5) == 15


class TestCones:
    def test_projection_clips_nonneg(self):
        dims = ConeDims(free=1, nonneg=2, psd=())
        v = np.array([-1.0, -2.0, 3.0])
        projected = project_onto_cone(v, dims)
        np.testing.assert_allclose(projected, [-1.0, 0.0, 3.0])

    def test_projection_psd_block(self):
        dims = ConeDims(free=0, nonneg=0, psd=(2,))
        M = np.array([[1.0, 0.0], [0.0, -2.0]])
        projected = smat(project_onto_cone(svec(M), dims), 2)
        eigenvalues = np.linalg.eigvalsh(projected)
        assert eigenvalues.min() >= -1e-12

    def test_violation_zero_inside(self):
        dims = ConeDims(free=1, nonneg=1, psd=(2,))
        M = np.eye(2)
        v = np.concatenate([[5.0], [1.0], svec(M)])
        assert cone_violation(v, dims) == pytest.approx(0.0)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            ConeDims(free=-1)


class TestBuilder:
    def test_block_layout_and_extraction(self):
        builder = ConicProblemBuilder()
        free_id, _ = builder.add_free_block(2, name="f")
        psd_id, _ = builder.add_psd_block(2, name="Q")
        local, coeff = builder.psd_entry_local_index(psd_id, 0, 1)
        builder.add_equality_row({(free_id, 0): 1.0, (psd_id, local): coeff}, rhs=2.0)
        problem = builder.build()
        assert problem.num_variables == 2 + svec_dim(2)
        assert problem.num_constraints == 1
        x = np.zeros(problem.num_variables)
        x[0] = 2.0
        assert problem.equality_residual(x) == pytest.approx(0.0)

    def test_psd_entry_index_formula(self):
        builder = ConicProblemBuilder()
        psd_id, _ = builder.add_psd_block(3)
        # order-3 svec layout: (0,0),(0,1),(0,2),(1,1),(1,2),(2,2)
        assert builder.psd_entry_local_index(psd_id, 0, 0)[0] == 0
        assert builder.psd_entry_local_index(psd_id, 1, 1)[0] == 3
        assert builder.psd_entry_local_index(psd_id, 2, 2)[0] == 5
        assert builder.psd_entry_local_index(psd_id, 2, 1)[0] == 4

    def test_zero_row_with_nonzero_rhs_is_infeasible(self):
        builder = ConicProblemBuilder()
        builder.add_free_block(1)
        builder.add_equality_row({}, rhs=1.0)
        problem = builder.build()
        with pytest.raises(ValueError):
            drop_zero_rows(problem)


def _simple_sdp_problem():
    """min x s.t. [[x, 1], [1, x]] >> 0  -> optimum x = 1 (via x free = psd diag)."""
    builder = ConicProblemBuilder()
    free_id, _ = builder.add_free_block(1, name="x")
    psd_id, _ = builder.add_psd_block(2, name="M")
    for i in range(2):
        local, coeff = builder.psd_entry_local_index(psd_id, i, i)
        builder.add_equality_row({(psd_id, local): coeff, (free_id, 0): -1.0}, rhs=0.0)
    local, coeff = builder.psd_entry_local_index(psd_id, 0, 1)
    builder.add_equality_row({(psd_id, local): coeff}, rhs=1.0)
    builder.add_cost(free_id, 0, 1.0)
    return builder, free_id, builder.build()


class TestSolvers:
    def test_admm_solves_simple_sdp(self):
        builder, free_id, problem = _simple_sdp_problem()
        result = ADMMConicSolver(ADMMSettings(max_iterations=8000)).solve(problem)
        assert result.status in (SolverStatus.OPTIMAL, SolverStatus.FEASIBLE)
        x_value = builder.block_value(free_id, result.x)[0]
        assert x_value == pytest.approx(1.0, abs=5e-3)

    def test_admm_feasibility_problem(self):
        builder = ConicProblemBuilder()
        psd_id, _ = builder.add_psd_block(2)
        local, coeff = builder.psd_entry_local_index(psd_id, 0, 0)
        builder.add_equality_row({(psd_id, local): coeff}, rhs=2.0)
        result = solve_conic_problem(builder.build())
        assert result.is_success
        M = builder.psd_block_matrix(psd_id, result.x)
        assert M[0, 0] == pytest.approx(2.0, abs=1e-5)
        assert np.linalg.eigvalsh(M).min() >= -1e-8

    def test_admm_detects_infeasible(self):
        builder = ConicProblemBuilder()
        nn_id, _ = builder.add_nonneg_block(1)
        builder.add_equality_row({(nn_id, 0): 1.0}, rhs=-1.0)
        result = solve_conic_problem(builder.build())
        assert not result.is_success

    def test_projection_backend_feasibility(self):
        builder = ConicProblemBuilder()
        psd_id, _ = builder.add_psd_block(2)
        local, coeff = builder.psd_entry_local_index(psd_id, 0, 1)
        builder.add_equality_row({(psd_id, local): coeff}, rhs=0.5)
        result = AlternatingProjectionSolver().solve(builder.build())
        assert result.is_success
        M = builder.psd_block_matrix(psd_id, result.x)
        assert M[0, 1] == pytest.approx(0.5, abs=1e-5)

    def test_projection_backend_rejects_objective(self):
        _, _, problem = _simple_sdp_problem()
        with pytest.raises(ValueError):
            AlternatingProjectionSolver().solve(problem)

    def test_backend_registry(self):
        assert "admm" in available_backends()
        assert "projection" in available_backends()
        solver = make_solver("admm", max_iterations=10)
        assert isinstance(solver, ADMMConicSolver)
        with pytest.raises(KeyError):
            make_solver("nonexistent")

    def test_equilibrate_preserves_solutions(self):
        _, _, problem = _simple_sdp_problem()
        scaled, scaling = equilibrate(problem)
        assert scaled.num_constraints == problem.num_constraints
        # row scaling keeps the feasible set: a feasible x of the original
        # satisfies the scaled equalities too.
        result = solve_conic_problem(problem)
        assert scaled.equality_residual(result.x) <= 1e-4

    def test_backend_registry_batch_admm(self):
        assert "batch_admm" in available_backends()
        solver = make_solver("batch_admm", max_iterations=10)
        assert isinstance(solver, BatchADMMSolver)

    def test_dual_residual_reported(self):
        """The final ADMM dual residual must be a number, not a NaN placeholder."""
        _, _, problem = _simple_sdp_problem()
        result = ADMMConicSolver(ADMMSettings(max_iterations=8000)).solve(problem)
        assert np.isfinite(result.dual_residual)
        assert result.dual_residual >= 0.0


class TestPresolve:
    def test_row_inf_norms(self):
        builder = ConicProblemBuilder()
        free_id, _ = builder.add_free_block(2)
        builder.add_equality_row({(free_id, 0): -3.0, (free_id, 1): 2.0}, rhs=1.0)
        builder.add_equality_row({(free_id, 1): 0.5}, rhs=0.0)
        problem = builder.build()
        np.testing.assert_allclose(row_inf_norms(problem.A), [3.0, 0.5])

    def test_presolve_equals_drop_then_equilibrate(self):
        _, _, problem = _simple_sdp_problem()
        reference, reference_scaling = equilibrate(drop_zero_rows(problem))
        combined, combined_scaling = presolve(problem)
        np.testing.assert_allclose(reference.A.toarray(), combined.A.toarray())
        np.testing.assert_allclose(reference.b, combined.b)
        np.testing.assert_allclose(reference.c, combined.c)
        np.testing.assert_allclose(reference_scaling.row_scale,
                                   combined_scaling.row_scale)
        assert reference_scaling.cost_scale == combined_scaling.cost_scale

    def test_presolve_unscaled(self):
        _, _, problem = _simple_sdp_problem()
        unscaled, scaling = presolve(problem, scale=False)
        assert scaling is None
        np.testing.assert_allclose(unscaled.A.toarray(), problem.A.toarray())

    def test_presolve_rejects_trivially_infeasible(self):
        builder = ConicProblemBuilder()
        builder.add_free_block(1)
        builder.add_equality_row({}, rhs=1.0)
        with pytest.raises(ValueError):
            presolve(builder.build())

    def test_column_inf_norms_matches_dense_reference(self):
        rng = np.random.default_rng(7)
        A = sp.random(40, 25, density=0.15, random_state=rng, format="csr")
        A.data -= 0.5  # exercise the abs()
        dense = np.abs(A.toarray()).max(axis=0)
        np.testing.assert_allclose(column_inf_norms(A), dense)
        # all-zero columns (and an empty matrix) report zero, not garbage
        empty = sp.csr_matrix((4, 3))
        np.testing.assert_allclose(column_inf_norms(empty), np.zeros(3))

    def test_presolve_never_densifies_sparse_blocks(self):
        """Presolve of a 2000-row problem must not allocate a dense (m, n) array.

        Row/column norms are computed straight off the CSR data array;
        a regression to ``abs(A).max(axis=...)``-style dense detours (or any
        ``toarray``/``todense`` round-trip) would allocate m*n doubles.  We
        forbid the round-trip outright and cap the peak allocation far below
        the dense footprint.
        """
        import tracemalloc

        m, n = 2000, 600
        rng = np.random.default_rng(3)
        extra = sp.random(m, n, density=0.005, random_state=rng, format="coo")
        # one guaranteed entry per row, then blank a few rows so the
        # drop-zero-rows path runs too
        rows = np.concatenate([np.arange(m), extra.row])
        cols = np.concatenate([np.arange(m) % n, extra.col])
        data = np.concatenate([1.0 + rng.random(m), extra.data])
        zero = np.isin(np.arange(m), [17, 401, 1999])
        live = ~zero[rows]
        A = sp.csr_matrix((data[live], (rows[live], cols[live])), shape=(m, n))
        b = rng.standard_normal(m)
        b[zero] = 0.0
        problem = ConicProblem(c=rng.standard_normal(n), A=A, b=b,
                               dims=ConeDims(free=n))

        def _forbidden(self, *args, **kwargs):  # pragma: no cover - trap
            raise AssertionError("presolve densified a sparse block")

        dense_bytes = m * n * 8
        matrix_cls = type(A)
        originals = {name: getattr(matrix_cls, name)
                     for name in ("toarray", "todense")}
        try:
            for name in originals:
                setattr(matrix_cls, name, _forbidden)
            tracemalloc.start()
            presolved, scaling = presolve(problem)
            norms = column_inf_norms(presolved.A)
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
        finally:
            for name, func in originals.items():
                setattr(matrix_cls, name, func)
        assert presolved.num_constraints == m - 3
        assert scaling is not None
        assert norms.shape == (n,)
        assert peak < dense_bytes / 4


class TestUnpackWarmStart:
    def test_dict_form(self):
        parts = {"x": np.ones(3), "z": np.zeros(3), "u": np.full(3, 2.0)}
        x, z, u = unpack_warm_start(parts, 3)
        np.testing.assert_allclose(x, 1.0)
        np.testing.assert_allclose(z, 0.0)
        np.testing.assert_allclose(u, 2.0)
        # The returned arrays are copies: mutating them must not leak back.
        x[0] = 99.0
        assert parts["x"][0] == 1.0

    def test_tuple_form(self):
        x, z, u = unpack_warm_start((np.ones(2), np.zeros(2), np.ones(2)), 2)
        np.testing.assert_allclose(x, [1.0, 1.0])
        np.testing.assert_allclose(u, [1.0, 1.0])

    def test_solver_result_form(self):
        data = {"x": np.ones(2), "z": np.ones(2), "u": np.zeros(2)}
        result = SolverResult(status=SolverStatus.FEASIBLE,
                              info={"warm_start_data": data})
        unpacked = unpack_warm_start(result, 2)
        assert unpacked is not None
        np.testing.assert_allclose(unpacked[0], [1.0, 1.0])

    def test_solver_result_without_data(self):
        result = SolverResult(status=SolverStatus.FEASIBLE)
        assert unpack_warm_start(result, 2) is None

    def test_none_passthrough(self):
        assert unpack_warm_start(None, 5) is None

    def test_dimension_mismatch_rejected(self):
        parts = {"x": np.ones(3), "z": np.zeros(3), "u": np.zeros(3)}
        assert unpack_warm_start(parts, 4) is None

    def test_missing_component_rejected(self):
        assert unpack_warm_start({"x": np.ones(2), "z": np.ones(2)}, 2) is None

    def test_wrong_tuple_length_rejected(self):
        assert unpack_warm_start((np.ones(2), np.ones(2)), 2) is None


class TestInfeasibilityDetection:
    def _infeasible_problem(self):
        builder = ConicProblemBuilder()
        nn_id, _ = builder.add_nonneg_block(1)
        psd_id, _ = builder.add_psd_block(2)
        local, coeff = builder.psd_entry_local_index(psd_id, 0, 0)
        builder.add_equality_row({(psd_id, local): coeff}, rhs=1.0)
        builder.add_equality_row({(nn_id, 0): 1.0}, rhs=-1.0)
        return builder.build()

    def test_stall_detection_flags_infeasible(self):
        """With the plateau detector off, the stall window must still fire."""
        settings = ADMMSettings(max_iterations=8000, stall_window=500,
                                infeasibility_detection=False)
        result = ADMMConicSolver(settings).solve(self._infeasible_problem())
        assert result.status == SolverStatus.INFEASIBLE_SUSPECTED
        assert result.iterations < 8000

    def test_plateau_detector_fires_before_stall_window(self):
        settings = ADMMSettings(max_iterations=20000)
        result = ADMMConicSolver(settings).solve(self._infeasible_problem())
        assert result.status == SolverStatus.INFEASIBLE_SUSPECTED
        assert result.iterations < settings.stall_window

    def test_detector_does_not_reject_feasible(self):
        _, _, problem = _simple_sdp_problem()
        result = ADMMConicSolver(ADMMSettings(max_iterations=8000)).solve(problem)
        assert result.status.is_success
