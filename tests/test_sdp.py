"""Unit tests for the conic SDP substrate (cones, builder, solvers)."""

import numpy as np
import pytest

from repro.sdp import (
    ADMMConicSolver,
    ADMMSettings,
    AlternatingProjectionSolver,
    ConeDims,
    ConicProblem,
    ConicProblemBuilder,
    SolverStatus,
    available_backends,
    cone_violation,
    drop_zero_rows,
    equilibrate,
    make_solver,
    project_onto_cone,
    smat,
    solve_conic_problem,
    svec,
    svec_dim,
)


class TestSvec:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        A = rng.normal(size=(4, 4))
        A = 0.5 * (A + A.T)
        np.testing.assert_allclose(smat(svec(A), 4), A, atol=1e-12)

    def test_inner_product_preserved(self):
        rng = np.random.default_rng(1)
        A = rng.normal(size=(3, 3)); A = A + A.T
        B = rng.normal(size=(3, 3)); B = B + B.T
        assert np.dot(svec(A), svec(B)) == pytest.approx(np.trace(A @ B))

    def test_dimension(self):
        assert svec_dim(5) == 15


class TestCones:
    def test_projection_clips_nonneg(self):
        dims = ConeDims(free=1, nonneg=2, psd=())
        v = np.array([-1.0, -2.0, 3.0])
        projected = project_onto_cone(v, dims)
        np.testing.assert_allclose(projected, [-1.0, 0.0, 3.0])

    def test_projection_psd_block(self):
        dims = ConeDims(free=0, nonneg=0, psd=(2,))
        M = np.array([[1.0, 0.0], [0.0, -2.0]])
        projected = smat(project_onto_cone(svec(M), dims), 2)
        eigenvalues = np.linalg.eigvalsh(projected)
        assert eigenvalues.min() >= -1e-12

    def test_violation_zero_inside(self):
        dims = ConeDims(free=1, nonneg=1, psd=(2,))
        M = np.eye(2)
        v = np.concatenate([[5.0], [1.0], svec(M)])
        assert cone_violation(v, dims) == pytest.approx(0.0)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            ConeDims(free=-1)


class TestBuilder:
    def test_block_layout_and_extraction(self):
        builder = ConicProblemBuilder()
        free_id, _ = builder.add_free_block(2, name="f")
        psd_id, _ = builder.add_psd_block(2, name="Q")
        local, coeff = builder.psd_entry_local_index(psd_id, 0, 1)
        builder.add_equality_row({(free_id, 0): 1.0, (psd_id, local): coeff}, rhs=2.0)
        problem = builder.build()
        assert problem.num_variables == 2 + svec_dim(2)
        assert problem.num_constraints == 1
        x = np.zeros(problem.num_variables)
        x[0] = 2.0
        assert problem.equality_residual(x) == pytest.approx(0.0)

    def test_psd_entry_index_formula(self):
        builder = ConicProblemBuilder()
        psd_id, _ = builder.add_psd_block(3)
        # order-3 svec layout: (0,0),(0,1),(0,2),(1,1),(1,2),(2,2)
        assert builder.psd_entry_local_index(psd_id, 0, 0)[0] == 0
        assert builder.psd_entry_local_index(psd_id, 1, 1)[0] == 3
        assert builder.psd_entry_local_index(psd_id, 2, 2)[0] == 5
        assert builder.psd_entry_local_index(psd_id, 2, 1)[0] == 4

    def test_zero_row_with_nonzero_rhs_is_infeasible(self):
        builder = ConicProblemBuilder()
        builder.add_free_block(1)
        builder.add_equality_row({}, rhs=1.0)
        problem = builder.build()
        with pytest.raises(ValueError):
            drop_zero_rows(problem)


def _simple_sdp_problem():
    """min x s.t. [[x, 1], [1, x]] >> 0  -> optimum x = 1 (via x free = psd diag)."""
    builder = ConicProblemBuilder()
    free_id, _ = builder.add_free_block(1, name="x")
    psd_id, _ = builder.add_psd_block(2, name="M")
    for i in range(2):
        local, coeff = builder.psd_entry_local_index(psd_id, i, i)
        builder.add_equality_row({(psd_id, local): coeff, (free_id, 0): -1.0}, rhs=0.0)
    local, coeff = builder.psd_entry_local_index(psd_id, 0, 1)
    builder.add_equality_row({(psd_id, local): coeff}, rhs=1.0)
    builder.add_cost(free_id, 0, 1.0)
    return builder, free_id, builder.build()


class TestSolvers:
    def test_admm_solves_simple_sdp(self):
        builder, free_id, problem = _simple_sdp_problem()
        result = ADMMConicSolver(ADMMSettings(max_iterations=8000)).solve(problem)
        assert result.status in (SolverStatus.OPTIMAL, SolverStatus.FEASIBLE)
        x_value = builder.block_value(free_id, result.x)[0]
        assert x_value == pytest.approx(1.0, abs=5e-3)

    def test_admm_feasibility_problem(self):
        builder = ConicProblemBuilder()
        psd_id, _ = builder.add_psd_block(2)
        local, coeff = builder.psd_entry_local_index(psd_id, 0, 0)
        builder.add_equality_row({(psd_id, local): coeff}, rhs=2.0)
        result = solve_conic_problem(builder.build())
        assert result.is_success
        M = builder.psd_block_matrix(psd_id, result.x)
        assert M[0, 0] == pytest.approx(2.0, abs=1e-5)
        assert np.linalg.eigvalsh(M).min() >= -1e-8

    def test_admm_detects_infeasible(self):
        builder = ConicProblemBuilder()
        nn_id, _ = builder.add_nonneg_block(1)
        builder.add_equality_row({(nn_id, 0): 1.0}, rhs=-1.0)
        result = solve_conic_problem(builder.build())
        assert not result.is_success

    def test_projection_backend_feasibility(self):
        builder = ConicProblemBuilder()
        psd_id, _ = builder.add_psd_block(2)
        local, coeff = builder.psd_entry_local_index(psd_id, 0, 1)
        builder.add_equality_row({(psd_id, local): coeff}, rhs=0.5)
        result = AlternatingProjectionSolver().solve(builder.build())
        assert result.is_success
        M = builder.psd_block_matrix(psd_id, result.x)
        assert M[0, 1] == pytest.approx(0.5, abs=1e-5)

    def test_projection_backend_rejects_objective(self):
        _, _, problem = _simple_sdp_problem()
        with pytest.raises(ValueError):
            AlternatingProjectionSolver().solve(problem)

    def test_backend_registry(self):
        assert "admm" in available_backends()
        assert "projection" in available_backends()
        solver = make_solver("admm", max_iterations=10)
        assert isinstance(solver, ADMMConicSolver)
        with pytest.raises(KeyError):
            make_solver("nonexistent")

    def test_equilibrate_preserves_solutions(self):
        _, _, problem = _simple_sdp_problem()
        scaled, scaling = equilibrate(problem)
        assert scaled.num_constraints == problem.num_constraints
        # row scaling keeps the feasible set: a feasible x of the original
        # satisfies the scaled equalities too.
        result = solve_conic_problem(problem)
        assert scaled.equality_residual(result.x) <= 1e-4
