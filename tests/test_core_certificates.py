"""Tests for the core verification machinery on small, fast systems."""

import numpy as np
import pytest

from repro.core import (
    AdvectionOptions,
    AttractiveInvariant,
    EscapeCertificateSynthesizer,
    EscapeOptions,
    LevelSetMaximizer,
    LevelSetOptions,
    LevelSetAdvector,
    LyapunovSynthesisOptions,
    MultipleLyapunovSynthesizer,
    VerificationReport,
    VerificationStatus,
    check_sublevel_inclusion,
    run_bounded_advection,
    sample_inclusion_counterexample,
    STEP_ATTRACTIVE_INVARIANT,
)
from repro.core.levelset import MaximizedLevelSet
from repro.core.properties import PropertyOneResult, PropertyTwoResult
from repro.exceptions import CertificateError
from repro.hybrid import HybridSystem, Mode
from repro.polynomial import Polynomial, VariableVector, make_variables
from repro.sos import SemialgebraicSet


@pytest.fixture()
def xy():
    x, y = make_variables("x", "y")
    return VariableVector([x, y])


def poly_vars(xv):
    return tuple(Polynomial.from_variable(v, xv) for v in xv)


def linear_decay_system(xv):
    """One-mode linear system dx = -x, dy = -y (trivially inevitable)."""
    px, py = poly_vars(xv)
    mode = Mode("only", 1, xv, (-px, -py), SemialgebraicSet(xv),
                contains_equilibrium=True)
    return HybridSystem("decay", xv, (mode,), (), equilibrium=np.zeros(2))


class TestInclusion:
    def test_disc_inclusion(self, xy):
        px, py = poly_vars(xy)
        small = px * px + py * py - 1.0
        large = px * px + py * py - 4.0
        assert check_sublevel_inclusion(small, large).holds
        assert not check_sublevel_inclusion(large, small).holds
        counterexample = sample_inclusion_counterexample(
            large, small, [(-3, 3), (-3, 3)])
        assert counterexample is not None
        assert large.evaluate(counterexample) <= 1e-9

    def test_ellipse_in_halfplane(self, xy):
        px, py = poly_vars(xy)
        ellipse = px * px + 4 * py * py - 1.0
        halfplane = px - 2.0          # {x <= 2}
        assert check_sublevel_inclusion(ellipse, halfplane).holds


class TestLyapunovAndLevelSets:
    def test_linear_decay_certificate(self, xy):
        system = linear_decay_system(xy)
        options = LyapunovSynthesisOptions(
            certificate_degree=2, lock_tube_radius=0.0, validate_samples=500,
            positivity_margin=0.05,
        )
        synthesizer = MultipleLyapunovSynthesizer(system, options,
                                                  region_box=[(-2, 2), (-2, 2)])
        result = synthesizer.synthesize()
        assert result.feasible
        V = result.certificate_for("only")
        assert V(1.0, 1.0) > 0
        assert V.lie_derivative([-poly_vars(xy)[0], -poly_vars(xy)[1]])(0.5, 0.5) <= 1e-8

    def test_level_set_maximization(self, xy):
        px, py = poly_vars(xy)
        V = px * px + py * py
        domain = SemialgebraicSet(xy, inequalities=(1.0 - px, px + 1.0,
                                                    1.0 - py, py + 1.0))
        maximizer = LevelSetMaximizer(LevelSetOptions(bisection_tolerance=0.05,
                                                      initial_upper_bound=4.0))
        level_set = maximizer.maximize("only", V, domain, bounds=[(-1, 1), (-1, 1)])
        # the largest disc inside the unit box has radius 1 -> level 1
        assert 0.8 <= level_set.level <= 1.05
        assert level_set.contains([0.5, 0.5])
        assert not level_set.contains([1.5, 0.0])


class TestAttractiveInvariant:
    def test_union_membership(self, xy):
        px, py = poly_vars(xy)
        ls1 = MaximizedLevelSet("m1", px * px + py * py, 1.0, iterations=1)
        ls2 = MaximizedLevelSet("m2", (px - 2) * (px - 2) + py * py, 0.25, iterations=1)
        invariant = AttractiveInvariant({"m1": ls1, "m2": ls2}, xy)
        assert invariant.contains([0.0, 0.0])
        assert invariant.contains([2.0, 0.1])
        assert not invariant.contains([1.5, 1.5])
        points = np.array([[0.0, 0.0], [5.0, 5.0]])
        np.testing.assert_array_equal(invariant.contains_points(points), [True, False])
        assert invariant.membership_margin([0.0, 0.0]) < 0
        assert len(invariant.summary_rows()) == 2

    def test_invariance_along_trajectory(self, xy):
        px, py = poly_vars(xy)
        ls = MaximizedLevelSet("m", px * px + py * py, 1.0, iterations=1)
        invariant = AttractiveInvariant({"m": ls}, xy)
        good = np.array([[2.0, 0.0], [0.9, 0.0], [0.5, 0.0], [0.1, 0.0]])
        assert invariant.is_invariant_along(good)
        bad = np.array([[0.5, 0.0], [1.5, 0.0]])
        assert not invariant.is_invariant_along(bad)


class TestAdvection:
    def test_composition_advection_shrinks_toward_origin(self, xy):
        px, py = poly_vars(xy)
        field = (-px, -py)
        advector = LevelSetAdvector(AdvectionOptions(time_step=0.1))
        level = px * px + py * py - 4.0
        advected, epsilon = advector.advect(level, field)
        assert epsilon == 0.0
        # points on the original boundary map inside the advected set boundary:
        # the advected set {a(y - h f(y)) <= 0} should contain slightly smaller discs.
        assert advected.evaluate([1.0, 0.0]) < 0
        assert advected.evaluate([2.3, 0.0]) > 0

    def test_bounded_advection_absorbs(self, xy):
        px, py = poly_vars(xy)
        field = (-px, -py)
        V = px * px + py * py
        invariant = AttractiveInvariant(
            {"only": MaximizedLevelSet("only", V, 1.0, iterations=1)}, xy)
        outer = px * px + py * py - 9.0
        result = run_bounded_advection(
            "only", outer, field, invariant,
            options=AdvectionOptions(time_step=0.25, max_iterations=30,
                                     inclusion_check_every=2),
        )
        assert result.converged
        assert result.absorbing_mode == "only"
        assert 1 <= result.iterations_used <= 30

    def test_sos_projection_advection(self, xy):
        px, py = poly_vars(xy)
        field = (-px, -py)
        advector = LevelSetAdvector(AdvectionOptions(time_step=0.2,
                                                     operator="sos_projection"))
        level = px * px + py * py - 1.0
        domain = SemialgebraicSet(xy, inequalities=(4.0 - px * px - py * py,))
        advected, epsilon = advector.advect(level, field, domain=domain)
        assert epsilon >= -1e-5
        assert advected.evaluate([0.0, 0.0]) < 0


class TestEscape:
    def test_escape_certificate_for_drift(self, xy):
        px, py = poly_vars(xy)
        # constant drift in +x: every trajectory leaves the unit box
        field = (Polynomial.constant(xy, 1.0), Polynomial.zero(xy))
        region = SemialgebraicSet(xy, inequalities=(1 - px, px + 1, 1 - py, py + 1))
        synthesizer = EscapeCertificateSynthesizer(EscapeOptions(certificate_degree=2))
        certificate = synthesizer.synthesize("drift", field, region,
                                             bounds=[(-1, 1), (-1, 1)])
        assert certificate.validation_passed
        assert certificate.escape_time_bound([(-1, 1), (-1, 1)]) > 0

    def test_escape_infeasible_for_stable_focus(self, xy):
        px, py = poly_vars(xy)
        # asymptotically stable system containing the equilibrium: no escape certificate
        field = (-px, -py)
        region = SemialgebraicSet(xy, inequalities=(1 - px * px - py * py,))
        synthesizer = EscapeCertificateSynthesizer(
            EscapeOptions(certificate_degree=2, decrease_rate=0.1))
        with pytest.raises(CertificateError):
            synthesizer.synthesize("stable", field, region, bounds=[(-1, 1), (-1, 1)])


class TestReport:
    def test_report_rendering_and_timing(self, xy):
        report = VerificationReport(
            system_name="toy",
            property_one=PropertyOneResult(status=VerificationStatus.VERIFIED,
                                           lyapunov=None, invariant=None),
            property_two=PropertyTwoResult(status=VerificationStatus.INCONCLUSIVE),
        )
        report.add_timing(STEP_ATTRACTIVE_INVARIANT, 1.5, detail="degree 2")
        assert report.inevitability_status is VerificationStatus.INCONCLUSIVE
        assert report.timing_for(STEP_ATTRACTIVE_INVARIANT) == pytest.approx(1.5)
        text = report.render_text()
        assert "Attractive Invariant" in text and "toy" in text

    def test_status_combination(self):
        V, I, F = (VerificationStatus.VERIFIED, VerificationStatus.INCONCLUSIVE,
                   VerificationStatus.FAILED)
        assert V.combine(V) is V
        assert V.combine(I) is I
        assert I.combine(F) is F
        assert F.combine(V) is F
