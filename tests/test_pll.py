"""Unit tests for the CP PLL models (parameters, components, hybrid models, behaviour)."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.pll import (
    BehavioralPLLSimulator,
    ChargePump,
    FrequencyDivider,
    LoopFilter,
    MODE_IDLE,
    MODE_PUMP_DOWN,
    MODE_PUMP_UP,
    PhaseFrequencyDetector,
    PLLParameters,
    RegionOfInterest,
    VoltageControlledOscillator,
    build_fourth_order_model,
    build_third_order_model,
    rate_constant_intervals,
    verification_scaling,
)


class TestParameters:
    def test_paper_tables(self):
        third = PLLParameters.third_order_paper()
        fourth = PLLParameters.fourth_order_paper()
        assert third.order == 3 and fourth.order == 4
        assert third.c1.contains(2e-12)
        assert fourth.r2.contains(8e3)
        assert len(third.table_rows()) == 7
        assert len(fourth.table_rows()) == 9

    def test_fourth_order_requires_extra_components(self):
        third = PLLParameters.third_order_paper()
        with pytest.raises(ModelError):
            PLLParameters(order=4, c1=third.c1, c2=third.c2, r=third.r,
                          f_ref=third.f_ref, k_vco=third.k_vco, i_p=third.i_p,
                          divider=third.divider)

    def test_averaged_model_stability(self):
        assert PLLParameters.third_order_paper().is_averaged_model_stable()
        assert PLLParameters.fourth_order_paper().is_averaged_model_stable()

    def test_lock_voltage(self):
        params = PLLParameters.third_order_paper()
        nominal = params.nominal()
        expected = nominal["divider"] * nominal["f_ref"] / nominal["k_vco"]
        assert params.lock_voltage() == pytest.approx(expected)

    def test_vertices_count(self):
        params = PLLParameters.third_order_paper()
        vertices = list(params.vertices())
        # f_ref and k_vco are point intervals -> 2^5 corners
        assert len(vertices) == 2 ** 5


class TestComponents:
    def test_pfd_state_machine(self):
        pfd = PhaseFrequencyDetector()
        assert pfd.mode_name == "mode1"
        pfd.on_reference_edge()
        assert pfd.output == 1 and pfd.mode_name == "mode2"
        pfd.on_divider_edge()          # both high -> reset
        assert pfd.output == 0 and pfd.mode_name == "mode1"
        pfd.on_divider_edge()
        assert pfd.output == -1 and pfd.mode_name == "mode3"
        pfd.on_reference_edge()
        assert pfd.output == 0

    def test_charge_pump(self):
        cp = ChargePump(5e-4)
        assert cp.current(1) == pytest.approx(5e-4)
        assert cp.current(-1) == pytest.approx(-5e-4)
        with pytest.raises(ModelError):
            cp.current(2)
        with pytest.raises(ModelError):
            ChargePump(-1.0)

    def test_loop_filter_third_order(self):
        lf = LoopFilter(c1=2e-12, c2=6e-12, r=8e3)
        assert lf.order == 2
        derivative = lf.derivatives([0.0, 1.0], 0.0)
        assert derivative[0] > 0        # C1 charges toward v2
        assert derivative[1] < 0        # C2 discharges through R
        conservation = derivative[0] * 2e-12 + derivative[1] * 6e-12
        assert conservation == pytest.approx(0.0, abs=1e-20)

    def test_loop_filter_fourth_order(self):
        lf = LoopFilter(c1=30e-12, c2=3e-12, r=50e3, c3=2e-12, r2=8e3)
        assert lf.order == 3
        assert lf.control_voltage([1.0, 2.0, 3.0]) == pytest.approx(3.0)
        with pytest.raises(ModelError):
            lf.derivatives([0.0, 0.0], 0.0)

    def test_vco_and_divider(self):
        vco = VoltageControlledOscillator(k_vco=1e9, f_free=1e6)
        assert vco.frequency(1.0) == pytest.approx(1e9 + 1e6)
        assert vco.control_for_frequency(vco.frequency(0.3)) == pytest.approx(0.3)
        divider = FrequencyDivider(200)
        assert divider.divided_frequency(5.4e9) == pytest.approx(27e6)


class TestVerificationModels:
    def test_third_order_structure(self):
        model = build_third_order_model()
        assert model.state_names == ("v1", "v2", "e")
        assert set(model.system.mode_names) == {MODE_IDLE, MODE_PUMP_UP, MODE_PUMP_DOWN}
        assert all(t.is_identity_reset for t in model.system.transitions)
        np.testing.assert_allclose(model.equilibrium(), np.zeros(3))

    def test_fourth_order_structure(self):
        model = build_fourth_order_model()
        assert model.state_names == ("v1", "v2", "v3", "e")
        assert len(model.system.modes) == 3
        assert "a3" in model.rate_constants

    def test_pump_sign_convention(self):
        model = build_third_order_model(uncertainty="none")
        fields = model.nominal_fields()
        origin = np.zeros(3)
        up = [p.evaluate(origin) for p in fields[MODE_PUMP_UP]]
        down = [p.evaluate(origin) for p in fields[MODE_PUMP_DOWN]]
        assert up[1] > 0 > down[1]
        idle = [p.evaluate(origin) for p in fields[MODE_IDLE]]
        np.testing.assert_allclose(idle, np.zeros(3), atol=1e-12)

    def test_uncertainty_modes(self):
        none = build_third_order_model(uncertainty="none")
        pump = build_third_order_model(uncertainty="pump")
        full = build_third_order_model(uncertainty="full")
        assert len(none.system.parameter_variables) == 0
        assert len(pump.system.parameter_variables) == 1
        assert len(full.system.parameter_variables) >= 4
        with pytest.raises(ModelError):
            build_third_order_model(uncertainty="bogus")

    def test_rate_constants_match_intervals(self):
        params = PLLParameters.third_order_paper()
        intervals = rate_constant_intervals(params)
        model = build_third_order_model(params)
        for name, value in model.rate_constants.items():
            assert intervals[name].contains(value)
        assert intervals["pump"].lower > 0

    def test_region_and_outer_set(self):
        region = RegionOfInterest(voltage_bound=4.0, phase_bound=1.0)
        model = build_third_order_model(region=region)
        bounds = model.state_bounds()
        assert bounds[0] == (-4.0, 4.0) and bounds[2] == (-1.0, 1.0)
        outer = model.outer_set_polynomial()
        assert outer.evaluate([0.0, 0.0, 0.0]) < 0        # origin inside
        assert outer.evaluate([4.0, 0.0, 0.0]) >= -1e-9   # boundary
        assert outer.evaluate([5.0, 0.0, 0.0]) > 0        # outside

    def test_mode_domain_includes_box(self):
        model = build_third_order_model()
        domain = model.mode_domain(MODE_PUMP_UP)
        assert domain.contains([0.0, 0.0, 0.5])
        assert not domain.contains([9.0, 0.0, 0.5])
        assert not domain.contains([0.0, 0.0, -0.5])

    def test_scaling_roundtrip(self):
        params = PLLParameters.third_order_paper()
        scaling = verification_scaling(params)
        physical = np.array([0.3, 0.1, 0.2])
        normalized = scaling.to_normalized(physical)
        np.testing.assert_allclose(scaling.to_physical(normalized), physical)
        assert scaling.time_to_normalized(1.0 / params.f_ref.center) == pytest.approx(1.0)


class TestBehavioralSimulation:
    def test_fourth_order_locks(self):
        params = PLLParameters.fourth_order_paper()
        simulator = BehavioralPLLSimulator(params)
        trace = simulator.simulate_from_difference_state(
            [0.5, 0.5, 0.5, 0.3], duration_cycles=250, record_stride=20,
            max_step_cycles=0.2)
        assert abs(trace.final_phase_error()) < 0.05
        assert abs(trace.control_voltage[-1] - simulator.lock_voltage) < 0.5

    def test_trace_projection_shape(self):
        params = PLLParameters.fourth_order_paper()
        simulator = BehavioralPLLSimulator(params)
        trace = simulator.simulate_from_difference_state(
            [0.0, 0.0, 0.0, 0.1], duration_cycles=30, record_stride=10,
            max_step_cycles=0.2)
        projected = trace.to_difference_coordinates()
        assert projected.shape[1] == 4
        assert trace.pfd_state.shape == trace.times.shape

    def test_wrong_initial_dimension_rejected(self):
        simulator = BehavioralPLLSimulator(PLLParameters.third_order_paper())
        with pytest.raises(ModelError):
            simulator.simulate([0.0], duration_cycles=1.0)
