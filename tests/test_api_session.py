"""Session isolation tests for the ``repro.api`` public facade.

The acceptance property of the context-object API: two sessions in one
process — distinct caches, distinct Gram-cone relaxations — verify Van der
Pol *concurrently* through a thread pool and produce counters, cache stats
and reports identical to their serial runs, with zero cross-session counter
or cache leakage.  Plus: thread-safe counter increments, deprecation of the
module-global shims, and the ``--backend`` wiring.
"""

import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import (
    SolveContext,
    VerificationSession,
    available_backends,
    verify,
)
from repro.engine import EngineOptions, VerificationEngine
from repro.polynomial import Polynomial, VariableVector, make_variables
from repro.sdp import default_context, reset_solve_counters, set_solve_cache
from repro.__main__ import build_parser


def _tiny_solve(session, offset=1.0):
    """Solve a one-constraint SOS feasibility program under ``session``."""
    variables = VariableVector(make_variables("x", "y"))
    x = Polynomial.from_variable(variables[0], variables)
    y = Polynomial.from_variable(variables[1], variables)
    program = session.program("tiny")
    program.add_sos_constraint(x * x + 2.0 * y * y + offset, name="c")
    return program.solve()


def _canonical(report):
    """Report payload with wall-clock (never bit-stable) zeroed out."""
    payload = report.to_json_dict()
    for entry in payload["timings"]:
        entry["seconds"] = 0.0
    payload["total_seconds"] = 0.0
    payload["options"].pop("session", None)
    return payload


class TestSessionIsolation:
    def test_counters_do_not_leak_between_sessions(self, tmp_path):
        before = default_context().solve_counters()
        a = VerificationSession(cache_dir=tmp_path / "a", name="A")
        b = VerificationSession(cache_dir=tmp_path / "b", name="B")
        assert _tiny_solve(a).is_success
        assert a.solve_counters()["solved"] == 1
        assert b.solve_counters()["solved"] == 0
        assert a.compile_counters()["full"] == 1
        assert b.compile_counters()["full"] == 0
        # The process-default context never observed the session's work.
        assert default_context().solve_counters() == before

    def test_sessions_do_not_share_cache_entries(self, tmp_path):
        a = VerificationSession(cache_dir=tmp_path / "a", name="A")
        b = VerificationSession(cache_dir=tmp_path / "b", name="B")
        _tiny_solve(a)
        # The same program under B's distinct cache must really solve.
        _tiny_solve(b)
        assert b.solve_counters() == {"solved": 1, "cache_hit": 0,
                                      "solved:psd": 1}
        # ... while a replay under A's own cache is a pure hit.
        _tiny_solve(a)
        assert a.solve_counters()["cache_hit"] == 1

    def test_counter_updates_are_thread_safe(self):
        context = SolveContext(name="hammer")
        threads, per_thread = 8, 2000
        barrier = threading.Barrier(threads)

        def hammer():
            barrier.wait()
            for _ in range(per_thread):
                context.record_solve_event("solved", layout_kind="psd")
                context.record_compile_event("full")

        with ThreadPoolExecutor(max_workers=threads) as pool:
            list(pool.map(lambda _: hammer(), range(threads)))
        assert context.solve_counters()["solved"] == threads * per_thread
        assert context.solve_counters()["solved:psd"] == threads * per_thread
        assert context.compile_counters()["full"] == threads * per_thread

    def test_per_call_context_override_governs_compile_too(self, tmp_path):
        """solve(context=...) on a context-less program must count the compile
        it triggers on the overriding context, not the process default."""
        from repro.sos import SOSProgram

        context = SolveContext(name="override")
        variables = VariableVector(make_variables("x", "y"))
        x = Polynomial.from_variable(variables[0], variables)
        y = Polynomial.from_variable(variables[1], variables)
        program = SOSProgram("no_context")       # deliberately context-less
        program.add_sos_constraint(x * x + 3.0 * y * y + 1.0, name="c")
        before = default_context().compile_counters()
        assert program.solve(context=context).is_success
        assert context.compile_counters()["full"] == 1
        assert context.solve_counters()["solved"] == 1
        assert default_context().compile_counters() == before

    def test_verify_honours_explicit_options(self, tmp_path):
        from repro.api import build_problem

        options = build_problem("vanderpol").options
        options.advection.time_step = 0.123      # marker echoed in the summary
        session = VerificationSession(cache_dir=tmp_path / "opts")
        report = verify("vanderpol", session=session, options=options)
        assert report.options_summary["advection_step"] == 0.123
        assert report.property_one.status.value == "verified"
        # The caller's object stays reusable: the pipeline's scenario-specific
        # defaults (domain box) must not leak back into it.
        assert options.lyapunov.domain_boxes is None

    def test_session_rng_is_one_continuing_stream(self):
        session = VerificationSession(seed=7)
        first = session.rng().uniform(size=4)
        second = session.rng().uniform(size=4)
        assert not (first == second).all()       # successive draws are fresh
        replay = VerificationSession(seed=7)
        assert (replay.rng().uniform(size=4) == first).all()  # deterministic

    def test_certificate_cache_concurrent_eviction_safe(self, tmp_path):
        """A shared cache with a tiny memory front must survive concurrent
        get/put churn (eviction used to race and KeyError)."""
        import numpy as np

        from repro.engine import CertificateCache
        from repro.sdp import SolverResult, SolverStatus

        cache = CertificateCache(tmp_path / "shared", memory_entries=4)
        result = SolverResult(status=SolverStatus.OPTIMAL,
                              x=np.zeros(3), objective=0.0, iterations=1)
        keys = [f"{i:064x}" for i in range(64)]

        def churn(offset):
            for i in range(200):
                key = keys[(offset + i) % len(keys)]
                cache.put(key, result)
                assert cache.get(key) is not None

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(churn, range(8)))
        assert cache.stats.writes == 8 * 200
        assert cache.stats.hits == 8 * 200

    def test_deprecated_global_shims_warn_but_work(self):
        with pytest.warns(DeprecationWarning):
            previous = set_solve_cache(None)
        with pytest.warns(DeprecationWarning):
            set_solve_cache(previous)
        with pytest.warns(DeprecationWarning):
            reset_solve_counters()
        assert default_context().solve_counters()["solved"] == 0


class TestSessionErgonomics:
    def test_cache_dir_tilde_expanded(self, tmp_path, monkeypatch):
        monkeypatch.setenv("HOME", str(tmp_path))
        session = VerificationSession(cache_dir="~/my-cache")
        assert session.cache.root == tmp_path / "my-cache"

    def test_verifier_honours_session_relaxation(self):
        from repro.api import build_problem

        problem = build_problem("vanderpol")
        session = VerificationSession(relaxation="sdsos")
        verifier = session.verifier(problem)
        assert verifier.options.levelset.relaxation == "sdsos"
        assert verifier.options.lyapunov.relaxation == "sdsos"
        # The caller's own options object stays untouched.
        assert problem.options.levelset.relaxation == "sos"
        # An explicit options object wins verbatim.
        explicit = session.verifier(problem, options=problem.options)
        assert explicit.options is problem.options


class TestBackendSelection:
    def test_unknown_solver_setting_still_raises(self):
        from repro.sdp import make_solver

        with pytest.raises(TypeError, match="max_iters"):
            make_solver("admm", max_iters=5)   # typo: real knob is max_iterations

    def test_cross_backend_settings_are_filtered_not_fatal(self):
        from repro.sdp import make_solver

        solver = make_solver("projection", eps_rel=1e-4, max_iterations=50)
        assert solver.settings.max_iterations == 50   # shared knob kept

    def test_cache_key_ignores_settings_the_backend_drops(self, tmp_path):
        first = VerificationSession(backend="projection",
                                    cache_dir=tmp_path / "norm")
        # eps_rel is an ADMM-only knob: projection drops it, so it must not
        # differentiate the cache key.
        _tiny_solve(first)  # populate via default settings path
        second = VerificationSession(backend="projection", cache=first.cache)
        program = second.program("tiny2")
        variables = VariableVector(make_variables("x", "y"))
        x = Polynomial.from_variable(variables[0], variables)
        y = Polynomial.from_variable(variables[1], variables)
        program.add_sos_constraint(x * x + 2.0 * y * y + 1.0, name="c")
        program.solve(eps_rel=1e-4)
        assert second.solve_counters() == {"solved": 0, "cache_hit": 1,
                                           "cache_hit:psd": 1}

    def test_cli_exposes_backend_flag(self):
        args = build_parser().parse_args(
            ["verify", "vanderpol", "--backend", "projection"])
        assert args.backend == "projection"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["verify", "vanderpol", "--backend", "nonsense"])

    def test_registered_backends_reachable(self):
        assert {"admm", "projection"} <= set(available_backends())

    def test_session_backend_drives_solves(self, tmp_path):
        session = VerificationSession(backend="projection",
                                      cache_dir=tmp_path / "proj")
        solution = _tiny_solve(session)
        assert solution.is_success
        assert session.solve_counters()["solved"] == 1

    def test_engine_records_backend_in_json_report(self, tmp_path):
        engine = VerificationEngine(EngineOptions(
            jobs=1, cache_dir=str(tmp_path / "cache"), backend="admm"))
        report = engine.run(["vanderpol"])
        payload = report.to_json_dict()
        assert payload["engine"]["backend"] == "admm"
        assert report.outcome("vanderpol").matches_expected
        # An explicit "admm" keys the cache identically to the default, so
        # a default-backend re-run replays it without solving.
        warm = VerificationEngine(EngineOptions(
            jobs=1, cache_dir=str(tmp_path / "cache"))).run(["vanderpol"])
        assert warm.counters["solved"] == 0
        assert warm.to_json_dict()["engine"]["backend"] == "admm"


class TestConcurrentSessionsVanDerPol:
    """Two sessions, distinct caches and relaxations, concurrent == serial."""

    RELAXATIONS = ("sos", "sdsos")

    def _run(self, tmp_path, tag, relaxation, concurrent_pool=None):
        session = VerificationSession(
            cache_dir=tmp_path / f"cache-{tag}-{relaxation}",
            relaxation=relaxation, name=f"{tag}-{relaxation}")
        report = verify("vanderpol", session=session)
        return {
            "counters": session.solve_counters(),
            "compile": session.compile_counters(),
            "cache": session.cache_stats(),
            "report": _canonical(report),
        }

    @pytest.fixture(scope="class")
    def serial_runs(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("serial")
        return {relaxation: self._run(root, "serial", relaxation)
                for relaxation in self.RELAXATIONS}

    def test_serial_baselines_verified(self, serial_runs):
        for relaxation, run in serial_runs.items():
            assert run["report"]["property_one"]["status"] == "verified", relaxation
            assert run["counters"]["solved"] > 0
            assert run["counters"]["cache_hit"] == 0
        # The two relaxations genuinely solved in different cones.
        assert serial_runs["sos"]["counters"]["solved:psd"] > 0
        assert "solved:psd" not in serial_runs["sdsos"]["counters"]
        assert serial_runs["sdsos"]["counters"]["solved:sdd"] > 0

    def test_concurrent_sessions_match_serial_exactly(self, serial_runs,
                                                      tmp_path):
        with ThreadPoolExecutor(max_workers=len(self.RELAXATIONS)) as pool:
            futures = {
                relaxation: pool.submit(self._run, tmp_path, "conc", relaxation)
                for relaxation in self.RELAXATIONS
            }
            concurrent = {relaxation: future.result()
                          for relaxation, future in futures.items()}
        for relaxation in self.RELAXATIONS:
            serial, conc = serial_runs[relaxation], concurrent[relaxation]
            # Zero leakage: solve/compile counters and cache hit/miss/write
            # stats match the serial run exactly.
            assert conc["counters"] == serial["counters"], relaxation
            assert conc["compile"] == serial["compile"], relaxation
            assert conc["cache"] == serial["cache"], relaxation
            # Bit-identical reports (modulo wall-clock).
            assert json.dumps(conc["report"], sort_keys=True) == \
                json.dumps(serial["report"], sort_keys=True), relaxation

    def test_default_context_untouched_by_sessions(self, serial_runs):
        # Everything above ran in sessions; the process-default counters must
        # not have recorded any of it.  (Other test modules may have used the
        # deprecated global API, so compare against a reset snapshot.)
        counters = default_context().solve_counters()
        total_session_solves = sum(run["counters"]["solved"]
                                   for run in serial_runs.values())
        assert total_session_solves > 0
        assert counters.get("solved", 0) + counters.get("cache_hit", 0) \
            < total_session_solves
