"""Unit tests for the SOS programming layer."""

import pytest

from repro.polynomial import Polynomial, VariableVector, make_variables
from repro.sos import (
    SemialgebraicSet,
    SOSProgram,
    SOSProgramError,
    add_positivity_on_set,
    ball_constraint,
    interval_constraints,
    sample_box,
    validate_decrease_along_field,
    validate_nonnegativity,
)


@pytest.fixture()
def xy():
    x, y = make_variables("x", "y")
    return VariableVector([x, y])


def polys(xv):
    return tuple(Polynomial.from_variable(v, xv) for v in xv)


class TestSOSProgram:
    def test_fixed_polynomial_is_sos(self, xy):
        px, py = polys(xy)
        program = SOSProgram()
        program.add_sos_constraint(px * px - 2 * px + 1 + py * py, name="p")
        solution = program.solve()
        assert solution.is_success
        assert solution.certificates["p"].is_numerically_sos()

    def test_negative_polynomial_not_sos(self, xy):
        px, _ = polys(xy)
        program = SOSProgram()
        program.add_sos_constraint(-px * px - 1, name="neg")
        solution = program.solve()
        assert not solution.is_success

    def test_fixed_odd_degree_rejected(self, xy):
        px, _ = polys(xy)
        program = SOSProgram()
        with pytest.raises(SOSProgramError):
            program.add_sos_constraint(px ** 3 + 1)

    def test_lower_bound_optimization(self, xy):
        """maximize gamma s.t. (x^2 - 2x + 3) - gamma is SOS  -> gamma* = 2."""
        px, py = polys(xy)
        program = SOSProgram()
        gamma = program.new_variable("gamma")
        target = px * px - 2 * px + 3 + py * py
        program.add_sos_constraint(target - gamma, name="bound")
        program.maximize(gamma)
        solution = program.solve()
        assert solution.is_success
        assert solution.value(gamma) == pytest.approx(2.0, abs=5e-3)

    def test_equality_constraint(self, xy):
        px, py = polys(xy)
        program = SOSProgram()
        p = program.new_polynomial_variable(xy, 2, name="p")
        program.add_equality_constraint(p - (px * px + py * py), name="match")
        solution = program.solve()
        assert solution.is_success
        assert solution.polynomial(p).almost_equal(px * px + py * py, tolerance=1e-5)

    def test_scalar_constraints(self):
        program = SOSProgram()
        t = program.new_variable("t")
        program.add_scalar_constraint(t - 1.0, sense=">=")
        program.add_scalar_constraint(5.0 - t, sense=">=")
        program.minimize(t)
        solution = program.solve()
        assert solution.is_success
        assert solution.value(t) == pytest.approx(1.0, abs=1e-3)

    def test_describe_counts(self, xy):
        program = SOSProgram("demo")
        sigma = program.new_sos_polynomial(xy, 2)
        assert program.num_sos_constraints == 1
        assert sigma.degree == 2
        assert "demo" in program.describe()


class TestSProcedure:
    def test_positivity_on_interval(self, xy):
        """x*(4 - x) is nonnegative on [0, 4] but not globally."""
        px, py = polys(xy)
        target = px * (4 - px)
        domain = SemialgebraicSet(xy, inequalities=(px, 4 - px))
        program = SOSProgram()
        add_positivity_on_set(program, target, domain, multiplier_degree=2)
        assert program.solve().is_success
        # without the domain it must fail
        program2 = SOSProgram()
        program2.add_sos_constraint(target)
        assert not program2.solve().is_success

    def test_lyapunov_for_stable_linear_system(self, xy):
        px, py = polys(xy)
        field = [-px + py, -px - py]
        domain = SemialgebraicSet(xy, inequalities=(ball_constraint(xy, 2.0),))
        program = SOSProgram()
        V = program.new_polynomial_variable(xy, 2, name="V", min_degree=2)
        add_positivity_on_set(program, V, domain, strictness=0.01)
        add_positivity_on_set(program, -V.lie_derivative(field), domain)
        solution = program.solve()
        assert solution.is_success
        V_num = solution.polynomial(V)
        assert V_num(1.0, 1.0) > 0
        assert V_num.lie_derivative(field)(0.5, -0.5) <= 1e-6

    def test_interval_and_ball_helpers(self, xy):
        constraints = interval_constraints(xy, [(-1.0, 1.0), (-2.0, 2.0)])
        assert len(constraints) == 2
        assert constraints[0].evaluate([0.0, 0.0]) > 0
        assert constraints[0].evaluate([2.0, 0.0]) < 0
        ball = ball_constraint(xy, 1.5, center=[1.0, 0.0])
        assert ball.evaluate([1.0, 0.0]) == pytest.approx(2.25)

    def test_semialgebraic_membership(self, xy):
        px, py = polys(xy)
        domain = SemialgebraicSet(xy, inequalities=(1 - px * px - py * py,),
                                  equalities=(px - py,))
        assert domain.contains([0.5, 0.5])
        assert not domain.contains([0.5, 0.0])
        assert not domain.contains([2.0, 2.0])

    def test_intersection_requires_same_variables(self, xy):
        domain = SemialgebraicSet(xy)
        other_vars = VariableVector(make_variables("a", "b"))
        with pytest.raises(ValueError):
            domain.intersect(SemialgebraicSet(other_vars))


class TestValidation:
    def test_validate_nonnegativity_pass_and_fail(self, xy):
        px, py = polys(xy)
        bounds = [(-1.0, 1.0), (-1.0, 1.0)]
        good = validate_nonnegativity(px * px + py * py, None, bounds, num_samples=500)
        assert good.passed
        bad = validate_nonnegativity(px, None, bounds, num_samples=500)
        assert not bad.passed
        assert bad.argmin is not None

    def test_validate_decrease(self, xy):
        px, py = polys(xy)
        V = px * px + py * py
        report = validate_decrease_along_field(V, [-px, -py], None,
                                                [(-1, 1), (-1, 1)], num_samples=400)
        assert report.passed

    def test_sample_box_shape(self):
        samples = sample_box([(-1, 1), (0, 2), (3, 4)], 100, seed=3)
        assert samples.shape == (100, 3)
        assert samples[:, 2].min() >= 3.0
