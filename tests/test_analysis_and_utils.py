"""Tests for the analysis helpers (projection, falsification, timing) and utils."""

import logging

import numpy as np
import pytest

from repro.analysis import (
    StageTimer,
    project_sublevel_set,
    project_union,
    random_initial_states,
    simulate_relay_abstraction,
)
from repro.polynomial import Polynomial, VariableVector, make_variables
from repro.pll import build_third_order_model
from repro.utils import (
    Interval,
    box_center,
    disable_console_logging,
    enable_console_logging,
    get_logger,
    interval_vertices,
)


@pytest.fixture()
def xy():
    x, y = make_variables("x", "y")
    return VariableVector([x, y])


class TestProjection:
    def test_slice_projection_of_disc(self, xy):
        px = Polynomial.from_variable(xy[0], xy)
        py = Polynomial.from_variable(xy[1], xy)
        disc = px * px + py * py - 1.0
        grid = project_sublevel_set(disc, xy, ("x0", "x1") if False else ("x", "y"),
                                    [(-2, 2), (-2, 2)], resolution=41)
        assert 0.1 < grid.occupancy < 0.3        # pi/16 ~ 0.196
        x_min, x_max, y_min, y_max = grid.extent()
        assert x_min == pytest.approx(-1.0, abs=0.15)
        assert x_max == pytest.approx(1.0, abs=0.15)
        assert grid.boundary_points().shape[1] == 2
        assert len(grid.row_summary()) > 0

    def test_shadow_projection_larger_than_slice(self):
        x, y, z = make_variables("x", "y", "z")
        xv = VariableVector([x, y, z])
        px = Polynomial.from_variable(x, xv)
        py = Polynomial.from_variable(y, xv)
        pz = Polynomial.from_variable(z, xv)
        # offset sphere: centred at z = 1, so the z=0 slice is smaller than the shadow
        sphere = px * px + py * py + (pz - 1.0) ** 2 - 1.5
        bounds = [(-2, 2), (-2, 2), (-2, 2)]
        slice_grid = project_sublevel_set(sphere, xv, ("x", "y"), bounds, resolution=31)
        shadow_grid = project_sublevel_set(sphere, xv, ("x", "y"), bounds,
                                           resolution=31, kind="shadow",
                                           hidden_samples=25)
        assert shadow_grid.occupancy >= slice_grid.occupancy

    def test_union_projection(self, xy):
        px = Polynomial.from_variable(xy[0], xy)
        py = Polynomial.from_variable(xy[1], xy)
        left = (px + 1.0) ** 2 + py * py - 0.25
        right = (px - 1.0) ** 2 + py * py - 0.25
        union = project_union([left, right], xy, ("x", "y"), [(-2, 2), (-2, 2)],
                              resolution=41)
        single = project_sublevel_set(left, xy, ("x", "y"), [(-2, 2), (-2, 2)],
                                      resolution=41)
        assert union.occupancy > single.occupancy

    def test_unknown_axis_rejected(self, xy):
        px = Polynomial.from_variable(xy[0], xy)
        with pytest.raises(ValueError):
            project_sublevel_set(px, xy, ("x", "nope"), [(-1, 1), (-1, 1)])


class TestFalsification:
    def test_relay_abstraction_converges_from_moderate_state(self):
        model = build_third_order_model(uncertainty="none")
        trajectory = simulate_relay_abstraction(model, [1.0, -1.0, 0.5],
                                                duration=40.0, dt=2e-3)
        assert trajectory.shape[1] == 3
        final_voltages = trajectory[-1][:2]
        assert np.linalg.norm(final_voltages) < 0.5

    def test_random_initial_states_inside_outer_set(self):
        model = build_third_order_model(uncertainty="none")
        states = random_initial_states(model, 10, scale=0.7, seed=1)
        outer = model.outer_set_polynomial(margin=0.7)
        assert states.shape == (10, 3)
        assert np.all(outer.evaluate_many(states) <= 1e-9)


class TestTimerAndLogging:
    def test_stage_timer_accumulates(self):
        timer = StageTimer()
        with timer.measure("step"):
            sum(range(1000))
        with timer.measure("step"):
            sum(range(1000))
        assert timer.total("step") > 0
        assert timer.grand_total() == pytest.approx(timer.total("step"))
        assert dict(timer.rows())["step"] == pytest.approx(timer.total("step"))

    def test_logging_helpers(self):
        logger = get_logger("unit")
        assert logger.name == "repro.unit"
        enable_console_logging(logging.WARNING)
        root = get_logger()
        assert any(isinstance(h, logging.StreamHandler) for h in root.handlers)
        disable_console_logging()
        assert not any(isinstance(h, logging.StreamHandler) for h in root.handlers)


class TestIntervalUtilities:
    def test_vertices_and_center(self):
        intervals = [Interval(0.0, 1.0), Interval(2.0, 2.0), Interval(-1.0, 1.0)]
        vertices = list(interval_vertices(intervals))
        assert len(vertices) == 4          # degenerate middle interval contributes one value
        assert box_center(intervals) == (0.5, 2.0, 0.0)

    def test_reciprocal_and_division(self):
        interval = Interval(2.0, 4.0)
        inv = interval.reciprocal()
        assert inv.lower == pytest.approx(0.25)
        assert inv.upper == pytest.approx(0.5)
        with pytest.raises(ZeroDivisionError):
            Interval(-1.0, 1.0).reciprocal()

    def test_containment_and_clamp(self):
        interval = Interval(-1.0, 3.0)
        assert interval.contains(0.0)
        assert interval.contains_interval(Interval(0.0, 1.0))
        assert not interval.contains_interval(Interval(0.0, 5.0))
        assert interval.clamp(10.0) == 3.0
        assert Interval.coerce((1, 2)).width == pytest.approx(1.0)
        with pytest.raises(ValueError):
            Interval(2.0, 1.0)
