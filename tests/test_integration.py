"""Integration tests: the full verification pipeline on a fast toy hybrid system,
and consistency between the SOS machinery and the PLL models."""

import pytest

from repro.core import (
    AdvectionOptions,
    EscapeOptions,
    InevitabilityOptions,
    InevitabilityVerifier,
    LevelSetOptions,
    LyapunovSynthesisOptions,
    VerificationStatus,
)
from repro.pll import (
    MODE_PUMP_DOWN,
    MODE_PUMP_UP,
    PLLParameters,
    RegionOfInterest,
    build_third_order_model,
)


def fast_options(**lyapunov_overrides):
    """Small budgets so the integration test stays quick."""
    lyap = dict(
        certificate_degree=2,
        multiplier_degree=2,
        positivity_margin=0.05,
        lock_tube_radius=0.6,
        validate_samples=400,
        validation_tolerance=5e-2,
        solver_settings=dict(max_iterations=4000, eps_rel=1e-4, eps_abs=1e-5),
    )
    lyap.update(lyapunov_overrides)
    return InevitabilityOptions(
        lyapunov=LyapunovSynthesisOptions(**lyap),
        levelset=LevelSetOptions(bisection_tolerance=0.1,
                                 max_bisection_iterations=8,
                                 initial_upper_bound=2.0,
                                 solver_settings=dict(max_iterations=3000)),
        advection=AdvectionOptions(time_step=0.1, max_iterations=4,
                                   inclusion_check_every=2,
                                   solver_settings=dict(max_iterations=3000)),
        escape=EscapeOptions(certificate_degree=2, validate_samples=300,
                             solver_settings=dict(max_iterations=3000)),
        attempt_escape_on_inconclusive=False,
    )


class TestPipelineOnSmallPLL:
    """Run the full pipeline on a small region of the third-order PLL.

    The purpose is to exercise every stage end-to-end with tight budgets, not
    to reproduce the paper's headline result (the benchmarks do that with
    larger budgets); hence only structural assertions are made here.
    """

    @pytest.fixture(scope="class")
    def report(self):
        model = build_third_order_model(
            region=RegionOfInterest(voltage_bound=3.0, phase_bound=1.5),
            uncertainty="none",
        )
        verifier = InevitabilityVerifier(model, fast_options())
        return verifier.verify()

    def test_report_structure(self, report):
        assert report.system_name == "cp_pll_third_order"
        assert report.property_one.status in tuple(VerificationStatus)
        text = report.render_text()
        assert "Property 1" in text and "Timing breakdown" in text
        assert report.total_time > 0

    def test_timing_rows_cover_executed_steps(self, report):
        rows = dict((step, seconds) for step, seconds, _, _ in report.table2_rows())
        assert "Attractive Invariant" in rows
        assert rows["Attractive Invariant"] > 0

    def test_property_one_artifacts(self, report):
        assert report.property_one.lyapunov is not None
        certificates = report.property_one.lyapunov.certificates
        if certificates:
            assert set(certificates) == {"mode1", "mode2", "mode3"}
            for cert in certificates.values():
                assert cert.certificate.degree <= 2

    def test_property_two_runs_for_pumping_modes(self, report):
        if report.property_one.invariant is None:
            pytest.skip("property 1 inconclusive under the tight test budget")
        per_mode = report.property_two.per_mode
        assert set(per_mode) <= {MODE_PUMP_UP, MODE_PUMP_DOWN}
        for result in per_mode.values():
            assert result.advection is not None
            assert result.advection.iterations_used >= 0


class TestOptionsPlumbing:
    def test_default_region_box_is_attached(self):
        model = build_third_order_model(uncertainty="none")
        verifier = InevitabilityVerifier(model, fast_options())
        assert verifier.options.lyapunov.domain_boxes == model.state_bounds()

    def test_advection_mode_selection(self):
        model = build_third_order_model(uncertainty="none")
        options = fast_options()
        options.advection_modes = (MODE_PUMP_UP,)
        verifier = InevitabilityVerifier(model, options)
        assert verifier._advection_mode_names() == (MODE_PUMP_UP,)

    def test_paper_parameters_consistent_with_model(self):
        params = PLLParameters.third_order_paper()
        model = build_third_order_model(params)
        assert model.parameters is params
        assert model.scaling.time_scale == pytest.approx(params.f_ref.center)
