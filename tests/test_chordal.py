"""Chordal Gram decomposition: graph machinery, clique-tree structure, the
bucketed mixed-size PSD projection, the ``chordal`` Gram-cone lowering and
its cache/fingerprint hygiene, parametric layout stability, and the metrics
plumbing of ``solved:chordal`` counters.

The exactness tests exploit the Grone/Agler theorem: a matrix supported on a
chordal pattern is PSD iff it splits into clique-supported PSD summands, so
on *quadratic forms* (unique Gram matrix) the chordal relaxation certifies
exactly the same polynomials as the monolithic PSD cone — unlike DSOS/SDSOS,
which are strict inner approximations.
"""

import numpy as np
import pytest

from repro.fleet.metrics import engine_metrics, fleet_metrics, render_prometheus
from repro.polynomial import Polynomial, VariableVector, make_variables
from repro.sdp import (
    ChordalGramBlock,
    ConeDims,
    ConicProblemBuilder,
    chordal_decomposition,
    clique_tree,
    make_gram_block,
    project_onto_cone_many,
    project_psd_svec,
    solve_conic_problem,
    svec_dim,
)
from repro.sdp import cones as cones_module
from repro.sdp.context import SolveContext
from repro.sos import SOSProgram
from repro.sos.parametric import ParametricSOSProgram


def _variables(*names):
    return VariableVector(make_variables(*names))


def _quadratic_form(matrix):
    """The quadratic form ``z^T M z`` over fresh variables (unique Gram)."""
    matrix = np.asarray(matrix, dtype=float)
    n = matrix.shape[0]
    variables = _variables(*[f"x{i}" for i in range(n)])
    polys = [Polynomial.from_variable(variables[i], variables) for i in range(n)]
    total = Polynomial.zero(variables)
    for i in range(n):
        for j in range(n):
            if matrix[i, j]:
                total = total + polys[i] * polys[j] * float(matrix[i, j])
    return total


def _tridiagonal(n, off):
    """Tridiagonal unit-diagonal matrix; eigenvalues 1 + 2*off*cos(k pi/(n+1))."""
    matrix = np.eye(n)
    for i in range(n - 1):
        matrix[i, i + 1] = matrix[i + 1, i] = off
    return matrix


def _random_edges(order, density, seed):
    rng = np.random.default_rng(seed)
    edges = []
    for i in range(order):
        for j in range(i + 1, order):
            if rng.random() < density:
                edges.append((i, j))
    return edges


# ----------------------------------------------------------------------
# Graph machinery
# ----------------------------------------------------------------------
class TestChordalDecomposition:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("density", [0.1, 0.3, 0.7])
    def test_cliques_cover_vertices_and_edges(self, seed, density):
        order = 12
        edges = _random_edges(order, density, seed)
        cliques = chordal_decomposition(order, edges)
        covered = set()
        for clique in cliques:
            covered.update(clique)
        assert covered == set(range(order))
        clique_sets = [set(c) for c in cliques]
        for i, j in edges:
            assert any({i, j} <= c for c in clique_sets), \
                f"edge ({i}, {j}) not inside any clique"

    def test_deterministic_under_edge_permutation(self):
        order = 10
        edges = _random_edges(order, 0.4, seed=7)
        reference = chordal_decomposition(order, edges)
        rng = np.random.default_rng(3)
        for _ in range(5):
            shuffled = [edges[k] for k in rng.permutation(len(edges))]
            flipped = [(j, i) for i, j in shuffled]
            assert chordal_decomposition(order, flipped) == reference

    def test_path_graph_respects_merge_cap(self):
        order = 20
        edges = [(i, i + 1) for i in range(order - 1)]
        cliques = chordal_decomposition(order, edges, merge_size=4,
                                        merge_overlap=1.0)
        assert max(len(c) for c in cliques) <= 4
        assert len(cliques) > 1
        covered = set()
        for clique in cliques:
            covered.update(clique)
        assert covered == set(range(order))

    def test_disjoint_components_never_merge(self):
        edges = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]
        cliques = chordal_decomposition(6, edges)  # default knobs
        assert sorted(cliques) == [(0, 1, 2), (3, 4, 5)]

    def test_dense_pattern_single_clique(self):
        order = 5
        edges = [(i, j) for i in range(order) for j in range(i + 1, order)]
        assert chordal_decomposition(order, edges) == (tuple(range(order)),)

    def test_isolated_vertices_become_singletons(self):
        cliques = chordal_decomposition(4, [(1, 2)])
        assert (0,) in cliques and (3,) in cliques and (1, 2) in cliques

    def test_cycle_gets_chordal_fill(self):
        # A 4-cycle is not chordal; elimination adds one fill edge, giving
        # two triangles sharing an edge (with merging disabled).
        cliques = chordal_decomposition(4, [(0, 1), (1, 2), (2, 3), (0, 3)],
                                        merge_size=1, merge_overlap=1.0)
        assert len(cliques) == 2
        assert all(len(c) == 3 for c in cliques)

    def test_bad_inputs_raise(self):
        with pytest.raises(ValueError):
            chordal_decomposition(0, [])
        with pytest.raises(ValueError):
            chordal_decomposition(3, [(0, 5)])


class TestCliqueTree:
    @staticmethod
    def _tree_paths(n, edges):
        """All-pairs tree paths as vertex lists (tree is small: BFS per pair)."""
        adjacency = {k: set() for k in range(n)}
        for a, b in edges:
            adjacency[a].add(b)
            adjacency[b].add(a)
        paths = {}
        for root in range(n):
            stack = [(root, [root])]
            while stack:
                node, path = stack.pop()
                paths[(root, node)] = path
                for nxt in adjacency[node]:
                    if nxt not in path:
                        stack.append((nxt, path + [nxt]))
        return paths

    @pytest.mark.parametrize("seed", [0, 1, 2, 5, 9])
    def test_running_intersection_property(self, seed):
        order = 11
        edges = _random_edges(order, 0.3, seed)
        # Merging disabled: RIP is the classical guarantee for the maximal
        # cliques of the chordal extension itself.
        cliques = chordal_decomposition(order, edges, merge_size=1,
                                        merge_overlap=1.0)
        tree = clique_tree(cliques)
        n = len(cliques)
        assert len(tree) == n - 1 if n > 1 else tree == ()
        sets = [set(c) for c in cliques]
        paths = self._tree_paths(n, tree)
        for a in range(n):
            for b in range(a + 1, n):
                shared = sets[a] & sets[b]
                if not shared:
                    continue
                for node in paths[(a, b)]:
                    assert shared <= sets[node], \
                        f"RIP violated on path {a}->{b} at clique {node}"

    def test_single_clique_has_empty_tree(self):
        assert clique_tree([(0, 1, 2)]) == ()

    def test_tree_is_deterministic(self):
        cliques = chordal_decomposition(9, _random_edges(9, 0.4, seed=2),
                                        merge_size=1, merge_overlap=1.0)
        assert clique_tree(cliques) == clique_tree(cliques)


# ----------------------------------------------------------------------
# Mixed-size bucketed projection (one stacked eigh per distinct order)
# ----------------------------------------------------------------------
class _CountingBackend:
    """Delegating proxy around an ArrayBackend that records eigh calls."""

    def __init__(self, inner):
        self._inner = inner
        self.eigh_calls = []

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def eigh(self, matrices):
        self.eigh_calls.append(tuple(np.shape(matrices)))
        return self._inner.eigh(matrices)


class TestBucketedMixedSizeProjection:
    def test_one_eigh_per_distinct_order(self, monkeypatch):
        counting = _CountingBackend(cones_module._NUMPY_BACKEND)
        monkeypatch.setattr(cones_module, "_NUMPY_BACKEND", counting)
        dims = ConeDims(free=2, nonneg=3, psd=(3, 5, 3, 5, 4))
        total = dims.total
        rng = np.random.default_rng(0)
        points = rng.normal(size=(6, total))
        projected = project_onto_cone_many(points, dims)
        # Orders 3, 4 and 5 each take exactly ONE stacked eigh, regardless of
        # how many blocks share the order or how the orders interleave.
        assert len(counting.eigh_calls) == 3
        batch_shapes = sorted(counting.eigh_calls)
        # 2 blocks of order 3 and 5 across 6 points -> 12 stacked matrices.
        assert batch_shapes == [(6, 4, 4), (12, 3, 3), (12, 5, 5)]
        # And the result matches the per-block reference projection.
        offset = dims.free
        expected = points.copy()
        expected[:, offset:offset + dims.nonneg] = np.maximum(
            points[:, offset:offset + dims.nonneg], 0.0)
        offset += dims.nonneg
        for order in dims.psd:
            width = svec_dim(order)
            for row in range(points.shape[0]):
                expected[row, offset:offset + width], _ = project_psd_svec(
                    points[row, offset:offset + width], order)
            offset += width
        np.testing.assert_allclose(projected, expected, atol=1e-9)

    def test_order_two_blocks_use_closed_form_not_eigh(self, monkeypatch):
        counting = _CountingBackend(cones_module._NUMPY_BACKEND)
        monkeypatch.setattr(cones_module, "_NUMPY_BACKEND", counting)
        dims = ConeDims(free=0, nonneg=0, psd=(2, 2, 2))
        points = np.random.default_rng(1).normal(size=(4, dims.total))
        project_onto_cone_many(points, dims)
        assert counting.eigh_calls == []


# ----------------------------------------------------------------------
# Chordal Gram-cone lowering
# ----------------------------------------------------------------------
class TestChordalGramLowering:
    def test_clique_blocks_and_layout_tag(self):
        builder = ConicProblemBuilder()
        sparsity = [(0, 1), (1, 2), (2, 3)]
        handle = make_gram_block(builder, 4, cone="chordal", name="g",
                                 sparsity=sparsity, merge_size=3,
                                 merge_overlap=1.0)
        assert isinstance(handle, ChordalGramBlock)
        assert handle.cliques == ((0, 1, 2), (2, 3))
        assert handle.clique_sizes == (3, 2)
        assert handle.layout_tag == "chordal:4[0.1.2;2.3]"

    def test_dense_sparsity_defaults_to_single_clique(self):
        builder = ConicProblemBuilder()
        handle = make_gram_block(builder, 3, cone="chordal", name="g")
        assert handle.cliques == ((0, 1, 2),)

    @pytest.mark.parametrize("merge_size", [2, 3, 12])
    def test_reconstruction_pins_banded_target(self, merge_size):
        """Pin every representable Gram entry to a banded PSD target and check
        the clique-split handle reassembles exactly that matrix."""
        order = 5
        target = _tridiagonal(order, 0.45)
        sparsity = [(i, i + 1) for i in range(order - 1)]
        builder = ConicProblemBuilder()
        handle = make_gram_block(builder, order, cone="chordal", name="g",
                                 sparsity=sparsity, merge_size=merge_size,
                                 merge_overlap=1.0)
        rows, i_idx, j_idx, rhs = [], [], [], []
        r = 0
        for i in range(order):
            for j in range(i, order):
                if i != j and abs(i - j) > 1:
                    continue  # outside the pattern: structurally zero
                rows.append(r)
                i_idx.append(i)
                j_idx.append(j)
                rhs.append(target[i, j])
                r += 1
        triplets = handle.entry_triplets(
            np.asarray(rows), np.asarray(i_idx), np.asarray(j_idx),
            np.ones(len(rows)))
        builder.add_equality_rows(np.asarray(rhs), triplets)
        problem = builder.build()
        result = solve_conic_problem(problem, max_iterations=8000,
                                     eps_abs=1e-8, eps_rel=1e-8)
        assert result.status.is_success
        gram = handle.matrix(builder, result.x)
        np.testing.assert_allclose(gram, target, atol=5e-4)
        assert handle.structure_margin(builder, result.x) >= -1e-6

    def test_out_of_pattern_entries_have_no_triplets(self):
        builder = ConicProblemBuilder()
        handle = make_gram_block(builder, 4, cone="chordal", name="g",
                                 sparsity=[(0, 1), (2, 3)])
        triplets = handle.entry_triplets(np.asarray([0]), np.asarray([0]),
                                         np.asarray([3]), np.ones(1))
        assert triplets == [] or all(len(t[1]) == 0 for t in triplets)

    @pytest.mark.parametrize("off,certifies", [(0.45, True), (0.62, False)])
    def test_chordal_certifies_exactly_like_psd(self, off, certifies):
        """Tridiagonal quadratic forms: chordal and monolithic PSD agree on
        membership in both directions (Grone/Agler exactness)."""
        poly = _quadratic_form(_tridiagonal(6, off))
        outcomes = {}
        for cone in ("chordal", "psd"):
            program = SOSProgram(name=f"exact_{cone}_{off}", default_cone=cone)
            program.add_sos_constraint(poly, name="c")
            solution = program.solve(max_iterations=8000)
            outcomes[cone] = solution
        assert outcomes["chordal"].is_success == certifies
        assert outcomes["psd"].is_success == certifies
        if certifies:
            cert = outcomes["chordal"].certificates["c"]
            assert cert.cone == "chordal"
            # The reconstructed FULL Gram matrix of the clique-split
            # certificate is numerically SOS (acceptance criterion).
            assert cert.is_numerically_sos(eig_tol=-1e-6, res_tol=1e-4)
            assert cert.structure_margin is not None
            assert cert.structure_margin >= -1e-6
            assert cert.structure_margin <= cert.min_eigenvalue + 1e-9

    def test_multi_clique_certificate_matches_psd_optimum(self):
        """Bisection on gamma for ``z^T M z - gamma * ||z||^2``: both cones
        must locate gamma* = lambda_min(M) on a chordally-sparse M."""
        order = 5
        matrix = _tridiagonal(order, 0.45)
        lam_min = float(np.linalg.eigvalsh(matrix).min())

        def certified_bound(cone, cone_options=None):
            lo, hi = 0.0, 1.0  # p - 0*I is PSD; p - 1*I is not (lam_min < 1)
            for _ in range(10):
                gamma = 0.5 * (lo + hi)
                poly = _quadratic_form(matrix - gamma * np.eye(order))
                program = SOSProgram(name=f"bisect_{cone}_{gamma:.4f}",
                                     default_cone=cone)
                program.add_sos_constraint(poly, name="c",
                                           cone_options=cone_options)
                if program.solve(max_iterations=8000).is_success:
                    lo = gamma
                else:
                    hi = gamma
            return lo

        chordal_bound = certified_bound(
            "chordal", {"merge_size": 3, "merge_overlap": 1.0})
        psd_bound = certified_bound("psd")
        assert chordal_bound == pytest.approx(psd_bound, abs=2e-2)
        assert chordal_bound == pytest.approx(lam_min, abs=2e-2)


# ----------------------------------------------------------------------
# Cache / fingerprint hygiene
# ----------------------------------------------------------------------
class TestChordalCacheHygiene:
    def test_fingerprints_distinct_from_every_other_cone(self):
        poly = _quadratic_form(_tridiagonal(4, 0.4))
        fingerprints = {}
        layouts = {}
        for cone in ("dd", "sdd", "chordal", "psd"):
            program = SOSProgram(name=f"fp_{cone}", default_cone=cone)
            program.add_sos_constraint(poly, name="c")
            problem = program.compile()[0].build()
            fingerprints[cone] = problem.fingerprint()
            layouts[cone] = problem.layout
        assert len(set(fingerprints.values())) == 4
        assert layouts["chordal"].startswith("chordal:")
        problem = SOSProgram(name="kind", default_cone="chordal")
        problem.add_sos_constraint(poly, name="c")
        assert problem.compile()[0].build().layout_kind == "chordal"

    def test_merge_knobs_change_the_fingerprint(self):
        """Different clique layouts are different problems: they must never
        share a cache entry even though the polynomial is identical."""
        poly = _quadratic_form(_tridiagonal(5, 0.4))
        fingerprints = set()
        for merge_size in (2, 3, 12):
            program = SOSProgram(name=f"mk_{merge_size}",
                                 default_cone="chordal")
            program.add_sos_constraint(
                poly, name="c",
                cone_options={"merge_size": merge_size, "merge_overlap": 1.0})
            fingerprints.add(program.compile()[0].build().fingerprint())
        assert len(fingerprints) == 3

    def test_warm_reverify_serves_from_cache_with_zero_solves(self):
        class DictCache:
            def __init__(self):
                self.store = {}

            def get(self, key):
                return self.store.get(key)

            def put(self, key, value):
                self.store[key] = value

        poly = _quadratic_form(_tridiagonal(5, 0.45))
        cache = DictCache()
        context = SolveContext(name="chordal_warm", cache=cache)

        def run(label):
            program = SOSProgram(name=label, default_cone="chordal",
                                 context=context)
            program.add_sos_constraint(poly, name="c")
            solution = program.solve(max_iterations=8000)
            assert solution.is_success
            return solution

        run("cold")
        cold = dict(context.solve_counters())
        assert cold.get("solved:chordal") == 1
        run("warm")
        warm = dict(context.solve_counters())
        assert warm.get("solved", 0) == cold.get("solved", 0)  # zero new solves
        assert warm.get("cache_hit:chordal") == 1

        # The same polynomial under the monolithic PSD cone misses the
        # chordal cache entry entirely (distinct fingerprints).
        psd_program = SOSProgram(name="psd_side", default_cone="psd",
                                 context=context)
        psd_program.add_sos_constraint(poly, name="c")
        assert psd_program.solve(max_iterations=8000).is_success
        final = dict(context.solve_counters())
        assert final.get("solved:psd") == 1
        assert final.get("cache_hit:psd", 0) == 0


# ----------------------------------------------------------------------
# Parametric families keep the clique layout across bind(theta)
# ----------------------------------------------------------------------
class TestParametricChordalFamily:
    @staticmethod
    def _family(cone_options=None):
        order = 5
        base = _tridiagonal(order, 0.3)
        bump = np.zeros((order, order))
        for i in range(order - 1):
            bump[i, i + 1] = bump[i + 1, i] = 0.1

        def build(theta):
            program = SOSProgram(name="fam", default_cone="chordal")
            program.add_sos_constraint(
                _quadratic_form(base + theta * bump), name="c",
                cone_options=cone_options)
            return program

        return ParametricSOSProgram(build, probes=(0.25, 1.0), name="fam")

    def test_layout_survives_bind(self):
        family = self._family({"merge_size": 3, "merge_overlap": 1.0}).compile()
        bound = family.bind(0.6)
        assert bound.layout.startswith("chordal:")
        assert bound.layout == family.bind(0.1).layout
        assert bound.layout_kind == "chordal"
        # bind() is exact: solving the bound problem certifies the polynomial.
        result = solve_conic_problem(bound, max_iterations=8000)
        assert result.status.is_success

    def test_bound_problem_matches_direct_compile(self):
        family = self._family().compile()
        theta = 0.625
        bound = family.bind(theta)
        problem = self._family()._build(theta).compile()[0].build()
        assert problem.layout == bound.layout
        np.testing.assert_allclose(problem.A.toarray(), bound.A.toarray(),
                                   atol=1e-12)
        np.testing.assert_allclose(problem.b, bound.b, atol=1e-12)


# ----------------------------------------------------------------------
# Sparse multiplier templates keep the inclusion stage decomposable
# ----------------------------------------------------------------------
class TestDiagonalMultiplierSupport:
    def test_diagonal_template_is_separable(self):
        variables = _variables("x", "y", "z")
        program = SOSProgram(name="tmpl")
        poly = program.new_polynomial_variable(variables, 4, name="lam",
                                               diagonal_only=True)
        monomials = sorted(m.exponents for m in poly.coefficients)
        assert (0, 0, 0) in monomials
        for exps in monomials:
            assert sum(1 for e in exps if e) <= 1
            assert sum(exps) % 2 == 0

    def test_inclusion_multiplier_support_validation(self):
        from repro.core.inclusion import build_inclusion_program

        x = Polynomial.from_variable(_variables("x")[0], _variables("x"))
        with pytest.raises(ValueError, match="multiplier_support"):
            build_inclusion_program(x * x - 1.0, x * x - 4.0,
                                    multiplier_support="sparse")

    def test_diagonal_multiplier_splits_the_inclusion_gram(self):
        """A dense multiplier fills the correlative graph (single clique);
        the diagonal template preserves the chain sparsity of the inner
        certificate, so the chordal cone genuinely decomposes the block."""
        from repro.core.inclusion import ParametricInclusionFamily

        variables = _variables("x", "y", "z")
        polys = [Polynomial.from_variable(variables[i], variables)
                 for i in range(3)]
        x, y, z = polys
        inner = (x * x + y * y + z * z
                 + (x * x * x * x + y * y * y * y + z * z * z * z) * 0.1
                 + (x * y + y * z) * 0.2)
        outer = x * x - 4.0

        def biggest_block(support):
            family = ParametricInclusionFamily(
                inner, outer, multiplier_degree=2, cone="chordal",
                multiplier_support=support).compile()
            return max(family.bind(0.5).dims.psd)

        order = biggest_block("dense")  # one clique: the full Gram basis
        assert biggest_block("diagonal") < order

    def test_diagonal_and_dense_certify_the_same_easy_inclusion(self):
        from repro.core.inclusion import check_sublevel_inclusion

        variables = _variables("x", "y")
        x = Polynomial.from_variable(variables[0], variables)
        y = Polynomial.from_variable(variables[1], variables)
        inner = x * x + y * y - 1.0
        outer = x * x + y * y - 9.0
        for support in ("dense", "diagonal"):
            certificate = check_sublevel_inclusion(
                inner, outer, multiplier_degree=2, cone="chordal",
                multiplier_support=support, max_iterations=8000)
            assert certificate.holds, f"support={support}"


# ----------------------------------------------------------------------
# Metrics plumbing (satellite: per-cone-layout solve stats)
# ----------------------------------------------------------------------
class TestChordalMetrics:
    PAYLOAD = {
        "engine": {
            "counters": {"solved": 3, "solved:chordal": 2, "solved:psd": 1,
                         "cache_hit": 1, "cache_hit:chordal": 1},
            "cache_stats": {"hits": 1, "misses": 2, "writes": 2},
            "wall_seconds": 1.5,
        },
        "scenarios": [],
    }

    def test_engine_metrics_split_by_layout(self):
        metrics = engine_metrics(self.PAYLOAD)
        assert metrics["solves"]["solved"]["by_layout"] == \
            {"chordal": 2, "psd": 1}
        assert metrics["solves"]["cache_hit"]["by_layout"] == {"chordal": 1}

    def test_prometheus_exposes_chordal_layout(self):
        text = render_prometheus(engine_metrics(self.PAYLOAD))
        assert 'repro_solves_total{layout="chordal"} 2' in text
        assert 'repro_solves_total{layout="psd"} 1' in text
        assert 'repro_cache_hits_total{layout="chordal"} 1' in text

    def test_fleet_metrics_split_by_layout(self):
        status = {"queue": {"depth": 0, "inflight": []}, "workers": [],
                  "jobs": {"completed": 4},
                  "cache": {"hits": 0, "misses": 0},
                  "counters": {"solved": 4, "solved:chordal": 4}}
        metrics = fleet_metrics(status)
        assert metrics["solves"]["solved"]["by_layout"] == {"chordal": 4}
        text = render_prometheus(metrics)
        assert 'repro_solves_total{layout="chordal"} 4' in text
