"""Localhost fleet integration: a master and two in-process workers verify
real scenarios with results identical to the inline engine, survive a worker
killed mid-job via requeue, answer warm resubmissions from the job memo with
zero SDP solves anywhere, and persist their queue across a graceful shutdown.

Workers run on threads inside this process (the protocol neither knows nor
cares), so the tests are deterministic and carry no subprocess overhead; the
CLI subprocess path is exercised by the fleet-smoke CI job.
"""

import hashlib
import threading
import time

import numpy as np
import pytest

from repro.engine import EngineOptions, VerificationEngine
from repro.engine.cache import RemoteCacheClient
from repro.fleet import (
    FleetClient,
    FleetMaster,
    FleetWorker,
    WorkerKilled,
    render_prometheus,
    render_status_text,
)
from repro.fleet.master import PERSISTED_QUEUE_NAME
from repro.sdp.result import SolverResult, SolverStatus

SCENARIOS = ["vanderpol", "buck"]


def _start_fleet(tmp_dir, workers=2, **master_kwargs):
    master = FleetMaster(port=0, cache_dir=str(tmp_dir), **master_kwargs)
    master.start()
    fleet_workers = [FleetWorker(master.address, name=f"w{i}",
                                 poll_timeout=0.2) for i in range(workers)]
    threads = [worker.start_thread() for worker in fleet_workers]
    return master, fleet_workers, threads


def _stop_fleet(master, workers, threads):
    for worker in workers:
        worker.stop()
    for thread in threads:
        thread.join(timeout=10)
    master.stop()


def _scenario(report_json, name):
    for scenario in report_json["scenarios"]:
        if scenario["scenario"] == name:
            return scenario
    raise KeyError(name)


def _statuses(scenario_json):
    return {job["job_id"]: job["status"] for job in scenario_json["jobs"]}


def _invariant_rows(scenario_json):
    return scenario_json["report"]["property_one"]["invariant"]


def _table2_columns(scenario_json):
    """Table-2 rows minus the wall-clock column (step, detail, relaxation)."""
    return [(row["step"], row["detail"], row["relaxation"])
            for row in scenario_json["report"]["timings"]]


# ----------------------------------------------------------------------
# Shared fixtures: one inline baseline, one long-lived fleet
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def inline_report(tmp_path_factory):
    """The ground truth: the in-process engine at jobs=1, fresh cache."""
    cache = tmp_path_factory.mktemp("inline_cache")
    engine = VerificationEngine(EngineOptions(jobs=1, cache_dir=str(cache)))
    return engine.run(SCENARIOS).to_json_dict()


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    cache = tmp_path_factory.mktemp("fleet_cache")
    master, workers, threads = _start_fleet(cache, workers=2)
    time.sleep(0.2)  # let both workers register
    yield master
    _stop_fleet(master, workers, threads)


@pytest.fixture(scope="module")
def fleet_cold(fleet):
    """The fleet's first (cache-cold) run over both scenarios."""
    client = FleetClient(fleet.address)
    return client.submit(SCENARIOS)


# ----------------------------------------------------------------------
# Engine-vs-fleet parity
# ----------------------------------------------------------------------
class TestFleetParity:
    def test_cold_run_matches_inline_engine(self, inline_report, fleet_cold):
        assert fleet_cold["ok"] is True
        report = fleet_cold["report"]
        for name in SCENARIOS:
            inline = _scenario(inline_report, name)
            remote = _scenario(report, name)
            assert remote["matches_expected"] is True
            assert _statuses(remote) == _statuses(inline)
            # Invariant levels are float64-bit-identical: solves are
            # deterministic and the wire codec round-trips exactly.
            assert _invariant_rows(remote) == _invariant_rows(inline)
            assert _table2_columns(remote) == _table2_columns(inline)
            assert remote["counters"] == inline["counters"]
        assert report["engine"]["counters"] == inline_report["engine"]["counters"]

    def test_cold_run_used_both_workers_or_at_least_dispatched(self, fleet,
                                                               fleet_cold):
        status = FleetClient(fleet.address).status()
        assert status["jobs"]["dispatched"] >= len(SCENARIOS)
        assert status["jobs"]["completed"] == status["jobs"]["dispatched"]
        assert len(status["workers"]) == 2

    def test_warm_resubmission_is_zero_solves_fleet_wide(self, fleet,
                                                         inline_report,
                                                         fleet_cold):
        client = FleetClient(fleet.address)
        before = client.status()
        warm = client.submit(SCENARIOS)
        after = client.status()
        counters = warm["report"]["engine"]["counters"]
        assert counters.get("solved", 0) == 0
        assert counters.get("cache_hit", 0) > 0
        # Nothing was dispatched to any worker: the memo answered everything.
        assert after["jobs"]["dispatched"] == before["jobs"]["dispatched"]
        assert after["jobs"]["memo_hits"] > before["jobs"]["memo_hits"]
        for name in SCENARIOS:
            assert _statuses(_scenario(warm["report"], name)) == \
                _statuses(_scenario(inline_report, name))

    def test_engine_with_fleet_executor_matches_inline(self, fleet,
                                                       inline_report,
                                                       fleet_cold, tmp_path):
        """``verify --fleet``: the engine's DistributedExecutor path."""
        options = EngineOptions(jobs=2, cache_dir=str(tmp_path),
                                fleet=f"127.0.0.1:{fleet.port}")
        report = VerificationEngine(options).run(SCENARIOS)
        assert report.all_match_expected
        # Warm fleet memo: this client performed zero solves anywhere.
        assert report.counters.get("solved", 0) == 0
        payload = report.to_json_dict()
        for name in SCENARIOS:
            assert _statuses(_scenario(payload, name)) == \
                _statuses(_scenario(inline_report, name))
            assert _invariant_rows(_scenario(payload, name)) == \
                _invariant_rows(_scenario(inline_report, name))

    def test_interactive_submission_streams_job_events(self, fleet,
                                                       fleet_cold):
        events = []
        client = FleetClient(fleet.address)
        done = client.submit(["vanderpol"], watch=True, on_event=events.append)
        assert done["ok"] is True
        job_events = [event for event in events if event.get("event") == "job"]
        assert job_events, "watch submission streamed no job events"
        # Warm memo: every event reports the cached fast path.
        assert {event["state"] for event in job_events} == {"cached"}

    def test_status_snapshot_renders_text_and_prometheus(self, fleet,
                                                         fleet_cold):
        status = FleetClient(fleet.address).status()
        text = "\n".join(render_status_text(status))
        assert "queue" in text and "workers (2)" in text
        prom = render_prometheus(status["metrics"])
        assert "repro_workers_connected 2" in prom
        assert "repro_solves_total" in prom
        assert status["metrics"]["schema"] == 1


# ----------------------------------------------------------------------
# Shared certificate cache
# ----------------------------------------------------------------------
class TestRemoteCache:
    def test_solver_results_shared_across_clients(self, fleet, fleet_cold):
        key = hashlib.sha256(b"fleet-remote-cache-test").hexdigest()
        rng = np.random.default_rng(5)
        stored = SolverResult(status=SolverStatus.OPTIMAL,
                              x=rng.standard_normal(11),
                              objective=1.5, iterations=12, solve_time=0.01,
                              info={"array_backend": "numpy"})
        writer = RemoteCacheClient(fleet.address)
        reader = RemoteCacheClient(fleet.address)
        try:
            assert reader.get(key) is None           # miss before the write
            writer.put(key, stored)
            fetched = reader.get(key)
            assert fetched is not None
            np.testing.assert_array_equal(fetched.x, stored.x)
            assert fetched.status is SolverStatus.OPTIMAL
            assert reader.stats.hits == 1 and reader.stats.misses == 1
            assert writer.stats.writes == 1
        finally:
            writer.close()
            reader.close()

    def test_unreachable_master_degrades_to_miss(self):
        client = RemoteCacheClient(("127.0.0.1", 1))  # nothing listens here
        try:
            assert client.get("ab" * 32) is None
            client.put("ab" * 32, SolverResult(status=SolverStatus.OPTIMAL,
                                               x=np.zeros(1)))
            assert client.stats.misses == 1 and client.stats.writes == 0
        finally:
            client.close()


# ----------------------------------------------------------------------
# Requeue-on-death
# ----------------------------------------------------------------------
class _BlockingExecutor:
    """Holds its job hostage until the test kills the worker."""

    def __init__(self):
        self.started = threading.Event()
        self.release = threading.Event()

    def __call__(self, payload, cache):  # noqa: ARG002 - executor protocol
        self.started.set()
        self.release.wait(timeout=30)
        raise WorkerKilled()


class TestRequeueOnDeath:
    def test_killed_worker_requeues_job_and_report_is_unaffected(
            self, inline_report, tmp_path):
        master = FleetMaster(port=0, cache_dir=str(tmp_path))
        master.start()
        blocking = _BlockingExecutor()
        doomed = FleetWorker(master.address, name="doomed",
                             poll_timeout=0.2, executor=blocking)
        doomed_thread = doomed.start_thread()
        survivor = None
        try:
            client = FleetClient(master.address)
            events = []
            submission = {}

            def submit():
                submission["done"] = client.submit(
                    ["vanderpol"], watch=True, on_event=events.append)

            submit_thread = threading.Thread(target=submit, daemon=True)
            submit_thread.start()
            assert blocking.started.wait(timeout=20), \
                "the doomed worker never received the job"
            # SIGKILL equivalent: connections drop, no report, no deregister.
            doomed.kill()
            blocking.release.set()
            doomed_thread.join(timeout=10)
            assert not doomed_thread.is_alive()

            survivor = FleetWorker(master.address, name="survivor",
                                   poll_timeout=0.2)
            survivor_thread = survivor.start_thread()
            submit_thread.join(timeout=180)
            assert not submit_thread.is_alive(), "submission never finished"

            done = submission["done"]
            assert done["ok"] is True
            remote = _scenario(done["report"], "vanderpol")
            assert remote["matches_expected"] is True
            assert _statuses(remote) == \
                _statuses(_scenario(inline_report, "vanderpol"))
            assert _invariant_rows(remote) == \
                _invariant_rows(_scenario(inline_report, "vanderpol"))

            status = client.status()
            assert status["jobs"]["requeued"] >= 1
            # The requeued job's completion event records the retry.
            attempts = [event.get("attempts", 1) for event in events
                        if event.get("state") == "done"]
            assert max(attempts) >= 2
            survivor.stop()
            survivor_thread.join(timeout=10)
        finally:
            blocking.release.set()
            if survivor is not None:
                survivor.stop()
            master.stop()

    def test_poison_job_quarantined_not_retried_forever(self, tmp_path):
        master = FleetMaster(port=0, cache_dir=str(tmp_path), max_retries=0)
        master.start()
        blocking = _BlockingExecutor()
        doomed = FleetWorker(master.address, name="doomed",
                             poll_timeout=0.2, executor=blocking)
        thread = doomed.start_thread()
        try:
            client = FleetClient(master.address)
            result = {}

            def run_one():
                result["outcome"] = client.exec_job(
                    {"scenario": "vanderpol", "step": "lyapunov",
                     "use_cache": False}, label="poison")

            runner = threading.Thread(target=run_one, daemon=True)
            runner.start()
            assert blocking.started.wait(timeout=20)
            doomed.kill()
            blocking.release.set()
            runner.join(timeout=20)
            assert not runner.is_alive()
            assert result["outcome"]["status"] == "error"
            assert "poison" in result["outcome"]["detail"]
            assert client.status()["jobs"]["quarantined"] == 1
        finally:
            blocking.release.set()
            master.stop()
            thread.join(timeout=10)


# ----------------------------------------------------------------------
# Graceful shutdown
# ----------------------------------------------------------------------
class TestGracefulShutdown:
    def test_worker_stop_deregisters_cleanly(self, tmp_path):
        master, workers, threads = _start_fleet(tmp_path, workers=1)
        try:
            deadline = time.monotonic() + 5
            client = FleetClient(master.address)
            while time.monotonic() < deadline:
                if len(client.status()["workers"]) == 1:
                    break
                time.sleep(0.05)
            workers[0].stop()
            threads[0].join(timeout=10)
            status = client.status()
            assert status["workers"] == []
            assert status["jobs"]["requeued"] == 0
        finally:
            _stop_fleet(master, workers, threads)

    def test_shutdown_persists_pending_queue_and_restart_restores_it(
            self, tmp_path):
        master = FleetMaster(port=0, cache_dir=str(tmp_path))
        master.start()  # no workers: enqueued jobs stay pending
        client = FleetClient(master.address)
        outcome = {}

        def submit_one():
            try:
                outcome["value"] = client.exec_job(
                    {"scenario": "vanderpol", "step": "lyapunov",
                     "use_cache": False}, label="pending-at-shutdown")
            except Exception as exc:  # connection may die with the master
                outcome["error"] = exc

        runner = threading.Thread(target=submit_one, daemon=True)
        runner.start()
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            if client.status()["queue"]["depth"] == 1:
                break
            time.sleep(0.05)
        assert master.scheduler.snapshot()["depth"] == 1
        master.stop()
        runner.join(timeout=10)
        assert not runner.is_alive()
        # The abandoned client learned its job could not run...
        assert "error" in outcome or outcome["value"]["status"] == "error"
        # ...and the queue survived on disk for the next master.
        persisted = tmp_path / PERSISTED_QUEUE_NAME
        assert persisted.exists()

        reborn = FleetMaster(port=0, cache_dir=str(tmp_path))
        reborn.start()
        try:
            assert not persisted.exists()  # consumed on restore
            assert reborn.scheduler.snapshot()["depth"] == 1
        finally:
            reborn.stop()
