"""Scenario registry and workload-construction tests."""

import numpy as np
import pytest

from repro.core.inevitability import InevitabilityOptions
from repro.scenarios import (
    ScenarioProblem,
    all_scenarios,
    build_buck_converter_system,
    build_duffing_system,
    build_problem,
    build_vanderpol_system,
    fast_scenario_names,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.scenarios.registry import _REGISTRY


class TestRegistry:
    def test_at_least_six_scenarios(self):
        assert len(scenario_names()) >= 6

    def test_listing_is_sorted_and_stable(self):
        names = scenario_names()
        assert list(names) == sorted(names)
        assert [spec.name for spec in all_scenarios()] == list(names)

    def test_fast_subset(self):
        fast = fast_scenario_names()
        assert set(fast) <= set(scenario_names())
        assert "pll3" in fast

    def test_expected_outcomes_are_legal(self):
        for spec in all_scenarios():
            assert spec.expected in ("verified", "property_one",
                                     "inconclusive", "any")

    def test_pll4_deg4_rides_the_auto_ladder(self):
        spec = get_scenario("pll4_deg4")
        assert spec.certificate_degree == 4
        assert spec.relaxation == "auto"
        assert "chordal" in spec.tags
        problem = spec.build()
        # The registered ladder lands on every stage's options.
        assert problem.options.lyapunov.relaxation == "auto"
        assert problem.options.levelset.relaxation == "auto"

    def test_unknown_scenario_raises_with_listing(self):
        with pytest.raises(KeyError, match="available"):
            get_scenario("no_such_scenario")

    def test_duplicate_registration_rejected(self):
        existing = scenario_names()[0]
        with pytest.raises(ValueError, match="already registered"):
            @register_scenario(existing, "dup")
            def _dup(spec):  # pragma: no cover - never built
                raise AssertionError

    def test_registration_and_build_roundtrip(self):
        name = "_test_tmp_scenario"

        @register_scenario(name, "temporary", certificate_degree=2,
                           expected="any", tags=("test",))
        def _build(spec):
            system = build_vanderpol_system()
            return ScenarioProblem(
                system=system, bounds=[(-1, 1), (-1, 1)],
                options=InevitabilityOptions())

        try:
            problem = build_problem(name)
            assert problem.name == name
            assert problem.expected == "any"
        finally:
            _REGISTRY.pop(name, None)


class TestProblems:
    @pytest.mark.parametrize("name", ["pll3", "buck", "vanderpol", "duffing"])
    def test_build_produces_consistent_problem(self, name):
        problem = build_problem(name)
        assert problem.name == name
        assert len(problem.bounds) == problem.system.num_states
        assert problem.state_bounds() == list(problem.bounds)
        # The verifier-facing interface mirrors PLLVerificationModel.
        outer = problem.outer_set_polynomial()
        assert outer.evaluate([0.0] * problem.system.num_states) < 0
        fields = problem.nominal_fields()
        assert set(fields) == set(problem.system.mode_names)
        for mode_name in problem.system.mode_names:
            domain = problem.mode_domain(mode_name)
            assert domain.variables == problem.state_variables

    def test_pll3_wraps_verification_model(self):
        problem = build_problem("pll3")
        assert problem.pll_model is not None
        assert problem.supports_falsification
        # The outer set delegates to the underlying PLL model.
        direct = problem.pll_model.outer_set_polynomial(margin=1.0)
        assert (problem.outer_set_polynomial() - direct).max_abs_coefficient() == 0.0

    def test_pll_corner_scenario_pins_parameters(self):
        problem = build_problem("pll3_slow_corner")
        for interval in problem.pll_model.parameters.named_intervals().values():
            assert interval.is_degenerate()

    def test_weak_pump_is_degraded(self):
        nominal = build_problem("pll3").pll_model.parameters.i_p.center
        weak = build_problem("pll3_weak_pump").pll_model.parameters.i_p.center
        assert weak == pytest.approx(0.4 * nominal)

    def test_bounds_mismatch_rejected(self):
        system = build_vanderpol_system()
        with pytest.raises(ValueError, match="bounds"):
            ScenarioProblem(system=system, bounds=[(-1, 1)],
                            options=InevitabilityOptions())


class TestNewSystems:
    def test_buck_modes_and_equilibrium(self):
        system = build_buck_converter_system()
        assert system.mode_names == ("mode2", "mode3")
        assert np.allclose(system.equilibrium, 0.0)
        # Opposite constant forcing at the origin: closed switch pushes the
        # current up, open switch pulls it down.
        up = system.mode("mode2").drift_at([0.0, 0.0])
        down = system.mode("mode3").drift_at([0.0, 0.0])
        assert up[0] > 0 > down[0]
        assert up[1] == pytest.approx(0.0)
        # Jumps are identity resets on the voltage sign guards.
        for transition in system.transitions:
            assert transition.is_identity_reset

    def test_vanderpol_origin_is_stable(self):
        system = build_vanderpol_system(mu=1.0)
        mode = system.mode("flow")
        assert np.allclose(mode.drift_at([0.0, 0.0]), 0.0)
        # Linearisation at the origin: [[0, -1], [1, -mu]] — Hurwitz.
        eps = 1e-6
        jac = np.column_stack([
            (mode.drift_at([eps, 0.0]) - mode.drift_at([-eps, 0.0])) / (2 * eps),
            (mode.drift_at([0.0, eps]) - mode.drift_at([0.0, -eps])) / (2 * eps),
        ])
        assert np.all(np.linalg.eigvals(jac).real < 0)

    def test_duffing_energy_decreases_along_flow(self):
        delta = 0.8
        system = build_duffing_system(delta=delta)
        mode = system.mode("flow")
        rng = np.random.default_rng(3)
        for point in rng.uniform(-1.0, 1.0, size=(25, 2)):
            x, y = point
            dx, dy = mode.drift_at(point)
            # dE/dt along the flow is exactly -delta * y^2 <= 0.
            de = (x + x ** 3) * dx + y * dy
            assert de == pytest.approx(-delta * y * y, abs=1e-9)
