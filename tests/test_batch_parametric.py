"""Tests for the parametric-solve subsystem: ``ParametricSOSProgram``,
``ParametricInclusionFamily``, ``BatchADMMSolver`` and the batched K-section
level-set maximiser."""

import numpy as np
import pytest

from repro.core import LevelSetMaximizer, LevelSetOptions
from repro.core.inclusion import (
    ParametricInclusionFamily,
    build_inclusion_program,
    check_sublevel_inclusion,
)
from repro.polynomial import Polynomial, VariableVector, make_variables
from repro.sdp import (
    ADMMConicSolver,
    ADMMSettings,
    BatchADMMSolver,
    ConeDims,
    ConicProblemBuilder,
    SolverStatus,
    project_onto_cone,
    project_onto_cone_many,
    solve_conic_problems,
)
from repro.sos import (
    ParametricProgramError,
    ParametricSOSProgram,
    SemialgebraicSet,
    SOSProgram,
    compile_counters,
    reset_compile_counters,
)


@pytest.fixture
def ball_inclusion():
    """V = x^2 + y^2; {V <= theta} subset of {V <= 4} iff theta <= 4."""
    x, y = make_variables("x", "y")
    xv = VariableVector([x, y])
    px = Polynomial.from_variable(x, xv)
    py = Polynomial.from_variable(y, xv)
    V = px * px + py * py
    return xv, V, V - 4.0


def _feasibility_problem(rhs_nonneg, rhs_psd=2.0):
    builder = ConicProblemBuilder()
    psd_id, _ = builder.add_psd_block(3)
    nn_id, _ = builder.add_nonneg_block(1)
    local, coeff = builder.psd_entry_local_index(psd_id, 0, 0)
    builder.add_equality_row({(psd_id, local): coeff}, rhs=rhs_psd)
    local, coeff = builder.psd_entry_local_index(psd_id, 0, 1)
    builder.add_equality_row({(psd_id, local): coeff}, rhs=0.5)
    builder.add_equality_row({(nn_id, 0): 1.0}, rhs=rhs_nonneg)
    return builder.build()


class TestProjectOntoConeMany:
    def test_matches_single_projection(self):
        dims = ConeDims(free=2, nonneg=3, psd=(3, 3, 2))
        rng = np.random.default_rng(0)
        points = rng.normal(size=(7, dims.total))
        batched = project_onto_cone_many(points, dims)
        for i in range(points.shape[0]):
            np.testing.assert_allclose(
                batched[i], project_onto_cone(points[i], dims), atol=1e-12)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            project_onto_cone_many(np.zeros((2, 5)), ConeDims(free=1))


class TestBatchADMMSolver:
    def test_statuses_and_solutions_match_serial(self):
        problems = [_feasibility_problem(t) for t in (1.0, 2.0, -1.0, 0.3, -0.7)]
        settings = ADMMSettings(max_iterations=6000)
        serial = [ADMMConicSolver(settings).solve(p) for p in problems]
        batch = BatchADMMSolver(settings).solve_batch(problems)
        for expected, got in zip(serial, batch):
            assert got.status == expected.status
            assert got.iterations == expected.iterations
            if expected.status.is_success:
                np.testing.assert_allclose(got.x, expected.x, atol=1e-7)
        assert batch[0].info["batch_size"] == len(problems)

    def test_mixed_structure_falls_back_to_serial(self):
        builder = ConicProblemBuilder()
        psd_id, _ = builder.add_psd_block(2)
        local, coeff = builder.psd_entry_local_index(psd_id, 0, 0)
        builder.add_equality_row({(psd_id, local): coeff}, rhs=1.0)
        other = builder.build()
        problems = [_feasibility_problem(1.0), other]
        results = BatchADMMSolver().solve_batch(problems)
        assert all(r.status.is_success for r in results)

    def test_warm_start_reduces_iterations(self):
        problems = [_feasibility_problem(t) for t in (1.0, 2.0)]
        solver = BatchADMMSolver(ADMMSettings(max_iterations=6000))
        cold = solver.solve_batch(problems)
        warm = solver.solve_batch(
            problems, [r.info["warm_start_data"] for r in cold])
        for before, after in zip(cold, warm):
            assert after.info["warm_started"]
            assert after.iterations <= before.iterations
        assert all(r.status.is_success for r in warm)

    def test_empty_batch(self):
        assert BatchADMMSolver().solve_batch([]) == []

    def test_trivially_infeasible_member(self):
        builder = ConicProblemBuilder()
        builder.add_free_block(1)
        builder.add_equality_row({}, rhs=1.0)  # zero row, nonzero rhs
        bad = builder.build()
        results = BatchADMMSolver().solve_batch([_feasibility_problem(1.0), bad])
        assert results[0].status.is_success
        assert results[1].status == SolverStatus.INFEASIBLE_SUSPECTED

    def test_solve_conic_problems_dispatch(self):
        problems = [_feasibility_problem(t) for t in (1.0, 2.0)]
        results = solve_conic_problems(problems)
        assert all(r.status.is_success for r in results)
        # Non-ADMM backends are solved sequentially with the same semantics.
        results = solve_conic_problems(problems, backend="projection")
        assert all(r.status.is_success for r in results)


class TestParametricSOSProgram:
    def test_bind_matches_fresh_compile(self, ball_inclusion):
        _, V, outer = ball_inclusion
        family = ParametricInclusionFamily(V, outer, multiplier_degree=2)
        family.compile()
        for theta in (0.0, 0.7, 2.5, 6.0):
            program, _, _, _ = build_inclusion_program(V - theta, outer, 2)
            direct = program.compile()[0].build()
            bound = family.bind(theta)
            assert direct.dims == bound.dims
            np.testing.assert_allclose(direct.A.toarray(), bound.A.toarray(),
                                       atol=1e-12)
            np.testing.assert_allclose(direct.b, bound.b, atol=1e-12)
            np.testing.assert_allclose(direct.c, bound.c, atol=1e-12)

    def test_bind_performs_no_recompilation(self, ball_inclusion):
        _, V, outer = ball_inclusion
        family = ParametricInclusionFamily(V, outer, multiplier_degree=2)
        family.compile()
        assert family.family.num_structure_compiles == 3  # 2 probes + affinity
        reset_compile_counters()
        certificates = family.check_levels([1.0, 2.0, 3.0, 4.5],
                                           max_iterations=6000)
        assert compile_counters()["full"] == 0
        assert family.family.num_binds == 4
        assert [c.holds for c in certificates] == [True, True, True, False]

    def test_matches_serial_inclusion_check(self, ball_inclusion):
        _, V, outer = ball_inclusion
        family = ParametricInclusionFamily(V, outer, multiplier_degree=2)
        for theta in (1.0, 3.9, 4.5):
            batched, = family.check_levels([theta], max_iterations=6000)
            serial = check_sublevel_inclusion(V - theta, outer, 2,
                                              max_iterations=6000)
            assert batched.holds == serial.holds

    def test_multiplier_extraction(self, ball_inclusion):
        _, V, outer = ball_inclusion
        family = ParametricInclusionFamily(V, outer, multiplier_degree=2)
        problem = family.bind(1.0)
        result = solve_conic_problems([problem], max_iterations=6000)[0]
        certificate = family.interpret(1.0, result, extract_multiplier=True)
        assert certificate.holds
        assert certificate.multiplier is not None
        # Lemma 1: lambda * (V - 1) - (V - 4) must be SOS, so in particular
        # nonnegative at the origin: lambda(0) * (-1) + 4 >= 0.
        assert certificate.multiplier.evaluate([0.0, 0.0]) <= 4.0 + 1e-6

    def test_non_affine_family_rejected(self, ball_inclusion):
        _, V, outer = ball_inclusion

        def build(theta):
            program, lam, _, _ = build_inclusion_program(V - theta * theta,
                                                         outer, 2)
            return program, lam

        family = ParametricSOSProgram(build, probes=(0.0, 1.0))
        with pytest.raises(ParametricProgramError):
            family.compile()

    def test_structurally_unstable_family_rejected(self):
        x, = make_variables("x")
        xv = VariableVector([x])
        px = Polynomial.from_variable(x, xv)

        def build(theta):
            program = SOSProgram()
            degree = 2 if theta == 0.0 else 4
            sigma = program.new_sos_polynomial(xv, degree, name="s")
            program.add_sos_constraint(sigma * (px * px) + theta + 1.0,
                                       name="main")
            return program

        family = ParametricSOSProgram(build, probes=(0.0, 1.0))
        with pytest.raises(ParametricProgramError):
            family.compile()

    def test_identical_probes_rejected(self, ball_inclusion):
        _, V, outer = ball_inclusion
        with pytest.raises(ValueError):
            ParametricInclusionFamily(V, outer, probes=(1.0, 1.0))


class TestBatchedLevelSetMaximizer:
    def _setup(self):
        x, y = make_variables("x", "y")
        xv = VariableVector([x, y])
        px = Polynomial.from_variable(x, xv)
        py = Polynomial.from_variable(y, xv)
        V = px * px + 2 * py * py
        domain = SemialgebraicSet(
            variables=xv,
            inequalities=(4.0 - px * px - py * py, 3.0 - px * px),
        )
        return V, domain

    def test_matches_serial_bisection(self):
        V, domain = self._setup()
        common = dict(bisection_tolerance=0.05, initial_upper_bound=5.0,
                      solver_settings=dict(max_iterations=4000))
        serial = LevelSetMaximizer(LevelSetOptions(
            strategy="serial", **common)).maximize("m", V, domain)
        batched = LevelSetMaximizer(LevelSetOptions(
            strategy="batched", **common)).maximize("m", V, domain)
        # Both strategies terminate with a certified bracket of width <= tol
        # around the same optimum, so the levels agree within the tolerance.
        assert abs(serial.level - batched.level) <= 0.05 + 1e-9
        assert batched.level > 0
        assert batched.certified_levels
        assert batched.rejected_levels
        # K-section needs strictly fewer rounds than bisection.
        assert batched.iterations <= serial.iterations

    def test_expansion_when_initial_upper_is_certified(self):
        V, domain = self._setup()
        options = LevelSetOptions(strategy="batched", bisection_tolerance=0.05,
                                  initial_upper_bound=0.25,
                                  solver_settings=dict(max_iterations=4000))
        result = LevelSetMaximizer(options).maximize("m", V, domain)
        # The true optimum is ~2.99, far above the initial bound of 0.25: the
        # expansion ladder must have grown the bracket past it.
        assert result.level > 2.5
