"""Array-backend dispatch equivalence tests.

The pluggable array namespace (``repro.sdp.backend``) must be invisible in
the results: selecting ``array_backend="numpy"`` explicitly, letting
``"auto"`` resolve, or not configuring a backend at all must produce the
same certificates, statuses and solve counters; the asynchronous
bounded-staleness batch schedule must agree with the synchronous one on
every status.  (``tests/test_array_backend.py`` covers the polynomial
array evaluation layer — a different subsystem that predates this one.)
"""

import warnings

import numpy as np
import pytest

from repro.core.inclusion import ParametricInclusionFamily
from repro.pll import build_third_order_model
from repro.polynomial import Polynomial, VariableVector, make_variables
from repro.sdp import (
    ARRAY_BACKENDS,
    ADMMConicSolver,
    ADMMSettings,
    BackendUnavailableError,
    BatchADMMSolver,
    SolveContext,
    available_array_backends,
    make_solver,
    resolve_array_backend,
    solve_conic_problems,
)


def _ball_family(cone="psd"):
    """{x'Qx <= theta} subset of {x'Qx <= 4}: certifiable iff theta <= 4."""
    x, y = make_variables("x", "y")
    xv = VariableVector([x, y])
    px = Polynomial.from_variable(x, xv)
    py = Polynomial.from_variable(y, xv)
    V = px * px + 2.0 * py * py + 0.5 * px * py
    family = ParametricInclusionFamily(V, V - 4.0, multiplier_degree=2,
                                       cone=cone)
    family.compile()
    return family


def _ladder(count):
    """θ levels spanning the feasibility threshold at 4."""
    return np.concatenate([
        np.linspace(0.1, 3.6, count // 2),
        np.linspace(4.4, 8.0, count - count // 2),
    ])


class TestBackendResolution:
    def test_numpy_always_available(self):
        names = available_array_backends()
        assert "numpy" in names
        assert set(names) <= {"numpy", "cupy", "torch"}

    def test_explicit_numpy(self):
        xb = resolve_array_backend("numpy")
        assert xb.name == "numpy"
        assert xb.device is False

    def test_auto_resolves_to_something_usable(self):
        xb = resolve_array_backend("auto")
        assert xb.name in available_array_backends()
        # resolution is a cached singleton
        assert resolve_array_backend("auto") is xb

    def test_unknown_name_raises_key_error(self):
        with pytest.raises(KeyError):
            resolve_array_backend("tensorflow")

    def test_missing_adapter_raises_backend_unavailable(self):
        for name in ("cupy", "torch"):
            if name in available_array_backends():
                continue
            with pytest.raises(BackendUnavailableError):
                resolve_array_backend(name)

    def test_settings_accept_every_registered_name(self):
        for name in ARRAY_BACKENDS:
            assert ADMMSettings(array_backend=name).array_backend == name


class TestNumpyParityWithReference:
    """Explicit ``array_backend="numpy"`` must be a no-op vs the default."""

    def test_solve_conic_problems_results_and_counters(self):
        family = _ball_family()
        problems = family.bind_many(_ladder(12))

        reference_ctx = SolveContext(name="reference")
        explicit_ctx = SolveContext(name="explicit", array_backend="numpy")
        reference = solve_conic_problems(problems, context=reference_ctx,
                                         max_iterations=4000)
        explicit = solve_conic_problems(problems, context=explicit_ctx,
                                        max_iterations=4000)
        assert explicit_ctx.solve_counters() == reference_ctx.solve_counters()
        for ref, got in zip(reference, explicit):
            assert got.status == ref.status
            assert got.iterations == ref.iterations
            np.testing.assert_allclose(got.objective, ref.objective,
                                       atol=1e-10)
            if ref.x is not None:
                np.testing.assert_allclose(got.x, ref.x, atol=1e-10)
        assert explicit[0].info["array_backend"] == "numpy"
        stats = explicit_ctx.array_backend_stats()
        assert "numpy" in stats and stats["numpy"]["solves"] == len(problems)

    def test_serial_admm_identical_iterates(self):
        problems = _ball_family().bind_many([1.0, 6.0])
        for problem in problems:
            ref = ADMMConicSolver(ADMMSettings(max_iterations=3000)).solve(problem)
            got = ADMMConicSolver(ADMMSettings(
                max_iterations=3000, array_backend="numpy")).solve(problem)
            assert got.status == ref.status
            assert got.iterations == ref.iterations
            np.testing.assert_allclose(got.x, ref.x, atol=1e-10)


class TestBatchMatchesPerProblem:
    """Acceptance: >=64 binds, batch == per-problem on every backend."""

    @pytest.mark.parametrize("backend_name", available_array_backends())
    def test_batch_of_64_binds_matches_serial(self, backend_name):
        family = _ball_family(cone="dd")  # LP cones keep the serial pass fast
        problems = family.bind_many(_ladder(64))
        settings = dict(max_iterations=4000, array_backend=backend_name)
        batch = solve_conic_problems(problems,
                                     context=SolveContext(name="batch64"),
                                     **settings)
        serial_solver = ADMMConicSolver(ADMMSettings(**settings))
        for problem, got in zip(problems, batch):
            ref = serial_solver.solve(problem)
            assert got.status == ref.status
            np.testing.assert_allclose(got.objective, ref.objective,
                                       atol=1e-10)


class TestAsyncSyncParity:
    def test_pll3_levelset_family_statuses(self):
        """Async bounded-staleness == sync statuses on the pll3 ladder.

        The level-set family of the third-order PLL: sublevel sets of a
        quadratic in the model's own state variables, constrained to the
        model's operating box — the same family the pipeline's K-section
        probes, bound across the full feasible/infeasible ladder.
        """
        model = build_third_order_model(uncertainty="none")
        xv = model.state_variables
        V = Polynomial.zero(xv)
        for i, v in enumerate(xv):
            pv = Polynomial.from_variable(v, xv)
            V = V + float(1.0 + 0.25 * i) * pv * pv
        family = ParametricInclusionFamily(V, V - 2.0, multiplier_degree=2)
        family.compile()
        problems = family.bind_many(np.linspace(0.1, 4.0, 64))

        sync = BatchADMMSolver(ADMMSettings(max_iterations=4000)) \
            .solve_batch(problems)
        async_ = BatchADMMSolver(ADMMSettings(max_iterations=4000,
                                              async_mode=True)) \
            .solve_batch(problems)
        assert [r.status for r in async_] == [r.status for r in sync]
        assert async_[0].info["async_mode"] is True
        assert sync[0].info["async_mode"] is False

    def test_async_iteration_counts_stay_within_staleness_bound(self):
        problems = _ball_family().bind_many(_ladder(16))
        bound = 10
        sync = BatchADMMSolver(ADMMSettings(max_iterations=4000)) \
            .solve_batch(problems)
        async_ = BatchADMMSolver(ADMMSettings(
            max_iterations=4000, async_mode=True, staleness_bound=bound)) \
            .solve_batch(problems)
        for ref, got in zip(sync, async_):
            assert got.status == ref.status
            # retirement only happens at check boundaries, so a problem runs
            # at most one staleness window past its synchronous stopping point
            assert ref.iterations <= got.iterations <= ref.iterations + bound


class TestDeprecationHygiene:
    def test_positional_admm_settings_warn_but_work(self):
        with pytest.warns(DeprecationWarning,
                          match="positional ADMMSettings arguments"):
            settings = ADMMSettings(2000, 2.5)
        assert settings.max_iterations == 2000
        assert settings.rho == 2.5

    def test_keyword_admm_settings_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            ADMMSettings(max_iterations=2000, rho=2.5,
                         array_backend="numpy", async_mode=True)

    def test_make_solver_type_error_lists_new_knobs(self):
        with pytest.raises(TypeError) as excinfo:
            make_solver("admm", definitely_not_a_knob=1)
        message = str(excinfo.value)
        for knob in ("array_backend", "async_mode", "staleness_bound"):
            assert knob in message
