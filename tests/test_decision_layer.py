"""Unit tests for LinExpr, ParametricPolynomial and Gram utilities."""

import numpy as np
import pytest

from repro.polynomial import (
    DecisionVariable,
    LinExpr,
    ParametricPolynomial,
    Polynomial,
    VariableVector,
    extract_sos_decomposition,
    gram_to_polynomial,
    make_variables,
    monomial_basis,
    project_to_psd,
    check_sos_numerically,
)


class TestLinExpr:
    def test_arithmetic(self):
        a = DecisionVariable("a")
        b = DecisionVariable("b")
        expr = 2 * a + b - 3
        assert expr.coefficient(a) == 2.0
        assert expr.constant == -3.0
        assert expr.evaluate({a: 1.0, b: 4.0}) == pytest.approx(3.0)

    def test_unique_ids(self):
        assert DecisionVariable("d") != DecisionVariable("d")

    def test_product_of_nonconstant_rejected(self):
        a = DecisionVariable("a")
        b = DecisionVariable("b")
        with pytest.raises(ValueError):
            _ = (a + 1) * (b + 1)

    def test_scalar_product_and_division(self):
        a = DecisionVariable("a")
        expr = (a + 1) * 2 / 4
        assert expr.coefficient(a) == pytest.approx(0.5)
        assert expr.constant == pytest.approx(0.5)

    def test_missing_assignment_raises(self):
        a = DecisionVariable("a")
        with pytest.raises(KeyError):
            LinExpr.coerce(a).evaluate({})


class TestParametricPolynomial:
    def setup_method(self):
        x, y = make_variables("x", "y")
        self.xv = VariableVector([x, y])
        self.px = Polynomial.from_variable(x, self.xv)
        self.py = Polynomial.from_variable(y, self.xv)

    def test_from_basis_and_instantiate(self):
        basis = monomial_basis(2, 1)
        dvars = [DecisionVariable(f"c{k}") for k in range(len(basis))]
        template = ParametricPolynomial.from_basis(self.xv, basis, dvars)
        values = {d: float(k + 1) for k, d in enumerate(dvars)}
        poly = template.instantiate(values)
        assert poly.degree == 1
        assert poly.constant_term() == pytest.approx(1.0)

    def test_multiplication_by_numeric_polynomial(self):
        d = DecisionVariable("d")
        template = ParametricPolynomial.coerce(d, self.xv) * self.px
        poly = template.instantiate({d: 2.0})
        assert poly.almost_equal(2 * self.px)

    def test_bilinear_product_rejected(self):
        d1 = DecisionVariable("d1")
        d2 = DecisionVariable("d2")
        p1 = ParametricPolynomial.coerce(d1, self.xv) * self.px
        p2 = ParametricPolynomial.coerce(d2, self.xv) * self.py
        with pytest.raises(ValueError):
            _ = p1 * p2

    def test_lie_derivative_is_affine_in_decisions(self):
        d = DecisionVariable("d")
        template = ParametricPolynomial.coerce(d, self.xv) * (self.px * self.px)
        lie = template.lie_derivative([-self.px, -self.py])
        poly = lie.instantiate({d: 1.0})
        assert poly.almost_equal(-2 * self.px * self.px)

    def test_decision_variables_listing(self):
        d1, d2 = DecisionVariable("d1"), DecisionVariable("d2")
        template = (ParametricPolynomial.coerce(d1, self.xv) * self.px
                    + ParametricPolynomial.coerce(d2, self.xv) * self.py)
        assert set(template.decision_variables()) == {d1, d2}

    def test_numeric_conversion(self):
        template = ParametricPolynomial.from_polynomial(self.px + 1)
        assert template.is_numeric()
        assert template.to_polynomial().almost_equal(self.px + 1)


class TestGram:
    def test_gram_roundtrip(self):
        x, y = make_variables("x", "y")
        xv = VariableVector([x, y])
        basis = monomial_basis(2, 1)
        gram = np.array([[2.0, 0.0, 0.0], [0.0, 1.0, 0.5], [0.0, 0.5, 1.0]])
        poly = gram_to_polynomial(xv, basis, gram)
        # p = 2 + x^2 + x*y + y^2
        assert poly.constant_term() == pytest.approx(2.0)
        assert poly.coefficient((1, 1)) == pytest.approx(1.0)

    def test_extract_sos_decomposition(self):
        x, y = make_variables("x", "y")
        xv = VariableVector([x, y])
        px = Polynomial.from_variable(x, xv)
        py = Polynomial.from_variable(y, xv)
        poly = px * px + 2 * px * py + py * py + 1  # (x+y)^2 + 1
        basis = monomial_basis(2, 1)
        gram = np.array([[1.0, 0.0, 0.0], [0.0, 1.0, 1.0], [0.0, 1.0, 1.0]])
        decomposition = extract_sos_decomposition(poly, gram, basis)
        assert decomposition.is_valid()
        reconstructed = sum((sq * sq for sq in decomposition.squares),
                            Polynomial.zero(xv))
        assert reconstructed.almost_equal(poly, tolerance=1e-8)

    def test_project_to_psd(self):
        matrix = np.array([[1.0, 2.0], [2.0, 1.0]])
        projected = project_to_psd(matrix)
        eigenvalues = np.linalg.eigvalsh(projected)
        assert eigenvalues.min() >= -1e-12

    def test_check_sos_numerically_detects_negativity(self):
        x, = make_variables("x")
        xv = VariableVector([x])
        px = Polynomial.from_variable(x, xv)
        assert check_sos_numerically(px * px) >= 0.0
        assert check_sos_numerically(-px * px - 1) < 0.0
