"""The pluggable Gram-cone layer: DD/SDD/PSD lowering, svec/smat round
trips, the batched 2x2 PSD projection hot path and the cache-key hygiene of
cone layouts.

The deterministic hierarchy tests exploit that a *quadratic form* has a
unique Gram matrix, so membership in DD/SDD/PSD is decided exactly by the
matrix, with no search over Gram representations:

* ``[[2, 1], [1, 2]]``            is diagonally dominant          (DD),
* ``[[1, 1.5], [1.5, 3]]``        is PSD but not DD; for 2x2, SDD = PSD,
* ``[[1, .8, .8], [.8, 1, .8], [.8, .8, 1]]`` is PSD but neither DD nor SDD
  (each diagonal unit must split 0.5/0.5 over its two pairs by symmetry and
  ``0.5 * 0.5 < 0.8^2``).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.polynomial import Polynomial, VariableVector, make_variables
from repro.sdp import (
    ConicProblemBuilder,
    cone_for_relaxation,
    make_gram_block,
    normalize_gram_cone,
    project_psd_svec,
    relaxation_ladder,
    reset_solve_counters,
    smat,
    solve_counters,
    svec,
    svec_dim,
)
from repro.sdp.cones import _project_psd_batch, smat_many, svec_many
from repro.sos import SOSProgram

small_entries = st.floats(min_value=-4.0, max_value=4.0, allow_nan=False,
                          allow_infinity=False)


def _variables(*names):
    return VariableVector(make_variables(*names))


def _quadratic_form(matrix):
    """The quadratic form ``z^T M z`` over fresh variables (unique Gram)."""
    matrix = np.asarray(matrix, dtype=float)
    n = matrix.shape[0]
    variables = _variables(*[f"x{i}" for i in range(n)])
    polys = [Polynomial.from_variable(variables[i], variables) for i in range(n)]
    total = Polynomial.zero(variables)
    for i in range(n):
        for j in range(n):
            if matrix[i, j]:
                total = total + polys[i] * polys[j] * float(matrix[i, j])
    return total


M_DD = np.array([[2.0, 1.0], [1.0, 2.0]])
M_SDD_NOT_DD = np.array([[1.0, 1.5], [1.5, 3.0]])
M_PSD_ONLY = np.array([[1.0, 0.8, 0.8], [0.8, 1.0, 0.8], [0.8, 0.8, 1.0]])

#: (matrix, cones expected to certify the quadratic form)
HIERARCHY_CASES = [
    (M_DD, {"dd", "sdd", "psd"}),
    (M_SDD_NOT_DD, {"sdd", "psd"}),
    (M_PSD_ONLY, {"psd"}),
]


class TestRelaxationNames:
    def test_mapping(self):
        assert cone_for_relaxation("dsos") == "dd"
        assert cone_for_relaxation("sdsos") == "sdd"
        assert cone_for_relaxation("chordal") == "chordal"
        assert cone_for_relaxation("sos") == "psd"

    def test_ladder(self):
        assert relaxation_ladder("auto") == ("dsos", "sdsos", "chordal", "sos")
        assert relaxation_ladder("sdsos") == ("sdsos",)
        assert relaxation_ladder("chordal") == ("chordal",)

    def test_normalization_accepts_aliases(self):
        assert normalize_gram_cone("DSOS") == "dd"
        assert normalize_gram_cone("psd") == "psd"
        with pytest.raises(ValueError):
            normalize_gram_cone("soc")
        with pytest.raises(ValueError):
            cone_for_relaxation("auto")


class TestSvecRoundTripProperties:
    """Satellite: property tests for the svec/smat bijection (single and batched)."""

    @given(st.integers(min_value=1, max_value=6), st.data())
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_matrix_to_svec(self, order, data):
        entries = data.draw(st.lists(small_entries, min_size=order * order,
                                     max_size=order * order))
        M = np.array(entries).reshape(order, order)
        M = 0.5 * (M + M.T)
        np.testing.assert_allclose(smat(svec(M), order), M, atol=1e-12)

    @given(st.integers(min_value=1, max_value=6), st.data())
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_svec_to_matrix(self, order, data):
        dim = svec_dim(order)
        entries = data.draw(st.lists(small_entries, min_size=dim, max_size=dim))
        v = np.array(entries)
        np.testing.assert_allclose(svec(smat(v, order)), v, atol=1e-12)

    @given(st.integers(min_value=1, max_value=5),
           st.integers(min_value=1, max_value=6), st.data())
    @settings(max_examples=40, deadline=None)
    def test_batched_matches_per_block(self, order, count, data):
        dim = svec_dim(order)
        entries = data.draw(st.lists(small_entries, min_size=count * dim,
                                     max_size=count * dim))
        vectors = np.array(entries).reshape(count, dim)
        matrices = smat_many(vectors, order)
        for k in range(count):
            np.testing.assert_allclose(matrices[k], smat(vectors[k], order),
                                       atol=1e-12)
        np.testing.assert_allclose(svec_many(matrices, order), vectors,
                                   atol=1e-12)

    def test_norm_preservation(self):
        rng = np.random.default_rng(3)
        M = rng.normal(size=(5, 5))
        M = 0.5 * (M + M.T)
        assert np.linalg.norm(svec(M)) == pytest.approx(
            np.linalg.norm(M, "fro"), rel=1e-12)


class TestBatchedPairProjection:
    """Satellite: batched equal-size 2x2 PSD projection vs. per-block (the
    SDSOS hot path — every pair block of every SDD Gram shares order 2)."""

    @given(st.integers(min_value=1, max_value=24), st.data())
    @settings(max_examples=40, deadline=None)
    def test_batched_2x2_projection_matches_per_block(self, count, data):
        dim = svec_dim(2)
        entries = data.draw(st.lists(small_entries, min_size=count * dim,
                                     max_size=count * dim))
        vectors = np.array(entries).reshape(count, dim)
        projected, min_eigs = _project_psd_batch(vectors, 2)
        for k in range(count):
            single, min_eig = project_psd_svec(vectors[k], 2)
            np.testing.assert_allclose(projected[k], single, atol=1e-9)
            assert min_eigs[k] == pytest.approx(min_eig, abs=1e-9)

    @given(st.integers(min_value=2, max_value=5),
           st.integers(min_value=2, max_value=8), st.data())
    @settings(max_examples=25, deadline=None)
    def test_batched_projection_matches_per_block_any_order(self, order, count,
                                                            data):
        dim = svec_dim(order)
        entries = data.draw(st.lists(small_entries, min_size=count * dim,
                                     max_size=count * dim))
        vectors = np.array(entries).reshape(count, dim)
        projected, _ = _project_psd_batch(vectors, order)
        for k in range(count):
            single, _ = project_psd_svec(vectors[k], order)
            np.testing.assert_allclose(projected[k], single, atol=1e-9)


class TestGramBlockLowering:
    """The entry functionals of each cone reconstruct the intended matrix."""

    @pytest.mark.parametrize("cone", ["psd", "sdd", "dd"])
    @pytest.mark.parametrize("order", [1, 2, 3, 4])
    def test_matrix_reconstruction_solves_target(self, cone, order, rng_seed=0):
        """Pin every Gram entry to a target DD matrix through equality rows
        and check the handle reconstructs exactly that matrix."""
        rng = np.random.default_rng(rng_seed + order)
        off = rng.uniform(-0.2, 0.2, size=(order, order))
        target = 0.5 * (off + off.T)
        np.fill_diagonal(target, 1.0)  # strongly DD -> representable in all cones

        builder = ConicProblemBuilder()
        handle = make_gram_block(builder, order, cone=cone, name="g")
        rows, i_idx, j_idx, rhs = [], [], [], []
        r = 0
        for i in range(order):
            for j in range(i, order):
                rows.append(r)
                i_idx.append(i)
                j_idx.append(j)
                rhs.append(target[i, j])
                r += 1
        triplets = handle.entry_triplets(
            np.asarray(rows), np.asarray(i_idx), np.asarray(j_idx),
            np.ones(len(rows)))
        builder.add_equality_rows(np.asarray(rhs), triplets)
        problem = builder.build()

        from repro.sdp import solve_conic_problem
        result = solve_conic_problem(problem, max_iterations=6000,
                                     eps_abs=1e-8, eps_rel=1e-8)
        assert result.status.is_success
        gram = handle.matrix(builder, result.x)
        np.testing.assert_allclose(gram, target, atol=5e-4)
        assert handle.structure_margin(builder, result.x) >= -1e-6

    def test_sdd_margin_lower_bounds_min_eigenvalue_under_shared_violations(self):
        """Negative pair-block eigenvalues on a shared diagonal index add up
        in the assembled Gram matrix; the margin must account for the sum,
        not just the worst single block."""
        builder = ConicProblemBuilder()
        handle = make_gram_block(builder, 3, cone="sdd", name="g")
        problem = builder.build()
        x = np.zeros(problem.dims.total)
        eps = 0.25
        violating = svec(np.array([[-eps, 0.0], [0.0, 0.0]]))
        for pair in (0, 1):  # pairs (0,1) and (0,2) both touch diagonal 0
            block = builder.blocks[handle.pair_ids[pair]]
            x[block.offset:block.offset + block.size] = violating
        gram = handle.matrix(builder, x)
        min_eig = float(np.linalg.eigvalsh(gram).min())
        assert min_eig == pytest.approx(-2 * eps)
        assert handle.structure_margin(builder, x) <= min_eig + 1e-12

    @pytest.mark.parametrize("cone", ["psd", "sdd", "dd"])
    def test_solved_certificate_reconstructs_polynomial(self, cone):
        poly = _quadratic_form(M_DD)
        program = SOSProgram(default_cone=cone)
        program.add_sos_constraint(poly, name="c")
        solution = program.solve(max_iterations=4000)
        assert solution.is_success
        cert = solution.certificates["c"]
        assert cert.cone == cone
        assert cert.is_numerically_sos(eig_tol=-1e-6, res_tol=1e-4)
        assert cert.structure_margin is not None
        assert cert.structure_margin >= -1e-6
        # The structure margin always lower-bounds the true minimum eigenvalue.
        assert cert.structure_margin <= cert.min_eigenvalue + 1e-9


class TestHierarchy:
    """DD ⊂ SDD ⊂ PSD, decided exactly on quadratic forms."""

    @pytest.mark.parametrize("matrix,certifying", HIERARCHY_CASES)
    def test_memberships(self, matrix, certifying):
        poly = _quadratic_form(matrix)
        for cone in ("dd", "sdd", "psd"):
            program = SOSProgram(name=f"h_{cone}", default_cone=cone)
            program.add_sos_constraint(poly, name="c")
            solution = program.solve(max_iterations=6000)
            if cone in certifying:
                assert solution.is_success, \
                    f"{cone} should certify Gram {matrix.tolist()}"
                cert = solution.certificates["c"]
                assert cert.is_numerically_sos(eig_tol=-1e-5, res_tol=1e-4)
            else:
                assert not solution.is_success, \
                    f"{cone} must not certify Gram {matrix.tolist()}"

    def test_per_constraint_cone_override(self):
        poly = _quadratic_form(M_DD)
        hard = _quadratic_form(M_SDD_NOT_DD)
        program = SOSProgram(default_cone="dd")
        program.add_sos_constraint(poly, name="cheap")
        program.add_sos_constraint(hard, name="hard", cone="psd")
        solution = program.solve(max_iterations=6000)
        assert solution.is_success
        assert solution.certificates["cheap"].cone == "dd"
        assert solution.certificates["hard"].cone == "psd"
        problem = program.compile()[0].build()
        assert problem.layout.startswith("dd:")
        assert "psd:" in problem.layout
        assert problem.layout_kind == "dd+psd"


class TestConeLayoutCacheHygiene:
    """Distinct relaxations must never share cache keys or counters."""

    def test_fingerprints_distinct_across_cones(self):
        poly = _quadratic_form(M_DD)
        fingerprints = {}
        for cone in ("dd", "sdd", "psd"):
            program = SOSProgram(name=f"fp_{cone}", default_cone=cone)
            program.add_sos_constraint(poly, name="c")
            problem = program.compile()[0].build()
            fingerprints[cone] = problem.fingerprint()
            assert problem.layout == f"{cone}:{3}"
        assert len(set(fingerprints.values())) == 3

    def test_order2_sdd_and_psd_stay_distinct(self):
        """For a 1x1 *pair* structure the SDD lowering produces numerically
        identical conic data to PSD — the layout tag must still split them."""
        variables = _variables("x")
        x = Polynomial.from_variable(variables[0], variables)
        poly = x * x * 4.0 + x * 2.0 + 1.0  # Gram over [1, x]: order 2
        problems = {}
        for cone in ("sdd", "psd"):
            program = SOSProgram(name=f"o2_{cone}", default_cone=cone)
            program.add_sos_constraint(poly, name="c")
            problems[cone] = program.compile()[0].build()
        a, b = problems["sdd"], problems["psd"]
        # Identical mathematical data (SDD = PSD for 2x2 Gram matrices)...
        assert a.dims == b.dims
        np.testing.assert_allclose(a.A.toarray(), b.A.toarray())
        np.testing.assert_allclose(a.b, b.b)
        # ...but never the same cache identity.
        assert a.layout != b.layout
        assert a.fingerprint() != b.fingerprint()

    def test_solve_counters_keyed_by_layout_kind(self):
        poly = _quadratic_form(M_DD)
        reset_solve_counters()
        try:
            for cone in ("dd", "sdd", "psd"):
                program = SOSProgram(name=f"k_{cone}", default_cone=cone)
                program.add_sos_constraint(poly, name="c")
                program.solve(max_iterations=4000)
            counters = solve_counters()
            assert counters["solved"] == 3
            assert counters["solved:dd"] == 1
            assert counters["solved:sdd"] == 1
            assert counters["solved:psd"] == 1
        finally:
            reset_solve_counters()

    def test_raw_problem_layout_kind_defaults(self):
        builder = ConicProblemBuilder()
        builder.add_nonneg_block(2, name="n")
        builder.add_equality_row({(0, 0): 1.0, (0, 1): 1.0}, 1.0)
        assert builder.build().layout_kind == "lp"
        builder2 = ConicProblemBuilder()
        builder2.add_psd_block(2, name="p")
        builder2.add_equality_row({(0, 0): 1.0}, 1.0)
        assert builder2.build().layout_kind == "psd"
