"""Unit tests for the hybrid-systems substrate (modes, arcs, simulation)."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.hybrid import (
    ArcSegment,
    HybridArc,
    HybridSimulator,
    HybridSystem,
    HybridTimeDomain,
    HybridTimeInterval,
    Mode,
    SimulationSettings,
    Transition,
    affine_equilibrium,
    find_equilibrium,
    linearize_mode,
)
from repro.polynomial import Polynomial, VariableVector, make_variables
from repro.sos import SemialgebraicSet
from repro.utils import Interval


def bouncing_thermostat():
    """A simple two-mode system: heat (dx = 1) when x <= 1, cool (dx = -1) when x >= -1."""
    x, = make_variables("x")
    xv = VariableVector([x])
    px = Polynomial.from_variable(x, xv)
    heat = Mode("heat", 1, xv, (Polynomial.constant(xv, 1.0),),
                SemialgebraicSet(xv, inequalities=(2 - px,)))
    cool = Mode("cool", 2, xv, (Polynomial.constant(xv, -1.0),),
                SemialgebraicSet(xv, inequalities=(px + 2,)), contains_equilibrium=True)
    t_up = Transition("heat", "cool", xv,
                      SemialgebraicSet(xv, inequalities=(px - 1,)), trigger=px - 1)
    t_down = Transition("cool", "heat", xv,
                        SemialgebraicSet(xv, inequalities=(-1 - px,)), trigger=-1 - px)
    return HybridSystem("thermostat", xv, (heat, cool), (t_up, t_down))


def decaying_system():
    """Single-mode linear decay dx = -x, dy = -2y with equilibrium at the origin."""
    x, y = make_variables("x", "y")
    xv = VariableVector([x, y])
    px = Polynomial.from_variable(x, xv)
    py = Polynomial.from_variable(y, xv)
    mode = Mode("decay", 1, xv, (-px, -2 * py),
                SemialgebraicSet(xv), contains_equilibrium=True)
    return HybridSystem("decay", xv, (mode,), (), equilibrium=np.zeros(2))


class TestMode:
    def test_flow_map_dimension_checked(self):
        x, y = make_variables("x", "y")
        xv = VariableVector([x, y])
        with pytest.raises(ModelError):
            Mode("bad", 1, xv, (Polynomial.constant(xv, 1.0),), SemialgebraicSet(xv))

    def test_parameterised_flow_map(self):
        x, = make_variables("x")
        u, = make_variables("u")
        xv = VariableVector([x])
        uv = VariableVector([u])
        both = xv.union(uv)
        flow = (Polynomial.from_variable(u, both) * Polynomial.from_variable(x, both) * -1.0,)
        mode = Mode("m", 1, xv, flow, SemialgebraicSet(xv), parameter_variables=uv)
        resolved = mode.flow_map_with_parameters({u: 3.0})
        assert resolved[0].evaluate([2.0]) == pytest.approx(-6.0)
        with pytest.raises(ModelError):
            mode.flow_map_with_parameters({})

    def test_vector_field_function(self):
        system = decaying_system()
        mode = system.mode("decay")
        field = mode.vector_field_function()
        np.testing.assert_allclose(field(np.array([1.0, 1.0])), [-1.0, -2.0])


class TestHybridSystem:
    def test_lookup_and_validation(self):
        system = bouncing_thermostat()
        assert system.mode("heat").index == 1
        with pytest.raises(KeyError):
            system.mode("missing")
        assert len(system.transitions_from("heat")) == 1
        assert system.equilibrium_modes()[0].name == "cool"

    def test_duplicate_mode_names_rejected(self):
        system = bouncing_thermostat()
        with pytest.raises(ModelError):
            HybridSystem("dup", system.state_variables,
                         (system.modes[0], system.modes[0]))

    def test_parameter_vertices(self):
        x, = make_variables("x")
        u, = make_variables("u")
        xv = VariableVector([x])
        uv = VariableVector([u])
        mode = Mode("m", 1, xv, (Polynomial.from_variable(x, xv) * -1.0,),
                    SemialgebraicSet(xv), parameter_variables=uv)
        system = HybridSystem("p", xv, (mode,), (), parameter_variables=uv,
                              parameter_intervals={u: Interval(1.0, 2.0)})
        vertices = system.parameter_vertex_assignments()
        assert len(vertices) == 2
        assert {v[u] for v in vertices} == {1.0, 2.0}
        assert len(system.parameter_constraints()) == 1

    def test_is_equilibrium(self):
        system = decaying_system()
        assert system.is_equilibrium([0.0, 0.0])
        assert not system.is_equilibrium([1.0, 0.0])


class TestTimeDomain:
    def test_interval_validation(self):
        with pytest.raises(ValueError):
            HybridTimeInterval(1.0, 0.5, 0)
        domain = HybridTimeDomain([HybridTimeInterval(0.0, 1.0, 0)])
        with pytest.raises(ValueError):
            domain.append(HybridTimeInterval(1.0, 2.0, 2))  # jump index skips
        domain.append(HybridTimeInterval(1.0, 2.5, 1))
        assert domain.num_jumps == 1
        assert domain.total_flow_time == pytest.approx(2.5)

    def test_arc_queries(self):
        seg1 = ArcSegment(HybridTimeInterval(0.0, 1.0, 0), "heat",
                          np.array([0.0, 1.0]), np.array([[0.0], [1.0]]))
        seg2 = ArcSegment(HybridTimeInterval(1.0, 2.0, 1), "cool",
                          np.array([1.0, 2.0]), np.array([[1.0], [0.0]]))
        arc = HybridArc([seg1, seg2])
        assert arc.num_jumps == 1
        assert arc.mode_sequence() == ("heat", "cool")
        np.testing.assert_allclose(arc.final_state, [0.0])
        assert arc.all_states().shape == (4, 1)
        assert arc.converged_to([0.0], tolerance=0.5, window=1)


class TestSimulation:
    def test_thermostat_oscillates(self):
        system = bouncing_thermostat()
        simulator = HybridSimulator(system, SimulationSettings(max_flow_time=10.0,
                                                               max_step=0.05))
        result = simulator.simulate([0.0], initial_mode="heat")
        assert result.num_jumps >= 2
        modes = result.arc.mode_sequence()
        assert "heat" in modes and "cool" in modes
        # states must remain within the hysteresis band [-1, 1] (plus tolerance)
        assert np.abs(result.arc.all_states()).max() <= 1.0 + 1e-6

    def test_decay_converges(self):
        system = decaying_system()
        simulator = HybridSimulator(system, SimulationSettings(max_flow_time=8.0,
                                                               terminal_radius=1e-3))
        result = simulator.simulate([1.0, -1.0])
        assert result.termination in ("converged", "max_flow_time")
        assert np.linalg.norm(result.final_state) < 1e-2

    def test_bad_initial_state_rejected(self):
        system = decaying_system()
        simulator = HybridSimulator(system)
        with pytest.raises(ModelError):
            simulator.simulate([1.0])


class TestEquilibrium:
    def test_linearize_and_equilibrium(self):
        system = decaying_system()
        A, b = linearize_mode(system.mode("decay"))
        np.testing.assert_allclose(A, [[-1.0, 0.0], [0.0, -2.0]])
        np.testing.assert_allclose(b, [0.0, 0.0])
        eq = find_equilibrium(system)
        np.testing.assert_allclose(eq, [0.0, 0.0], atol=1e-9)

    def test_affine_equilibrium_with_offset(self):
        x, = make_variables("x")
        xv = VariableVector([x])
        px = Polynomial.from_variable(x, xv)
        mode = Mode("m", 1, xv, (2.0 - px,), SemialgebraicSet(xv),
                    contains_equilibrium=True)
        eq = affine_equilibrium(mode)
        np.testing.assert_allclose(eq, [2.0], atol=1e-12)
