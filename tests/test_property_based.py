"""Property-based tests (hypothesis) for the core data structures and invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.polynomial import (
    Polynomial,
    VariableVector,
    make_variables,
    monomial_basis,
)
from repro.sdp import ConeDims, cone_violation, project_onto_cone, smat, svec
from repro.utils import Interval

finite_floats = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False,
                          allow_infinity=False)
small_coeffs = st.floats(min_value=-5.0, max_value=5.0, allow_nan=False,
                         allow_infinity=False)


def polynomials(num_vars=2, max_degree=3):
    basis = monomial_basis(num_vars, max_degree)
    names = [f"x{i}" for i in range(num_vars)]
    xv = VariableVector(make_variables(*names))

    @st.composite
    def build(draw):
        coeffs = draw(st.lists(small_coeffs, min_size=len(basis), max_size=len(basis)))
        return Polynomial(xv, dict(zip(basis, coeffs)))

    return build()


points2 = st.tuples(finite_floats, finite_floats)


class TestPolynomialAlgebraProperties:
    @given(polynomials(), polynomials(), points2)
    @settings(max_examples=60, deadline=None)
    def test_addition_is_pointwise(self, p, q, point):
        assert (p + q).evaluate(point) == pytest.approx(
            p.evaluate(point) + q.evaluate(point), rel=1e-9, abs=1e-7)

    @given(polynomials(), polynomials(), points2)
    @settings(max_examples=60, deadline=None)
    def test_multiplication_is_pointwise(self, p, q, point):
        assert (p * q).evaluate(point) == pytest.approx(
            p.evaluate(point) * q.evaluate(point), rel=1e-8, abs=1e-6)

    @given(polynomials(), points2)
    @settings(max_examples=60, deadline=None)
    def test_subtraction_gives_zero(self, p, point):
        assert (p - p).evaluate(point) == pytest.approx(0.0, abs=1e-12)

    @given(polynomials(max_degree=2), polynomials(max_degree=2))
    @settings(max_examples=40, deadline=None)
    def test_degree_of_product_bounded(self, p, q):
        if p.is_zero() or q.is_zero():
            return
        assert (p * q).degree <= p.degree + q.degree

    @given(polynomials(), points2)
    @settings(max_examples=40, deadline=None)
    def test_differentiation_reduces_degree(self, p, point):
        dp = p.differentiate(0)
        if not p.is_zero():
            assert dp.degree <= max(p.degree - 1, 0)

    @given(polynomials(), points2)
    @settings(max_examples=40, deadline=None)
    def test_evaluate_many_matches_evaluate(self, p, point):
        batch = p.evaluate_many(np.array([point]))
        assert batch[0] == pytest.approx(p.evaluate(point), rel=1e-9, abs=1e-9)


class TestSvecProperties:
    @given(st.integers(min_value=1, max_value=5), st.data())
    @settings(max_examples=40, deadline=None)
    def test_svec_roundtrip(self, order, data):
        entries = data.draw(st.lists(small_coeffs, min_size=order * order,
                                     max_size=order * order))
        M = np.array(entries).reshape(order, order)
        M = 0.5 * (M + M.T)
        np.testing.assert_allclose(smat(svec(M), order), M, atol=1e-10)

    @given(st.integers(min_value=1, max_value=4), st.data())
    @settings(max_examples=40, deadline=None)
    def test_cone_projection_is_idempotent_and_feasible(self, order, data):
        dim = ConeDims(free=1, nonneg=2, psd=(order,))
        entries = data.draw(st.lists(small_coeffs, min_size=dim.total,
                                     max_size=dim.total))
        v = np.array(entries)
        projected = project_onto_cone(v, dim)
        assert cone_violation(projected, dim) <= 1e-8
        np.testing.assert_allclose(project_onto_cone(projected, dim), projected,
                                   atol=1e-9)


class TestIntervalProperties:
    @given(finite_floats, finite_floats, finite_floats, finite_floats)
    @settings(max_examples=80, deadline=None)
    def test_addition_encloses_samples(self, a, b, c, d):
        i1 = Interval(min(a, b), max(a, b))
        i2 = Interval(min(c, d), max(c, d))
        total = i1 + i2
        assert total.contains(i1.center + i2.center, tolerance=1e-9)
        assert total.contains(i1.lower + i2.lower, tolerance=1e-9)

    @given(finite_floats, finite_floats, finite_floats, finite_floats)
    @settings(max_examples=80, deadline=None)
    def test_multiplication_encloses_products(self, a, b, c, d):
        i1 = Interval(min(a, b), max(a, b))
        i2 = Interval(min(c, d), max(c, d))
        product = i1 * i2
        for x in (i1.lower, i1.upper, i1.center):
            for y in (i2.lower, i2.upper, i2.center):
                assert product.contains(x * y, tolerance=1e-6)

    @given(finite_floats, finite_floats)
    @settings(max_examples=60, deadline=None)
    def test_negation_is_involutive(self, a, b):
        interval = Interval(min(a, b), max(a, b))
        twice = -(-interval)
        assert twice.lower == pytest.approx(interval.lower)
        assert twice.upper == pytest.approx(interval.upper)


import pytest  # noqa: E402  (used by pytest.approx above)
