"""Relaxation threading through the pipeline layers: stage options, the
escalation ladder, engine jobs/reports, the certificate cache and the CLI.

The expensive pll3 end-to-end ``auto`` acceptance run lives in
``test_relaxations_pll3.py``; everything here sticks to cheap workloads
(vanderpol, hand-built quadratics) so the module stays fast.
"""

import json

import pytest

from repro.__main__ import main as cli_main
from repro.core import (
    InevitabilityOptions,
    LevelSetMaximizer,
    LevelSetOptions,
    MultipleLyapunovSynthesizer,
)
from repro.engine import EngineOptions, VerificationEngine
from repro.polynomial import Polynomial, VariableVector, make_variables
from repro.scenarios import build_problem
from repro.sos import SemialgebraicSet


def _variables(*names):
    return VariableVector(make_variables(*names))


class TestOptionsPropagation:
    def test_apply_relaxation_reaches_stages(self):
        options = InevitabilityOptions()
        assert options.lyapunov.relaxation == "sos"
        options.apply_relaxation("sdsos")
        assert options.relaxation == "sdsos"
        assert options.lyapunov.relaxation == "sdsos"
        assert options.levelset.relaxation == "sdsos"
        assert options.advection.relaxation == "sdsos"
        assert options.escape.relaxation == "sdsos"

    def test_constructor_relaxation_propagates(self):
        options = InevitabilityOptions(relaxation="auto")
        assert options.lyapunov.relaxation == "auto"
        assert options.levelset.relaxation == "auto"
        assert options.advection.relaxation == "auto"
        assert options.escape.relaxation == "auto"

    def test_unknown_relaxation_rejected(self):
        with pytest.raises(ValueError):
            InevitabilityOptions().apply_relaxation("soc")


class TestLevelSetRelaxation:
    def _setup(self):
        variables = _variables("x", "y")
        x = Polynomial.from_variable(variables[0], variables)
        y = Polynomial.from_variable(variables[1], variables)
        certificate = x * x + y * y
        domain = SemialgebraicSet(variables).with_box([(-1.0, 1.0), (-1.0, 1.0)])
        return certificate, domain

    @pytest.mark.parametrize("relaxation", ["dsos", "sdsos", "sos"])
    def test_each_rung_certifies_the_disc(self, relaxation):
        certificate, domain = self._setup()
        maximizer = LevelSetMaximizer(LevelSetOptions(
            bisection_tolerance=0.05, max_bisection_iterations=10,
            initial_upper_bound=0.5, relaxation=relaxation,
            solver_settings=dict(max_iterations=4000)))
        result = maximizer.maximize("m", certificate, domain,
                                    bounds=[(-1, 1), (-1, 1)])
        assert result.relaxation == relaxation
        assert 0.0 < result.level <= 1.0 + 1e-6

    def test_auto_prefers_the_cheapest_sufficient_rung(self):
        certificate, domain = self._setup()
        maximizer = LevelSetMaximizer(LevelSetOptions(
            bisection_tolerance=0.05, max_bisection_iterations=10,
            initial_upper_bound=0.5, relaxation="auto",
            solver_settings=dict(max_iterations=4000)))
        result = maximizer.maximize("m", certificate, domain,
                                    bounds=[(-1, 1), (-1, 1)])
        # The disc-in-box query is DSOS-certifiable, so auto never escalates.
        assert result.relaxation == "dsos"
        assert result.level > 0.0

    def test_serial_strategy_also_threads_the_cone(self):
        certificate, domain = self._setup()
        maximizer = LevelSetMaximizer(LevelSetOptions(
            bisection_tolerance=0.05, max_bisection_iterations=8,
            initial_upper_bound=0.5, strategy="serial", relaxation="sdsos",
            solver_settings=dict(max_iterations=4000)))
        result = maximizer.maximize("m", certificate, domain,
                                    bounds=[(-1, 1), (-1, 1)])
        assert result.relaxation == "sdsos"
        assert result.level > 0.0


class TestLyapunovRelaxation:
    @pytest.mark.parametrize("relaxation", ["dsos", "sdsos", "auto"])
    def test_vanderpol_certificates_under_cheap_cones(self, relaxation):
        problem = build_problem("vanderpol")
        problem.options.lyapunov.domain_boxes = problem.state_bounds()
        problem.options.apply_relaxation(relaxation)
        synthesizer = MultipleLyapunovSynthesizer(
            problem.system, options=problem.options.lyapunov)
        result = synthesizer.synthesize()
        assert result.feasible
        expected = "dsos" if relaxation == "auto" else relaxation
        assert result.relaxation == expected
        certs = result.solution.certificates
        assert certs
        for cert in certs.values():
            assert cert.cone == ("dd" if expected == "dsos" else "sdd")
            assert cert.structure_margin is not None


@pytest.fixture(scope="module")
def relax_cache(tmp_path_factory):
    return str(tmp_path_factory.mktemp("relax_cache"))


@pytest.fixture(scope="module")
def vanderpol_sdsos_cold(relax_cache):
    engine = VerificationEngine(EngineOptions(jobs=1, cache_dir=relax_cache,
                                              relaxation="sdsos"))
    return engine.run(["vanderpol"])


class TestEngineRelaxation:
    def test_cold_run_records_relaxation_per_job(self, vanderpol_sdsos_cold):
        outcome = vanderpol_sdsos_cold.outcome("vanderpol")
        assert outcome.matches_expected
        by_step = {job.step: job for job in outcome.jobs}
        assert by_step["lyapunov"].relaxation == "sdsos"
        assert by_step["levelset"].relaxation == "sdsos"
        payload = vanderpol_sdsos_cold.to_json_dict()
        assert payload["engine"]["relaxation"] == "sdsos"
        job_rows = payload["scenarios"][0]["jobs"]
        assert any(row["relaxation"] == "sdsos" for row in job_rows)
        timing_rows = payload["scenarios"][0]["report"]["timings"]
        assert any(row.get("relaxation") == "sdsos" for row in timing_rows)
        # The keyed counters expose which cone actually solved.
        assert vanderpol_sdsos_cold.counters.get("solved:sdd", 0) > 0
        assert vanderpol_sdsos_cold.counters.get("solved:psd", 0) == 0

    def test_warm_cache_zero_solves_same_relaxation(self, relax_cache,
                                                    vanderpol_sdsos_cold):
        warm = VerificationEngine(EngineOptions(
            jobs=1, cache_dir=relax_cache, relaxation="sdsos")).run(["vanderpol"])
        assert warm.counters["solved"] == 0
        assert warm.counters["cache_hit"] > 0
        assert warm.outcome("vanderpol").statuses == \
            vanderpol_sdsos_cold.outcome("vanderpol").statuses

    def test_distinct_relaxations_never_share_cache_entries(self, relax_cache,
                                                            vanderpol_sdsos_cold):
        """A warm sdsos cache must not serve the sos (or dsos) pipeline."""
        sos_run = VerificationEngine(EngineOptions(
            jobs=1, cache_dir=relax_cache, relaxation="sos")).run(["vanderpol"])
        assert sos_run.counters["solved"] > 0
        assert sos_run.counters.get("solved:psd", 0) > 0
        assert sos_run.counters.get("cache_hit:sdd", 0) == 0


class TestScenarioSpecRelaxation:
    def test_registered_default_is_sos(self):
        from repro.scenarios import get_scenario
        spec = get_scenario("vanderpol")
        assert spec.relaxation == "sos"
        assert spec.summary_row()["relaxation"] == "sos"

    def test_register_scenario_validates_relaxation(self):
        from repro.scenarios.registry import register_scenario

        with pytest.raises(ValueError):
            register_scenario(name="bad_relax_scenario", description="x",
                              relaxation="qp")(lambda spec: None)

    def test_spec_relaxation_propagates_into_problem(self):
        from repro.scenarios import get_scenario
        import dataclasses

        spec = dataclasses.replace(get_scenario("vanderpol"),
                                   relaxation="dsos")
        problem = spec.build()
        assert problem.options.relaxation == "dsos"
        assert problem.options.lyapunov.relaxation == "dsos"


class TestCLIRelaxation:
    def test_list_json_includes_relaxation(self, capsys):
        assert cli_main(["list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert all("relaxation" in row for row in payload["scenarios"])

    def test_verify_relaxation_flag(self, tmp_path, capsys):
        json_path = tmp_path / "report.json"
        code = cli_main([
            "verify", "vanderpol", "--relaxation", "dsos",
            "--cache-dir", str(tmp_path / "cache"),
            "--json", str(json_path),
        ])
        capsys.readouterr()
        assert code == 0
        payload = json.loads(json_path.read_text())
        assert payload["engine"]["relaxation"] == "dsos"
        jobs = payload["scenarios"][0]["jobs"]
        assert any(job["relaxation"] == "dsos" for job in jobs)

    def test_verify_rejects_unknown_relaxation(self, tmp_path):
        with pytest.raises(SystemExit):
            cli_main(["verify", "vanderpol", "--relaxation", "qp",
                      "--cache-dir", str(tmp_path / "cache")])
