"""Tour of the SOS programming substrate, independent of the PLL models.

Demonstrates the general-purpose pieces the verification pipeline is built on:
polynomial algebra, SOS feasibility, lower-bound optimisation, the
S-procedure, Lemma-1 sub-level-set inclusion, and escape certificates.

Run with:  python examples/sos_toolbox_tour.py
"""

from __future__ import annotations

from repro.core import EscapeCertificateSynthesizer, EscapeOptions, check_sublevel_inclusion
from repro.polynomial import Polynomial, VariableVector, make_variables
from repro.sos import SemialgebraicSet, SOSProgram, add_positivity_on_set, ball_constraint


def main() -> None:
    x, y = make_variables("x", "y")
    xv = VariableVector([x, y])
    px = Polynomial.from_variable(x, xv)
    py = Polynomial.from_variable(y, xv)

    # 1. Is (x - 1)^2 + (y + 2)^2 + 0.5 a sum of squares?  (yes)
    program = SOSProgram("is_sos")
    program.add_sos_constraint((px - 1) ** 2 + (py + 2) ** 2 + 0.5, name="p")
    solution = program.solve()
    print(f"1. SOS feasibility: status={solution.status.value}, "
          f"Gram min eigenvalue={solution.certificates['p'].min_eigenvalue:.3e}")

    # 2. Certified lower bound of a polynomial: maximise gamma with p - gamma SOS.
    program = SOSProgram("lower_bound")
    gamma = program.new_variable("gamma")
    p = px ** 2 - 2 * px + 3 + (px * py - 1) ** 2
    program.add_sos_constraint(p - gamma, name="bound")
    program.maximize(gamma)
    solution = program.solve()
    print(f"2. certified lower bound of p: gamma* = {solution.value(gamma):.4f}")

    # 3. S-procedure: x(4 - x) >= 0 holds on [0, 4] although it is not globally SOS.
    program = SOSProgram("sproc")
    domain = SemialgebraicSet(xv, inequalities=(px, 4 - px))
    add_positivity_on_set(program, px * (4 - px), domain)
    print(f"3. positivity on a segment via the S-procedure: "
          f"{program.solve().status.value}")

    # 4. Lemma-1 inclusion of sub-level sets (unit disc inside radius-2 disc).
    inner = px ** 2 + py ** 2 - 1.0
    outer = px ** 2 + py ** 2 - 4.0
    inclusion = check_sublevel_inclusion(inner, outer)
    print(f"4. {{x^2+y^2<=1}} inside {{x^2+y^2<=4}}: certified={inclusion.holds}")

    # 5. Escape certificate: constant drift leaves every bounded region.
    field = (Polynomial.constant(xv, 1.0), Polynomial.zero(xv))
    region = SemialgebraicSet(xv, inequalities=(ball_constraint(xv, 1.0),))
    escape = EscapeCertificateSynthesizer(EscapeOptions(certificate_degree=2)).synthesize(
        "drift", field, region, bounds=[(-1, 1), (-1, 1)])
    print(f"5. escape certificate for pure drift: E = "
          f"{escape.certificate.to_string(3)} "
          f"(escape time bound {escape.escape_time_bound([(-1, 1), (-1, 1)]):.1f})")


if __name__ == "__main__":
    main()
