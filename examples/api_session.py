"""Tour of the public API: isolated, concurrent verification sessions.

Two :class:`repro.api.VerificationSession` objects — one full-SOS, one
SDSOS, each with its own certificate cache — verify the time-reversed Van
der Pol scenario *concurrently* from a thread pool.  Because every piece of
cross-cutting state (cache, counters, backend, relaxation) lives on the
session instead of in module globals, the two runs cannot clobber each
other, and their counters account for exactly their own work.

Run with:  PYTHONPATH=src python examples/api_session.py
"""

import tempfile
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.api import VerificationSession, verify


def run_session(cache_root: Path, relaxation: str):
    timings = []
    session = VerificationSession(
        cache_dir=cache_root / relaxation,
        relaxation=relaxation,
        name=f"vdp-{relaxation}",
        timing_hook=lambda step, seconds, detail: timings.append(
            (step, seconds, detail)),
    )
    report = verify("vanderpol", session=session)
    return session, report, timings


def main() -> None:
    cache_root = Path(tempfile.mkdtemp(prefix="repro-api-session-"))

    # --- concurrent verification, one thread per session -----------------
    with ThreadPoolExecutor(max_workers=2) as pool:
        futures = {relaxation: pool.submit(run_session, cache_root, relaxation)
                   for relaxation in ("sos", "sdsos")}
        results = {relaxation: future.result()
                   for relaxation, future in futures.items()}

    for relaxation, (session, report, timings) in results.items():
        print(f"== {session.name} ==")
        print(f"  property 1: {report.property_one.status.value}")
        for mode, level, degree in report.property_one.invariant.summary_rows():
            print(f"  {mode}: degree-{degree} certificate, level c = {level:.4g}")
        print(f"  solve counters:   {session.solve_counters()}")
        print(f"  compile counters: {session.compile_counters()}")
        print(f"  cache stats:      {session.cache_stats()}")
        print(f"  timed steps:      {[step for step, _, _ in timings]}")

    # --- warm replay: same cache directory, fresh session ----------------
    warm = VerificationSession(cache_dir=cache_root / "sos",
                               relaxation="sos", name="vdp-warm")
    verify("vanderpol", session=warm)
    counters = warm.solve_counters()
    print(f"== warm replay == {counters}")
    assert counters["solved"] == 0, "warm cache must perform zero SDP solves"

    # Session state never leaked into the deprecated process-global counters.
    from repro.sdp import solve_counters

    print(f"process-default counters (untouched): {solve_counters()}")


if __name__ == "__main__":
    main()
