"""Quickstart: synthesise Lyapunov certificates for the third-order CP PLL.

Builds the paper's third-order charge-pump PLL verification model (Table 1
parameters, normalised difference coordinates), synthesises one quadratic
Lyapunov certificate per PFD mode with the SOS layer, and cross-checks the
result along a simulated trajectory of the switching abstraction.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import simulate_relay_abstraction
from repro.core import LyapunovSynthesisOptions, MultipleLyapunovSynthesizer
from repro.pll import RegionOfInterest, build_third_order_model


def main() -> None:
    model = build_third_order_model(
        region=RegionOfInterest(voltage_bound=3.0, phase_bound=1.5),
        uncertainty="pump",
    )
    print(model.describe())
    print()

    options = LyapunovSynthesisOptions(
        certificate_degree=2,
        positivity_margin=0.05,
        lock_tube_radius=0.6,
        validate_samples=1500,
        validation_tolerance=5e-2,
        solver_settings=dict(max_iterations=8000),
    )
    synthesizer = MultipleLyapunovSynthesizer(model.system, options,
                                              region_box=model.state_bounds())
    result = synthesizer.synthesize()

    print(f"Synthesis finished in {result.synthesis_time:.1f} s "
          f"(solver status: {result.solution.status.value})")
    print(f"Sampling validation passed: {result.feasible}")
    for mode_name, certificate in result.certificates.items():
        print(f"  V_{mode_name}(v1, v2, e) = {certificate.certificate.to_string(4)}")

    # Cross-check: the certificate of the active mode should trend downwards
    # along a trajectory of the sign-of-e switching abstraction.
    if result.certificates:
        trajectory = simulate_relay_abstraction(model, [1.5, -1.0, 0.8],
                                                duration=30.0, dt=1e-3)
        V2 = result.certificates["mode2"].certificate
        values = V2.evaluate_many(trajectory[:: 200])
        print("\nV_mode2 sampled along a start-up trajectory "
              "(should trend towards its minimum):")
        print("  " + " -> ".join(f"{v:.3f}" for v in values[:12]))
        final_voltages = trajectory[-1][:2]
        print(f"final voltage deviation: {np.linalg.norm(final_voltages):.3f} V "
              f"(lock tube radius used in the certificate: {options.lock_tube_radius} V)")


if __name__ == "__main__":
    main()
