"""Tour of the distributed fleet: master, two workers, shared cache.

A :class:`repro.fleet.FleetMaster` and two :class:`repro.fleet.FleetWorker`
instances run *inside this process* (on threads) — the wire protocol is the
same length-prefixed JSON that ``python -m repro serve`` / ``repro worker``
speak across machines, so everything below transfers verbatim to a real
multi-host deployment; only the thread spawning becomes process spawning.

The demo shows the fleet's three headline behaviours:

1. a cold interactive submission streams per-job events while the workers
   split the scenario DAG between them against one shared certificate cache;
2. a warm resubmission is answered entirely from the master's job memo —
   zero SDP solves anywhere in the fleet, no worker even sees a job;
3. the in-process engine (``repro verify --fleet``) transparently executes
   on the same fleet through its ``DistributedExecutor``.

Run with:  PYTHONPATH=src python examples/fleet_demo.py
"""

import tempfile
import time

from repro.engine import EngineOptions, VerificationEngine
from repro.fleet import FleetClient, FleetMaster, FleetWorker, render_status_text


def main() -> None:
    cache_dir = tempfile.mkdtemp(prefix="repro-fleet-demo-")

    # --- bring up the fleet: one master, two workers ---------------------
    master = FleetMaster(port=0, cache_dir=cache_dir)   # port=0: pick a free one
    master.start()
    workers = [FleetWorker(master.address, name=f"worker{i}") for i in (1, 2)]
    threads = [worker.start_thread() for worker in workers]
    time.sleep(0.3)  # let both workers register
    print(f"fleet master on {master.host}:{master.port}, "
          f"{len(workers)} workers attached, cache at {cache_dir}\n")

    client = FleetClient(master.address)

    # --- 1. cold interactive submission, streaming job events ------------
    def show(event):
        if event.get("event") == "job":
            print(f"  [{event['state']:>6}] {event['job_id']} "
                  f"{event.get('status', '')}")

    print("== cold submission (watch mode) ==")
    done = client.submit(["vanderpol"], watch=True, on_event=show)
    counters = done["report"]["engine"]["counters"]
    print(f"ok={done['ok']}  solves={counters.get('solved', 0)} "
          f"cache_hits={counters.get('cache_hit', 0)}\n")

    # --- 2. warm resubmission: answered from the job memo -----------------
    print("== warm resubmission ==")
    warm = client.submit(["vanderpol"])
    counters = warm["report"]["engine"]["counters"]
    assert counters.get("solved", 0) == 0, "warm fleet must perform 0 solves"
    print(f"ok={warm['ok']}  solves=0 (served from the master's job memo)\n")

    # --- 3. the engine targeting the fleet (repro verify --fleet) ---------
    print("== engine run through DistributedExecutor ==")
    options = EngineOptions(fleet=f"{master.host}:{master.port}")
    report = VerificationEngine(options).run(["vanderpol"])
    print(f"all_match_expected={report.all_match_expected}  "
          f"solves={report.counters.get('solved', 0)}\n")

    # --- fleet status, as `repro fleet-status` would print it --------------
    print("\n".join(render_status_text(client.status())))

    # --- graceful teardown: workers deregister, master persists its queue -
    for worker in workers:
        worker.stop()
    for thread in threads:
        thread.join(timeout=10)
    master.stop()
    print("\nfleet stopped cleanly")


if __name__ == "__main__":
    main()
