"""Start-up inevitability study for the third-order CP PLL.

The motivating problem of the paper: for which initial voltages/phase errors
does the PLL *inevitably* reach lock?  This example runs the complete
verification methodology (multiple Lyapunov certificates -> attractive
invariant -> bounded advection -> escape certificates) on the third-order
model with a reduced budget and prints the resulting report, then spot-checks
the conclusion by simulating a handful of start-up states.

Run with:  python examples/startup_inevitability_3rd.py
"""

from __future__ import annotations


from repro.analysis import check_invariant_convergence, random_initial_states
from repro.core import (
    AdvectionOptions,
    EscapeOptions,
    InevitabilityOptions,
    InevitabilityVerifier,
    LevelSetOptions,
    LyapunovSynthesisOptions,
)
from repro.pll import RegionOfInterest, build_third_order_model


def main() -> None:
    model = build_third_order_model(
        region=RegionOfInterest(voltage_bound=4.0, phase_bound=2.0),
        uncertainty="pump",
    )
    options = InevitabilityOptions(
        lyapunov=LyapunovSynthesisOptions(
            certificate_degree=2, positivity_margin=0.05, lock_tube_radius=0.6,
            validate_samples=1200, validation_tolerance=5e-2,
            solver_settings=dict(max_iterations=8000)),
        levelset=LevelSetOptions(bisection_tolerance=0.05, initial_upper_bound=5.0,
                                 solver_settings=dict(max_iterations=4000)),
        advection=AdvectionOptions(time_step=0.1, max_iterations=12,
                                   inclusion_check_every=2,
                                   solver_settings=dict(max_iterations=4000)),
        escape=EscapeOptions(certificate_degree=2,
                             solver_settings=dict(max_iterations=4000)),
    )

    verifier = InevitabilityVerifier(model, options)
    report = verifier.verify()
    print(report.render_text())

    invariant = report.property_one.invariant
    if invariant is None:
        print("\nNo attractive invariant under this budget — increase the solver "
              "iteration limit or the certificate degree and re-run.")
        return

    print("\nSpot-checking the claim with simulated start-up transients:")
    initial_states = random_initial_states(model, count=6, scale=0.7, seed=3)
    findings = check_invariant_convergence(model, invariant, initial_states,
                                           duration=60.0, dt=2e-3)
    if not findings:
        print(f"  all {len(initial_states)} sampled start-up states converged to the "
              "lock neighbourhood and never left X1 after entering it")
    else:
        for finding in findings:
            print(f"  COUNTEREXAMPLE CANDIDATE: {finding}")


if __name__ == "__main__":
    main()
