"""Behavioural lock-acquisition study for the fourth-order CP PLL.

Uses the event-driven behavioural simulator (explicit reference and divider
phases, real tri-state PFD edge logic) to study lock acquisition of the
paper's fourth-order PLL: starting from detuned loop-filter voltages and a
phase offset, the loop must re-acquire lock.  The trace is then projected
into the verification model's difference coordinates to show how behavioural
trajectories relate to the sets the SOS pipeline reasons about.

Run with:  python examples/lock_acquisition_behavioral_4th.py
"""

from __future__ import annotations

import numpy as np

from repro.pll import BehavioralPLLSimulator, PLLParameters, build_fourth_order_model


def main() -> None:
    parameters = PLLParameters.fourth_order_paper()
    simulator = BehavioralPLLSimulator(parameters)
    model = build_fourth_order_model(parameters)

    print(parameters.describe())
    print(f"\nnominal lock voltage: {simulator.lock_voltage:.2f} V "
          f"(VCO gain {parameters.k_vco.center / 1e6:.0f} MHz/V, "
          f"divider {parameters.divider.center:.0f})")

    scenarios = [
        ("small phase step", [0.0, 0.0, 0.0, 0.3]),
        ("voltage disturbance", [1.5, 1.5, 1.5, 0.0]),
        ("combined start-up offset", [2.0, 2.0, 2.0, -0.4]),
    ]
    for label, difference_state in scenarios:
        trace = simulator.simulate_from_difference_state(
            difference_state, duration_cycles=400, record_stride=25,
            max_step_cycles=0.2)
        final_error = trace.final_phase_error()
        final_voltage = trace.control_voltage[-1] - simulator.lock_voltage
        time_in_pump = float(np.mean(trace.pfd_state != 0))
        print(f"\nScenario: {label}")
        print(f"  initial (dv1, dv2, dv3, e) = {difference_state}")
        print(f"  final phase error:        {final_error:+.4f} cycles")
        print(f"  final control deviation:  {final_voltage:+.4f} V")
        print(f"  fraction of time pumping: {time_in_pump:.2%}")
        print(f"  settled (|dv| < 50 mV, |e| < 0.05): {trace.settled()}")

        projected = trace.to_difference_coordinates()
        outer = model.outer_set_polynomial()
        inside = outer.evaluate_many(projected) <= 0.0
        print(f"  samples inside the verification outer set X2: {inside.mean():.1%}")


if __name__ == "__main__":
    main()
