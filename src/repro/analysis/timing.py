"""Small timing utilities shared by the benchmark harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple


@dataclass
class StageTimer:
    """Accumulates named wall-clock measurements (used to build Table 2 rows)."""

    measurements: Dict[str, List[float]] = field(default_factory=dict)

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.measurements.setdefault(name, []).append(time.perf_counter() - start)

    def total(self, name: str) -> float:
        return sum(self.measurements.get(name, []))

    def rows(self) -> List[Tuple[str, float]]:
        return [(name, sum(values)) for name, values in self.measurements.items()]

    def grand_total(self) -> float:
        return sum(sum(values) for values in self.measurements.values())
