"""Simulation-based falsification and cross-validation of verification claims.

The SOS pipeline is only as trustworthy as its numerical certificates, so the
library ships an independent check: simulate the system (verification-model
abstraction or full behavioural PLL), project the trajectories into the
certificate coordinates, and test the claims directly —

* trajectories starting inside the attractive invariant must converge to the
  lock neighbourhood and must never leave the invariant;
* the per-mode Lyapunov certificates must be non-increasing along in-mode
  flow segments (up to the configured tolerance);
* trajectories starting in the outer set must reach the invariant within the
  bounded time implied by the advection iterations.

A failed check is reported as a :class:`FalsificationFinding` with the
offending trajectory so it can be inspected or turned into a regression test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.attractive import AttractiveInvariant
from ..pll.model import PLLVerificationModel
from ..polynomial import PolynomialStack

RelayTrajectory = np.ndarray  # shape (steps, n_states)


@dataclass
class FalsificationFinding:
    """One violated claim discovered by simulation."""

    claim: str
    initial_state: np.ndarray
    worst_value: float
    step_index: int

    def __str__(self) -> str:
        return (f"{self.claim}: violation {self.worst_value:.3e} at step {self.step_index} "
                f"from x0={np.round(self.initial_state, 4).tolist()}")


def simulate_relay_abstraction(model: PLLVerificationModel,
                               initial_state: Sequence[float],
                               duration: float = 60.0,
                               dt: float = 1e-3) -> RelayTrajectory:
    """Forward-Euler simulation of the sign-of-``e`` switching abstraction.

    This is the executable counterpart of the verification model: the charge
    pump is up whenever the phase difference is positive and down whenever it
    is negative (mode 1 is a measure-zero sliding surface in this abstraction).
    """
    fields = model.nominal_fields()
    variables = model.state_variables
    # One stacked evaluator per mode: the whole vector field is a single
    # array contraction per step instead of a dictionary walk per component.
    up = PolynomialStack(fields["mode2"], variables)
    down = PolynomialStack(fields["mode3"], variables)
    idle = PolynomialStack(fields["mode1"], variables)
    state = np.asarray(initial_state, dtype=float).copy()
    steps = int(duration / dt)
    trajectory = np.empty((steps + 1, state.shape[0]))
    trajectory[0] = state
    for k in range(steps):
        e = state[-1]
        if e > 0:
            field = up
        elif e < 0:
            field = down
        else:
            field = idle
        state = state + dt * field.evaluate(state)
        trajectory[k + 1] = state
    return trajectory


def check_invariant_convergence(
    model: PLLVerificationModel,
    invariant: AttractiveInvariant,
    initial_states: Optional[Sequence[Sequence[float]]] = None,
    duration: float = 80.0,
    dt: float = 1e-3,
    lock_radius: float = 0.6,
    tolerance: float = 1e-4,
    count: int = 8,
    rng: Optional[np.random.Generator] = None,
    seed: int = 0,
    check_invariance: bool = True,
    tube_radius: Optional[float] = None,
) -> List[FalsificationFinding]:
    """Simulate from each initial state and test convergence / invariance claims.

    ``initial_states`` may be omitted, in which case ``count`` states are
    drawn inside the outer set with the explicit ``rng`` (or ``seed``), making
    a run reproducible end to end without the caller materialising states.

    The invariance claim tests the *union* of the per-mode level sets, which
    is strictly stronger than what per-mode certificates with independent
    levels imply (the union is only guaranteed invariant when the levels are
    cross-mode compatible).  ``check_invariance=False`` skips it;
    ``tube_radius`` exempts samples whose voltage deviation lies inside the
    practical-stability tube, where the decrease condition was deliberately
    not enforced.
    """
    if initial_states is None:
        initial_states = random_initial_states(model, count, rng=rng, seed=seed)
    findings: List[FalsificationFinding] = []
    for x0 in initial_states:
        trajectory = simulate_relay_abstraction(model, x0, duration=duration, dt=dt)
        inside_mask = invariant.contains_points(trajectory)
        if check_invariance and inside_mask.any():
            first_inside = int(np.argmax(inside_mask))
            later = trajectory[first_inside::25]
            margins = invariant.membership_margins(later)
            if tube_radius is not None:
                off_tube = np.linalg.norm(later[:, :-1], axis=1) > tube_radius
                margins = margins[off_tube]
            worst = float(margins.max()) if margins.size else 0.0
            if worst > tolerance:
                findings.append(FalsificationFinding(
                    claim="forward invariance of X1",
                    initial_state=np.asarray(x0, dtype=float),
                    worst_value=worst,
                    step_index=first_inside,
                ))
        final_voltages = trajectory[-1][:-1]
        if np.linalg.norm(final_voltages) > lock_radius:
            findings.append(FalsificationFinding(
                claim="convergence to the lock neighbourhood",
                initial_state=np.asarray(x0, dtype=float),
                worst_value=float(np.linalg.norm(final_voltages)),
                step_index=trajectory.shape[0] - 1,
            ))
    return findings


def check_certificate_decrease_along_trajectories(
    model: PLLVerificationModel,
    certificates: Dict[str, "np.ndarray"],
    initial_states: Optional[Sequence[Sequence[float]]] = None,
    duration: float = 20.0,
    dt: float = 1e-3,
    tolerance: float = 1e-3,
    count: int = 8,
    rng: Optional[np.random.Generator] = None,
    seed: int = 0,
    tube_radius: float = 0.55,
) -> List[FalsificationFinding]:
    """Check that each mode's certificate is non-increasing during that mode's flow.

    ``certificates`` maps mode name to a numeric polynomial (the synthesised
    Lyapunov function).  Only samples where the trajectory stays in one mode
    between consecutive steps are compared, and only outside the
    practical-stability tube of radius ``tube_radius`` (where the decrease
    condition was enforced).  As with :func:`check_invariant_convergence`,
    omitted ``initial_states`` are drawn with the explicit ``rng``/``seed``.
    """
    if initial_states is None:
        initial_states = random_initial_states(model, count, rng=rng, seed=seed)
    findings: List[FalsificationFinding] = []
    for x0 in initial_states:
        trajectory = simulate_relay_abstraction(model, x0, duration=duration, dt=dt)
        e_values = trajectory[:, -1]
        voltage_norm = np.linalg.norm(trajectory[:, :-1], axis=1)
        for mode_name, certificate in certificates.items():
            if mode_name == "mode2":
                mask = e_values > 1e-6
            elif mode_name == "mode3":
                mask = e_values < -1e-6
            else:
                mask = np.abs(e_values) <= 1e-6
            # Only count decrease where the practical-stability tube does not apply.
            mask = mask & (voltage_norm > tube_radius)
            if mask.sum() < 3:
                continue
            values = certificate.evaluate_many(trajectory[mask])
            increases = np.diff(values)
            consecutive = np.diff(np.where(mask)[0]) == 1
            increases = increases[consecutive]
            if increases.size and float(increases.max()) > tolerance:
                findings.append(FalsificationFinding(
                    claim=f"V non-increasing along {mode_name} flow",
                    initial_state=np.asarray(x0, dtype=float),
                    worst_value=float(increases.max()),
                    step_index=int(np.argmax(increases)),
                ))
    return findings


def run_falsification(
    model: PLLVerificationModel,
    invariant: AttractiveInvariant,
    certificates: Optional[Dict[str, "np.ndarray"]] = None,
    initial_states: Optional[Sequence[Sequence[float]]] = None,
    count: int = 8,
    duration: float = 40.0,
    dt: float = 1e-3,
    lock_radius: float = 0.6,
    tolerance: float = 1e-3,
    rng: Optional[np.random.Generator] = None,
    seed: int = 0,
    check_invariance: bool = False,
    tube_radius: Optional[float] = None,
) -> List[FalsificationFinding]:
    """Run the full simulation cross-check with one explicit random stream.

    Draws ``count`` initial states once and feeds the *same* states to the
    invariant-convergence and certificate-decrease checks, so a campaign is
    fully determined by (``rng`` | ``seed``) — the property the verification
    engine relies on for reproducible runs.

    ``check_invariance`` defaults to off here: the engine's per-mode levels
    are maximised independently, so the union-invariance claim is stronger
    than the synthesised conditions guarantee (see
    :func:`check_invariant_convergence`).  The claims checked by default —
    convergence to the lock neighbourhood and per-mode certificate decrease
    along in-mode flow — are exactly the ones the certificates assert.

    ``initial_states`` overrides the sampling entirely; callers that must
    distinguish "no findings" from "no states could be sampled" (the engine)
    draw the states themselves and pass them in.
    """
    if initial_states is None:
        rng = rng if rng is not None else np.random.default_rng(seed)
        initial_states = random_initial_states(model, count, rng=rng)
    states = np.asarray(initial_states, dtype=float)
    if states.shape[0] == 0:
        return []
    findings = check_invariant_convergence(
        model, invariant, states, duration=duration, dt=dt,
        lock_radius=lock_radius, tolerance=tolerance,
        check_invariance=check_invariance, tube_radius=tube_radius)
    if certificates:
        findings.extend(check_certificate_decrease_along_trajectories(
            model, certificates, states, duration=min(duration, 20.0), dt=dt,
            tolerance=tolerance,
            tube_radius=tube_radius if tube_radius is not None else 0.55))
    return findings


def random_initial_states(model: PLLVerificationModel, count: int,
                          scale: float = 0.8, seed: int = 0,
                          rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Random initial states inside the outer ellipsoid (scaled by ``scale``).

    An explicit ``rng`` takes precedence over ``seed``, letting callers thread
    one generator through a whole falsification campaign.
    """
    rng = rng if rng is not None else np.random.default_rng(seed)
    bounds = model.state_bounds()
    states = []
    outer = model.outer_set_polynomial(margin=scale)
    attempts = 0
    while len(states) < count and attempts < 100 * count:
        candidate = np.array([rng.uniform(lo, hi) for lo, hi in bounds]) * scale
        if outer.evaluate(candidate) <= 0.0:
            states.append(candidate)
        attempts += 1
    return np.array(states) if states else np.zeros((0, len(bounds)))
