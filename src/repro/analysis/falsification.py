"""Simulation-based falsification and cross-validation of verification claims.

The SOS pipeline is only as trustworthy as its numerical certificates, so the
library ships an independent check: simulate the system (verification-model
abstraction or full behavioural PLL), project the trajectories into the
certificate coordinates, and test the claims directly —

* trajectories starting inside the attractive invariant must converge to the
  lock neighbourhood and must never leave the invariant;
* the per-mode Lyapunov certificates must be non-increasing along in-mode
  flow segments (up to the configured tolerance);
* trajectories starting in the outer set must reach the invariant within the
  bounded time implied by the advection iterations.

A failed check is reported as a :class:`FalsificationFinding` with the
offending trajectory so it can be inspected or turned into a regression test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.attractive import AttractiveInvariant
from ..pll.model import PLLVerificationModel
from ..polynomial import PolynomialStack

RelayTrajectory = np.ndarray  # shape (steps, n_states)


@dataclass
class FalsificationFinding:
    """One violated claim discovered by simulation."""

    claim: str
    initial_state: np.ndarray
    worst_value: float
    step_index: int

    def __str__(self) -> str:
        return (f"{self.claim}: violation {self.worst_value:.3e} at step {self.step_index} "
                f"from x0={np.round(self.initial_state, 4).tolist()}")


def simulate_relay_abstraction(model: PLLVerificationModel,
                               initial_state: Sequence[float],
                               duration: float = 60.0,
                               dt: float = 1e-3) -> RelayTrajectory:
    """Forward-Euler simulation of the sign-of-``e`` switching abstraction.

    This is the executable counterpart of the verification model: the charge
    pump is up whenever the phase difference is positive and down whenever it
    is negative (mode 1 is a measure-zero sliding surface in this abstraction).
    """
    fields = model.nominal_fields()
    variables = model.state_variables
    # One stacked evaluator per mode: the whole vector field is a single
    # array contraction per step instead of a dictionary walk per component.
    up = PolynomialStack(fields["mode2"], variables)
    down = PolynomialStack(fields["mode3"], variables)
    idle = PolynomialStack(fields["mode1"], variables)
    state = np.asarray(initial_state, dtype=float).copy()
    steps = int(duration / dt)
    trajectory = np.empty((steps + 1, state.shape[0]))
    trajectory[0] = state
    for k in range(steps):
        e = state[-1]
        if e > 0:
            field = up
        elif e < 0:
            field = down
        else:
            field = idle
        state = state + dt * field.evaluate(state)
        trajectory[k + 1] = state
    return trajectory


def check_invariant_convergence(
    model: PLLVerificationModel,
    invariant: AttractiveInvariant,
    initial_states: Sequence[Sequence[float]],
    duration: float = 80.0,
    dt: float = 1e-3,
    lock_radius: float = 0.6,
    tolerance: float = 1e-4,
) -> List[FalsificationFinding]:
    """Simulate from each initial state and test convergence / invariance claims."""
    findings: List[FalsificationFinding] = []
    for x0 in initial_states:
        trajectory = simulate_relay_abstraction(model, x0, duration=duration, dt=dt)
        inside_mask = invariant.contains_points(trajectory)
        if inside_mask.any():
            first_inside = int(np.argmax(inside_mask))
            later = trajectory[first_inside:]
            margins = invariant.membership_margins(later[::25])
            worst = float(margins.max())
            if worst > tolerance:
                findings.append(FalsificationFinding(
                    claim="forward invariance of X1",
                    initial_state=np.asarray(x0, dtype=float),
                    worst_value=worst,
                    step_index=first_inside,
                ))
        final_voltages = trajectory[-1][:-1]
        if np.linalg.norm(final_voltages) > lock_radius:
            findings.append(FalsificationFinding(
                claim="convergence to the lock neighbourhood",
                initial_state=np.asarray(x0, dtype=float),
                worst_value=float(np.linalg.norm(final_voltages)),
                step_index=trajectory.shape[0] - 1,
            ))
    return findings


def check_certificate_decrease_along_trajectories(
    model: PLLVerificationModel,
    certificates: Dict[str, "np.ndarray"],
    initial_states: Sequence[Sequence[float]],
    duration: float = 20.0,
    dt: float = 1e-3,
    tolerance: float = 1e-3,
) -> List[FalsificationFinding]:
    """Check that each mode's certificate is non-increasing during that mode's flow.

    ``certificates`` maps mode name to a numeric polynomial (the synthesised
    Lyapunov function).  Only samples where the trajectory stays in one mode
    between consecutive steps are compared.
    """
    findings: List[FalsificationFinding] = []
    for x0 in initial_states:
        trajectory = simulate_relay_abstraction(model, x0, duration=duration, dt=dt)
        e_values = trajectory[:, -1]
        voltage_norm = np.linalg.norm(trajectory[:, :-1], axis=1)
        for mode_name, certificate in certificates.items():
            if mode_name == "mode2":
                mask = e_values > 1e-6
            elif mode_name == "mode3":
                mask = e_values < -1e-6
            else:
                mask = np.abs(e_values) <= 1e-6
            # Only count decrease where the practical-stability tube does not apply.
            mask = mask & (voltage_norm > 0.55)
            if mask.sum() < 3:
                continue
            values = certificate.evaluate_many(trajectory[mask])
            increases = np.diff(values)
            consecutive = np.diff(np.where(mask)[0]) == 1
            increases = increases[consecutive]
            if increases.size and float(increases.max()) > tolerance:
                findings.append(FalsificationFinding(
                    claim=f"V non-increasing along {mode_name} flow",
                    initial_state=np.asarray(x0, dtype=float),
                    worst_value=float(increases.max()),
                    step_index=int(np.argmax(increases)),
                ))
    return findings


def random_initial_states(model: PLLVerificationModel, count: int,
                          scale: float = 0.8, seed: int = 0) -> np.ndarray:
    """Random initial states inside the outer ellipsoid (scaled by ``scale``)."""
    rng = np.random.default_rng(seed)
    bounds = model.state_bounds()
    states = []
    outer = model.outer_set_polynomial(margin=scale)
    attempts = 0
    while len(states) < count and attempts < 100 * count:
        candidate = np.array([rng.uniform(lo, hi) for lo, hi in bounds]) * scale
        if outer.evaluate(candidate) <= 0.0:
            states.append(candidate)
        attempts += 1
    return np.array(states) if states else np.zeros((0, len(bounds)))
