"""2-D projections of polynomial sub-level sets (Figures 2-5 of the paper).

The paper plots attractive invariants and advected level sets projected onto
coordinate planes such as ``(v1, v2)`` or ``(v2, phi_ref - phi_vco)``.  Two
projection flavours are provided:

* **slice** — remaining coordinates fixed (default: at the equilibrium);
* **shadow** — a point of the plane belongs to the projection if *some*
  value of the remaining coordinates (within the state box) puts the full
  state inside the set; computed on a grid by sampling the hidden coordinates.

The output is a boolean occupancy grid plus extracted boundary points, which
is what the benchmark harness prints as the "figure" data series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..polynomial import Polynomial, VariableVector


@dataclass
class ProjectionGrid:
    """Occupancy grid of a projected set on a coordinate plane."""

    axis_names: Tuple[str, str]
    x_values: np.ndarray
    y_values: np.ndarray
    inside: np.ndarray            # boolean, shape (len(y_values), len(x_values))
    kind: str = "slice"

    @property
    def occupancy(self) -> float:
        """Fraction of grid cells inside the projected set."""
        return float(self.inside.mean()) if self.inside.size else 0.0

    def extent(self) -> Tuple[float, float, float, float]:
        """(x_min, x_max, y_min, y_max) of the occupied cells (NaN when empty)."""
        if not np.any(self.inside):
            return (float("nan"),) * 4
        ys, xs = np.where(self.inside)
        return (float(self.x_values[xs.min()]), float(self.x_values[xs.max()]),
                float(self.y_values[ys.min()]), float(self.y_values[ys.max()]))

    def boundary_points(self, max_points: int = 200) -> np.ndarray:
        """Approximate boundary cells of the occupancy grid (for plotting/printing)."""
        if not np.any(self.inside):
            return np.empty((0, 2))
        inside = self.inside
        boundary = inside & ~(
            np.roll(inside, 1, axis=0) & np.roll(inside, -1, axis=0)
            & np.roll(inside, 1, axis=1) & np.roll(inside, -1, axis=1)
        )
        ys, xs = np.where(boundary)
        points = np.column_stack([self.x_values[xs], self.y_values[ys]])
        if points.shape[0] > max_points:
            stride = points.shape[0] // max_points + 1
            points = points[::stride]
        return points

    def row_summary(self) -> List[Tuple[float, float, float]]:
        """Per-row (y, x_min, x_max) spans of the occupied region."""
        rows = []
        for j, y in enumerate(self.y_values):
            occupied = np.where(self.inside[j])[0]
            if occupied.size == 0:
                continue
            rows.append((float(y), float(self.x_values[occupied.min()]),
                         float(self.x_values[occupied.max()])))
        return rows


def _axis_indices(variables: VariableVector, axes: Tuple[str, str]) -> Tuple[int, int]:
    names = list(variables.names)
    for axis in axes:
        if axis not in names:
            raise ValueError(f"axis {axis!r} is not a state variable ({names})")
    return names.index(axes[0]), names.index(axes[1])


def project_sublevel_set(
    polynomial: Polynomial,
    variables: VariableVector,
    axes: Tuple[str, str],
    bounds: Sequence[Tuple[float, float]],
    level: float = 0.0,
    resolution: int = 61,
    kind: str = "slice",
    fixed_values: Optional[Sequence[float]] = None,
    hidden_samples: int = 15,
    seed: int = 0,
) -> ProjectionGrid:
    """Project ``{polynomial <= level}`` onto a coordinate plane.

    ``bounds`` gives the full-state box used both for the grid ranges of the
    plane axes and for sampling the hidden coordinates in ``"shadow"`` mode.
    """
    ix, iy = _axis_indices(variables, axes)
    n = len(variables)
    poly = polynomial.with_variables(variables)
    x_values = np.linspace(bounds[ix][0], bounds[ix][1], resolution)
    y_values = np.linspace(bounds[iy][0], bounds[iy][1], resolution)
    inside = np.zeros((resolution, resolution), dtype=bool)

    hidden_indices = [k for k in range(n) if k not in (ix, iy)]
    if kind == "slice":
        base = np.array(fixed_values, dtype=float) if fixed_values is not None \
            else np.zeros(n)
        for j, y in enumerate(y_values):
            points = np.tile(base, (resolution, 1))
            points[:, ix] = x_values
            points[:, iy] = y
            inside[j] = poly.evaluate_many(points) <= level
    elif kind == "shadow":
        rng = np.random.default_rng(seed)
        hidden_box = [bounds[k] for k in hidden_indices]
        samples = np.zeros((max(hidden_samples, 1), len(hidden_indices)))
        for c, (lo, hi) in enumerate(hidden_box):
            samples[:, c] = rng.uniform(lo, hi, size=samples.shape[0])
        if len(hidden_indices):
            samples[0, :] = 0.0  # always include the equilibrium slice
        for j, y in enumerate(y_values):
            for i, x in enumerate(x_values):
                points = np.zeros((samples.shape[0], n))
                points[:, ix] = x
                points[:, iy] = y
                for c, k in enumerate(hidden_indices):
                    points[:, k] = samples[:, c]
                inside[j, i] = bool(np.any(poly.evaluate_many(points) <= level))
    else:
        raise ValueError(f"unknown projection kind {kind!r}")

    return ProjectionGrid(axis_names=axes, x_values=x_values, y_values=y_values,
                          inside=inside, kind=kind)


def project_union(
    polynomials: Sequence[Polynomial],
    variables: VariableVector,
    axes: Tuple[str, str],
    bounds: Sequence[Tuple[float, float]],
    resolution: int = 61,
    kind: str = "slice",
    **kwargs,
) -> ProjectionGrid:
    """Projection of a union of 0-sub-level sets (e.g. the attractive invariant)."""
    grids = [project_sublevel_set(p, variables, axes, bounds, resolution=resolution,
                                  kind=kind, **kwargs) for p in polynomials]
    combined = grids[0].inside.copy()
    for grid in grids[1:]:
        combined |= grid.inside
    return ProjectionGrid(axis_names=axes, x_values=grids[0].x_values,
                          y_values=grids[0].y_values, inside=combined, kind=kind)
