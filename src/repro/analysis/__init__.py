"""Analysis utilities: level-set projections, falsification, timing."""

from .projection import ProjectionGrid, project_sublevel_set, project_union
from .falsification import (
    FalsificationFinding,
    check_certificate_decrease_along_trajectories,
    check_invariant_convergence,
    random_initial_states,
    run_falsification,
    simulate_relay_abstraction,
)
from .timing import StageTimer

__all__ = [
    "ProjectionGrid",
    "project_sublevel_set",
    "project_union",
    "FalsificationFinding",
    "simulate_relay_abstraction",
    "check_invariant_convergence",
    "check_certificate_decrease_along_trajectories",
    "random_initial_states",
    "run_falsification",
    "StageTimer",
]
