"""Library-wide exception hierarchy."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ModelError(ReproError):
    """A hybrid-system or PLL model is malformed."""


class CertificateError(ReproError):
    """A certificate synthesis step failed or produced an invalid certificate."""


class VerificationInconclusive(ReproError):
    """The methodology could not establish the truth value of a property.

    This mirrors the paper's explicit "No Answer" outcome: SOS relaxation is
    sound but incomplete, so failure to find a certificate is *not* a
    counterexample.
    """
