"""Discrete transitions (jumps) of a hybrid system."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ModelError
from ..polynomial import Polynomial, PolynomialStack, VariableVector
from ..sos import SemialgebraicSet


@dataclass
class Transition:
    """A jump ``source -> target`` with guard set and polynomial reset map.

    Attributes
    ----------
    source, target:
        Mode names.
    guard_set:
        Semialgebraic jump set ``D`` on which the transition is enabled
        (used by the verification conditions, e.g. Theorem 1 condition 4).
    reset_map:
        Tuple of polynomials giving ``x+ = R(x)``; ``None`` means identity.
    trigger:
        Scalar polynomial used by the simulator for event detection: the jump
        fires when ``trigger`` crosses zero from below.  Defaults to the first
        guard inequality when present.
    """

    source: str
    target: str
    state_variables: VariableVector
    guard_set: SemialgebraicSet
    reset_map: Optional[Tuple[Polynomial, ...]] = None
    trigger: Optional[Polynomial] = None
    name: str = ""

    def __post_init__(self) -> None:
        if self.reset_map is not None:
            self.reset_map = tuple(self.reset_map)
            if len(self.reset_map) != len(self.state_variables):
                raise ModelError(
                    f"transition {self.source}->{self.target}: reset map has "
                    f"{len(self.reset_map)} components for {len(self.state_variables)} states"
                )
        if self.trigger is None and self.guard_set.inequalities:
            self.trigger = self.guard_set.inequalities[0]
        if not self.name:
            self.name = f"{self.source}->{self.target}"

    # ------------------------------------------------------------------
    @property
    def is_identity_reset(self) -> bool:
        if self.reset_map is None:
            return True
        for i, component in enumerate(self.reset_map):
            expected = Polynomial.from_variable(self.state_variables[i], self.state_variables)
            if not component.with_variables(self.state_variables).almost_equal(expected):
                return False
        return True

    def reset_polynomials(self) -> Tuple[Polynomial, ...]:
        """The reset map, materialising the identity when none was given."""
        if self.reset_map is not None:
            return self.reset_map
        return tuple(
            Polynomial.from_variable(v, self.state_variables) for v in self.state_variables
        )

    def _reset_stack(self) -> PolynomialStack:
        # Cached stacked evaluator of the reset map (jumps can fire thousands
        # of times per simulation).
        stack = getattr(self, "_reset_stack_cache", None)
        if stack is None:
            stack = PolynomialStack(
                [poly.with_variables(self.state_variables)
                 for poly in self.reset_polynomials()],
                self.state_variables,
            )
            object.__setattr__(self, "_reset_stack_cache", stack)
        return stack

    def apply_reset(self, state: Sequence[float]) -> np.ndarray:
        state = np.asarray(state, dtype=float)
        if self.reset_map is None:
            return state.copy()
        return self._reset_stack().evaluate(state)

    def apply_reset_many(self, states: np.ndarray) -> np.ndarray:
        """Vectorised reset for an ``(m, n)`` array of pre-jump states."""
        states = np.atleast_2d(np.asarray(states, dtype=float))
        if self.reset_map is None:
            return states.copy()
        return self._reset_stack().evaluate_many(states)

    def is_enabled(self, state: Sequence[float], tolerance: float = 1e-9) -> bool:
        return self.guard_set.contains(state, tolerance=tolerance)

    def describe(self) -> str:
        reset = "identity" if self.is_identity_reset else "polynomial"
        return f"Transition({self.name}: guard with {len(self.guard_set.inequalities)} ineqs, reset={reset})"
