"""The hybrid system container ``H = (C, F, D, G)`` used by the paper."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ModelError
from ..polynomial import Polynomial, Variable, VariableVector
from ..utils import Interval
from .mode import Mode
from .transition import Transition


@dataclass
class HybridSystem:
    """A hybrid dynamical system with polynomial flow and jump maps.

    The container mirrors equation (1) of the paper: a family of flow maps
    ``f_q`` over flow sets ``C_q`` and jump (reset) maps over jump sets
    ``D``, plus uncertain parameters constrained to a box ``U``.
    """

    name: str
    state_variables: VariableVector
    modes: Tuple[Mode, ...]
    transitions: Tuple[Transition, ...] = ()
    parameter_variables: VariableVector = field(default_factory=lambda: VariableVector([]))
    parameter_intervals: Dict[Variable, Interval] = field(default_factory=dict)
    equilibrium: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.modes = tuple(self.modes)
        self.transitions = tuple(self.transitions)
        if not self.modes:
            raise ModelError("a hybrid system needs at least one mode")
        names = [m.name for m in self.modes]
        if len(set(names)) != len(names):
            raise ModelError(f"duplicate mode names: {names}")
        mode_names = set(names)
        for transition in self.transitions:
            if transition.source not in mode_names or transition.target not in mode_names:
                raise ModelError(
                    f"transition {transition.name} references unknown modes "
                    f"({transition.source} -> {transition.target})"
                )
        for mode in self.modes:
            if mode.state_variables != self.state_variables:
                raise ModelError(
                    f"mode {mode.name!r} uses a different state variable ordering"
                )
        for pvar in self.parameter_variables:
            if pvar not in self.parameter_intervals:
                raise ModelError(f"no interval provided for parameter {pvar}")
        if self.equilibrium is not None:
            self.equilibrium = np.asarray(self.equilibrium, dtype=float)
            if self.equilibrium.shape != (len(self.state_variables),):
                raise ModelError("equilibrium dimension does not match state variables")

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        return len(self.state_variables)

    @property
    def mode_names(self) -> Tuple[str, ...]:
        return tuple(m.name for m in self.modes)

    def mode(self, name: str) -> Mode:
        for mode in self.modes:
            if mode.name == name:
                return mode
        raise KeyError(f"unknown mode {name!r}; available: {self.mode_names}")

    def transitions_from(self, mode_name: str) -> Tuple[Transition, ...]:
        return tuple(t for t in self.transitions if t.source == mode_name)

    def transitions_into(self, mode_name: str) -> Tuple[Transition, ...]:
        return tuple(t for t in self.transitions if t.target == mode_name)

    def equilibrium_modes(self) -> Tuple[Mode, ...]:
        """Modes whose flow set contains the equilibrium (the index set I_0)."""
        return tuple(m for m in self.modes if m.contains_equilibrium)

    # ------------------------------------------------------------------
    # Parameter handling
    # ------------------------------------------------------------------
    def nominal_parameters(self) -> Dict[Variable, float]:
        return {p: self.parameter_intervals[p].center for p in self.parameter_variables}

    def sample_parameters(self, rng: np.random.Generator) -> Dict[Variable, float]:
        return {p: float(self.parameter_intervals[p].sample(rng, 1)[0])
                for p in self.parameter_variables}

    def parameter_vertex_assignments(self) -> List[Dict[Variable, float]]:
        """All corner combinations of the parameter box (for vertex enumeration)."""
        assignments: List[Dict[Variable, float]] = [{}]
        for p in self.parameter_variables:
            interval = self.parameter_intervals[p]
            values = [interval.lower] if interval.is_degenerate() else [interval.lower,
                                                                        interval.upper]
            assignments = [{**a, p: v} for a in assignments for v in values]
        return assignments

    def parameter_constraints(self) -> Tuple[Polynomial, ...]:
        """Interval constraints ``(u - lo)(hi - u) >= 0`` over the parameter variables."""
        constraints = []
        full = self.state_variables.union(self.parameter_variables)
        for p in self.parameter_variables:
            interval = self.parameter_intervals[p]
            if interval.is_degenerate():
                continue
            u = Polynomial.from_variable(p, full)
            constraints.append((u - interval.lower) * (interval.upper - u))
        return tuple(constraints)

    # ------------------------------------------------------------------
    # Numeric checks
    # ------------------------------------------------------------------
    def active_modes(self, state: Sequence[float], tolerance: float = 1e-9) -> Tuple[Mode, ...]:
        return tuple(m for m in self.modes if m.admits(state, tolerance=tolerance))

    def enabled_transitions(self, mode_name: str, state: Sequence[float],
                            tolerance: float = 1e-9) -> Tuple[Transition, ...]:
        return tuple(t for t in self.transitions_from(mode_name)
                     if t.is_enabled(state, tolerance=tolerance))

    def is_equilibrium(self, state: Sequence[float], tolerance: float = 1e-7,
                       parameters: Optional[Mapping[Variable, float]] = None) -> bool:
        """Definition 3: some mode's flow map vanishes at the state."""
        parameters = parameters or self.nominal_parameters()
        for mode in self.modes:
            if not mode.admits(state, tolerance=max(tolerance, 1e-6)):
                continue
            drift = mode.drift_at(state, parameters)
            if np.linalg.norm(drift) <= tolerance:
                return True
        return False

    def describe(self) -> str:
        lines = [f"HybridSystem({self.name!r})",
                 f"  states: {list(self.state_variables.names)}"]
        if len(self.parameter_variables):
            lines.append(
                "  parameters: "
                + ", ".join(f"{p.name} in {self.parameter_intervals[p]}"
                            for p in self.parameter_variables)
            )
        for mode in self.modes:
            lines.append("  " + mode.describe())
        for transition in self.transitions:
            lines.append("  " + transition.describe())
        if self.equilibrium is not None:
            lines.append(f"  equilibrium: {np.round(self.equilibrium, 6).tolist()}")
        return "\n".join(lines)
