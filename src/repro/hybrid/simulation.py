"""Event-driven numerical simulation of hybrid systems.

The simulator integrates the active mode's ODE with ``scipy.integrate
.solve_ivp`` and uses event functions (the transition trigger polynomials) to
detect guard crossings, then applies the reset map and continues in the
target mode.  Output is a :class:`~repro.hybrid.time_domain.HybridArc` over a
hybrid time domain, matching the formal solution concept of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np
from scipy.integrate import solve_ivp

from ..exceptions import ModelError
from ..polynomial import PolynomialStack, Variable
from ..utils import get_logger
from .system import HybridSystem
from .time_domain import ArcSegment, HybridArc, HybridTimeInterval

LOGGER = get_logger("hybrid.simulation")


@dataclass
class SimulationSettings:
    """Options for :class:`HybridSimulator`."""

    max_flow_time: float = 100.0
    max_jumps: int = 10000
    max_step: float = 0.05
    rtol: float = 1e-8
    atol: float = 1e-10
    min_dwell_time: float = 1e-9
    samples_per_segment: int = 0  # 0 = use the integrator's own steps
    terminal_radius: Optional[float] = None  # stop early when near the equilibrium


@dataclass
class SimulationResult:
    """A hybrid arc plus bookkeeping about why the simulation ended."""

    arc: HybridArc
    termination: str               # "max_flow_time" | "max_jumps" | "converged" | "blocked"
    parameters: Dict[Variable, float] = field(default_factory=dict)

    @property
    def final_state(self) -> np.ndarray:
        return self.arc.final_state

    @property
    def num_jumps(self) -> int:
        return self.arc.num_jumps


class HybridSimulator:
    """Simulate a :class:`HybridSystem` from a given initial condition."""

    def __init__(self, system: HybridSystem,
                 settings: Optional[SimulationSettings] = None):
        self.system = system
        self.settings = settings or SimulationSettings()

    # ------------------------------------------------------------------
    def _initial_mode(self, state: np.ndarray, mode_name: Optional[str]) -> str:
        if mode_name is not None:
            return mode_name
        active = self.system.active_modes(state, tolerance=1e-7)
        if not active:
            raise ModelError(
                f"initial state {state.tolist()} is outside every mode's flow set"
            )
        return active[0].name

    def _make_events(self, mode_name: str):
        """Build solve_ivp event functions from the outgoing transition triggers.

        All triggers of the mode are fused into one :class:`PolynomialStack`;
        since the integrator evaluates every event at every accepted step, the
        stacked values are computed once per state and shared by the event
        callables through a one-slot memo.
        """
        transitions = [t for t in self.system.transitions_from(mode_name)
                       if t.trigger is not None]
        if not transitions:
            return transitions, []
        stack = PolynomialStack(
            [t.trigger.with_variables(self.system.state_variables)
             for t in transitions],
            self.system.state_variables,
        )
        memo: Dict[str, object] = {"key": None, "values": None}

        def trigger_values(t: float, y: np.ndarray) -> np.ndarray:
            key = (t, y.tobytes())
            if memo["key"] != key:
                memo["key"] = key
                memo["values"] = stack.evaluate(y)
            return memo["values"]

        events = []
        for index in range(len(transitions)):
            def event(t, y, _index=index):
                return float(trigger_values(t, np.asarray(y, dtype=float))[_index])

            event.terminal = True
            event.direction = 1.0  # fire when the trigger crosses zero from below
            events.append(event)
        return transitions, events

    # ------------------------------------------------------------------
    def simulate(
        self,
        initial_state: Sequence[float],
        initial_mode: Optional[str] = None,
        parameters: Optional[Mapping[Variable, float]] = None,
        max_flow_time: Optional[float] = None,
    ) -> SimulationResult:
        settings = self.settings
        horizon = max_flow_time if max_flow_time is not None else settings.max_flow_time
        state = np.asarray(initial_state, dtype=float)
        if state.shape != (self.system.num_states,):
            raise ModelError(
                f"initial state has dimension {state.shape}, expected ({self.system.num_states},)"
            )
        params = dict(parameters) if parameters is not None else self.system.nominal_parameters()
        mode_name = self._initial_mode(state, initial_mode)

        arc = HybridArc()
        t_now = 0.0
        jumps = 0
        termination = "max_flow_time"

        while t_now < horizon - 1e-12:
            mode = self.system.mode(mode_name)
            vector_field = mode.vector_field_function(params)
            transitions, events = self._make_events(mode_name)

            def rhs(t, y):
                return vector_field(y)

            t_span = (t_now, horizon)
            t_eval = None
            if settings.samples_per_segment:
                t_eval = np.linspace(t_now, horizon, settings.samples_per_segment)
            solution = solve_ivp(
                rhs, t_span, state, events=events or None, max_step=settings.max_step,
                rtol=settings.rtol, atol=settings.atol, dense_output=False, t_eval=t_eval,
            )
            if not solution.success:  # pragma: no cover - integrator failure is exceptional
                raise ModelError(f"ODE integration failed in mode {mode_name}: {solution.message}")

            times = solution.t
            states = solution.y.T
            if times.size == 0 or times[-1] <= t_now + 1e-15:
                # Zero-duration flow (state already on a guard): record a point segment.
                times = np.array([t_now])
                states = state.reshape(1, -1)

            interval = HybridTimeInterval(t_start=t_now, t_end=float(times[-1]), jump_index=jumps)
            arc.append(ArcSegment(interval=interval, mode=mode_name, times=times, states=states))

            state = states[-1].copy()
            t_now = float(times[-1])

            if settings.terminal_radius is not None and self.system.equilibrium is not None:
                if np.linalg.norm(state - self.system.equilibrium) <= settings.terminal_radius:
                    termination = "converged"
                    break

            fired_index = None
            if solution.status == 1 and events:
                for k, event_times in enumerate(solution.t_events):
                    if event_times.size > 0:
                        fired_index = k
                        break
            if fired_index is None:
                termination = "max_flow_time"
                break

            transition = transitions[fired_index]
            state = transition.apply_reset(state)
            mode_name = transition.target
            jumps += 1
            if jumps >= settings.max_jumps:
                termination = "max_jumps"
                break
        else:  # pragma: no cover - loop guard exit
            termination = "max_flow_time"

        return SimulationResult(arc=arc, termination=termination, parameters=params)

    # ------------------------------------------------------------------
    def simulate_batch(
        self,
        initial_states: Sequence[Sequence[float]],
        parameters: Optional[Mapping[Variable, float]] = None,
        max_flow_time: Optional[float] = None,
    ) -> List[SimulationResult]:
        """Simulate many initial conditions with shared settings."""
        return [self.simulate(x0, parameters=parameters, max_flow_time=max_flow_time)
                for x0 in initial_states]
