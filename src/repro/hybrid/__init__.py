"""Hybrid dynamical systems substrate (Goebel-Sanfelice-Teel formalism)."""

from .mode import Mode
from .transition import Transition
from .system import HybridSystem
from .time_domain import ArcSegment, HybridArc, HybridTimeDomain, HybridTimeInterval
from .simulation import HybridSimulator, SimulationResult, SimulationSettings
from .equilibrium import (
    affine_equilibrium,
    equilibrium_residual,
    find_equilibrium,
    linearize_mode,
)

__all__ = [
    "Mode",
    "Transition",
    "HybridSystem",
    "HybridTimeInterval",
    "HybridTimeDomain",
    "ArcSegment",
    "HybridArc",
    "HybridSimulator",
    "SimulationSettings",
    "SimulationResult",
    "find_equilibrium",
    "affine_equilibrium",
    "linearize_mode",
    "equilibrium_residual",
]
