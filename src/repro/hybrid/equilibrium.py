"""Equilibrium computation for hybrid systems with affine mode dynamics."""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import least_squares

from ..exceptions import ModelError
from ..polynomial import Variable
from .mode import Mode
from .system import HybridSystem


def linearize_mode(mode: Mode,
                   parameters: Optional[Mapping[Variable, float]] = None,
                   point: Optional[Sequence[float]] = None) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(A, b)`` with ``f(x) ≈ A (x - point) + b`` around ``point``.

    For affine flow maps the result is exact and independent of ``point``.
    """
    n = mode.num_states
    point = np.zeros(n) if point is None else np.asarray(point, dtype=float)
    field = mode.flow_map_with_parameters(parameters or {})
    A = np.zeros((n, n))
    b = np.zeros(n)
    for i, component in enumerate(field):
        b[i] = component.evaluate(point)
        for j in range(n):
            A[i, j] = component.differentiate(j).evaluate(point)
    return A, b


def affine_equilibrium(mode: Mode,
                       parameters: Optional[Mapping[Variable, float]] = None) -> np.ndarray:
    """Solve ``A x + c = 0`` for a mode with affine dynamics.

    For rank-deficient ``A`` (common in PLL models where the phase difference
    does not feed back within a mode) the minimum-norm solution is returned.
    """
    A, b_at_zero = linearize_mode(mode, parameters, point=None)
    # f(x) = A x + c with c = f(0)
    c = b_at_zero
    solution, *_ = np.linalg.lstsq(A, -c, rcond=None)
    return solution


def find_equilibrium(system: HybridSystem,
                     mode_name: Optional[str] = None,
                     parameters: Optional[Mapping[Variable, float]] = None,
                     initial_guess: Optional[Sequence[float]] = None) -> np.ndarray:
    """Numerically locate an equilibrium point (Definition 3 of the paper).

    Searches the requested mode (or the declared equilibrium modes) for a
    state where the flow map vanishes, using a least-squares root find seeded
    by the affine solution.
    """
    parameters = parameters or system.nominal_parameters()
    candidates = [system.mode(mode_name)] if mode_name else list(system.equilibrium_modes())
    if not candidates:
        candidates = list(system.modes)
    last_error: Optional[str] = None
    for mode in candidates:
        field = mode.flow_map_with_parameters(parameters)

        def residual(x):
            return np.array([poly.evaluate(x) for poly in field])

        guess = np.asarray(initial_guess, dtype=float) if initial_guess is not None \
            else affine_equilibrium(mode, parameters)
        result = least_squares(residual, guess, xtol=1e-14, ftol=1e-14, gtol=1e-14)
        if result.success and np.linalg.norm(result.fun) < 1e-8:
            return result.x
        last_error = f"mode {mode.name!r}: residual {np.linalg.norm(result.fun):.3e}"
    raise ModelError(f"no equilibrium found ({last_error})")


def equilibrium_residual(system: HybridSystem, state: Sequence[float],
                         parameters: Optional[Mapping[Variable, float]] = None) -> float:
    """Smallest flow-map norm over all modes admitting the state."""
    parameters = parameters or system.nominal_parameters()
    best = np.inf
    for mode in system.modes:
        drift = mode.drift_at(state, parameters)
        best = min(best, float(np.linalg.norm(drift)))
    return best
