"""Modes (discrete states) of a hybrid system.

A mode bundles a polynomial flow map ``f_q`` with the flow set ``C_q`` on
which that map governs the continuous evolution (the framework of Goebel,
Sanfelice & Teel used by the paper).  Flow maps may mention *parameter*
variables in addition to state variables; the verification layer quantifies
over those through interval constraints, while the simulator substitutes
sampled numeric values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ModelError
from ..polynomial import Polynomial, PolynomialStack, Variable, VariableVector
from ..sos import SemialgebraicSet


@dataclass
class Mode:
    """One discrete mode of a hybrid system.

    Parameters
    ----------
    name:
        Human-readable identifier (e.g. ``"mode1"`` for UP=0/DOWN=0).
    index:
        Integer index used by multiple-Lyapunov bookkeeping.
    state_variables:
        The continuous state variables (shared across all modes).
    flow_map:
        Tuple of polynomials, one per state variable, possibly also involving
        parameter variables.
    flow_set:
        Semialgebraic description of where flowing in this mode is allowed.
    parameter_variables:
        Variables of ``flow_map`` that are uncertain parameters rather than
        states (empty for parameter-free models).
    contains_equilibrium:
        True when the locked equilibrium lies in this mode's flow set (the
        set ``I_0`` of Theorem 1).
    """

    name: str
    index: int
    state_variables: VariableVector
    flow_map: Tuple[Polynomial, ...]
    flow_set: SemialgebraicSet
    parameter_variables: VariableVector = field(default_factory=lambda: VariableVector([]))
    contains_equilibrium: bool = False

    def __post_init__(self) -> None:
        self.flow_map = tuple(self.flow_map)
        if len(self.flow_map) != len(self.state_variables):
            raise ModelError(
                f"mode {self.name!r}: flow map has {len(self.flow_map)} components "
                f"for {len(self.state_variables)} state variables"
            )
        allowed = set(self.state_variables.names) | set(self.parameter_variables.names)
        for i, component in enumerate(self.flow_map):
            used = set(component.variables.names)
            if not used <= allowed:
                raise ModelError(
                    f"mode {self.name!r}: flow map component {i} uses variables "
                    f"{sorted(used - allowed)} that are neither states nor parameters"
                )

    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        return len(self.state_variables)

    @property
    def has_parameters(self) -> bool:
        return len(self.parameter_variables) > 0

    def full_variables(self) -> VariableVector:
        """States followed by parameters."""
        return self.state_variables.union(self.parameter_variables)

    # ------------------------------------------------------------------
    def flow_map_with_parameters(self,
                                 parameter_values: Mapping[Variable, float]
                                 ) -> Tuple[Polynomial, ...]:
        """Substitute numeric parameter values, leaving a state-only vector field."""
        if not self.has_parameters:
            return tuple(f.with_variables(self.state_variables) for f in self.flow_map)
        missing = [p for p in self.parameter_variables if p not in parameter_values]
        if missing:
            raise ModelError(f"mode {self.name!r}: missing parameter values for {missing}")
        substituted = []
        for component in self.flow_map:
            subs = {p: float(parameter_values[p]) for p in self.parameter_variables
                    if p in component.variables}
            poly = component.substitute(subs) if subs else component
            substituted.append(poly.with_variables(self.state_variables))
        return tuple(substituted)

    def vector_field_function(
        self, parameter_values: Optional[Mapping[Variable, float]] = None
    ) -> Callable[[np.ndarray], np.ndarray]:
        """A numeric callable ``x -> f_q(x)`` for the simulator.

        All flow-map components are fused into one :class:`PolynomialStack`,
        so each right-hand-side evaluation inside the ODE integrator is a
        single array contraction.
        """
        field_polys = self.flow_map_with_parameters(parameter_values or {})
        stack = PolynomialStack(field_polys, self.state_variables)
        return stack.evaluate

    def drift_at(self, state: Sequence[float],
                 parameter_values: Optional[Mapping[Variable, float]] = None) -> np.ndarray:
        return self.vector_field_function(parameter_values)(np.asarray(state, dtype=float))

    def admits(self, state: Sequence[float], tolerance: float = 1e-9) -> bool:
        """Numeric membership in the flow set (state-only part)."""
        return self.flow_set.contains(state, tolerance=tolerance)

    def describe(self) -> str:
        return (f"Mode({self.name!r}, index={self.index}, "
                f"{self.num_states} states, "
                f"{len(self.flow_set.inequalities)} flow-set inequalities, "
                f"equilibrium={'yes' if self.contains_equilibrium else 'no'})")
