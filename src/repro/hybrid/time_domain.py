"""Hybrid time domains and hybrid arcs (Definitions 1 and 2 of the paper).

A hybrid time domain is a union of intervals ``[t_j, t_{j+1}] x {j}``; a
hybrid arc attaches a state trajectory to each interval.  These classes store
simulation output in exactly that structure so that properties phrased over
hybrid time (inevitability, bounded reachability) can be checked directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class HybridTimeInterval:
    """One piece ``[t_start, t_end] x {jump_index}`` of a hybrid time domain."""

    t_start: float
    t_end: float
    jump_index: int

    def __post_init__(self) -> None:
        if self.t_end < self.t_start:
            raise ValueError(
                f"interval end {self.t_end} precedes start {self.t_start}"
            )
        if self.jump_index < 0:
            raise ValueError("jump index must be non-negative")

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    def contains(self, t: float, tolerance: float = 1e-12) -> bool:
        return self.t_start - tolerance <= t <= self.t_end + tolerance


class HybridTimeDomain:
    """An ordered collection of :class:`HybridTimeInterval` pieces."""

    def __init__(self, intervals: Optional[Sequence[HybridTimeInterval]] = None):
        self._intervals: List[HybridTimeInterval] = []
        for interval in intervals or []:
            self.append(interval)

    def append(self, interval: HybridTimeInterval) -> None:
        if self._intervals:
            last = self._intervals[-1]
            if interval.jump_index != last.jump_index + 1:
                raise ValueError(
                    f"jump index must increase by one (got {interval.jump_index} "
                    f"after {last.jump_index})"
                )
            if interval.t_start < last.t_end - 1e-12:
                raise ValueError("continuous time must be non-decreasing across jumps")
        elif interval.jump_index != 0:
            raise ValueError("the first interval must have jump index 0")
        self._intervals.append(interval)

    def __len__(self) -> int:
        return len(self._intervals)

    def __iter__(self) -> Iterator[HybridTimeInterval]:
        return iter(self._intervals)

    def __getitem__(self, item: int) -> HybridTimeInterval:
        return self._intervals[item]

    @property
    def num_jumps(self) -> int:
        return max((iv.jump_index for iv in self._intervals), default=0)

    @property
    def total_flow_time(self) -> float:
        return sum(iv.duration for iv in self._intervals)

    @property
    def final_time(self) -> Tuple[float, int]:
        if not self._intervals:
            return (0.0, 0)
        last = self._intervals[-1]
        return (last.t_end, last.jump_index)

    def describe(self) -> str:
        t, j = self.final_time
        return f"HybridTimeDomain({len(self)} intervals, flow time {t:.4g}, {j} jumps)"


@dataclass
class ArcSegment:
    """A sampled trajectory over one hybrid time interval in one mode."""

    interval: HybridTimeInterval
    mode: str
    times: np.ndarray
    states: np.ndarray

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, dtype=float)
        self.states = np.atleast_2d(np.asarray(self.states, dtype=float))
        if self.states.shape[0] != self.times.shape[0]:
            raise ValueError("segment times and states have different lengths")

    @property
    def initial_state(self) -> np.ndarray:
        return self.states[0]

    @property
    def final_state(self) -> np.ndarray:
        return self.states[-1]

    @property
    def duration(self) -> float:
        return self.interval.duration


class HybridArc:
    """A simulated solution: a sequence of :class:`ArcSegment` pieces."""

    def __init__(self, segments: Optional[Sequence[ArcSegment]] = None):
        self.segments: List[ArcSegment] = list(segments or [])

    def append(self, segment: ArcSegment) -> None:
        self.segments.append(segment)

    def __len__(self) -> int:
        return len(self.segments)

    def __iter__(self) -> Iterator[ArcSegment]:
        return iter(self.segments)

    @property
    def time_domain(self) -> HybridTimeDomain:
        return HybridTimeDomain([segment.interval for segment in self.segments])

    @property
    def num_jumps(self) -> int:
        return max(0, len(self.segments) - 1)

    @property
    def total_flow_time(self) -> float:
        return sum(segment.duration for segment in self.segments)

    @property
    def initial_state(self) -> np.ndarray:
        if not self.segments:
            raise ValueError("empty hybrid arc")
        return self.segments[0].initial_state

    @property
    def final_state(self) -> np.ndarray:
        if not self.segments:
            raise ValueError("empty hybrid arc")
        return self.segments[-1].final_state

    @property
    def final_mode(self) -> str:
        if not self.segments:
            raise ValueError("empty hybrid arc")
        return self.segments[-1].mode

    def mode_sequence(self) -> Tuple[str, ...]:
        return tuple(segment.mode for segment in self.segments)

    def all_states(self) -> np.ndarray:
        """All sampled states stacked into one ``(m, n)`` array."""
        if not self.segments:
            return np.empty((0, 0))
        return np.vstack([segment.states for segment in self.segments])

    def all_times(self) -> np.ndarray:
        if not self.segments:
            return np.empty(0)
        return np.concatenate([segment.times for segment in self.segments])

    def state_at_time(self, t: float) -> np.ndarray:
        """State at ordinary time ``t`` (first interval containing ``t``)."""
        for segment in self.segments:
            if segment.interval.contains(t):
                idx = int(np.searchsorted(segment.times, t))
                idx = min(max(idx, 0), segment.times.shape[0] - 1)
                return segment.states[idx]
        raise ValueError(f"time {t} is outside the arc's hybrid time domain")

    def distance_to(self, point: Sequence[float]) -> np.ndarray:
        """Euclidean distance of every sample to ``point`` (convergence checks)."""
        states = self.all_states()
        target = np.asarray(point, dtype=float)
        return np.linalg.norm(states - target, axis=1)

    def converged_to(self, point: Sequence[float], tolerance: float,
                     window: int = 20) -> bool:
        """True when the last ``window`` samples are within ``tolerance`` of ``point``."""
        distances = self.distance_to(point)
        if distances.size == 0:
            return False
        tail = distances[-window:]
        return bool(np.all(tail <= tolerance))

    def describe(self) -> str:
        return (f"HybridArc({len(self.segments)} segments, "
                f"{self.total_flow_time:.4g} flow time, modes {self.mode_sequence()[:6]}...)")
