"""Command-line interface: ``python -m repro {list,verify,report,serve,...}``.

* ``list`` — show the registered scenarios (text or ``--json``).
* ``verify <scenario>...`` — run the verification engine on the named
  scenarios (``all`` / ``fast`` select groups), with ``--jobs N`` for the
  process pool, ``--fleet HOST:PORT`` to execute on a running fleet,
  ``--param key=value`` to override declared sweep axes,
  ``--no-cache`` to bypass the persistent certificate cache and
  ``--json PATH`` to write the full machine-readable report.
* ``sweep <family>`` — map a certified feasibility frontier over a sweep
  family's parameter axes (``--list`` shows the registered families;
  ``--grid axis=lo:hi:n`` / ``--samples`` / ``--seed`` reshape it,
  ``--resume`` continues an interrupted sweep, ``--fleet`` runs the point
  shards on a fleet).
* ``report`` — re-render the JSON report written by the last ``verify``
  (``--metrics`` for a structured metrics snapshot, JSON or Prometheus).
* ``serve`` — run a fleet master: prioritised job queue, shared certificate
  cache, requeue-on-worker-death (see :mod:`repro.fleet`).
* ``worker --connect HOST:PORT`` — run a fleet worker against a master.
* ``submit <scenario>...`` — submit scenarios to a fleet master at
  interactive priority; ``--watch`` streams per-job status lines.
* ``fleet-status`` — dump a master's queue depth, workers, cache hit rates
  (text, ``--json`` or ``--prometheus``).

Exit status: 0 when every verified scenario matched its registered expected
outcome, 1 otherwise (and 2 for usage errors).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .engine import EngineOptions, VerificationEngine, default_cache_dir
from .scenarios import all_scenarios, fast_scenario_names, scenario_names

#: Where ``verify`` drops its JSON report for a later ``report`` invocation.
LAST_REPORT_NAME = "last_report.json"


def _default_report_path(cache_dir: Optional[str]) -> Path:
    root = Path(cache_dir) if cache_dir else default_cache_dir()
    return root / LAST_REPORT_NAME


def _parse_params(entries: Optional[Sequence[str]]) -> dict:
    """``--param key=value`` pairs into a float dict (usage errors exit 2)."""
    params = {}
    for entry in entries or []:
        key, sep, value = entry.partition("=")
        if not sep or not key:
            print(f"error: --param expects key=value, got {entry!r}",
                  file=sys.stderr)
            raise SystemExit(2)
        try:
            params[key] = float(value)
        except ValueError:
            print(f"error: --param {key}: {value!r} is not a number",
                  file=sys.stderr)
            raise SystemExit(2) from None
    return params


def _parse_grid(entries: Optional[Sequence[str]]) -> dict:
    """``--grid axis=lo:hi:n`` specs into ``{axis: (lo, hi, n)}``."""
    grid = {}
    for entry in entries or []:
        key, sep, value = entry.partition("=")
        parts = value.split(":")
        if not sep or not key or len(parts) != 3:
            print(f"error: --grid expects axis=lo:hi:n, got {entry!r}",
                  file=sys.stderr)
            raise SystemExit(2)
        try:
            grid[key] = (float(parts[0]), float(parts[1]), int(parts[2]))
        except ValueError:
            print(f"error: --grid {key}: cannot parse {value!r} as lo:hi:n",
                  file=sys.stderr)
            raise SystemExit(2) from None
    return grid


def _resolve_scenarios(names: Sequence[str]) -> List[str]:
    known = set(scenario_names())
    resolved: List[str] = []
    for name in names:
        if name == "all":
            resolved.extend(scenario_names())
        elif name == "fast":
            resolved.extend(fast_scenario_names())
        elif name in known:
            resolved.append(name)
        else:
            print(f"error: unknown scenario {name!r}; available: "
                  f"{', '.join(scenario_names())} (or 'all' / 'fast')",
                  file=sys.stderr)
            raise SystemExit(2)  # usage error, distinct from a mismatch (1)
    seen = set()
    unique = []
    for name in resolved:
        if name not in seen:
            seen.add(name)
            unique.append(name)
    return unique


# ----------------------------------------------------------------------
def cmd_list(args: argparse.Namespace) -> int:
    rows = [spec.summary_row() for spec in all_scenarios()]
    if args.json:
        json.dump({"scenarios": rows}, sys.stdout, indent=2)
        sys.stdout.write("\n")
        return 0
    width = max(len(row["name"]) for row in rows) + 2
    print(f"{len(rows)} registered scenarios:")
    for row in rows:
        tags = ",".join(row["tags"]) or "-"
        fast = " [fast]" if row["fast"] else ""
        print(f"  {row['name']:<{width}} degree={row['degree']} "
              f"expected={row['expected']:<13} "
              f"relaxation={row['relaxation']:<6} tags={tags}{fast}")
        print(f"  {'':<{width}} {row['description']}")
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    scenarios = _resolve_scenarios(args.scenarios)
    if not scenarios:
        print("nothing to verify", file=sys.stderr)
        return 2
    params = _parse_params(args.param)
    if params:
        # Validate against each scenario's declared axes up front, so a typo
        # fails in milliseconds instead of inside a worker process.
        from .scenarios import get_scenario

        for name in scenarios:
            try:
                get_scenario(name).with_parameters(params)
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
    options = EngineOptions(
        jobs=max(1, args.jobs),
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        job_timeout=args.timeout,
        seed=args.seed,
        relaxation=args.relaxation,
        backend=args.backend,
        array_backend=args.array_backend,
        fleet=args.fleet,
        fleet_priority=args.fleet_priority,
        params=params or None,
    )
    engine = VerificationEngine(options)
    relax_note = f", relaxation={options.relaxation}" if options.relaxation else ""
    backend_note = f", backend={options.backend}" if options.backend else ""
    array_note = f", array-backend={options.array_backend}" \
        if options.array_backend else ""
    fleet_note = f", fleet={options.fleet}" if options.fleet else ""
    if params:
        fleet_note += ", params=" + ",".join(
            f"{key}={params[key]:g}" for key in sorted(params))
    print(f"verifying {', '.join(scenarios)} "
          f"(jobs={options.jobs}, cache={'on' if options.use_cache else 'off'}"
          f"{relax_note}{backend_note}{array_note}{fleet_note})")
    report = engine.run(scenarios)

    for outcome in report.outcomes:
        print()
        print(outcome.report.render_text())
    print()
    print(report.render_text())

    payload = report.to_json_dict()
    json_path = Path(args.json) if args.json else _default_report_path(args.cache_dir)
    json_path.parent.mkdir(parents=True, exist_ok=True)
    with open(json_path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"JSON report written to {json_path}")
    return 0 if report.all_match_expected else 1


def cmd_report(args: argparse.Namespace) -> int:
    path = Path(args.input) if args.input else _default_report_path(args.cache_dir)
    if not path.exists():
        print(f"error: no report at {path}; run 'python -m repro verify' first",
              file=sys.stderr)
        return 2
    with open(path) as handle:
        payload = json.load(handle)
    if args.metrics:
        from .fleet.metrics import engine_metrics, render_prometheus

        metrics = engine_metrics(payload)
        if args.prometheus:
            sys.stdout.write(render_prometheus(metrics))
        else:
            json.dump(metrics, sys.stdout, indent=2, sort_keys=True)
            sys.stdout.write("\n")
        return 0
    if args.json:
        json.dump(payload, sys.stdout, indent=2)
        sys.stdout.write("\n")
        return 0
    engine_info = payload.get("engine", {})
    print(f"Engine report ({path})")
    print(f"  jobs={engine_info.get('jobs')} "
          f"cache={'on' if engine_info.get('use_cache') else 'off'} "
          f"wall={engine_info.get('wall_seconds', 0):.1f}s "
          f"solves={engine_info.get('counters', {}).get('solved', 0)} "
          f"cache_hits={engine_info.get('counters', {}).get('cache_hit', 0)}")
    ok = True
    for scenario in payload.get("scenarios", []):
        matches = scenario.get("matches_expected")
        ok = ok and bool(matches)
        verdict = "MATCH" if matches else "MISMATCH"
        rep = scenario.get("report", {})
        print(f"  [{verdict}] {scenario.get('scenario')}: "
              f"inevitability={rep.get('inevitability')} "
              f"(expected {scenario.get('expected')})")
        for job in scenario.get("jobs", []):
            print(f"      {job.get('job_id'):40s} {job.get('status'):8s} "
                  f"{job.get('seconds', 0.0):7.2f}s")
    return 0 if ok else 1


def cmd_sweep(args: argparse.Namespace) -> int:
    from .sweep import SweepError, SweepOptions, SweepRunner, all_sweep_families

    if args.list:
        rows = [family.summary_row() for family in all_sweep_families()]
        if args.json:
            json.dump({"families": rows}, sys.stdout, indent=2)
            sys.stdout.write("\n")
            return 0
        width = max(len(row["name"]) for row in rows) + 2
        print(f"{len(rows)} registered sweep families:")
        for row in rows:
            tags = ",".join(row["tags"]) or "-"
            print(f"  {row['name']:<{width}} {row['kind']:<18} "
                  f"scenario={row['scenario']:<10} points={row['points']:<5} "
                  f"axes={','.join(row['axes'])} "
                  f"relaxation={row['relaxation']:<6} tags={tags}")
            print(f"  {'':<{width}} {row['description']}")
        return 0
    if not args.family:
        print("error: name a sweep family (or use --list)", file=sys.stderr)
        return 2

    grid = _parse_grid(args.grid)
    options = SweepOptions(
        jobs=max(1, args.jobs),
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        job_timeout=args.timeout,
        relaxation=args.relaxation,
        backend=args.backend,
        array_backend=args.array_backend,
        fleet=args.fleet,
        fleet_priority=args.fleet_priority,
        grid=grid or None,
        samples=args.samples,
        seed=args.seed,
        shard_size=args.shard_size,
        resume=args.resume,
    )
    runner = SweepRunner(options)
    try:
        family = runner.resolve_family(args.family)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    except SweepError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    fleet_note = f", fleet={options.fleet}" if options.fleet else ""
    print(f"sweeping {family.name}: {family.count()} point(s) over "
          f"axes {','.join(family.axes())} of scenario {family.scenario} "
          f"(jobs={options.jobs}, "
          f"cache={'on' if options.use_cache else 'off'}{fleet_note})")
    try:
        report = runner.run(family)
    except SweepError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print()
    print(report.render_text())

    payload = report.to_json_dict()
    root = Path(args.cache_dir) if args.cache_dir else default_cache_dir()
    json_path = Path(args.json) if args.json \
        else root / f"sweep_{family.name}.json"
    json_path.parent.mkdir(parents=True, exist_ok=True)
    with open(json_path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"frontier JSON written to {json_path}")
    return 0


# ----------------------------------------------------------------------
# Fleet commands (see repro.fleet)
# ----------------------------------------------------------------------
def cmd_serve(args: argparse.Namespace) -> int:
    from .fleet import FleetMaster

    master = FleetMaster(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        max_retries=args.max_retries,
        job_timeout=args.timeout,
        heartbeat_interval=args.heartbeat_interval,
        liveness_timeout=args.liveness_timeout,
        drain_timeout=args.drain_timeout,
    )
    print(f"fleet master serving on {args.host}:{args.port} "
          f"(cache={'on' if not args.no_cache else 'off'}, "
          f"max-retries={args.max_retries}); Ctrl-C to drain and stop")
    master.serve_forever()
    return 0


def cmd_worker(args: argparse.Namespace) -> int:
    from .fleet import parse_address, run_worker

    address = parse_address(args.connect)
    print(f"fleet worker '{args.name}' connecting to {args.connect}")
    jobs_done = run_worker(address, name=args.name,
                           poll_timeout=args.poll_timeout)
    print(f"worker exited after {jobs_done} job(s)")
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    from .fleet import FleetClient, PRIORITY_INTERACTIVE
    from .fleet.protocol import ProtocolError

    scenarios = _resolve_scenarios(args.scenarios)
    if not scenarios:
        print("nothing to submit", file=sys.stderr)
        return 2
    client = FleetClient(args.connect)
    options = {
        "use_cache": not args.no_cache,
        "job_timeout": args.timeout,
        "seed": args.seed,
        "relaxation": args.relaxation,
        "backend": args.backend,
        "array_backend": args.array_backend,
    }
    priority = args.priority if args.priority is not None \
        else PRIORITY_INTERACTIVE

    def on_event(event: dict) -> None:
        if event.get("event") != "job":
            return
        state = event.get("state")
        if state == "queued":
            print(f"  {event.get('job_id'):40s} queued "
                  f"(priority {event.get('priority')})")
        elif state == "cached":
            print(f"  {event.get('job_id'):40s} {event.get('status'):8s} "
                  f"   0.00s  [job memo] {event.get('detail', '')}")
        else:
            attempts = int(event.get("attempts", 1))
            note = f" [attempt {attempts}]" if attempts > 1 else ""
            print(f"  {event.get('job_id'):40s} {event.get('status'):8s} "
                  f"{event.get('seconds', 0.0):7.2f}s  "
                  f"{event.get('detail', '')}{note}")

    print(f"submitting {', '.join(scenarios)} to {args.connect} "
          f"(priority {priority})")
    try:
        done = client.submit(scenarios, priority=priority, watch=args.watch,
                             on_event=on_event if args.watch else None,
                             options=options)
    except (OSError, ProtocolError) as exc:
        print(f"error: fleet master at {args.connect} unreachable: {exc}",
              file=sys.stderr)
        return 2
    payload = done.get("report", {})
    engine_info = payload.get("engine", {})
    counters = engine_info.get("counters", {})
    print(f"done in {engine_info.get('wall_seconds', 0.0):.1f}s: "
          f"{counters.get('solved', 0)} solve(s), "
          f"{counters.get('cache_hit', 0)} cache hit(s)")
    for scenario in payload.get("scenarios", []):
        verdict = "MATCH" if scenario.get("matches_expected") else "MISMATCH"
        rep = scenario.get("report", {})
        print(f"  [{verdict}] {scenario.get('scenario')}: "
              f"inevitability={rep.get('inevitability')} "
              f"(expected {scenario.get('expected')})")
    if args.json:
        json_path = Path(args.json)
        json_path.parent.mkdir(parents=True, exist_ok=True)
        with open(json_path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"JSON report written to {json_path}")
    return 0 if done.get("ok") else 1


def cmd_fleet_status(args: argparse.Namespace) -> int:
    from .fleet import FleetClient, render_prometheus, render_status_text
    from .fleet.protocol import ProtocolError

    client = FleetClient(args.connect)
    try:
        status = client.status()
    except (OSError, ProtocolError) as exc:
        print(f"error: fleet master at {args.connect} unreachable: {exc}",
              file=sys.stderr)
        return 2
    if args.prometheus:
        sys.stdout.write(render_prometheus(status.get("metrics", {})))
    elif args.json:
        json.dump(status, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        for line in render_status_text(status):
            print(line)
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SOS-based inevitability verification: scenario registry, "
                    "parallel engine and certificate cache.")
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list registered scenarios")
    p_list.add_argument("--json", action="store_true",
                        help="emit the listing as JSON")
    p_list.set_defaults(func=cmd_list)

    p_verify = sub.add_parser("verify", help="run the verification engine")
    p_verify.add_argument("scenarios", nargs="+",
                          help="scenario names (or 'all' / 'fast')")
    p_verify.add_argument("--jobs", type=int, default=1, metavar="N",
                          help="worker processes (1 = run inline)")
    p_verify.add_argument("--no-cache", action="store_true",
                          help="bypass the persistent certificate cache")
    p_verify.add_argument("--cache-dir", default=None,
                          help="cache location (default: $REPRO_CACHE_DIR or "
                               "~/.cache/repro-pll-sos)")
    p_verify.add_argument("--timeout", type=float, default=None, metavar="S",
                          help="per-job timeout in seconds (pool runs)")
    p_verify.add_argument("--seed", type=int, default=0,
                          help="random seed for the falsification cross-check")
    p_verify.add_argument("--backend", default=None,
                          choices=["admm", "projection"],
                          help="conic solver backend for every job's solve "
                               "context: admm (operator splitting, the "
                               "default) or projection (alternating "
                               "projections); recorded in the JSON report "
                               "and part of the certificate-cache key")
    p_verify.add_argument("--array-backend", default=None,
                          choices=["auto", "numpy", "cupy", "torch"],
                          help="array namespace of the solver hot loops: "
                               "numpy (reference), cupy/torch (GPU tensor "
                               "adapters, used when importable) or auto "
                               "(accelerator when usable, else numpy); "
                               "default: the solver's own auto resolution")
    p_verify.add_argument("--relaxation", default=None,
                          choices=["dsos", "sdsos", "chordal", "sos", "auto"],
                          help="Gram-cone relaxation of every certificate: "
                               "dsos (LP cones), sdsos (2x2 PSD blocks), "
                               "chordal (clique-sized PSD blocks from the "
                               "Gram sparsity pattern), sos (full PSD Gram) "
                               "or auto (try cheap, escalate on failure); "
                               "default: each scenario's registered "
                               "relaxation")
    p_verify.add_argument("--json", default=None, metavar="PATH",
                          help="write the JSON report here "
                               "(default: <cache>/last_report.json)")
    p_verify.add_argument("--fleet", default=None, metavar="HOST:PORT",
                          help="execute jobs on a running fleet master "
                               "instead of a local pool; --jobs then bounds "
                               "the jobs kept in flight on the fleet")
    p_verify.add_argument("--fleet-priority", type=int, default=0, metavar="N",
                          help="queue priority of fleet-executed jobs "
                               "(background 0, interactive 10)")
    p_verify.add_argument("--param", action="append", default=None,
                          metavar="KEY=VALUE",
                          help="override a declared sweep axis of every named "
                               "scenario (repeatable; e.g. --param i_p=4e-4; "
                               "see 'sweep --list' / scenario sweep_axes)")
    p_verify.set_defaults(func=cmd_verify)

    p_sweep = sub.add_parser(
        "sweep", help="map a certified feasibility frontier over a family")
    p_sweep.add_argument("family", nargs="?", default=None,
                         help="sweep family name (see --list)")
    p_sweep.add_argument("--list", action="store_true",
                         help="list the registered sweep families")
    p_sweep.add_argument("--grid", action="append", default=None,
                         metavar="AXIS=LO:HI:N",
                         help="reshape one axis of the family (repeatable; "
                              "ladder families read LO/HI as fractions of "
                              "nominal)")
    p_sweep.add_argument("--samples", type=int, default=None, metavar="N",
                         help="Monte-Carlo sample count / ladder step count")
    p_sweep.add_argument("--seed", type=int, default=None,
                         help="Monte-Carlo draw seed (same seed = identical "
                              "point set)")
    p_sweep.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="worker processes; points are split into one "
                              "shard per worker slot (1 = run inline)")
    p_sweep.add_argument("--shard-size", type=int, default=None, metavar="N",
                         help="points per shard job (default: points/jobs)")
    p_sweep.add_argument("--no-cache", action="store_true",
                         help="bypass the persistent certificate cache")
    p_sweep.add_argument("--cache-dir", default=None,
                         help="cache + progress location (default: "
                              "$REPRO_CACHE_DIR or ~/.cache/repro-pll-sos)")
    p_sweep.add_argument("--timeout", type=float, default=None, metavar="S",
                         help="per-shard timeout (fleet runs)")
    p_sweep.add_argument("--relaxation", default=None,
                         choices=["dsos", "sdsos", "chordal", "sos", "auto"],
                         help="Gram-cone ladder every point climbs "
                              "(default: the family's registered ladder)")
    p_sweep.add_argument("--backend", default=None,
                         choices=["admm", "projection"],
                         help="conic solver backend of every probe solve")
    p_sweep.add_argument("--array-backend", default=None,
                         choices=["auto", "numpy", "cupy", "torch"],
                         help="array namespace of the solver hot loops")
    p_sweep.add_argument("--fleet", default=None, metavar="HOST:PORT",
                         help="execute point shards on a running fleet "
                              "master instead of a local pool")
    p_sweep.add_argument("--fleet-priority", type=int, default=0, metavar="N",
                         help="queue priority of fleet-executed shards")
    p_sweep.add_argument("--resume", action="store_true",
                         help="skip points a previous run of the identical "
                              "family already settled (progress is saved "
                              "after every shard)")
    p_sweep.add_argument("--json", default=None, metavar="PATH",
                         help="write the frontier JSON here (default: "
                              "<cache>/sweep_<family>.json); with --list, "
                              "emit the listing as JSON")
    p_sweep.set_defaults(func=cmd_sweep)

    p_report = sub.add_parser("report",
                              help="re-render the last verification report")
    p_report.add_argument("--input", default=None, metavar="PATH",
                          help="JSON report to render (default: the last "
                               "'verify' output)")
    p_report.add_argument("--cache-dir", default=None,
                          help="cache location used to find the default report")
    p_report.add_argument("--json", action="store_true",
                          help="dump the raw JSON instead of text")
    p_report.add_argument("--metrics", action="store_true",
                          help="emit a structured metrics snapshot (solve "
                               "counts per cone layout, cache hit rate, "
                               "per-stage timings) instead of the report")
    p_report.add_argument("--prometheus", action="store_true",
                          help="with --metrics: Prometheus text exposition "
                               "instead of JSON")
    p_report.set_defaults(func=cmd_report)

    from .fleet.protocol import DEFAULT_PORT

    default_connect = f"127.0.0.1:{DEFAULT_PORT}"

    p_serve = sub.add_parser("serve", help="run a fleet master")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="interface to bind (default: 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=DEFAULT_PORT,
                         help=f"port to bind (default: {DEFAULT_PORT})")
    p_serve.add_argument("--cache-dir", default=None,
                         help="shared certificate cache + job memo location")
    p_serve.add_argument("--no-cache", action="store_true",
                         help="serve without a certificate cache or job memo")
    p_serve.add_argument("--max-retries", type=int, default=2, metavar="N",
                         help="re-dispatch a job at most N times after worker "
                              "death before quarantining it (default: 2)")
    p_serve.add_argument("--timeout", type=float, default=None, metavar="S",
                         help="default per-job timeout in seconds")
    p_serve.add_argument("--heartbeat-interval", type=float, default=0.5,
                         metavar="S", help="worker heartbeat period")
    p_serve.add_argument("--liveness-timeout", type=float, default=5.0,
                         metavar="S",
                         help="declare a silent worker dead after S seconds")
    p_serve.add_argument("--drain-timeout", type=float, default=30.0,
                         metavar="S",
                         help="graceful-shutdown budget for in-flight jobs")
    p_serve.set_defaults(func=cmd_serve)

    p_worker = sub.add_parser("worker", help="run a fleet worker")
    p_worker.add_argument("--connect", default=default_connect,
                          metavar="HOST:PORT",
                          help=f"master address (default: {default_connect})")
    p_worker.add_argument("--name", default="worker",
                          help="worker name (the master makes it unique)")
    p_worker.add_argument("--poll-timeout", type=float, default=2.0,
                          metavar="S", help="long-poll budget per job request")
    p_worker.set_defaults(func=cmd_worker)

    p_submit = sub.add_parser(
        "submit", help="submit scenarios to a fleet master")
    p_submit.add_argument("scenarios", nargs="+",
                          help="scenario names (or 'all' / 'fast')")
    p_submit.add_argument("--connect", default=default_connect,
                          metavar="HOST:PORT",
                          help=f"master address (default: {default_connect})")
    p_submit.add_argument("--priority", type=int, default=None, metavar="N",
                          help="queue priority (default: interactive, 10)")
    p_submit.add_argument("--watch", action="store_true",
                          help="stream per-job status lines as they happen")
    p_submit.add_argument("--no-cache", action="store_true",
                          help="bypass the master's certificate cache and memo")
    p_submit.add_argument("--timeout", type=float, default=None, metavar="S",
                          help="per-job timeout enforced by the master")
    p_submit.add_argument("--seed", type=int, default=0,
                          help="random seed for the falsification cross-check")
    p_submit.add_argument("--backend", default=None,
                          choices=["admm", "projection"],
                          help="conic solver backend of every job")
    p_submit.add_argument("--array-backend", default=None,
                          choices=["auto", "numpy", "cupy", "torch"],
                          help="array namespace of the solver hot loops")
    p_submit.add_argument("--relaxation", default=None,
                          choices=["dsos", "sdsos", "chordal", "sos", "auto"],
                          help="Gram-cone relaxation override")
    p_submit.add_argument("--json", default=None, metavar="PATH",
                          help="write the fleet's JSON report here")
    p_submit.set_defaults(func=cmd_submit)

    p_status = sub.add_parser(
        "fleet-status", help="dump a fleet master's status")
    p_status.add_argument("--connect", default=default_connect,
                          metavar="HOST:PORT",
                          help=f"master address (default: {default_connect})")
    p_status.add_argument("--json", action="store_true",
                          help="emit the full status snapshot as JSON")
    p_status.add_argument("--prometheus", action="store_true",
                          help="emit the metrics as Prometheus text")
    p_status.set_defaults(func=cmd_fleet_status)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
