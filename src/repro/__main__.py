"""Command-line interface: ``python -m repro {list,verify,report}``.

* ``list`` — show the registered scenarios (text or ``--json``).
* ``verify <scenario>...`` — run the verification engine on the named
  scenarios (``all`` / ``fast`` select groups), with ``--jobs N`` for the
  process pool, ``--no-cache`` to bypass the persistent certificate cache
  and ``--json PATH`` to write the full machine-readable report.
* ``report`` — re-render the JSON report written by the last ``verify``.

Exit status: 0 when every verified scenario matched its registered expected
outcome, 1 otherwise (and 2 for usage errors).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .engine import EngineOptions, VerificationEngine, default_cache_dir
from .scenarios import all_scenarios, fast_scenario_names, scenario_names

#: Where ``verify`` drops its JSON report for a later ``report`` invocation.
LAST_REPORT_NAME = "last_report.json"


def _default_report_path(cache_dir: Optional[str]) -> Path:
    root = Path(cache_dir) if cache_dir else default_cache_dir()
    return root / LAST_REPORT_NAME


def _resolve_scenarios(names: Sequence[str]) -> List[str]:
    known = set(scenario_names())
    resolved: List[str] = []
    for name in names:
        if name == "all":
            resolved.extend(scenario_names())
        elif name == "fast":
            resolved.extend(fast_scenario_names())
        elif name in known:
            resolved.append(name)
        else:
            print(f"error: unknown scenario {name!r}; available: "
                  f"{', '.join(scenario_names())} (or 'all' / 'fast')",
                  file=sys.stderr)
            raise SystemExit(2)  # usage error, distinct from a mismatch (1)
    seen = set()
    unique = []
    for name in resolved:
        if name not in seen:
            seen.add(name)
            unique.append(name)
    return unique


# ----------------------------------------------------------------------
def cmd_list(args: argparse.Namespace) -> int:
    rows = [spec.summary_row() for spec in all_scenarios()]
    if args.json:
        json.dump({"scenarios": rows}, sys.stdout, indent=2)
        sys.stdout.write("\n")
        return 0
    width = max(len(row["name"]) for row in rows) + 2
    print(f"{len(rows)} registered scenarios:")
    for row in rows:
        tags = ",".join(row["tags"]) or "-"
        fast = " [fast]" if row["fast"] else ""
        print(f"  {row['name']:<{width}} degree={row['degree']} "
              f"expected={row['expected']:<13} "
              f"relaxation={row['relaxation']:<6} tags={tags}{fast}")
        print(f"  {'':<{width}} {row['description']}")
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    scenarios = _resolve_scenarios(args.scenarios)
    if not scenarios:
        print("nothing to verify", file=sys.stderr)
        return 2
    options = EngineOptions(
        jobs=max(1, args.jobs),
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        job_timeout=args.timeout,
        seed=args.seed,
        relaxation=args.relaxation,
        backend=args.backend,
        array_backend=args.array_backend,
    )
    engine = VerificationEngine(options)
    relax_note = f", relaxation={options.relaxation}" if options.relaxation else ""
    backend_note = f", backend={options.backend}" if options.backend else ""
    array_note = f", array-backend={options.array_backend}" \
        if options.array_backend else ""
    print(f"verifying {', '.join(scenarios)} "
          f"(jobs={options.jobs}, cache={'on' if options.use_cache else 'off'}"
          f"{relax_note}{backend_note}{array_note})")
    report = engine.run(scenarios)

    for outcome in report.outcomes:
        print()
        print(outcome.report.render_text())
    print()
    print(report.render_text())

    payload = report.to_json_dict()
    json_path = Path(args.json) if args.json else _default_report_path(args.cache_dir)
    json_path.parent.mkdir(parents=True, exist_ok=True)
    with open(json_path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"JSON report written to {json_path}")
    return 0 if report.all_match_expected else 1


def cmd_report(args: argparse.Namespace) -> int:
    path = Path(args.input) if args.input else _default_report_path(args.cache_dir)
    if not path.exists():
        print(f"error: no report at {path}; run 'python -m repro verify' first",
              file=sys.stderr)
        return 2
    with open(path) as handle:
        payload = json.load(handle)
    if args.json:
        json.dump(payload, sys.stdout, indent=2)
        sys.stdout.write("\n")
        return 0
    engine_info = payload.get("engine", {})
    print(f"Engine report ({path})")
    print(f"  jobs={engine_info.get('jobs')} "
          f"cache={'on' if engine_info.get('use_cache') else 'off'} "
          f"wall={engine_info.get('wall_seconds', 0):.1f}s "
          f"solves={engine_info.get('counters', {}).get('solved', 0)} "
          f"cache_hits={engine_info.get('counters', {}).get('cache_hit', 0)}")
    ok = True
    for scenario in payload.get("scenarios", []):
        matches = scenario.get("matches_expected")
        ok = ok and bool(matches)
        verdict = "MATCH" if matches else "MISMATCH"
        rep = scenario.get("report", {})
        print(f"  [{verdict}] {scenario.get('scenario')}: "
              f"inevitability={rep.get('inevitability')} "
              f"(expected {scenario.get('expected')})")
        for job in scenario.get("jobs", []):
            print(f"      {job.get('job_id'):40s} {job.get('status'):8s} "
                  f"{job.get('seconds', 0.0):7.2f}s")
    return 0 if ok else 1


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SOS-based inevitability verification: scenario registry, "
                    "parallel engine and certificate cache.")
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list registered scenarios")
    p_list.add_argument("--json", action="store_true",
                        help="emit the listing as JSON")
    p_list.set_defaults(func=cmd_list)

    p_verify = sub.add_parser("verify", help="run the verification engine")
    p_verify.add_argument("scenarios", nargs="+",
                          help="scenario names (or 'all' / 'fast')")
    p_verify.add_argument("--jobs", type=int, default=1, metavar="N",
                          help="worker processes (1 = run inline)")
    p_verify.add_argument("--no-cache", action="store_true",
                          help="bypass the persistent certificate cache")
    p_verify.add_argument("--cache-dir", default=None,
                          help="cache location (default: $REPRO_CACHE_DIR or "
                               "~/.cache/repro-pll-sos)")
    p_verify.add_argument("--timeout", type=float, default=None, metavar="S",
                          help="per-job timeout in seconds (pool runs)")
    p_verify.add_argument("--seed", type=int, default=0,
                          help="random seed for the falsification cross-check")
    p_verify.add_argument("--backend", default=None,
                          choices=["admm", "projection"],
                          help="conic solver backend for every job's solve "
                               "context: admm (operator splitting, the "
                               "default) or projection (alternating "
                               "projections); recorded in the JSON report "
                               "and part of the certificate-cache key")
    p_verify.add_argument("--array-backend", default=None,
                          choices=["auto", "numpy", "cupy", "torch"],
                          help="array namespace of the solver hot loops: "
                               "numpy (reference), cupy/torch (GPU tensor "
                               "adapters, used when importable) or auto "
                               "(accelerator when usable, else numpy); "
                               "default: the solver's own auto resolution")
    p_verify.add_argument("--relaxation", default=None,
                          choices=["dsos", "sdsos", "sos", "auto"],
                          help="Gram-cone relaxation of every certificate: "
                               "dsos (LP cones), sdsos (2x2 PSD blocks), sos "
                               "(full PSD Gram) or auto (try cheap, escalate "
                               "on failure); default: each scenario's "
                               "registered relaxation")
    p_verify.add_argument("--json", default=None, metavar="PATH",
                          help="write the JSON report here "
                               "(default: <cache>/last_report.json)")
    p_verify.set_defaults(func=cmd_verify)

    p_report = sub.add_parser("report",
                              help="re-render the last verification report")
    p_report.add_argument("--input", default=None, metavar="PATH",
                          help="JSON report to render (default: the last "
                               "'verify' output)")
    p_report.add_argument("--cache-dir", default=None,
                          help="cache location used to find the default report")
    p_report.add_argument("--json", action="store_true",
                          help="dump the raw JSON instead of text")
    p_report.set_defaults(func=cmd_report)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
