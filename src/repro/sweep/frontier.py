"""Feasibility-frontier aggregation over sweep outcomes.

Folds per-point recertification outcomes into the report the sweep exists
to produce: which parameter regions certify, under which Gram-cone rung,
and where the certified region's boundary sits on every axis.

The frontier section is a pure function of the family configuration and the
per-point outcomes — both deterministic — so its JSON serialisation is
bit-identical across process counts, shard boundaries and resumed runs.
Nondeterministic run telemetry (wall times, cache stats, compile counters)
lives in the report's separate ``run`` section.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def build_frontier(family_config: Dict[str, object],
                   fingerprint: str,
                   ladder: Sequence[str],
                   outcomes: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """The deterministic frontier section of a sweep report.

    ``outcomes`` are the per-point dicts produced by the probe shards
    (``index``/``params``/``certified``/``rung``/``sampling``), in any
    order; the frontier re-sorts by index.
    """
    points = sorted((dict(outcome) for outcome in outcomes),
                    key=lambda o: int(o["index"]))
    by_rung: Dict[str, int] = {rung: 0 for rung in ladder}
    certified = 0
    for outcome in points:
        if outcome.get("certified"):
            certified += 1
            rung = str(outcome.get("rung"))
            by_rung[rung] = by_rung.get(rung, 0) + 1

    axes: Dict[str, Dict[str, object]] = {}
    axis_names = sorted({name for outcome in points
                         for name in outcome.get("params", {})})
    for axis in axis_names:
        bins: Dict[float, Dict[str, int]] = {}
        for outcome in points:
            params = outcome.get("params", {})
            if axis not in params:
                continue
            value = float(params[axis])
            entry = bins.setdefault(value, {"certified": 0, "total": 0})
            entry["total"] += 1
            if outcome.get("certified"):
                entry["certified"] += 1
        ordered = [{"value": value,
                    "certified": bins[value]["certified"],
                    "total": bins[value]["total"]}
                   for value in sorted(bins)]
        certified_values = [row["value"] for row in ordered if row["certified"]]
        axes[axis] = {
            "bins": ordered,
            "certified_range": ([min(certified_values), max(certified_values)]
                                if certified_values else None),
        }

    return {
        "schema": 1,
        "family": dict(family_config),
        "fingerprint": fingerprint,
        "ladder": list(ladder),
        "summary": {
            "points": len(points),
            "certified": certified,
            "uncertified": len(points) - certified,
            "by_rung": by_rung,
        },
        "axes": axes,
        "points": points,
    }


def render_frontier_text(frontier: Dict[str, object]) -> str:
    """Human-readable rendering of a frontier section."""
    family = frontier.get("family", {})
    summary = frontier.get("summary", {})
    lines: List[str] = [
        f"Sweep frontier: {family.get('name', '?')} "
        f"(scenario {family.get('scenario', '?')}, "
        f"{summary.get('points', 0)} point(s))",
        f"  certified: {summary.get('certified', 0)}"
        f"/{summary.get('points', 0)}"
        + ("  by rung: " + ", ".join(
            f"{rung}={count}" for rung, count
            in summary.get("by_rung", {}).items() if count)
           if any(summary.get("by_rung", {}).values()) else ""),
    ]
    for axis, entry in sorted(frontier.get("axes", {}).items()):
        span = entry.get("certified_range")
        span_text = (f"certified in [{span[0]:.6g}, {span[1]:.6g}]"
                     if span else "no certified values")
        lines.append(f"  axis {axis}: {span_text}")
        cells = []
        for row in entry.get("bins", []):
            mark = "#" if row["certified"] == row["total"] else \
                ("+" if row["certified"] else ".")
            cells.append(f"{row['value']:.4g}{mark}")
        lines.append("    " + " ".join(cells)
                     + "   (#=all certified, +=partial, .=none)")
    return "\n".join(lines)
