"""Built-in sweep families.

Each entry pairs a registered scenario with an expansion rule over its
declared sweep axes.  CLI runs can reshape any of them without code changes
(``--grid axis=lo:hi:n``, ``--samples``, ``--seed``); the reshaped family
keeps the catalog name but gets its own fingerprint, so progress files and
frontier reports never mix distinct point sets.
"""

from __future__ import annotations

from ..scenarios.registry import get_scenario
from .families import (
    DegradationLadder,
    GridSweep,
    MonteCarloSweep,
    register_sweep_family,
)

# Nominal pump current of the paper's third-order PLL (Table 1 centre);
# Monte-Carlo ranges below are absolute values derived from it.
_PLL3_IP = get_scenario("pll3").sweep_axes["i_p"]
_PLL3_KVCO = get_scenario("pll3").sweep_axes["k_vco"]

register_sweep_family(GridSweep(
    name="vanderpol_grid",
    scenario="vanderpol",
    description="Van der Pol damping × stiffness grid on the auto "
                "relaxation ladder (the CI smoke family)",
    relaxation="auto",
    grid_axes=(("mu", 0.5, 2.0, 3), ("stiffness", 0.6, 1.4, 3)),
    tags=("continuous", "smoke"),
))

register_sweep_family(GridSweep(
    name="duffing_grid",
    scenario="duffing",
    description="Duffing damping × cubic-stiffness grid with degree-4 "
                "certificates",
    relaxation="auto",
    grid_axes=(("delta", 0.3, 1.3, 4), ("beta", 0.5, 1.5, 3)),
    tags=("continuous", "degree4"),
))

register_sweep_family(GridSweep(
    name="buck_grid",
    scenario="buck",
    description="Buck converter input-voltage × duty-cycle grid",
    relaxation="auto",
    grid_axes=(("v_in", 0.6, 1.4, 3), ("duty", 0.3, 0.7, 3)),
    tags=("power",),
))

register_sweep_family(DegradationLadder(
    name="pll3_ip_ladder",
    scenario="pll3",
    description="Charge-pump ageing ladder: Ip swept over [0.2, 1.0] of "
                "nominal (pll3_weak_pump generalised to a continuum)",
    relaxation="sos",
    axis="i_p",
    lower=0.2,
    upper=1.0,
    steps=9,
    probe_settings=(("max_iterations", 3000),),
    tags=("pll", "degraded"),
))

register_sweep_family(DegradationLadder(
    name="pll3_kvco_ladder",
    scenario="pll3",
    description="VCO gain drift ladder: Kvco swept over [0.6, 1.4] of nominal",
    relaxation="sos",
    axis="k_vco",
    lower=0.6,
    upper=1.4,
    steps=9,
    probe_settings=(("max_iterations", 3000),),
    tags=("pll", "process-variation"),
))

register_sweep_family(MonteCarloSweep(
    name="pll3_mc",
    scenario="pll3",
    description="Monte-Carlo process variation of the third-order PLL: "
                "uniform (Ip, Kvco) draws around Table 1 nominals",
    relaxation="sos",
    ranges=(("i_p", 0.8 * _PLL3_IP, 1.2 * _PLL3_IP, 1),
            ("k_vco", 0.8 * _PLL3_KVCO, 1.2 * _PLL3_KVCO, 1)),
    samples=16,
    seed=2026,
    probe_settings=(("max_iterations", 3000),),
    tags=("pll", "monte-carlo"),
))
