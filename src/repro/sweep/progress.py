"""Resumable sweep progress persistence.

One JSON file per (family name, fingerprint) under ``<dir>/sweeps/``.  The
planner records outcomes after every finished shard; ``--resume`` reloads
them and only dispatches the missing points.  A fingerprint mismatch (the
family was reshaped since the file was written) discards the stale file
rather than resuming a different point set.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict

PROGRESS_SCHEMA = 1


class SweepProgress:
    """Append-oriented store of per-point outcomes keyed by point index."""

    def __init__(self, directory: os.PathLike, family_name: str,
                 fingerprint: str):
        self.directory = Path(directory).expanduser()
        self.family_name = family_name
        self.fingerprint = fingerprint
        self.path = self.directory / f"{family_name}.json"

    def load(self) -> Dict[int, Dict[str, object]]:
        """Outcomes recorded by a previous run of the identical family."""
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                stored = json.load(handle)
        except (OSError, ValueError):
            return {}
        if stored.get("schema") != PROGRESS_SCHEMA \
                or stored.get("fingerprint") != self.fingerprint:
            return {}
        return {int(index): outcome
                for index, outcome in stored.get("points", {}).items()}

    def save(self, outcomes: Dict[int, Dict[str, object]],
             completed: bool = False) -> None:
        """Atomically persist the outcomes recorded so far."""
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": PROGRESS_SCHEMA,
            "family": self.family_name,
            "fingerprint": self.fingerprint,
            "completed": bool(completed),
            "points": {str(index): outcomes[index]
                       for index in sorted(outcomes)},
        }
        fd, tmp_path = tempfile.mkstemp(dir=str(self.directory),
                                        prefix=".progress-", suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp_path, self.path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    def discard(self) -> None:
        try:
            os.unlink(self.path)
        except OSError:
            pass
