"""Per-point recertification probes: the sweep shard's worker-side half.

A shard receives a batch of parameter points plus the *anchor* Lyapunov
certificates (synthesised once per family at the nominal parameters) and
decides, for every point, whether the anchor certificates remain valid and
under which Gram-cone rung — the frontier's "cheapest certifying
relaxation".

Only the decrease condition (Theorem 1(b)) depends on the swept dynamics:
positivity and jump non-increase constrain the fixed certificate polynomials
alone, so they are established once at the anchor and hold verbatim at every
point.  Per point, acceptance mirrors the synthesis pipeline's ladder:

1. deterministic sampling validation of the Lie-derivative decrease at the
   point's dynamics (seeded, pure NumPy — the decisive gate, and a cheap
   filter that skips conic solves in clearly-degraded regions);
2. a conic decrease-probe solve per ladder rung; cheap rungs (dsos/sdsos/
   chordal) are accepted only when the recovered Gram certificates are
   numerically sound in the full PSD sense, the final rung accepts the
   solver's candidate — exactly `MultipleLyapunovSynthesizer.synthesize`'s
   escalation semantics applied to a fixed certificate.

The conic data of each rung's probe family is decomposed affinely over the
sweep axes by :class:`~repro.sos.parametric.MultiParametricSOSProgram`
(one structural compile per rung, pure array re-assembly per point); axes
that enter the dynamics non-affinely (e.g. the PLL's ``c2``) are detected by
the compile-time affinity check and transparently fall back to per-point
rebuilds, reported as ``structure_mode: "rebuild"``.

Every solve goes through the job's :class:`SolveContext` and therefore the
content-addressed certificate cache: a warm re-sweep performs zero SDP
solves, and a perturbed grid re-solves only the changed points.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.lyapunov import MultipleLyapunovSynthesizer
from ..engine.serialize import certificates_from_data
from ..scenarios.registry import build_problem
from ..sdp import SolveContext, cone_for_relaxation
from ..sos import MultiParametricSOSProgram, ParametricProgramError
from ..utils import get_logger

LOGGER = get_logger("sweep.probe")


def _point_problem(scenario: str, params: Dict[str, float]):
    problem = build_problem(scenario, params=params or None)
    if problem.options.lyapunov.domain_boxes is None:
        problem.options.lyapunov.domain_boxes = problem.state_bounds()
    return problem


def _synthesizer(problem, context: SolveContext) -> MultipleLyapunovSynthesizer:
    return MultipleLyapunovSynthesizer(
        problem.system, options=problem.options.lyapunov, context=context)


class _RungStructure:
    """One Gram-cone rung's compiled probe structure over the sweep axes."""

    def __init__(self, scenario: str, rung: str, certificates,
                 anchor_params: Dict[str, float],
                 base: Dict[str, float], steps: Dict[str, float],
                 context: SolveContext):
        self.rung = rung
        self.cone = cone_for_relaxation(rung)
        self.rebuild_compiles = 0
        self._scenario = scenario
        self._certificates = certificates
        self._anchor = dict(anchor_params)
        self._context = context

        def build_at(params: Dict[str, float]):
            return self._probe_program(params)

        self.family: Optional[MultiParametricSOSProgram] = None
        try:
            family = MultiParametricSOSProgram(
                build_at, base=base, steps=steps, context=context,
                name=f"sweep_{scenario}_{rung}")
            family.compile()
            self.family = family
            self.mode = "parametric"
        except ParametricProgramError as exc:
            # Non-affine axis (or structure change across the range): every
            # point of this rung pays a full rebuild instead.
            LOGGER.info("sweep %s/%s: parametric fast path unavailable (%s); "
                        "falling back to per-point rebuilds",
                        scenario, rung, exc)
            self.mode = "rebuild"
        self._last_program = None

    def _probe_program(self, params: Dict[str, float]):
        problem = _point_problem(self._scenario, {**self._anchor, **params})
        synthesizer = _synthesizer(problem, self._context)
        return synthesizer.decrease_probe_program(
            self._certificates, cone=self.cone,
            name=f"sweep_probe_{self._scenario}_{self.rung}")

    def conic_at(self, params: Dict[str, float]):
        """The point's conic problem: an array bind, or a rebuild fallback."""
        if self.family is not None:
            return self.family.bind(params)
        program = self._probe_program(params)
        self._last_program = program
        self.rebuild_compiles += 1
        return program.compile()[0].build()

    def interpret(self, result, with_certificates: bool = False):
        if self.family is not None:
            return self.family.interpret(result, with_certificates=with_certificates)
        return self._last_program.interpret_result(
            result, with_certificates=with_certificates)

    def stats(self) -> Dict[str, object]:
        parametric = self.family
        return {
            "mode": self.mode,
            "parametric_compiles": 1 if parametric is not None else 0,
            "structure_compiles": (parametric.num_structure_compiles
                                   if parametric is not None else 0),
            "binds": parametric.num_binds if parametric is not None else 0,
            "rebuild_compiles": self.rebuild_compiles,
        }


def run_sweep_shard(payload: Dict[str, object], context: SolveContext
                    ) -> Tuple[str, str, Dict[str, object]]:
    """Execute one sweep shard: certify every point, report cheapest rungs.

    Payload keys: ``scenario``, ``certificates`` (anchor certificates on the
    wire), ``rungs`` (the relaxation ladder, cheapest first), ``base`` /
    ``steps`` (the affine parametrization anchors), ``anchor_params``,
    ``points`` (``[{"index": int, "params": {axis: value}}, ...]``) and
    optional ``probe_settings`` / ``backend`` overrides.
    """
    scenario = str(payload["scenario"])
    certificates = certificates_from_data(payload["certificates"])
    rungs = [str(r) for r in payload["rungs"]]
    anchor_params = {k: float(v)
                     for k, v in (payload.get("anchor_params") or {}).items()}
    base = {k: float(v) for k, v in payload["base"].items()}
    steps = {k: float(v) for k, v in payload["steps"].items()}
    probe_settings = dict(payload.get("probe_settings") or {})
    backend = payload.get("backend")

    structures: Dict[str, _RungStructure] = {}

    def structure_for(rung: str) -> _RungStructure:
        if rung not in structures:
            structures[rung] = _RungStructure(
                scenario, rung, certificates, anchor_params, base, steps,
                context)
        return structures[rung]

    outcomes: List[Dict[str, object]] = []
    for entry in payload["points"]:
        index = int(entry["index"])
        params = {k: float(v) for k, v in entry["params"].items()}
        problem = _point_problem(scenario, {**anchor_params, **params})
        options = problem.options.lyapunov
        settings = dict(options.solver_settings)
        settings.update(probe_settings)

        synthesizer = _synthesizer(problem, context)
        reports = synthesizer.validate_certificate_decrease(certificates)
        # With sampling disabled (validate_samples=0) the conic solve is the
        # only evidence, so the final rung then demands full convergence
        # instead of accepting any candidate.
        validated = bool(reports)
        sampling_ok = all(r.passed for r in reports) if validated else True

        outcome: Dict[str, object] = {
            "index": index,
            "params": {k: params[k] for k in sorted(params)},
            "certified": False,
            "rung": None,
            "sampling": sampling_ok,
            "attempts": [],
        }
        if sampling_ok:
            # The ladder: cheapest rung first; the final rung accepts the
            # solver candidate (sampling already passed), cheaper rungs
            # must also reconstruct numerically sound PSD Gram matrices.
            for position, rung in enumerate(rungs):
                final = position == len(rungs) - 1
                structure = structure_for(rung)
                conic = structure.conic_at(params)
                result = context.solve(conic, backend=backend, **settings)
                outcome["attempts"].append(rung)
                if result.x is None:
                    continue
                if final and not validated and not result.is_success:
                    continue
                if not final:
                    solution = structure.interpret(result, with_certificates=True)
                    sound = bool(solution.certificates) and all(
                        certificate.is_numerically_sos(
                            eig_tol=options.relaxation_eig_tol,
                            res_tol=options.relaxation_res_tol)
                        for certificate in solution.certificates.values())
                    if not sound:
                        continue
                outcome["certified"] = True
                outcome["rung"] = rung
                break
        outcomes.append(outcome)

    outcomes.sort(key=lambda o: o["index"])
    certified = sum(1 for o in outcomes if o["certified"])
    data = {
        "points": outcomes,
        "structures": {rung: structure.stats()
                       for rung, structure in structures.items()},
    }
    detail = f"{certified}/{len(outcomes)} point(s) recertified"
    return "ok", detail, data
