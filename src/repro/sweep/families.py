"""Declarative sweep families: lazy generators over scenario parameter axes.

A *sweep family* names a registered scenario, a set of its declared sweep
axes (see :attr:`repro.scenarios.registry.ScenarioSpec.sweep_axes`) and a
rule for expanding them into concrete parameter points:

* :class:`GridSweep` — the Cartesian product of evenly spaced axis values;
* :class:`MonteCarloSweep` — seeded uniform draws over axis ranges (the same
  seed always reproduces the identical point set, bit for bit);
* :class:`DegradationLadder` — one axis walked through fractions of its
  nominal value, generalising the ``pll3_weak_pump`` scenario (Ip pinned at
  40%) to a continuum like ``Ip ∈ [0.2, 1.0]·nominal``.

Families are registered alongside scenarios (:func:`register_sweep_family`)
and expand lazily — listing thousands of points costs no model builds; the
planner materialises :class:`SweepPoint` parameter dicts and routes them
through the registry's parameter-override path (``spec.build(params=...)``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional, Tuple

import numpy as np

#: Axis specification: ``(name, lower, upper, count)``.  ``count`` is the
#: grid resolution (ignored by Monte-Carlo families, which draw ``samples``
#: points from the ``[lower, upper]`` ranges instead).
AxisTuple = Tuple[str, float, float, int]


def _axis(name: str, lower: float, upper: float, count: int) -> AxisTuple:
    if count < 1:
        raise ValueError(f"axis {name!r}: count must be >= 1, got {count}")
    if upper < lower:
        raise ValueError(f"axis {name!r}: upper {upper} < lower {lower}")
    return (str(name), float(lower), float(upper), int(count))


def _axis_values(axis: AxisTuple) -> np.ndarray:
    name, lower, upper, count = axis
    if count == 1:
        return np.asarray([lower])
    return np.linspace(lower, upper, count)


@dataclass(frozen=True)
class SweepPoint:
    """One concrete parameter point of a family."""

    index: int
    params: Tuple[Tuple[str, float], ...]  # sorted by axis name

    @property
    def params_dict(self) -> Dict[str, float]:
        return dict(self.params)

    @staticmethod
    def make(index: int, params: Mapping[str, float]) -> "SweepPoint":
        return SweepPoint(index=index, params=tuple(
            (name, float(params[name])) for name in sorted(params)))


@dataclass(frozen=True)
class SweepFamily:
    """Base of every sweep family (the shared declarative surface).

    ``relaxation`` names the Gram-cone ladder every point climbs (``"auto"``
    walks dsos → sdsos → chordal → sos and reports the cheapest certifying
    rung; a single rung pins it).  ``probe_settings`` optionally overrides
    the per-point conic solver settings — probe programs are far smaller
    than the synthesis programs the stage defaults were budgeted for.
    """

    name: str
    scenario: str
    description: str = ""
    relaxation: str = "auto"
    probe_settings: Tuple[Tuple[str, object], ...] = ()
    tags: Tuple[str, ...] = ()

    # -- expansion (overridden by concrete families) -------------------
    def axes(self) -> Tuple[str, ...]:
        raise NotImplementedError

    def count(self) -> int:
        raise NotImplementedError

    def points(self) -> Iterator[SweepPoint]:
        raise NotImplementedError

    def parametrization(self) -> Tuple[Dict[str, float], Dict[str, float]]:
        """``(base, steps)`` anchoring the affine conic decomposition.

        The base point and per-axis displacement the planner hands to
        :class:`~repro.sos.parametric.MultiParametricSOSProgram` — by
        convention the lower corner of the axis ranges and their spans.
        """
        raise NotImplementedError

    def reconfigure(self, grid: Optional[Mapping[str, Tuple[float, float, int]]] = None,
                    samples: Optional[int] = None,
                    seed: Optional[int] = None) -> "SweepFamily":
        """A copy with CLI-style overrides (``--grid``/``--samples``/``--seed``)."""
        raise NotImplementedError

    # -- identity ------------------------------------------------------
    def anchor_params(self) -> Dict[str, float]:
        """Parameter overrides of the anchor certificate synthesis.

        Empty by default: the anchor is the registered nominal scenario, so
        a sweep shares its Lyapunov cache entries with ``repro verify``.
        """
        return {}

    def config(self) -> Dict[str, object]:
        """Canonical JSON-able description (drives :meth:`fingerprint`)."""
        data = dataclasses.asdict(self)
        data["kind"] = type(self).__name__
        return data

    def fingerprint(self) -> str:
        """Content address of the family configuration.

        Keys resumable progress files and frontier reports: two runs with
        the same fingerprint enumerate the identical point set.
        """
        blob = json.dumps(self.config(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    def summary_row(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "kind": type(self).__name__,
            "scenario": self.scenario,
            "description": self.description,
            "axes": list(self.axes()),
            "points": self.count(),
            "relaxation": self.relaxation,
            "tags": list(self.tags),
        }

    def _validate_axes(self) -> None:
        """Reject axes the scenario does not declare (at registration time)."""
        from ..scenarios.registry import get_scenario

        declared = set(get_scenario(self.scenario).sweep_axes)
        unknown = sorted(set(self.axes()) - declared)
        if unknown:
            raise ValueError(
                f"sweep family {self.name!r}: scenario {self.scenario!r} "
                f"declares no axes {unknown} (has {sorted(declared)})")


def _merge_grid(axes: Tuple[AxisTuple, ...],
                grid: Mapping[str, Tuple[float, float, int]]
                ) -> Tuple[AxisTuple, ...]:
    known = {axis[0] for axis in axes}
    unknown = sorted(set(grid) - known)
    if unknown:
        raise ValueError(f"--grid names unknown axes {unknown}; "
                         f"family axes: {sorted(known)}")
    merged = []
    for name, lower, upper, count in axes:
        if name in grid:
            lo, hi, n = grid[name]
            merged.append(_axis(name, lo, hi, n))
        else:
            merged.append((name, lower, upper, count))
    return tuple(merged)


@dataclass(frozen=True)
class GridSweep(SweepFamily):
    """Cartesian product of evenly spaced values on every axis.

    Points are enumerated row-major in declared axis order (the first axis
    varies slowest), so indices are stable across runs and shard counts.
    """

    grid_axes: Tuple[AxisTuple, ...] = ()

    def __post_init__(self) -> None:
        if not self.grid_axes:
            raise ValueError(f"grid family {self.name!r} declares no axes")

    def axes(self) -> Tuple[str, ...]:
        return tuple(axis[0] for axis in self.grid_axes)

    def count(self) -> int:
        total = 1
        for axis in self.grid_axes:
            total *= axis[3]
        return total

    def points(self) -> Iterator[SweepPoint]:
        values = [_axis_values(axis) for axis in self.grid_axes]
        names = self.axes()
        for index, combo in enumerate(itertools.product(*values)):
            yield SweepPoint.make(index, dict(zip(names, map(float, combo))))

    def parametrization(self) -> Tuple[Dict[str, float], Dict[str, float]]:
        base = {axis[0]: axis[1] for axis in self.grid_axes}
        steps = {axis[0]: (axis[2] - axis[1]) for axis in self.grid_axes}
        return base, steps

    def reconfigure(self, grid=None, samples=None, seed=None) -> "GridSweep":
        family = self
        if grid:
            family = dataclasses.replace(
                family, grid_axes=_merge_grid(family.grid_axes, grid))
        # samples/seed have no meaning on a grid; ignoring them silently
        # would make `--samples` a no-op typo trap.
        if samples is not None or seed is not None:
            raise ValueError(
                f"family {self.name!r} is a grid; use --grid, not "
                "--samples/--seed")
        return family


@dataclass(frozen=True)
class MonteCarloSweep(SweepFamily):
    """Seeded uniform draws over axis ranges.

    The full point set is drawn in one ``default_rng(seed)`` pass, so the
    same (ranges, samples, seed) triple reproduces identical points on any
    machine, process count or resume boundary.
    """

    ranges: Tuple[AxisTuple, ...] = ()   # count field unused
    samples: int = 16
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.ranges:
            raise ValueError(f"Monte-Carlo family {self.name!r} declares no axes")
        if self.samples < 1:
            raise ValueError(f"family {self.name!r}: samples must be >= 1")

    def axes(self) -> Tuple[str, ...]:
        return tuple(axis[0] for axis in self.ranges)

    def count(self) -> int:
        return int(self.samples)

    def points(self) -> Iterator[SweepPoint]:
        rng = np.random.default_rng(self.seed)
        lows = np.asarray([axis[1] for axis in self.ranges])
        highs = np.asarray([axis[2] for axis in self.ranges])
        draws = rng.uniform(lows, highs, size=(self.samples, len(self.ranges)))
        names = self.axes()
        for index in range(self.samples):
            yield SweepPoint.make(
                index, dict(zip(names, map(float, draws[index]))))

    def parametrization(self) -> Tuple[Dict[str, float], Dict[str, float]]:
        base = {axis[0]: axis[1] for axis in self.ranges}
        steps = {axis[0]: (axis[2] - axis[1]) for axis in self.ranges}
        return base, steps

    def reconfigure(self, grid=None, samples=None, seed=None) -> "MonteCarloSweep":
        family = self
        if grid:
            family = dataclasses.replace(
                family, ranges=_merge_grid(family.ranges, grid))
        if samples is not None:
            family = dataclasses.replace(family, samples=int(samples))
        if seed is not None:
            family = dataclasses.replace(family, seed=int(seed))
        return family


@dataclass(frozen=True)
class DegradationLadder(SweepFamily):
    """One axis walked through fractions of its nominal value.

    ``fractions = linspace(lower, upper, steps)``; each point overrides the
    axis to ``fraction · nominal`` where the nominal comes from the
    scenario's declared sweep axes.  ``pll3_weak_pump`` (Ip aged to 40%) is
    the single rung ``lower = upper = 0.4`` of the Ip ladder.
    """

    axis: str = ""
    lower: float = 0.2
    upper: float = 1.0
    steps: int = 9

    def __post_init__(self) -> None:
        if not self.axis:
            raise ValueError(f"ladder family {self.name!r} names no axis")
        if self.steps < 1:
            raise ValueError(f"family {self.name!r}: steps must be >= 1")
        if self.upper < self.lower:
            raise ValueError(
                f"family {self.name!r}: upper {self.upper} < lower {self.lower}")

    def axes(self) -> Tuple[str, ...]:
        return (self.axis,)

    def count(self) -> int:
        return int(self.steps)

    def _nominal(self) -> float:
        from ..scenarios.registry import get_scenario

        return float(get_scenario(self.scenario).sweep_axes[self.axis])

    def fractions(self) -> np.ndarray:
        return _axis_values((self.axis, self.lower, self.upper, self.steps))

    def points(self) -> Iterator[SweepPoint]:
        nominal = self._nominal()
        for index, fraction in enumerate(self.fractions()):
            yield SweepPoint.make(index, {self.axis: float(fraction) * nominal})

    def parametrization(self) -> Tuple[Dict[str, float], Dict[str, float]]:
        nominal = self._nominal()
        base = {self.axis: self.lower * nominal}
        steps = {self.axis: (self.upper - self.lower) * nominal}
        return base, steps

    def reconfigure(self, grid=None, samples=None, seed=None) -> "DegradationLadder":
        family = self
        if grid:
            unknown = sorted(set(grid) - {self.axis})
            if unknown:
                raise ValueError(
                    f"--grid names unknown axes {unknown}; family axis: "
                    f"[{self.axis!r}] (values are fractions of nominal)")
            lo, hi, n = grid[self.axis]
            family = dataclasses.replace(
                family, lower=float(lo), upper=float(hi), steps=int(n))
        if samples is not None:
            family = dataclasses.replace(family, steps=int(samples))
        if seed is not None:
            raise ValueError(
                f"family {self.name!r} is deterministic; --seed does not apply")
        return family


# ----------------------------------------------------------------------
# Registry (mirrors the scenario registry's shape)
# ----------------------------------------------------------------------
_FAMILIES: Dict[str, SweepFamily] = {}


def register_sweep_family(family: SweepFamily,
                          overwrite: bool = False) -> SweepFamily:
    """Register a family under its name (validating axes against the scenario)."""
    if family.name in _FAMILIES and not overwrite:
        raise ValueError(f"sweep family {family.name!r} is already registered")
    family._validate_axes()
    _FAMILIES[family.name] = family
    return family


def get_sweep_family(name: str) -> SweepFamily:
    _ensure_catalog()
    try:
        return _FAMILIES[name]
    except KeyError:
        raise KeyError(
            f"unknown sweep family {name!r}; available: "
            f"{sweep_family_names()}") from None


def all_sweep_families() -> Tuple[SweepFamily, ...]:
    _ensure_catalog()
    return tuple(_FAMILIES[name] for name in sorted(_FAMILIES))


def sweep_family_names() -> Tuple[str, ...]:
    _ensure_catalog()
    return tuple(sorted(_FAMILIES))


def _ensure_catalog() -> None:
    # Built-in families live in .catalog; importing it registers them.
    from . import catalog  # noqa: F401
