"""The sweep execution planner.

Turns a :class:`~repro.sweep.families.SweepFamily` into one engine-shaped
run:

1. **Anchor synthesis** — one Lyapunov job at the family's anchor parameters
   (the registered nominal by default), executed through the engine's
   hermetic :func:`~repro.engine.engine._execute_job` so it shares the
   certificate cache with ``repro verify``.
2. **Point shards** — the family's points are chunked so every worker slot
   gets one contiguous shard (``ceil(points / jobs)`` by default), and each
   shard travels as a single ``sweep_shard`` job through the same executor
   stack the engine uses: inline for ``jobs=1``, a local process pool for
   ``jobs>1``, or the fleet's :class:`~repro.engine.engine.DistributedExecutor`
   with ``--fleet``.  Per shard, every ladder rung pays one structural
   compile of its :class:`~repro.sos.parametric.MultiParametricSOSProgram`
   probe family and each point is a pure array bind.
3. **Aggregation** — shard outcomes fold into the deterministic feasibility
   frontier (:mod:`repro.sweep.frontier`) plus a nondeterministic ``run``
   telemetry section; progress persists after every shard so ``--resume``
   re-dispatches only the missing points.
"""

from __future__ import annotations

import math
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..engine.cache import cache_rate_summary, default_cache_dir
from ..engine.engine import DistributedExecutor, _InlineExecutor, _execute_job
from ..engine.jobs import STEP_LYAPUNOV, STEP_SWEEP
from ..exceptions import CertificateError
from ..sdp import relaxation_ladder
from ..utils import get_logger
from .families import SweepFamily, SweepPoint, get_sweep_family
from .frontier import build_frontier, render_frontier_text
from .progress import SweepProgress

LOGGER = get_logger("sweep.planner")


class SweepError(CertificateError):
    """A sweep could not run (anchor synthesis failed, bad reconfiguration)."""


@dataclass
class SweepOptions:
    """Configuration of one sweep run (mirrors ``EngineOptions`` knobs)."""

    jobs: int = 1
    use_cache: bool = True
    cache_dir: Optional[str] = None
    job_timeout: Optional[float] = None
    relaxation: Optional[str] = None    # None keeps the family's ladder
    backend: Optional[str] = None
    array_backend: Optional[str] = None
    fleet: Optional[str] = None
    fleet_priority: int = 0
    # Family reshaping (CLI --grid/--samples/--seed):
    grid: Optional[Dict[str, Tuple[float, float, int]]] = None
    samples: Optional[int] = None
    seed: Optional[int] = None
    # Points per shard job; None = ceil(points / jobs) so every worker slot
    # gets one shard and each rung structure compiles exactly once per slot.
    shard_size: Optional[int] = None
    resume: bool = False


@dataclass
class SweepReport:
    """Aggregated outcome of one sweep run."""

    family: Dict[str, object]
    frontier: Dict[str, object]
    run: Dict[str, object] = field(default_factory=dict)

    @property
    def points(self) -> List[Dict[str, object]]:
        return list(self.frontier.get("points", []))

    @property
    def certified(self) -> int:
        return int(self.frontier.get("summary", {}).get("certified", 0))

    def to_json_dict(self) -> Dict[str, object]:
        return {"frontier": self.frontier, "run": self.run}

    def render_text(self) -> str:
        lines = [render_frontier_text(self.frontier)]
        run = self.run
        anchor = run.get("anchor", {})
        lines.append(
            f"  anchor: {anchor.get('status', '?')} in "
            f"{anchor.get('seconds', 0.0):.2f}s "
            f"(relaxation {anchor.get('relaxation', '?')})")
        counters = run.get("counters", {})
        lines.append(
            f"  run: {run.get('wall_seconds', 0.0):.1f}s wall, "
            f"jobs={run.get('jobs', 1)}, {run.get('shards', 0)} shard(s), "
            f"{counters.get('solved', 0)} SDP solve(s), "
            f"{counters.get('cache_hit', 0)} cache hit(s)")
        cache = run.get("cache", {})
        if cache.get("lookups"):
            lines.append(
                f"  certificate cache: {cache['hits']}/{cache['lookups']} "
                f"lookups hit ({100.0 * cache['hit_rate']:.1f}%), "
                f"{cache['writes']} write(s)")
        structures = run.get("structures", {})
        for rung in sorted(structures):
            entry = structures[rung]
            lines.append(
                f"  structure[{rung}]: mode={entry.get('mode')}, "
                f"{entry.get('structure_compiles', 0)} structural compile(s), "
                f"{entry.get('binds', 0)} bind(s), "
                f"{entry.get('rebuild_compiles', 0)} rebuild(s)")
        if run.get("resumed_points"):
            lines.append(f"  resumed: {run['resumed_points']} point(s) "
                         "restored from progress file")
        return "\n".join(lines)


def _chunk(points: Sequence[SweepPoint], size: int) -> List[List[SweepPoint]]:
    return [list(points[start:start + size])
            for start in range(0, len(points), size)]


def _merge_counts(total: Dict[str, int], delta: Dict[str, object]) -> None:
    for key, value in delta.items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            total[key] = total.get(key, 0) + value


class SweepRunner:
    """Plan and execute one sweep family end to end."""

    def __init__(self, options: Optional[SweepOptions] = None,
                 cache_override: Optional[object] = None,
                 override_cache: bool = False):
        self.options = options or SweepOptions()
        # Mirrors _execute_job's override contract: sessions with in-memory
        # caches (and tests) substitute their cache object for the path the
        # payload would otherwise describe.
        self._cache_override = cache_override
        self._override_cache = override_cache

    # ------------------------------------------------------------------
    def resolve_family(self, family: object) -> SweepFamily:
        """A reshaped copy of the requested family (name or instance)."""
        if isinstance(family, str):
            family = get_sweep_family(family)
        options = self.options
        if options.grid or options.samples is not None \
                or options.seed is not None:
            try:
                family = family.reconfigure(grid=options.grid,
                                            samples=options.samples,
                                            seed=options.seed)
            except ValueError as exc:
                raise SweepError(str(exc)) from exc
        return family

    def _progress_dir(self) -> str:
        root = self.options.cache_dir
        base = default_cache_dir() if root is None else root
        from pathlib import Path

        return str(Path(base) / "sweeps")

    def _base_payload(self, family: SweepFamily) -> Dict[str, object]:
        options = self.options
        return {
            "scenario": family.scenario,
            "use_cache": options.use_cache,
            "cache_dir": options.cache_dir,
            "backend": options.backend,
            "array_backend": options.array_backend,
        }

    def _run_job(self, payload: Dict[str, object]) -> Dict[str, object]:
        if self._override_cache:
            return _execute_job(payload, cache_override=self._cache_override,
                                override_cache=True)
        return _execute_job(payload)

    # ------------------------------------------------------------------
    def _anchor_certificates(self, family: SweepFamily
                             ) -> Tuple[Dict[str, object], Dict[str, object]]:
        """Synthesize (or replay from cache) the family's anchor certificates.

        Runs inline in the parent — a single job that every shard depends
        on — with the scenario's *registered* relaxation and the family's
        anchor parameters, so nominal-anchored sweeps share cache entries
        with plain ``repro verify`` runs.
        """
        anchor = family.anchor_params()
        payload = dict(self._base_payload(family))
        payload.update({
            "step": STEP_LYAPUNOV,
            "mode": None,
            "seed": 0,
            "relaxation": None,
            "params": anchor or None,
        })
        outcome = self._run_job(payload)
        data = outcome.get("data", {})
        info = {
            "status": outcome.get("status"),
            "seconds": float(outcome.get("seconds", 0.0)),
            "relaxation": data.get("relaxation"),
            "params": dict(anchor),
            "counters": dict(outcome.get("counters", {})),
            "cache_stats": dict(outcome.get("cache_stats", {})),
        }
        if outcome.get("status") != "ok" or not data.get("feasible"):
            raise SweepError(
                f"anchor synthesis for family {family.name!r} "
                f"({family.scenario}) failed: {outcome.get('detail')}")
        return data["certificates"], info

    # ------------------------------------------------------------------
    def run(self, family: object) -> SweepReport:
        options = self.options
        start = time.perf_counter()
        family = self.resolve_family(family)
        try:
            ladder = relaxation_ladder(options.relaxation or family.relaxation)
        except ValueError as exc:
            raise SweepError(str(exc)) from exc

        points = list(family.points())
        if not points:
            raise SweepError(f"family {family.name!r} expands to no points")

        progress = SweepProgress(self._progress_dir(), family.name,
                                 family.fingerprint())
        completed: Dict[int, Dict[str, object]] = {}
        if options.resume:
            completed = progress.load()
            known = {point.index for point in points}
            completed = {index: outcome for index, outcome in completed.items()
                         if index in known}
        resumed = len(completed)
        pending = [point for point in points if point.index not in completed]

        certificates, anchor_info = self._anchor_certificates(family)

        counters: Dict[str, int] = {}
        cache_totals: Dict[str, int] = {}
        structures: Dict[str, Dict[str, object]] = {}
        _merge_counts(counters, anchor_info["counters"])
        _merge_counts(cache_totals, anchor_info["cache_stats"])

        shard_errors: List[str] = []
        shards: List[List[SweepPoint]] = []
        if pending:
            shard_size = options.shard_size or \
                max(1, math.ceil(len(pending) / max(1, options.jobs)))
            shards = _chunk(pending, shard_size)
            self._run_shards(family, ladder, certificates, shards, completed,
                             progress, counters, cache_totals, structures,
                             shard_errors)

        progress.save(completed, completed=len(completed) == len(points))
        if shard_errors:
            raise SweepError(
                f"{len(shard_errors)} sweep shard(s) failed "
                f"(progress saved; re-run with --resume): {shard_errors[0]}")

        frontier = build_frontier(family.config(), family.fingerprint(),
                                  ladder, list(completed.values()))
        run = {
            "wall_seconds": time.perf_counter() - start,
            "jobs": options.jobs,
            "fleet": options.fleet,
            "backend": options.backend,
            "array_backend": options.array_backend,
            "use_cache": options.use_cache,
            "shards": len(shards),
            "resumed_points": resumed,
            "anchor": anchor_info,
            "counters": counters,
            "cache_stats": cache_totals,
            "cache": cache_rate_summary(cache_totals),
            "structures": structures,
            "progress_path": str(progress.path),
        }
        return SweepReport(family=family.config(), frontier=frontier, run=run)

    # ------------------------------------------------------------------
    def _run_shards(self, family: SweepFamily, ladder: Sequence[str],
                    certificates: Dict[str, object],
                    shards: List[List[SweepPoint]],
                    completed: Dict[int, Dict[str, object]],
                    progress: SweepProgress,
                    counters: Dict[str, int],
                    cache_totals: Dict[str, int],
                    structures: Dict[str, Dict[str, object]],
                    shard_errors: List[str]) -> None:
        options = self.options
        base, steps = family.parametrization()
        shard_payloads = []
        for shard in shards:
            payload = dict(self._base_payload(family))
            payload.update({
                "step": STEP_SWEEP,
                "mode": None,
                "certificates": certificates,
                "rungs": list(ladder),
                "base": base,
                "steps": steps,
                "anchor_params": family.anchor_params(),
                "probe_settings": dict(family.probe_settings),
                "points": [{"index": point.index,
                            "params": point.params_dict}
                           for point in shard],
            })
            shard_payloads.append(payload)

        if options.fleet:
            executor = DistributedExecutor(options.fleet,
                                           priority=options.fleet_priority,
                                           timeout=options.job_timeout)
        elif options.jobs > 1 and len(shard_payloads) > 1 \
                and not self._override_cache:
            executor = ProcessPoolExecutor(max_workers=options.jobs)
        else:
            # Inline also covers cache-object overrides: a live cache object
            # (session in-memory cache, test double) cannot cross a process
            # boundary.
            executor = _InlineExecutor()

        active: Dict[Future, int] = {}
        queue = list(enumerate(shard_payloads))
        try:
            while queue or active:
                while queue and len(active) < max(1, options.jobs):
                    shard_id, payload = queue.pop(0)
                    LOGGER.info("submitting sweep shard %d/%d (%d point(s))",
                                shard_id + 1, len(shard_payloads),
                                len(payload["points"]))
                    try:
                        if isinstance(executor, _InlineExecutor):
                            future = executor.submit(self._run_job, payload)
                        else:
                            future = executor.submit(_execute_job, payload)
                    except Exception as exc:
                        shard_errors.append(f"submission failed: {exc}")
                        continue
                    active[future] = shard_id
                if not active:
                    break
                done, _ = wait(list(active), timeout=0.25,
                               return_when=FIRST_COMPLETED)
                for future in done:
                    shard_id = active.pop(future)
                    try:
                        outcome = future.result()
                    except Exception as exc:
                        shard_errors.append(f"{type(exc).__name__}: {exc}")
                        continue
                    if outcome.get("status") != "ok":
                        shard_errors.append(str(outcome.get("detail")))
                        continue
                    data = outcome.get("data", {})
                    for point in data.get("points", []):
                        completed[int(point["index"])] = point
                    for rung, stats in data.get("structures", {}).items():
                        entry = structures.setdefault(
                            rung, {"mode": stats.get("mode")})
                        if entry["mode"] != stats.get("mode"):
                            entry["mode"] = "mixed"
                        _merge_counts(entry, stats)
                    _merge_counts(counters, outcome.get("counters", {}))
                    _merge_counts(cache_totals, outcome.get("cache_stats", {}))
                    progress.save(completed)
        finally:
            if isinstance(executor, ProcessPoolExecutor):
                executor.shutdown(wait=False, cancel_futures=True)
            else:
                executor.shutdown(wait=False)


def run_sweep(family: object, options: Optional[SweepOptions] = None,
              **overrides) -> SweepReport:
    """Convenience wrapper: build options from kwargs and run one family."""
    if options is None:
        options = SweepOptions(**overrides)
    elif overrides:
        raise TypeError("pass either options or keyword overrides, not both")
    return SweepRunner(options).run(family)
