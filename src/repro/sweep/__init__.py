"""Parameter sweeps: certified feasibility frontiers over scenario axes.

The subsystem answers "over which parameter region does the certificate
survive, and at which Gram-cone rung?" — declaratively (:mod:`families`),
cheaply (one structural compile per family structure, an array bind per
point; :mod:`probe`), in parallel (local pool or fleet; :mod:`planner`) and
resumably (:mod:`progress`), reporting a per-axis feasibility frontier
(:mod:`frontier`).
"""

from .families import (
    DegradationLadder,
    GridSweep,
    MonteCarloSweep,
    SweepFamily,
    SweepPoint,
    all_sweep_families,
    get_sweep_family,
    register_sweep_family,
    sweep_family_names,
)
from .frontier import build_frontier, render_frontier_text
from .planner import (
    SweepError,
    SweepOptions,
    SweepReport,
    SweepRunner,
    run_sweep,
)
from .progress import SweepProgress

__all__ = [
    "DegradationLadder",
    "GridSweep",
    "MonteCarloSweep",
    "SweepFamily",
    "SweepPoint",
    "SweepError",
    "SweepOptions",
    "SweepReport",
    "SweepRunner",
    "SweepProgress",
    "all_sweep_families",
    "build_frontier",
    "get_sweep_family",
    "register_sweep_family",
    "render_frontier_text",
    "run_sweep",
    "sweep_family_names",
]
