"""The fleet worker: pull hermetic jobs, execute, stream status back.

``python -m repro worker --connect host:port`` runs one :class:`FleetWorker`.
The worker long-polls the master for jobs, executes each one through the
engine's hermetic :func:`~repro.engine.engine._execute_job` entry point
under a per-job :class:`~repro.sdp.context.SolveContext`, and reports the
outcome.  Its certificate cache is the *master's* store, reached through a
:class:`~repro.engine.cache.RemoteCacheClient`, so every solve performed by
any worker is immediately visible fleet-wide.

Liveness is a background heartbeat thread on its own connection; a worker
that dies (SIGKILL, OOM, network partition) simply goes silent and the
master requeues its job.  A worker that is asked to stop (SIGTERM/Ctrl-C)
finishes its current job, reports it, and deregisters — the graceful path
never loses work and never leaves the master waiting out a timeout.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional, Tuple

from ..engine.cache import RemoteCacheClient
from ..utils import get_logger
from .protocol import Connection, ProtocolError, format_address

LOGGER = get_logger("fleet.worker")


class WorkerKilled(BaseException):
    """Raised by a test executor to simulate abrupt worker death.

    Derives from ``BaseException`` so the ordinary job-level ``except
    Exception`` recovery inside executors cannot swallow it.
    """


class FleetWorker:
    """One fleet worker process (or thread, in tests and demos).

    Parameters
    ----------
    address:
        ``(host, port)`` of the master.
    name:
        Human-readable name; the master suffixes it into a unique id.
    poll_timeout:
        Long-poll budget of one ``next_job`` request.
    executor:
        Job executor ``(payload, cache) -> outcome dict``; defaults to the
        engine's hermetic :func:`~repro.engine.engine._execute_job`.  Tests
        inject blocking or crashing executors here.
    use_remote_cache:
        When true (the default), jobs run against the master's certificate
        cache through a :class:`RemoteCacheClient` instead of a local store.
    """

    def __init__(self, address: Tuple[str, int], name: str = "worker",
                 poll_timeout: float = 2.0,
                 executor: Optional[Callable[[Dict[str, object], object],
                                             Dict[str, object]]] = None,
                 use_remote_cache: bool = True):
        self.address = address
        self.name = name
        self.poll_timeout = poll_timeout
        self.executor = executor
        self.use_remote_cache = use_remote_cache
        self.worker_id: Optional[str] = None
        self.jobs_done = 0
        self.heartbeat_interval = 0.5
        self._stop = threading.Event()      # graceful: finish, deregister
        self._killed = threading.Event()    # abrupt: drop everything
        self._control: Optional[Connection] = None
        self._heartbeat_thread: Optional[threading.Thread] = None
        self._current_job: Optional[str] = None

    # ------------------------------------------------------------------
    # Lifecycle controls
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Graceful: finish the current job, report it, deregister, exit."""
        self._stop.set()

    def kill(self) -> None:
        """Abrupt death (test hook): drop connections, stop heartbeating.

        Equivalent to SIGKILL from the master's point of view — no job
        report, no deregister; the master requeues via connection loss or
        heartbeat staleness.
        """
        self._killed.set()
        self._stop.set()
        if self._control is not None:
            self._control.close()

    @property
    def running(self) -> bool:
        return self._control is not None and not self._stop.is_set()

    # ------------------------------------------------------------------
    def _execute(self, payload: Dict[str, object]) -> Dict[str, object]:
        cache = None
        try:
            if payload.get("use_cache") and self.use_remote_cache:
                cache = RemoteCacheClient(self.address)
            if self.executor is not None:
                return self.executor(payload, cache)
            from ..engine.engine import _execute_job

            return _execute_job(payload, cache_override=cache,
                                override_cache=cache is not None
                                or not payload.get("use_cache", False))
        finally:
            if cache is not None:
                cache.close()

    def _heartbeat_loop(self) -> None:
        try:
            conn = Connection.connect(self.address, timeout=5.0)
        except OSError:
            return
        try:
            while not self._stop.is_set() and not self._killed.is_set():
                try:
                    conn.request({"type": "heartbeat",
                                  "worker": self.worker_id})
                except (OSError, ProtocolError):
                    return  # master gone; the main loop will notice too
                self._stop.wait(self.heartbeat_interval)
        finally:
            conn.close()

    # ------------------------------------------------------------------
    def run(self) -> int:
        """Register and pull jobs until stopped; returns the jobs completed."""
        self._control = Connection.connect(self.address, timeout=10.0)
        self._control.settimeout(None)
        response = self._control.request({"type": "register",
                                          "name": self.name})
        self.worker_id = response["worker_id"]
        self.heartbeat_interval = float(
            response.get("heartbeat_interval", 0.5))
        LOGGER.info("registered as %s with master %s", self.worker_id,
                    format_address(self.address))
        self._heartbeat_thread = threading.Thread(
            target=self._heartbeat_loop, daemon=True,
            name=f"heartbeat-{self.worker_id}")
        self._heartbeat_thread.start()
        try:
            self._pull_loop()
        except WorkerKilled:
            LOGGER.warning("worker %s killed abruptly", self.worker_id)
            return self.jobs_done
        except (OSError, ProtocolError) as exc:
            if not self._killed.is_set():
                LOGGER.warning("worker %s lost the master: %s",
                               self.worker_id, exc)
            return self.jobs_done
        # Graceful exit: deregister so the master reaps nothing.
        try:
            self._control.request({"type": "deregister",
                                   "worker": self.worker_id})
        except (OSError, ProtocolError):
            pass
        finally:
            self._control.close()
        LOGGER.info("worker %s stopped after %d job(s)", self.worker_id,
                    self.jobs_done)
        return self.jobs_done

    def _pull_loop(self) -> None:
        while not self._stop.is_set():
            response = self._control.request(
                {"type": "next_job", "worker": self.worker_id,
                 "wait": self.poll_timeout})
            if response.get("shutdown"):
                LOGGER.info("master is shutting down; exiting")
                return
            job = response.get("job")
            if not job:
                continue
            self._current_job = job["key"]
            LOGGER.info("executing %s", job.get("label") or job["key"])
            started = time.perf_counter()
            try:
                outcome = self._execute(job["payload"])
            except WorkerKilled:
                raise
            except Exception as exc:  # noqa: BLE001 - reported to the master
                outcome = {"status": "error",
                           "detail": f"{type(exc).__name__}: {exc}",
                           "seconds": time.perf_counter() - started}
            finally:
                self._current_job = None
            if self._killed.is_set():
                raise WorkerKilled()
            self._control.request({"type": "job_done",
                                   "worker": self.worker_id,
                                   "key": job["key"],
                                   "outcome": outcome})
            self.jobs_done += 1

    # ------------------------------------------------------------------
    def start_thread(self) -> threading.Thread:
        """Run this worker on a daemon thread (tests, demos, embedding)."""
        thread = threading.Thread(target=self.run, daemon=True,
                                  name=f"fleet-worker-{self.name}")
        thread.start()
        return thread


def run_worker(address: Tuple[str, int], name: str = "worker",
               poll_timeout: float = 2.0) -> int:
    """Blocking entry point of ``python -m repro worker``.

    SIGTERM and Ctrl-C request a graceful stop: the current job is finished
    and reported, then the worker deregisters.
    """
    import signal

    worker = FleetWorker(address, name=name, poll_timeout=poll_timeout)

    def _request_stop(signum, frame):  # noqa: ARG001
        LOGGER.info("signal %s received; finishing the current job", signum)
        worker.stop()

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[signum] = signal.signal(signum, _request_stop)
        except ValueError:  # not the main thread
            pass
    try:
        return worker.run()
    except KeyboardInterrupt:
        worker.stop()
        return worker.jobs_done
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
