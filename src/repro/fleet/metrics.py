"""Structured metrics snapshots (JSON and Prometheus-style text).

The counters have always existed — :class:`~repro.sdp.context.SolveContext`
tracks solve/compile counts per cone layout, :class:`~repro.engine.cache.CacheStats`
tracks hit rates, reports track per-stage timings — this module exports them
as one structured snapshot consumed by ``repro report --metrics`` and
``repro fleet-status --json/--prometheus``, so "fast as the hardware allows"
is measured, not asserted.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..engine.cache import cache_rate_summary

#: Version tag of the metrics snapshot layout.
METRICS_SCHEMA = 1


def _split_counters(counters: Dict[str, int]) -> Dict[str, object]:
    """Split ``{"solved": n, "solved:psd": k, ...}`` into totals + layouts."""
    out: Dict[str, object] = {}
    for event in ("solved", "cache_hit"):
        by_layout = {key.split(":", 1)[1]: int(value)
                     for key, value in counters.items()
                     if key.startswith(f"{event}:")}
        out[event] = {"total": int(counters.get(event, 0)),
                      "by_layout": by_layout}
    return out


def _cache_section(stats: Dict[str, int]) -> Dict[str, object]:
    # One arithmetic for hit rates everywhere: engine reports, sweep
    # frontiers and these metrics all quote cache_rate_summary.
    return cache_rate_summary(stats)


def engine_metrics(payload: Dict[str, object]) -> Dict[str, object]:
    """Metrics snapshot of one engine/fleet report's JSON payload."""
    engine = payload.get("engine", {})
    stages: Dict[str, float] = {}
    jobs_by_status: Dict[str, int] = {}
    for scenario in payload.get("scenarios", []):
        for timing in scenario.get("report", {}).get("timings", []):
            step = str(timing.get("step"))
            stages[step] = stages.get(step, 0.0) + float(timing.get("seconds", 0.0))
        for job in scenario.get("jobs", []):
            status = str(job.get("status"))
            jobs_by_status[status] = jobs_by_status.get(status, 0) + 1
    return {
        "schema": METRICS_SCHEMA,
        "solves": _split_counters(engine.get("counters", {})),
        "cache": _cache_section(engine.get("cache_stats", {})),
        "stages": stages,
        "jobs": {"total": sum(jobs_by_status.values()),
                 "by_status": jobs_by_status},
        "array_backends": dict(engine.get("array_backend_stats", {})),
        "wall_seconds": float(engine.get("wall_seconds", 0.0)),
    }


def fleet_metrics(status: Dict[str, object]) -> Dict[str, object]:
    """Metrics snapshot of one ``fleet-status`` payload."""
    queue = status.get("queue", {})
    jobs = status.get("jobs", {})
    return {
        "schema": METRICS_SCHEMA,
        "queue": {"depth": int(queue.get("depth", 0)),
                  "inflight": len(queue.get("inflight", []))},
        "workers": {"connected": len(status.get("workers", []))},
        "jobs": {key: int(value) for key, value in jobs.items()},
        "cache": _cache_section(status.get("cache", {})),
        "solves": _split_counters(status.get("counters", {})),
    }


# ----------------------------------------------------------------------
# Prometheus-style text exposition
# ----------------------------------------------------------------------
def _samples(metrics: Dict[str, object]) -> List[Tuple[str, Optional[Dict[str, str]], float]]:
    samples: List[Tuple[str, Optional[Dict[str, str]], float]] = []
    solves = metrics.get("solves", {})
    for event, prom in (("solved", "solves"), ("cache_hit", "cache_hits")):
        section = solves.get(event)
        if not isinstance(section, dict):
            continue
        samples.append((f"{prom}_total", None, section.get("total", 0)))
        for layout, count in sorted(section.get("by_layout", {}).items()):
            samples.append((f"{prom}_total", {"layout": layout}, count))
    cache = metrics.get("cache")
    if isinstance(cache, dict):
        for key in ("hits", "misses", "writes", "corrupted"):
            samples.append((f"certificate_cache_{key}_total", None, cache.get(key, 0)))
        samples.append(("certificate_cache_hit_rate", None, cache.get("hit_rate", 0.0)))
    for step, seconds in sorted(dict(metrics.get("stages", {})).items()):
        samples.append(("stage_seconds_total", {"step": step}, seconds))
    jobs = metrics.get("jobs", {})
    if isinstance(jobs, dict):
        for status, count in sorted(dict(jobs.get("by_status", {})).items()):
            samples.append(("jobs_total", {"status": status}, count))
        for key in ("dispatched", "completed", "requeued", "quarantined",
                    "timeouts", "memo_hits", "enqueued"):
            if key in jobs:
                samples.append((f"jobs_{key}_total", None, jobs[key]))
    queue = metrics.get("queue")
    if isinstance(queue, dict):
        samples.append(("queue_depth", None, queue.get("depth", 0)))
        samples.append(("jobs_inflight", None, queue.get("inflight", 0)))
    workers = metrics.get("workers")
    if isinstance(workers, dict):
        samples.append(("workers_connected", None, workers.get("connected", 0)))
    for name, entry in sorted(dict(metrics.get("array_backends", {})).items()):
        samples.append(("solver_iterations_per_second",
                        {"array_backend": name},
                        entry.get("iterations_per_second", 0.0)))
    if "wall_seconds" in metrics:
        samples.append(("wall_seconds", None, metrics["wall_seconds"]))
    return samples


def render_prometheus(metrics: Dict[str, object], prefix: str = "repro") -> str:
    """Render a metrics snapshot as Prometheus text-exposition lines."""
    lines: List[str] = []
    for name, labels, value in _samples(metrics):
        label_text = ""
        if labels:
            inner = ",".join(f'{key}="{val}"'
                             for key, val in sorted(labels.items()))
            label_text = "{" + inner + "}"
        number = float(value)
        rendered = repr(int(number)) if number == int(number) else repr(number)
        lines.append(f"{prefix}_{name}{label_text} {rendered}")
    return "\n".join(lines) + "\n"
