"""``repro.fleet`` — the distributed master/worker verification service.

A :class:`FleetMaster` (``python -m repro serve``) owns the prioritised job
queue, expands scenario DAGs with the engine's own driver logic and fronts
the shared certificate cache; :class:`FleetWorker`\\ s (``python -m repro
worker --connect host:port``) pull hermetic jobs over a length-prefixed JSON
socket protocol, execute them under per-job solve contexts and stream
status and heartbeats back.  Worker death requeues jobs (bounded retries,
poison quarantine); a warm job memo answers repeated submissions without
dispatching anything, so a warm-cache resubmission performs zero SDP solves
anywhere in the fleet.
"""

from .client import FleetClient, render_status_text
from .master import FleetMaster
from .metrics import engine_metrics, fleet_metrics, render_prometheus
from .protocol import (
    DEFAULT_PORT,
    Connection,
    ProtocolError,
    SchemaVersionError,
    WIRE_VERSION,
    format_address,
    parse_address,
    recv_message,
    send_message,
)
from .scheduler import (
    PRIORITY_BACKGROUND,
    PRIORITY_INTERACTIVE,
    FleetScheduler,
    QueuedJob,
)
from .worker import FleetWorker, WorkerKilled, run_worker

__all__ = [
    "FleetMaster",
    "FleetWorker",
    "FleetClient",
    "FleetScheduler",
    "QueuedJob",
    "WorkerKilled",
    "run_worker",
    "render_status_text",
    "engine_metrics",
    "fleet_metrics",
    "render_prometheus",
    "Connection",
    "ProtocolError",
    "SchemaVersionError",
    "WIRE_VERSION",
    "DEFAULT_PORT",
    "parse_address",
    "format_address",
    "send_message",
    "recv_message",
    "PRIORITY_INTERACTIVE",
    "PRIORITY_BACKGROUND",
]
