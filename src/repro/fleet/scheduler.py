"""Prioritised fleet job scheduler with requeue-on-death and quarantine.

The scheduler is the master's single source of truth for work state.  Jobs
enter through :meth:`FleetScheduler.enqueue` with a priority (interactive
``repro submit`` traffic preempts background sweeps purely at queue level:
higher priority pops first, FIFO within a priority), workers pull them with
:meth:`next_job` (a blocking long-poll), and every terminal transition
resolves the job's :class:`~concurrent.futures.Future`:

* ``complete``        — a worker reported the outcome;
* worker death        — the job is requeued with its attempt count bumped;
  a job that has died on ``max_retries + 1`` distinct attempts is treated
  as *poison* (it kills workers) and quarantined with an error outcome
  instead of taking down the whole fleet one worker at a time;
* deadline exceeded   — resolved as a timeout outcome (terminal, matching
  the in-process engine's per-job timeout semantics).

Worker death and stragglers are the *normal case* here, not an error path —
the scheduler never blocks on a worker and requeued jobs re-enter the same
priority lane they came from.

The pending queue (payloads + priorities, which are plain JSON) can be
persisted on shutdown and re-enqueued on the next start, so a drained
master loses no accepted work.
"""

from __future__ import annotations

import heapq
import itertools
import json
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from ..utils import get_logger

LOGGER = get_logger("fleet.scheduler")

#: Priority of interactive ``repro submit`` traffic.
PRIORITY_INTERACTIVE = 10
#: Priority of background sweep / ``verify --fleet`` traffic.
PRIORITY_BACKGROUND = 0


def _timeout_outcome(job: "QueuedJob", seconds: float) -> Dict[str, object]:
    return {"status": "timeout", "seconds": seconds,
            "detail": f"job exceeded {job.timeout:.1f}s fleet budget"}


def _quarantine_outcome(job: "QueuedJob") -> Dict[str, object]:
    return {"status": "error",
            "detail": (f"poison job quarantined: worker died on each of "
                       f"{job.attempts} attempt(s)")}


@dataclass
class QueuedJob:
    """One schedulable payload and its fleet-side bookkeeping."""

    key: str                      # unique within the master's lifetime
    payload: Dict[str, object]    # plain-JSON engine job payload
    priority: int = PRIORITY_BACKGROUND
    label: str = ""               # human-readable (scenario/step:mode)
    timeout: Optional[float] = None
    attempts: int = 0             # dispatch attempts so far
    future: Future = field(default_factory=Future)
    worker_id: Optional[str] = None
    started_at: Optional[float] = None

    def describe(self) -> Dict[str, object]:
        return {"key": self.key, "label": self.label,
                "priority": self.priority, "attempts": self.attempts,
                "worker": self.worker_id}


class FleetScheduler:
    """Thread-safe priority queue + inflight tracker of one fleet master."""

    def __init__(self, max_retries: int = 2,
                 default_timeout: Optional[float] = None):
        self.max_retries = max(0, int(max_retries))
        self.default_timeout = default_timeout
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._heap: List[tuple] = []   # (-priority, seq, key)
        self._pending: Dict[str, QueuedJob] = {}
        self._inflight: Dict[str, QueuedJob] = {}
        self._seq = itertools.count()
        self._key_seq = itertools.count()
        self._stopping = False
        self.stats: Dict[str, int] = {
            "enqueued": 0, "dispatched": 0, "completed": 0,
            "requeued": 0, "quarantined": 0, "timeouts": 0,
        }

    # ------------------------------------------------------------------
    def make_key(self, label: str = "job") -> str:
        return f"{label}#{next(self._key_seq)}"

    def enqueue(self, payload: Dict[str, object],
                priority: int = PRIORITY_BACKGROUND,
                label: str = "", timeout: Optional[float] = None,
                key: Optional[str] = None) -> QueuedJob:
        """Admit one job; returns its :class:`QueuedJob` (watch ``.future``)."""
        job = QueuedJob(
            key=key or self.make_key(label or "job"),
            payload=payload, priority=int(priority), label=label,
            timeout=timeout if timeout is not None else self.default_timeout)
        with self._available:
            if self._stopping:
                raise RuntimeError("scheduler is shutting down")
            self._push(job)
            self.stats["enqueued"] += 1
            self._available.notify()
        return job

    def _push(self, job: QueuedJob) -> None:
        # Callers hold the lock.  FIFO within a priority via the sequence.
        self._pending[job.key] = job
        heapq.heappush(self._heap, (-job.priority, next(self._seq), job.key))

    def _pop(self) -> Optional[QueuedJob]:
        while self._heap:
            _, _, key = heapq.heappop(self._heap)
            job = self._pending.pop(key, None)
            if job is not None:   # stale heap entries point at removed jobs
                return job
        return None

    # ------------------------------------------------------------------
    def next_job(self, worker_id: str,
                 wait_timeout: float = 2.0) -> Optional[QueuedJob]:
        """Blocking long-poll: the highest-priority pending job, or ``None``.

        Marks the job inflight on ``worker_id`` and starts its deadline
        clock.
        """
        deadline = time.monotonic() + max(0.0, wait_timeout)
        with self._available:
            while True:
                if self._stopping:
                    return None
                job = self._pop()
                if job is not None:
                    job.worker_id = worker_id
                    job.started_at = time.monotonic()
                    job.attempts += 1
                    self._inflight[job.key] = job
                    self.stats["dispatched"] += 1
                    return job
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
                self._available.wait(remaining)

    def complete(self, worker_id: str, key: str,
                 outcome: Dict[str, object]) -> Optional[QueuedJob]:
        """Record a worker-reported outcome; returns the completed job.

        Returns ``None`` (and discards the report) when the job is no
        longer inflight on that worker — e.g. it already timed out, or the
        worker was declared dead and the job requeued; the authoritative
        result is whichever terminal transition happened first.
        """
        with self._available:
            job = self._inflight.get(key)
            if job is None or job.worker_id != worker_id:
                return None
            del self._inflight[key]
            self.stats["completed"] += 1
        if not job.future.done():
            job.future.set_result(outcome)
        return job

    # ------------------------------------------------------------------
    def worker_died(self, worker_id: str) -> List[str]:
        """Requeue (or quarantine) every job inflight on a dead worker."""
        requeued: List[str] = []
        resolved: List[QueuedJob] = []
        with self._available:
            victims = [job for job in self._inflight.values()
                       if job.worker_id == worker_id]
            for job in victims:
                del self._inflight[job.key]
                job.worker_id = None
                job.started_at = None
                if job.attempts > self.max_retries:
                    self.stats["quarantined"] += 1
                    resolved.append(job)
                    LOGGER.warning("quarantining poison job %s after %d "
                                   "fatal attempt(s)", job.label or job.key,
                                   job.attempts)
                else:
                    self._push(job)
                    self.stats["requeued"] += 1
                    requeued.append(job.key)
                    LOGGER.warning("requeueing %s (attempt %d) after worker "
                                   "%s died", job.label or job.key,
                                   job.attempts, worker_id)
            if requeued:
                self._available.notify_all()
        for job in resolved:
            if not job.future.done():
                job.future.set_result(_quarantine_outcome(job))
        return requeued

    def check_deadlines(self, now: Optional[float] = None) -> List[str]:
        """Resolve inflight jobs past their per-job timeout as TIMEOUT."""
        now = time.monotonic() if now is None else now
        expired: List[QueuedJob] = []
        with self._available:
            for job in list(self._inflight.values()):
                if job.timeout is None or job.started_at is None:
                    continue
                if now - job.started_at > job.timeout:
                    del self._inflight[job.key]
                    self.stats["timeouts"] += 1
                    expired.append(job)
        for job in expired:
            seconds = now - (job.started_at or now)
            if not job.future.done():
                job.future.set_result(_timeout_outcome(job, seconds))
        return [job.key for job in expired]

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Queue depth, inflight assignments and lifetime counters."""
        with self._available:
            pending = sorted(self._pending.values(),
                             key=lambda job: -job.priority)
            by_priority: Dict[str, int] = {}
            for job in pending:
                by_priority[str(job.priority)] = \
                    by_priority.get(str(job.priority), 0) + 1
            return {
                "depth": len(pending),
                "by_priority": by_priority,
                "inflight": [job.describe()
                             for job in self._inflight.values()],
                "stats": dict(self.stats),
            }

    @property
    def idle(self) -> bool:
        with self._available:
            return not self._pending and not self._inflight

    # ------------------------------------------------------------------
    # Shutdown: drain, persist, restore
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Refuse new work and wake every long-polling worker."""
        with self._available:
            self._stopping = True
            self._available.notify_all()

    def drain(self, timeout: float = 30.0) -> bool:
        """Wait for inflight jobs to finish (pending jobs stay queued)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._available:
                if not self._inflight:
                    return True
            time.sleep(0.05)
        with self._available:
            return not self._inflight

    def persist(self, path) -> int:
        """Write the pending queue (payloads are plain JSON) to ``path``."""
        with self._available:
            entries = [{"payload": job.payload, "priority": job.priority,
                        "label": job.label, "timeout": job.timeout}
                       for job in self._pending.values()]
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w") as handle:
            json.dump({"schema": 1, "jobs": entries}, handle)
        return len(entries)

    def restore(self, path) -> int:
        """Re-enqueue a previously persisted queue; returns the job count.

        Restored jobs carry fresh futures — the clients that submitted them
        are gone — but executing them repopulates the certificate cache and
        job memo, so resubmissions are answered instantly.
        """
        path = Path(path)
        if not path.exists():
            return 0
        try:
            with open(path) as handle:
                data = json.load(handle)
            jobs = data["jobs"] if data.get("schema") == 1 else []
        except (OSError, ValueError, KeyError) as exc:
            LOGGER.warning("ignoring unreadable persisted queue %s: %s",
                           path, exc)
            return 0
        for entry in jobs:
            self.enqueue(entry["payload"],
                         priority=int(entry.get("priority", 0)),
                         label=str(entry.get("label", "restored")),
                         timeout=entry.get("timeout"))
        try:
            path.unlink()
        except OSError:
            pass
        return len(jobs)
