"""Length-prefixed JSON wire protocol of the verification fleet.

Every exchange between fleet nodes (master, workers, ``repro submit``
clients) is a sequence of *frames*: a 4-byte big-endian length followed by a
UTF-8 JSON document ``{"v": <wire version>, "m": <message>}``.  The payload
is always plain JSON — polynomials, solver results and job outcomes cross
the wire through the explicit codecs in :mod:`repro.engine.serialize`, never
as pickles, so a hostile or merely mismatched peer can at worst send
malformed data, not code.

A frame whose ``"v"`` tag differs from :data:`WIRE_VERSION` is rejected with
:class:`SchemaVersionError` (a clear error, not a ``KeyError`` three layers
down), so mixed-version fleets fail fast at the first exchange.
"""

from __future__ import annotations

import json
import socket
import struct
import threading
from typing import Dict, Optional, Tuple

#: Version tag stamped on (and required of) every frame.
WIRE_VERSION = 1

#: Upper bound on one frame; anything larger is a protocol violation (it
#: would only happen on a corrupted stream and would otherwise trigger an
#: absurd allocation).
MAX_MESSAGE_BYTES = 256 * 1024 * 1024

#: Default TCP port of ``python -m repro serve``.
DEFAULT_PORT = 7348

_HEADER = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """The byte stream violated the framing or JSON contract."""


class SchemaVersionError(ProtocolError):
    """The peer speaks a different wire schema version."""


def parse_address(address: str, default_port: int = DEFAULT_PORT
                  ) -> Tuple[str, int]:
    """Parse ``"host:port"`` / ``"host"`` / ``":port"`` into a socket address."""
    if not address:
        return ("127.0.0.1", default_port)
    host, sep, port = address.rpartition(":")
    if not sep:
        return (address, default_port)
    try:
        return (host or "127.0.0.1", int(port))
    except ValueError as exc:
        raise ValueError(f"invalid fleet address {address!r}: "
                         f"port {port!r} is not an integer") from exc


def format_address(address: Tuple[str, int]) -> str:
    return f"{address[0]}:{address[1]}"


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes; ``None`` on EOF before the first byte."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == count:
                return None
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_message(sock: socket.socket, message: Dict[str, object]) -> None:
    """Send one framed message (thread-unsafe; callers serialise sends)."""
    body = json.dumps({"v": WIRE_VERSION, "m": message},
                      separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"message of {len(body)} bytes exceeds the "
                            f"{MAX_MESSAGE_BYTES}-byte frame limit")
    sock.sendall(_HEADER.pack(len(body)) + body)


def recv_message(sock: socket.socket) -> Optional[Dict[str, object]]:
    """Receive one framed message; ``None`` on clean EOF between frames."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"incoming frame of {length} bytes exceeds the "
                            f"{MAX_MESSAGE_BYTES}-byte frame limit")
    body = _recv_exact(sock, length)
    if body is None:
        raise ProtocolError("connection closed between header and body")
    try:
        frame = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(frame, dict) or "m" not in frame:
        raise ProtocolError("frame is not a {'v': ..., 'm': ...} envelope")
    version = frame.get("v")
    if version != WIRE_VERSION:
        raise SchemaVersionError(
            f"peer speaks wire schema version {version!r}; this node only "
            f"accepts version {WIRE_VERSION} — upgrade the older side")
    message = frame["m"]
    if not isinstance(message, dict):
        raise ProtocolError("message payload must be a JSON object")
    return message


# ----------------------------------------------------------------------
# Connection: a framed request/response channel
# ----------------------------------------------------------------------
class Connection:
    """One framed TCP channel with serialised sends and receives.

    A fleet connection carries strictly alternating request/response
    exchanges (:meth:`request`) or a one-way inbound stream (:meth:`recv`);
    the lock makes a shared connection safe to drive from multiple threads.
    """

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self._lock = threading.Lock()
        self._closed = False

    @classmethod
    def connect(cls, address: Tuple[str, int],
                timeout: Optional[float] = 10.0) -> "Connection":
        sock = socket.create_connection(address, timeout=timeout)
        # Interactive request/response traffic; Nagle only adds latency.
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return cls(sock)

    def settimeout(self, timeout: Optional[float]) -> None:
        self.sock.settimeout(timeout)

    def send(self, message: Dict[str, object]) -> None:
        with self._lock:
            send_message(self.sock, message)

    def recv(self) -> Optional[Dict[str, object]]:
        return recv_message(self.sock)

    def request(self, message: Dict[str, object]) -> Dict[str, object]:
        """Send one message and wait for its single-frame response."""
        with self._lock:
            send_message(self.sock, message)
            response = recv_message(self.sock)
        if response is None:
            raise ProtocolError("peer closed the connection before replying")
        if response.get("error"):
            raise ProtocolError(f"peer reported: {response['error']}")
        return response

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
