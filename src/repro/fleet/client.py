"""Client side of the fleet protocol: ``submit``, ``fleet-status``, jobs.

:class:`FleetClient` is the thin, connection-per-request client used by the
``repro submit`` / ``repro fleet-status`` CLI, by
:class:`repro.api.VerificationSession` instances that target a fleet, and by
the engine's :class:`~repro.engine.engine.DistributedExecutor`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from .protocol import Connection, ProtocolError, parse_address
from .scheduler import PRIORITY_INTERACTIVE

#: Signature of a submit watch callback: called once per streamed event.
EventCallback = Callable[[Dict[str, object]], None]


class FleetClient:
    """Talk to a running fleet master."""

    def __init__(self, address: Union[str, Tuple[str, int]],
                 connect_timeout: float = 10.0):
        self.address = parse_address(address) if isinstance(address, str) \
            else tuple(address)
        self.connect_timeout = connect_timeout

    def _connect(self) -> Connection:
        conn = Connection.connect(self.address, timeout=self.connect_timeout)
        # Submissions block for as long as the fleet needs; reads must not
        # time out underneath a long solve.
        conn.settimeout(None)
        return conn

    # ------------------------------------------------------------------
    def ping(self) -> Dict[str, object]:
        with self._connect() as conn:
            return conn.request({"type": "ping"})

    def status(self) -> Dict[str, object]:
        """The master's ``fleet-status`` snapshot (queue, workers, caches)."""
        with self._connect() as conn:
            return conn.request({"type": "fleet_status"})

    # ------------------------------------------------------------------
    def submit(self, scenarios: Sequence[str],
               priority: int = PRIORITY_INTERACTIVE,
               watch: bool = False,
               on_event: Optional[EventCallback] = None,
               options: Optional[Dict[str, object]] = None
               ) -> Dict[str, object]:
        """Submit scenarios and block until the aggregate report is ready.

        With ``watch`` (and an ``on_event`` callback) every per-job status
        transition streamed by the master is surfaced as it happens.
        Returns the final frame: ``{"event": "done", "ok": bool,
        "report": <engine report JSON>}``.
        """
        message = {
            "type": "submit",
            "scenarios": list(scenarios),
            "priority": int(priority),
            "watch": bool(watch and on_event is not None),
            "options": dict(options or {}),
        }
        with self._connect() as conn:
            conn.send(message)
            while True:
                frame = conn.recv()
                if frame is None:
                    raise ProtocolError(
                        "master closed the connection before the report")
                if frame.get("error"):
                    raise ProtocolError(f"master reported: {frame['error']}")
                if frame.get("event") == "done":
                    return frame
                if on_event is not None:
                    on_event(frame)

    # ------------------------------------------------------------------
    def exec_job(self, payload: Dict[str, object], priority: int = 0,
                 timeout: Optional[float] = None,
                 label: str = "exec") -> Dict[str, object]:
        """Run one engine job payload on the fleet; returns its outcome."""
        with self._connect() as conn:
            response = conn.request({"type": "exec_job", "payload": payload,
                                     "priority": int(priority),
                                     "timeout": timeout, "label": label})
        outcome = response.get("outcome")
        if not isinstance(outcome, dict):
            raise ProtocolError("master returned no job outcome")
        return outcome


def render_status_text(status: Dict[str, object]) -> List[str]:
    """Human-readable ``fleet-status`` lines (the CLI's text mode)."""
    queue = status.get("queue", {})
    jobs = status.get("jobs", {})
    cache = status.get("cache", {})
    hits = int(cache.get("hits", 0))
    lookups = hits + int(cache.get("misses", 0))
    lines = [
        f"Fleet master at {status.get('address')} "
        f"(up {status.get('uptime_seconds', 0):.0f}s)",
        f"  queue: depth={queue.get('depth', 0)} "
        f"inflight={len(queue.get('inflight', []))} "
        f"by_priority={queue.get('by_priority', {})}",
        f"  jobs: dispatched={jobs.get('dispatched', 0)} "
        f"completed={jobs.get('completed', 0)} "
        f"requeued={jobs.get('requeued', 0)} "
        f"quarantined={jobs.get('quarantined', 0)} "
        f"timeouts={jobs.get('timeouts', 0)} "
        f"memo_hits={jobs.get('memo_hits', 0)}",
        f"  certificate cache: hits={hits} misses={cache.get('misses', 0)} "
        f"writes={cache.get('writes', 0)} "
        f"hit_rate={(hits / lookups) if lookups else 0.0:.2f}",
    ]
    workers = status.get("workers", [])
    lines.append(f"  workers ({len(workers)}):")
    for worker in workers:
        inflight = ", ".join(worker.get("inflight", [])) or "idle"
        lines.append(
            f"    {worker.get('id')}: {inflight} "
            f"(done={worker.get('jobs_done', 0)}, "
            f"heartbeat {worker.get('last_heartbeat_age', 0):.1f}s ago)")
    return lines
