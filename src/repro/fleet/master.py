"""The fleet master: queue owner, DAG driver, cache server.

``python -m repro serve`` runs one :class:`FleetMaster`.  It owns

* the prioritised job queue (:class:`~repro.fleet.scheduler.FleetScheduler`)
  with heartbeat-based liveness, requeue-on-worker-death and poison-job
  quarantine,
* the scenario DAG expansion — each ``repro submit`` connection drives the
  same :class:`~repro.engine.engine._ScenarioDriver` state machine the
  in-process engine uses, so fleet reports are assembled by the exact code
  path of ``repro verify``,
* the shared :class:`~repro.engine.cache.CertificateCache`, served to
  workers over the ``cache_get``/``cache_put`` protocol so every conic
  solve performed anywhere in the fleet lands in one store, and
* the **job memo**: a content-addressed record of completed job outcomes
  (keyed by :func:`~repro.engine.serialize.payload_fingerprint`).  A job
  whose fingerprint is memoised is answered by the master without
  dispatching anything — a warm-cache submission performs zero SDP solves
  fleet-wide and never even touches a worker.

Transport is the length-prefixed JSON protocol of
:mod:`repro.fleet.protocol`; nothing on the wire is ever a pickle.  On
SIGTERM/SIGINT the master stops admitting work, drains in-flight jobs,
persists the pending queue next to the cache and resolves whatever could
not run, so accepted work survives restarts.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..engine.cache import CertificateCache, default_cache_dir
from ..engine.serialize import (
    memo_outcome,
    memoizable_status,
    payload_fingerprint,
    solver_result_from_wire,
    solver_result_to_wire,
)
from ..utils import get_logger
from .protocol import (
    Connection,
    DEFAULT_PORT,
    ProtocolError,
    format_address,
    recv_message,
    send_message,
)
from .scheduler import PRIORITY_INTERACTIVE, FleetScheduler, QueuedJob

LOGGER = get_logger("fleet.master")

#: File (inside the cache root) holding a drained master's pending queue.
PERSISTED_QUEUE_NAME = "fleet_queue.json"
#: Subdirectory (inside the cache root) of the content-addressed job memo.
JOB_MEMO_DIR = "jobs"


class _WorkerRecord:
    """Liveness and accounting state of one registered worker."""

    def __init__(self, worker_id: str, name: str):
        self.worker_id = worker_id
        self.name = name
        self.registered_at = time.monotonic()
        self.last_heartbeat = time.monotonic()
        self.jobs_done = 0

    def describe(self, scheduler_inflight: List[Dict[str, object]]
                 ) -> Dict[str, object]:
        return {
            "id": self.worker_id,
            "name": self.name,
            "jobs_done": self.jobs_done,
            "inflight": [entry["label"] or entry["key"]
                         for entry in scheduler_inflight
                         if entry["worker"] == self.worker_id],
            "last_heartbeat_age": round(
                time.monotonic() - self.last_heartbeat, 3),
        }


class FleetMaster:
    """Master node of the distributed verification fleet."""

    def __init__(self, host: str = "127.0.0.1", port: int = DEFAULT_PORT,
                 cache_dir: Optional[str] = None, use_cache: bool = True,
                 max_retries: int = 2, job_timeout: Optional[float] = None,
                 heartbeat_interval: float = 0.5,
                 liveness_timeout: float = 5.0,
                 drain_timeout: float = 30.0):
        self.host = host
        self._requested_port = port
        self.cache_root = (Path(cache_dir).expanduser() if cache_dir
                           else default_cache_dir())
        self.cache: Optional[CertificateCache] = (
            CertificateCache(self.cache_root) if use_cache else None)
        self.scheduler = FleetScheduler(max_retries=max_retries,
                                        default_timeout=job_timeout)
        self.heartbeat_interval = heartbeat_interval
        self.liveness_timeout = liveness_timeout
        self.drain_timeout = drain_timeout

        self._lock = threading.Lock()
        self._workers: Dict[str, _WorkerRecord] = {}
        self._worker_seq = 0
        self._memo: Dict[str, Dict[str, object]] = {}
        self._counters: Dict[str, int] = {}
        self._memo_hits = 0
        self._submissions_active = 0
        self._submissions_done = 0

        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._connections: set = set()
        self._stopping = threading.Event()
        self._stopped = threading.Event()
        self._started_at = time.monotonic()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        if self._listener is None:
            return self._requested_port
        return self._listener.getsockname()[1]

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    def start(self) -> None:
        """Bind, restore any persisted queue, and serve in background threads."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self._requested_port))
        listener.listen(64)
        listener.settimeout(0.25)
        self._listener = listener
        restored = self.scheduler.restore(self.cache_root / PERSISTED_QUEUE_NAME)
        if restored:
            LOGGER.info("restored %d persisted job(s) from the last shutdown",
                        restored)
        self._started_at = time.monotonic()
        for target, name in ((self._accept_loop, "fleet-accept"),
                             (self._reaper_loop, "fleet-reaper")):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)
        LOGGER.info("fleet master listening on %s",
                    format_address(self.address))

    def serve_forever(self) -> None:
        """Blocking entry point of ``python -m repro serve``.

        SIGTERM and Ctrl-C both trigger the graceful shutdown sequence:
        drain in-flight jobs, persist the pending queue, deregister.
        """
        import signal

        self.start()

        def _request_stop(signum, frame):  # noqa: ARG001
            LOGGER.info("signal %s received; shutting down gracefully", signum)
            self._stopping.set()

        previous = {}
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                previous[signum] = signal.signal(signum, _request_stop)
            except ValueError:  # not the main thread (embedded use)
                pass
        try:
            while not self._stopping.is_set():
                self._stopping.wait(0.5)
        except KeyboardInterrupt:
            pass
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
            self.stop(drain=True)

    def stop(self, drain: bool = True) -> None:
        """Stop serving; optionally drain in-flight work and persist the queue."""
        if self._stopped.is_set():
            return
        self._stopping.set()
        if drain:
            self.scheduler.drain(self.drain_timeout)
        self.scheduler.stop()
        persisted = self.scheduler.persist(
            self.cache_root / PERSISTED_QUEUE_NAME)
        if persisted:
            LOGGER.info("persisted %d pending job(s) for the next start",
                        persisted)
        self._resolve_abandoned()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            connections = list(self._connections)
        for conn in connections:
            conn.close()
        self._stopped.set()

    def _resolve_abandoned(self) -> None:
        """Fail whatever is still queued/inflight so clients unblock."""
        sched = self.scheduler
        with sched._available:  # noqa: SLF001 - scheduler-internal teardown
            leftovers = list(sched._pending.values()) + \
                list(sched._inflight.values())
            sched._pending.clear()
            sched._inflight.clear()
            sched._heap.clear()
        for job in leftovers:
            if not job.future.done():
                job.future.set_result({
                    "status": "error",
                    "detail": "master shut down before the job could run "
                              "(the pending queue was persisted)"})

    # ------------------------------------------------------------------
    # Background threads
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                sock, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            sock.settimeout(None)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            conn = Connection(sock)
            with self._lock:
                self._connections.add(conn)
            thread = threading.Thread(target=self._serve_connection,
                                      args=(conn,), daemon=True,
                                      name="fleet-conn")
            thread.start()

    def _reaper_loop(self) -> None:
        """Declare silent workers dead and expire per-job deadlines."""
        interval = max(0.05, min(0.5, self.liveness_timeout / 4.0))
        while not self._stopping.is_set():
            now = time.monotonic()
            with self._lock:
                stale = [record.worker_id
                         for record in self._workers.values()
                         if now - record.last_heartbeat > self.liveness_timeout]
            for worker_id in stale:
                self._worker_dead(worker_id, "heartbeat lost")
            self.scheduler.check_deadlines(now)
            self._stopping.wait(interval)

    def _worker_dead(self, worker_id: str, reason: str) -> None:
        with self._lock:
            record = self._workers.pop(worker_id, None)
        if record is None:
            return
        LOGGER.warning("worker %s declared dead (%s)", worker_id, reason)
        self.scheduler.worker_died(worker_id)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    def _serve_connection(self, conn: Connection) -> None:
        registered_worker: Optional[str] = None
        try:
            while not self._stopping.is_set():
                message = recv_message(conn.sock)
                if message is None:
                    break
                kind = message.get("type")
                if kind == "register":
                    registered_worker = self._handle_register(conn, message)
                else:
                    handler = getattr(self, f"_handle_{kind}", None)
                    if handler is None:
                        send_message(conn.sock,
                                     {"error": f"unknown message type {kind!r}"})
                        continue
                    handler(conn, message)
        except ProtocolError as exc:
            LOGGER.warning("protocol error on connection: %s", exc)
            try:
                send_message(conn.sock, {"error": str(exc)})
            except OSError:
                pass
        except OSError:
            pass
        finally:
            with self._lock:
                self._connections.discard(conn)
                still_registered = registered_worker in self._workers
            if registered_worker and still_registered:
                # A registered worker's control connection dropping without a
                # deregister IS a death signal — requeue immediately rather
                # than waiting out the heartbeat timeout.
                self._worker_dead(registered_worker, "connection lost")
            conn.close()

    # -- worker protocol ------------------------------------------------
    def _handle_register(self, conn: Connection,
                         message: Dict[str, object]) -> str:
        name = str(message.get("name") or "worker")
        with self._lock:
            self._worker_seq += 1
            worker_id = f"{name}-{self._worker_seq}"
            self._workers[worker_id] = _WorkerRecord(worker_id, name)
        LOGGER.info("worker %s registered", worker_id)
        send_message(conn.sock, {"ok": True, "worker_id": worker_id,
                                 "heartbeat_interval": self.heartbeat_interval,
                                 "liveness_timeout": self.liveness_timeout})
        return worker_id

    def _handle_heartbeat(self, conn: Connection,
                          message: Dict[str, object]) -> None:
        worker_id = str(message.get("worker"))
        known = False
        with self._lock:
            record = self._workers.get(worker_id)
            if record is not None:
                record.last_heartbeat = time.monotonic()
                known = True
        send_message(conn.sock, {"ok": known})

    def _handle_next_job(self, conn: Connection,
                         message: Dict[str, object]) -> None:
        worker_id = str(message.get("worker"))
        wait = float(message.get("wait", 2.0))
        job = self.scheduler.next_job(worker_id, wait_timeout=wait)
        if job is None:
            send_message(conn.sock, {"job": None,
                                     "shutdown": self._stopping.is_set()})
            return
        with self._lock:
            record = self._workers.get(worker_id)
            if record is not None:
                record.last_heartbeat = time.monotonic()
        send_message(conn.sock, {"job": {"key": job.key, "label": job.label,
                                         "payload": job.payload,
                                         "timeout": job.timeout},
                                 "shutdown": False})

    def _handle_job_done(self, conn: Connection,
                         message: Dict[str, object]) -> None:
        worker_id = str(message.get("worker"))
        key = str(message.get("key"))
        outcome = message.get("outcome")
        if not isinstance(outcome, dict):
            send_message(conn.sock, {"error": "job_done without an outcome"})
            return
        job = self.scheduler.complete(worker_id, key, outcome)
        if job is not None:
            with self._lock:
                record = self._workers.get(worker_id)
                if record is not None:
                    record.jobs_done += 1
                    record.last_heartbeat = time.monotonic()
            self._account(outcome)
            self._memo_store(job, outcome)
        send_message(conn.sock, {"ok": job is not None})

    def _handle_deregister(self, conn: Connection,
                           message: Dict[str, object]) -> None:
        worker_id = str(message.get("worker"))
        with self._lock:
            record = self._workers.pop(worker_id, None)
        if record is not None:
            LOGGER.info("worker %s deregistered", worker_id)
            # A graceful worker reports its last job before deregistering,
            # but requeue defensively in case it abandoned one.
            self.scheduler.worker_died(worker_id)
        send_message(conn.sock, {"ok": record is not None})

    # -- remote certificate cache --------------------------------------
    def _handle_cache_get(self, conn: Connection,
                          message: Dict[str, object]) -> None:
        key = str(message.get("key"))
        result = self.cache.get(key) if self.cache is not None else None
        if result is None:
            send_message(conn.sock, {"found": False})
        else:
            send_message(conn.sock, {"found": True,
                                     "result": solver_result_to_wire(result)})

    def _handle_cache_put(self, conn: Connection,
                          message: Dict[str, object]) -> None:
        stored = False
        if self.cache is not None and isinstance(message.get("result"), dict):
            result = solver_result_from_wire(message["result"])
            self.cache.put(str(message.get("key")), result)
            stored = True
        send_message(conn.sock, {"ok": stored})

    # -- client protocol -------------------------------------------------
    def _handle_ping(self, conn: Connection,
                     message: Dict[str, object]) -> None:  # noqa: ARG002
        send_message(conn.sock, {"ok": True,
                                 "address": format_address(self.address)})

    def _handle_fleet_status(self, conn: Connection,
                             message: Dict[str, object]) -> None:  # noqa: ARG002
        send_message(conn.sock, self.status_snapshot())

    def _handle_exec_job(self, conn: Connection,
                         message: Dict[str, object]) -> None:
        """One standalone engine job (the ``DistributedExecutor`` path)."""
        payload = message.get("payload")
        if not isinstance(payload, dict):
            send_message(conn.sock, {"error": "exec_job without a payload"})
            return
        priority = int(message.get("priority", 0))
        timeout = message.get("timeout")
        outcome = self._run_payload(payload, priority=priority,
                                    timeout=timeout,
                                    label=str(message.get("label", "exec")))
        send_message(conn.sock, {"ok": True, "outcome": outcome})

    def _handle_submit(self, conn: Connection,
                       message: Dict[str, object]) -> None:
        """Expand scenario DAGs and drive them over the fleet.

        The handler thread *is* the submission's driver loop; ``watch``
        clients receive one event frame per job transition before the final
        ``done`` frame carrying the aggregate engine report.
        """
        from ..engine.engine import EngineOptions

        scenarios = message.get("scenarios")
        if not isinstance(scenarios, list) or not scenarios:
            send_message(conn.sock, {"error": "submit without scenarios"})
            return
        watch = bool(message.get("watch", False))
        priority = int(message.get("priority", PRIORITY_INTERACTIVE))
        request = message.get("options") or {}
        use_cache = bool(request.get("use_cache", True)) and \
            self.cache is not None
        with self._lock:
            worker_count = len(self._workers)
            self._submissions_active += 1
        options = EngineOptions(
            jobs=max(1, worker_count),
            use_cache=use_cache,
            cache_dir=str(self.cache_root) if use_cache else None,
            job_timeout=request.get("job_timeout"),
            seed=int(request.get("seed", 0)),
            relaxation=request.get("relaxation"),
            backend=request.get("backend"),
            array_backend=request.get("array_backend"),
        )

        def emit(event: Dict[str, object]) -> None:
            if watch:
                send_message(conn.sock, event)

        try:
            report = self._drive_submission(
                [str(name) for name in scenarios], options, priority, emit)
        except Exception as exc:  # noqa: BLE001 - reported to the client
            LOGGER.exception("submission failed")
            send_message(conn.sock, {"error": f"{type(exc).__name__}: {exc}"})
            return
        finally:
            with self._lock:
                self._submissions_active -= 1
                self._submissions_done += 1
        send_message(conn.sock, {"event": "done",
                                 "ok": report.all_match_expected,
                                 "report": report.to_json_dict()})

    # ------------------------------------------------------------------
    # Submission driving (shared with exec_job)
    # ------------------------------------------------------------------
    def _run_payload(self, payload: Dict[str, object], priority: int,
                     timeout: Optional[float], label: str) -> Dict[str, object]:
        """Memo-check one payload, else schedule it and await the outcome."""
        memo = self._memo_lookup(payload)
        if memo is not None:
            return memo
        try:
            job = self.scheduler.enqueue(payload, priority=priority,
                                         label=label, timeout=timeout)
        except RuntimeError as exc:
            return {"status": "error", "detail": str(exc)}
        return job.future.result()

    def _drive_submission(self, scenarios, options, priority, emit):
        from concurrent.futures import wait as futures_wait, FIRST_COMPLETED
        from ..engine.engine import (
            EngineReport,
            ScenarioOutcome,
            _assemble_report,
            _matches_expected,
            _prepared_problem,
            _ScenarioDriver,
        )

        start = time.perf_counter()
        drivers = [
            _ScenarioDriver(name, _prepared_problem(name, options.relaxation),
                            options)
            for name in scenarios
        ]
        pending: Dict[object, tuple] = {}   # future -> (driver, spec, job)
        while True:
            for driver in drivers:
                for spec, payload in driver.take_ready():
                    memo = self._memo_lookup(payload)
                    if memo is not None:
                        driver.record(spec, memo)
                        emit({"event": "job", "job_id": spec.job_id,
                              "state": "cached",
                              "status": memo.get("status"),
                              "detail": memo.get("detail", "")})
                        continue
                    try:
                        job = self.scheduler.enqueue(
                            payload, priority=priority, label=spec.job_id,
                            timeout=options.job_timeout)
                    except RuntimeError as exc:
                        driver.record(spec, {"status": "error",
                                             "detail": str(exc)})
                        continue
                    pending[job.future] = (driver, spec, job)
                    emit({"event": "job", "job_id": spec.job_id,
                          "state": "queued", "priority": priority})
            if not pending:
                if all(driver.done for driver in drivers):
                    break
                # Remaining jobs wait on settled-but-failed dependencies;
                # the next take_ready pass records the skips.
                continue
            done, _ = futures_wait(list(pending), timeout=0.25,
                                   return_when=FIRST_COMPLETED)
            for future in done:
                driver, spec, job = pending.pop(future)
                outcome = future.result()
                driver.record(spec, outcome)
                result = driver.results[spec.job_id]
                emit({"event": "job", "job_id": spec.job_id, "state": "done",
                      "status": result.status.value,
                      "seconds": result.seconds,
                      "detail": result.detail,
                      "attempts": job.attempts})

        outcomes = []
        for driver in drivers:
            report = _assemble_report(driver.problem, driver)
            counters: Dict[str, int] = {}
            for job_result in driver.job_results():
                for key, value in job_result.counters.items():
                    counters[key] = counters.get(key, 0) + value
            outcomes.append(ScenarioOutcome(
                scenario=driver.scenario,
                expected=driver.problem.expected,
                matches_expected=_matches_expected(
                    driver.problem.expected, report, driver),
                report=report,
                jobs=driver.job_results(),
                counters=counters,
            ))
        totals: Dict[str, int] = {}
        cache_totals: Dict[str, int] = {}
        for outcome in outcomes:
            for key, value in outcome.counters.items():
                totals[key] = totals.get(key, 0) + value
            for job_result in outcome.jobs:
                for key, value in job_result.cache_stats.items():
                    cache_totals[key] = cache_totals.get(key, 0) + value
        return EngineReport(outcomes=outcomes, options=options,
                            wall_seconds=time.perf_counter() - start,
                            counters=totals, cache_stats=cache_totals)

    # ------------------------------------------------------------------
    # Job memo (cache-aware scheduling)
    # ------------------------------------------------------------------
    def _memo_path(self, fingerprint: str) -> Path:
        return self.cache_root / JOB_MEMO_DIR / fingerprint[:2] / \
            f"{fingerprint}.json"

    def _memo_lookup(self, payload: Dict[str, object]
                     ) -> Optional[Dict[str, object]]:
        if self.cache is None or not payload.get("use_cache", True):
            return None
        fingerprint = payload_fingerprint(payload)
        with self._lock:
            stored = self._memo.get(fingerprint)
        if stored is None:
            path = self._memo_path(fingerprint)
            if not path.exists():
                return None
            try:
                with open(path) as handle:
                    stored = json.load(handle)
            except (OSError, ValueError):
                try:
                    path.unlink()
                except OSError:
                    pass
                return None
            with self._lock:
                self._memo[fingerprint] = stored
        outcome = memo_outcome(stored)
        with self._lock:
            self._memo_hits += 1
        self._account(outcome)
        return outcome

    def _memo_store(self, job: QueuedJob, outcome: Dict[str, object]) -> None:
        if self.cache is None or not job.payload.get("use_cache", True):
            return
        if not memoizable_status(outcome.get("status")):
            return
        fingerprint = payload_fingerprint(job.payload)
        with self._lock:
            self._memo[fingerprint] = outcome
        path = self._memo_path(fingerprint)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".tmp")
            with open(tmp, "w") as handle:
                json.dump(outcome, handle)
            tmp.replace(path)
        except (OSError, TypeError, ValueError) as exc:
            LOGGER.warning("could not persist job memo %s: %s",
                           fingerprint[:12], exc)

    def _account(self, outcome: Dict[str, object]) -> None:
        with self._lock:
            for key, value in dict(outcome.get("counters", {})).items():
                self._counters[key] = self._counters.get(key, 0) + int(value)

    # ------------------------------------------------------------------
    # Status
    # ------------------------------------------------------------------
    def status_snapshot(self) -> Dict[str, object]:
        queue = self.scheduler.snapshot()
        with self._lock:
            workers = [record.describe(queue["inflight"])
                       for record in self._workers.values()]
            counters = dict(self._counters)
            memo_hits = self._memo_hits
            submissions = {"active": self._submissions_active,
                           "completed": self._submissions_done}
        jobs = dict(queue["stats"])
        jobs["memo_hits"] = memo_hits
        status = {
            "ok": True,
            "address": format_address(self.address),
            "uptime_seconds": round(time.monotonic() - self._started_at, 3),
            "workers": workers,
            "queue": queue,
            "jobs": jobs,
            "counters": counters,
            "cache": (self.cache.stats.as_dict()
                      if self.cache is not None else {}),
            "submissions": submissions,
        }
        from .metrics import fleet_metrics

        status["metrics"] = fleet_metrics(status)
        return status
