"""The parallel verification engine.

:class:`VerificationEngine` expands registered scenarios into DAGs of jobs
(Lyapunov search → per-mode level-set maximisation → per-mode
advection/inclusion (+ escape) → falsification cross-check), runs independent
jobs across a ``concurrent.futures`` process pool with per-job timeouts,
memoises every conic solve in the persistent certificate cache, and
aggregates the results into the existing :mod:`repro.core.report` machinery.

Every job is *hermetic*: the worker rebuilds the scenario problem from the
registry by name and receives upstream artifacts as plain data, so results
are identical whether the DAG runs inline (``jobs=1``), across a pool
(``jobs=N``) or replayed from a warm cache.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import (
    AttractiveInvariant,
    MultipleLyapunovSynthesizer,
    LevelSetMaximizer,
    PropertyOneResult,
    PropertyTwoResult,
    ModePropertyTwoResult,
    VerificationReport,
    VerificationStatus,
    STEP_ADVECTION,
    STEP_ATTRACTIVE_INVARIANT,
    STEP_ESCAPE,
    STEP_MAX_LEVEL_CURVES,
    STEP_SET_INCLUSION,
)
from ..core.inevitability import (
    advection_mode_names,
    levelset_domain_for,
    run_mode_property_two,
)
from ..core.levelset import MaximizedLevelSet
from ..core.report import STEP_FALSIFICATION_CHECK, join_relaxations
from ..exceptions import CertificateError
from ..sdp import DEFAULT_BACKEND, SolveContext
from ..utils import get_logger
from .cache import CertificateCache, cache_rate_summary
from .jobs import (
    STEP_FALSIFICATION,
    STEP_LEVELSET,
    STEP_LYAPUNOV,
    STEP_SWEEP,
    JobResult,
    JobSpec,
    JobStatus,
)
from .jobs import STEP_ADVECTION as JOB_STEP_ADVECTION
from .serialize import (
    certificates_from_data,
    certificates_to_data,
    polynomial_from_data,
)

LOGGER = get_logger("engine")


@dataclass
class EngineOptions:
    """Configuration of one engine run."""

    jobs: int = 1                      # 1 = inline, N > 1 = process pool
    use_cache: bool = True
    cache_dir: Optional[str] = None    # None = default cache location
    job_timeout: Optional[float] = None  # seconds; enforced for pool runs
    seed: int = 0                      # threaded into falsification sampling
    # Gram-cone relaxation override:
    # "dsos" | "sdsos" | "chordal" | "sos" | "auto".
    # None keeps each scenario's registered relaxation.
    relaxation: Optional[str] = None
    # Conic solver backend of every job's solve context ("admm",
    # "projection", or any name registered via repro.sdp.register_backend).
    # None keeps the registry default.  Recorded in the JSON report; enters
    # the certificate-cache key, so distinct backends never share entries.
    backend: Optional[str] = None
    # Array namespace of the solver hot loops ("auto" | "numpy" | "cupy" |
    # "torch"; see repro.sdp.backend).  None keeps the solver default
    # ("auto").  An explicit choice is recorded in the JSON report and, like
    # backend, enters the cache key through the solver settings.
    array_backend: Optional[str] = None
    # "host:port" of a fleet master (see repro.fleet).  When set, jobs are
    # executed by the fleet's workers through a DistributedExecutor instead
    # of a local process pool; `jobs` then bounds how many jobs this engine
    # keeps in flight on the fleet at once, and per-job timeouts are
    # enforced by the master's scheduler.
    fleet: Optional[str] = None
    # Queue priority of fleet-executed jobs (higher preempts lower at the
    # master's queue level; interactive `repro submit` traffic runs at 10).
    fleet_priority: int = 0
    # Sweep-axis overrides threaded to every job's problem build
    # (``verify --param key=value``): maps declared axis names to absolute
    # values.  None runs the registered nominal scenario.
    params: Optional[Dict[str, float]] = None


# ----------------------------------------------------------------------
# Step implementations (run inside workers; everything crossing the
# boundary is plain data)
# ----------------------------------------------------------------------
def _prepared_problem(scenario: str, relaxation: Optional[str] = None,
                      params: Optional[Dict[str, float]] = None):
    from ..scenarios import build_problem

    problem = build_problem(scenario, relaxation=relaxation, params=params)
    if problem.options.lyapunov.domain_boxes is None:
        problem.options.lyapunov.domain_boxes = problem.state_bounds()
    return problem


def _step_lyapunov(problem,
                   context: Optional[SolveContext] = None
                   ) -> Tuple[str, str, Dict[str, object]]:
    synthesizer = MultipleLyapunovSynthesizer(
        problem.system, options=problem.options.lyapunov, context=context)
    result = synthesizer.synthesize()
    certificates = {name: cert.certificate
                    for name, cert in result.certificates.items()}
    data = {
        "feasible": bool(result.feasible),
        "message": result.message,
        "solver_status": result.solution.status.value if result.solution else "none",
        "certificates": certificates_to_data(certificates),
        "validations": [str(report) for report in result.validation_reports],
        "degree": problem.options.lyapunov.certificate_degree,
        "relaxation": result.relaxation,
    }
    status = "ok" if result.feasible else "failed"
    return status, result.message, data


def _step_levelset(problem, mode: str,
                   certificate_data: Dict[str, object],
                   context: Optional[SolveContext] = None
                   ) -> Tuple[str, str, Dict[str, object]]:
    certificate = polynomial_from_data(certificate_data)
    options = problem.options
    domain = levelset_domain_for(problem, options, mode)
    maximizer = LevelSetMaximizer(options.levelset, context=context)
    try:
        level_set = maximizer.maximize(mode, certificate, domain,
                                       bounds=problem.state_bounds())
    except CertificateError as exc:
        return "failed", str(exc), {"strategy": options.levelset.strategy}
    data = {
        "level": float(level_set.level),
        "iterations": int(level_set.iterations),
        "certified": len(level_set.certified_levels),
        "rejected": len(level_set.rejected_levels),
        "strategy": options.levelset.strategy,
        "relaxation": level_set.relaxation,
    }
    return "ok", f"level {level_set.level:.4g}", data


def _rebuild_invariant(problem, certificates_data: Dict[str, object],
                       levels: Dict[str, Dict[str, object]]) -> AttractiveInvariant:
    certificates = certificates_from_data(certificates_data)
    level_sets = {
        mode: MaximizedLevelSet(
            mode_name=mode,
            certificate=certificates[mode],
            level=float(entry["level"]),
            iterations=int(entry.get("iterations", 0)),
        )
        for mode, entry in levels.items()
    }
    return AttractiveInvariant(level_sets=level_sets,
                               variables=problem.state_variables)


def _step_advection(problem, mode: str, certificates_data: Dict[str, object],
                    levels: Dict[str, Dict[str, object]],
                    context: Optional[SolveContext] = None
                    ) -> Tuple[str, str, Dict[str, object]]:
    invariant = _rebuild_invariant(problem, certificates_data, levels)
    result, timings = run_mode_property_two(
        problem, problem.options, mode, invariant, context=context)
    advection = result.advection
    data: Dict[str, object] = {
        "converged": bool(advection.converged) if advection else False,
        "absorbing_mode": advection.absorbing_mode if advection else None,
        "iterations": int(advection.iterations_used) if advection else 0,
        "advection_seconds": timings.get("advection", 0.0),
        "inclusion_seconds": timings.get("inclusion", 0.0),
        "escape_seconds": timings.get("escape", 0.0),
        "escape": ({"validation_passed": bool(result.escape.validation_passed)}
                   if result.escape is not None else None),
        "mode_status": result.status.value,
        "relaxation": result.relaxation,
    }
    status = "ok" if result.status is VerificationStatus.VERIFIED else "failed"
    return status, result.message, data


def _step_falsification(problem, certificates_data: Dict[str, object],
                        levels: Dict[str, Dict[str, object]],
                        seed: int) -> Tuple[str, str, Dict[str, object]]:
    if not problem.supports_falsification:
        return "skipped", "scenario has no executable abstraction", {}
    from ..analysis import random_initial_states, run_falsification

    invariant = _rebuild_invariant(problem, certificates_data, levels)
    certificates = certificates_from_data(certificates_data)
    tube = problem.options.lyapunov.lock_tube_radius
    rng = np.random.default_rng(seed)
    states = random_initial_states(problem.pll_model,
                                   problem.falsification_count, rng=rng)
    if states.shape[0] == 0:
        # "No findings" must never alias "no simulations ran".
        return "skipped", "no initial states could be sampled", {"seed": seed}
    findings = run_falsification(
        problem.pll_model, invariant, certificates=certificates,
        initial_states=states,
        duration=problem.falsification_duration,
        lock_radius=problem.lock_radius,
        tolerance=problem.options.lyapunov.validation_tolerance,
        tube_radius=tube if tube > 0 else None,
    )
    data = {
        "states_checked": int(states.shape[0]),
        "seed": seed,
        "findings": [str(finding) for finding in findings],
    }
    if findings:
        return "failed", f"{len(findings)} falsification finding(s)", data
    return "ok", "no claim violated by simulation", data


def _execute_job(payload: Dict[str, object],
                 cache_override: Optional[object] = None,
                 override_cache: bool = False) -> Dict[str, object]:
    """Worker entry point: hermetic execution of one job from plain data.

    Every job runs under its own :class:`~repro.sdp.context.SolveContext`
    (cache + backend + counters) instead of mutating process-global solver
    state, so inline jobs, pool workers and any other pipelines in the same
    process are fully isolated from each other.

    ``override_cache=True`` substitutes ``cache_override`` for the cache the
    payload describes — fleet workers pass a
    :class:`~repro.engine.cache.RemoteCacheClient` here so their solves land
    in the master's store instead of a path that only exists on the master.
    """
    start = time.perf_counter()
    if override_cache:
        cache = cache_override
    else:
        cache_dir = payload.get("cache_dir")
        cache = CertificateCache(cache_dir) if payload.get("use_cache") else None
    context = SolveContext(backend=payload.get("backend"), cache=cache,
                           name=f"job:{payload.get('scenario')}/{payload.get('step')}",
                           array_backend=payload.get("array_backend"))
    try:
        step = payload["step"]
        if step == STEP_SWEEP:
            # Sweep shards build their own per-point problems; importing
            # lazily keeps engine -> sweep a one-way dependency at runtime.
            from ..sweep.probe import run_sweep_shard

            status, detail, data = run_sweep_shard(payload, context)
        else:
            problem = _prepared_problem(payload["scenario"],
                                        payload.get("relaxation"),
                                        payload.get("params"))
            if step == STEP_LYAPUNOV:
                status, detail, data = _step_lyapunov(problem, context)
            elif step == STEP_LEVELSET:
                status, detail, data = _step_levelset(
                    problem, payload["mode"], payload["certificate"], context)
            elif step == JOB_STEP_ADVECTION:
                status, detail, data = _step_advection(
                    problem, payload["mode"], payload["certificates"],
                    payload["levels"], context)
            elif step == STEP_FALSIFICATION:
                status, detail, data = _step_falsification(
                    problem, payload["certificates"], payload["levels"],
                    int(payload.get("seed", 0)))
            else:
                raise ValueError(f"unknown engine step {step!r}")
    except Exception:
        status, detail, data = "error", traceback.format_exc(limit=8), {}
    return {
        "status": status,
        "detail": detail,
        "data": data,
        "seconds": time.perf_counter() - start,
        # The context is fresh per job, so its counters are this job's exact
        # contribution — no before/after diffing against global state.
        "counters": context.solve_counters(),
        # The cache object is fresh per job, so its stats are this job's
        # delta.  Minimal get/put caches (session overrides) may not keep
        # stats at all.
        "cache_stats": (cache.stats.as_dict()
                        if getattr(cache, "stats", None) is not None else {}),
        "array_backend_stats": context.array_backend_stats(),
    }


# ----------------------------------------------------------------------
# Scenario driver: per-scenario DAG state machine (runs in the parent)
# ----------------------------------------------------------------------
class _ScenarioDriver:
    """Tracks one scenario's DAG, releasing jobs as dependencies resolve."""

    def __init__(self, scenario: str, problem, options: EngineOptions):
        self.scenario = scenario
        self.problem = problem
        self.options = options
        self.results: Dict[str, JobResult] = {}
        self._released: set = set()
        self.specs: Dict[str, JobSpec] = {
            spec.job_id: spec for spec in self.plan()}

    # -- planning -------------------------------------------------------
    def plan(self) -> List[JobSpec]:
        scenario = self.scenario
        lyap_id = JobSpec.make_id(scenario, STEP_LYAPUNOV)
        specs = [JobSpec(job_id=lyap_id, scenario=scenario, step=STEP_LYAPUNOV)]
        level_ids = []
        for mode in self.problem.system.mode_names:
            job_id = JobSpec.make_id(scenario, STEP_LEVELSET, mode)
            level_ids.append(job_id)
            specs.append(JobSpec(job_id=job_id, scenario=scenario,
                                 step=STEP_LEVELSET, mode=mode,
                                 depends_on=(lyap_id,)))
        if self.problem.options.verify_property_two:
            for mode in self._advection_modes():
                specs.append(JobSpec(
                    job_id=JobSpec.make_id(scenario, JOB_STEP_ADVECTION, mode),
                    scenario=scenario, step=JOB_STEP_ADVECTION, mode=mode,
                    depends_on=tuple(level_ids)))
        if self.problem.supports_falsification:
            specs.append(JobSpec(
                job_id=JobSpec.make_id(scenario, STEP_FALSIFICATION),
                scenario=scenario, step=STEP_FALSIFICATION,
                depends_on=tuple(level_ids)))
        return specs

    def _advection_modes(self) -> Tuple[str, ...]:
        return advection_mode_names(self.problem.options, self.problem.system)

    # -- scheduling -----------------------------------------------------
    def _dependencies_ok(self, spec: JobSpec) -> bool:
        return all(dep in self.results and self.results[dep].status.is_ok
                   for dep in spec.depends_on)

    def _dependencies_settled(self, spec: JobSpec) -> bool:
        return all(dep in self.results for dep in spec.depends_on)

    def take_ready(self) -> List[Tuple[JobSpec, Dict[str, object]]]:
        """Jobs whose dependencies are settled, with assembled payloads.

        Jobs whose dependencies failed are resolved immediately as SKIPPED
        (recorded in ``results``) instead of being scheduled.
        """
        ready: List[Tuple[JobSpec, Dict[str, object]]] = []
        for job_id, spec in self.specs.items():
            if job_id in self.results or job_id in self._released:
                continue
            if not self._dependencies_settled(spec):
                continue
            if not self._dependencies_ok(spec):
                self.results[job_id] = JobResult(
                    job_id=job_id, scenario=spec.scenario, step=spec.step,
                    mode=spec.mode, status=JobStatus.SKIPPED,
                    detail="dependency failed")
                continue
            self._released.add(job_id)
            ready.append((spec, self._payload_for(spec)))
        return ready

    def _payload_for(self, spec: JobSpec) -> Dict[str, object]:
        options = self.options
        payload: Dict[str, object] = {
            "scenario": spec.scenario,
            "step": spec.step,
            "mode": spec.mode,
            "use_cache": options.use_cache,
            "cache_dir": options.cache_dir,
            "seed": options.seed,
            "relaxation": options.relaxation,
            "backend": options.backend,
            "array_backend": options.array_backend,
            "params": options.params,
        }
        if spec.step == STEP_LEVELSET:
            lyap = self.results[spec.depends_on[0]].data
            payload["certificate"] = lyap["certificates"][spec.mode]
        elif spec.step in (JOB_STEP_ADVECTION, STEP_FALSIFICATION):
            lyap_id = JobSpec.make_id(spec.scenario, STEP_LYAPUNOV)
            payload["certificates"] = self.results[lyap_id].data["certificates"]
            payload["levels"] = {
                level_spec.mode: self.results[level_spec.job_id].data
                for level_spec in self.specs.values()
                if level_spec.step == STEP_LEVELSET
            }
        return payload

    def record(self, spec: JobSpec, outcome: Dict[str, object]) -> None:
        data = dict(outcome.get("data", {}))
        self.results[spec.job_id] = JobResult(
            job_id=spec.job_id, scenario=spec.scenario, step=spec.step,
            mode=spec.mode, status=JobStatus(outcome["status"]),
            seconds=float(outcome.get("seconds", 0.0)),
            detail=str(outcome.get("detail", "")),
            data=data,
            counters=dict(outcome.get("counters", {})),
            cache_stats=dict(outcome.get("cache_stats", {})),
            array_backend_stats=dict(outcome.get("array_backend_stats", {})),
            relaxation=data.get("relaxation"),
        )

    def record_timeout(self, spec: JobSpec, seconds: float) -> None:
        self.results[spec.job_id] = JobResult(
            job_id=spec.job_id, scenario=spec.scenario, step=spec.step,
            mode=spec.mode, status=JobStatus.TIMEOUT, seconds=seconds,
            detail=f"job exceeded {self.options.job_timeout:.1f}s budget")

    @property
    def done(self) -> bool:
        return len(self.results) == len(self.specs)

    def job_results(self) -> List[JobResult]:
        """Results for every planned job; jobs an aborted run never settled
        are reported as SKIPPED rather than omitted."""
        results = []
        for job_id, spec in self.specs.items():
            result = self.results.get(job_id)
            if result is None:
                result = JobResult(
                    job_id=job_id, scenario=spec.scenario, step=spec.step,
                    mode=spec.mode, status=JobStatus.SKIPPED,
                    detail="not executed (engine run aborted)")
            results.append(result)
        return results


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------
@dataclass
class ScenarioOutcome:
    """Everything the engine learned about one scenario."""

    scenario: str
    expected: str
    matches_expected: bool
    report: VerificationReport
    jobs: List[JobResult]
    counters: Dict[str, int]

    @property
    def statuses(self) -> Dict[str, str]:
        return {job.job_id: job.status.value for job in self.jobs}

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "expected": self.expected,
            "matches_expected": self.matches_expected,
            "counters": dict(self.counters),
            "jobs": [job.to_json_dict() for job in self.jobs],
            "report": self.report.to_json_dict(),
        }


@dataclass
class EngineReport:
    """Aggregated outcome of one engine run."""

    outcomes: List[ScenarioOutcome]
    options: EngineOptions
    wall_seconds: float
    counters: Dict[str, int] = field(default_factory=dict)
    cache_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def all_match_expected(self) -> bool:
        return all(outcome.matches_expected for outcome in self.outcomes)

    @property
    def array_backend(self) -> str:
        """The array namespace the run's solver hot loops executed on.

        The explicit ``EngineOptions.array_backend`` when one was configured;
        otherwise the name observed in the jobs' solver telemetry (the
        ``"auto"`` resolution), falling back to ``"auto"`` for runs that
        performed no solves at all.
        """
        if self.options.array_backend is not None:
            return self.options.array_backend
        observed = sorted(self.array_backend_stats())
        if len(observed) == 1:
            return observed[0]
        return "auto"

    def array_backend_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-array-backend iterations/sec aggregated over every job."""
        totals: Dict[str, Dict[str, float]] = {}
        for outcome in self.outcomes:
            for job in outcome.jobs:
                for name, entry in job.array_backend_stats.items():
                    agg = totals.setdefault(
                        name, {"solves": 0, "iterations": 0, "seconds": 0.0})
                    agg["solves"] += int(entry.get("solves", 0))
                    agg["iterations"] += int(entry.get("iterations", 0))
                    agg["seconds"] += float(entry.get("seconds", 0.0))
        for entry in totals.values():
            entry["iterations_per_second"] = \
                entry["iterations"] / max(entry["seconds"], 1e-12)
        return totals

    def outcome(self, scenario: str) -> ScenarioOutcome:
        for entry in self.outcomes:
            if entry.scenario == scenario:
                return entry
        raise KeyError(f"no outcome for scenario {scenario!r}")

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "engine": {
                "jobs": self.options.jobs,
                "use_cache": self.options.use_cache,
                "cache_dir": self.options.cache_dir,
                "seed": self.options.seed,
                "relaxation": self.options.relaxation,
                "backend": self.options.backend or DEFAULT_BACKEND,
                "array_backend": self.array_backend,
                "array_backend_stats": self.array_backend_stats(),
                "wall_seconds": self.wall_seconds,
                "counters": dict(self.counters),
                "cache_stats": dict(self.cache_stats),
                "cache": cache_rate_summary(self.cache_stats),
            },
            "scenarios": [outcome.to_json_dict() for outcome in self.outcomes],
        }

    def render_text(self) -> str:
        lines = [
            f"Engine run: {len(self.outcomes)} scenario(s), "
            f"jobs={self.options.jobs}, cache={'on' if self.options.use_cache else 'off'}, "
            f"backend={self.options.backend or DEFAULT_BACKEND}, "
            f"{self.wall_seconds:.1f}s wall",
            f"SDP solves: {self.counters.get('solved', 0)} performed, "
            f"{self.counters.get('cache_hit', 0)} served from cache",
        ]
        cache = cache_rate_summary(self.cache_stats)
        if cache["lookups"]:
            lines.append(
                f"Certificate cache: {cache['hits']}/{cache['lookups']} lookups "
                f"hit ({100.0 * cache['hit_rate']:.1f}%), "
                f"{cache['writes']} write(s)")
        stats = self.array_backend_stats()
        if stats:
            lines.append("Array backends: " + ", ".join(
                f"{name} ({entry['iterations_per_second']:.0f} it/s over "
                f"{int(entry['solves'])} solve(s))"
                for name, entry in sorted(stats.items())))
        lines.append("")
        for outcome in self.outcomes:
            verdict = "MATCH" if outcome.matches_expected else "MISMATCH"
            lines.append(
                f"[{verdict}] {outcome.scenario}: "
                f"inevitability={outcome.report.inevitability_status.value} "
                f"(expected {outcome.expected})")
            for job in outcome.jobs:
                relax = f" <{job.relaxation}>" if job.relaxation else ""
                lines.append(f"    {job.job_id:40s} {job.status.value:8s} "
                             f"{job.seconds:7.2f}s  {job.detail}{relax}")
            lines.append("")
        return "\n".join(lines)


def _status_from(value: Optional[str]) -> VerificationStatus:
    if not value:
        return VerificationStatus.INCONCLUSIVE
    return VerificationStatus(value)


def _assemble_report(problem, driver: _ScenarioDriver) -> VerificationReport:
    """Fold a scenario's job results into a classic VerificationReport."""
    results = driver.results
    scenario = driver.scenario
    report = VerificationReport(
        system_name=problem.system.name,
        property_one=PropertyOneResult(
            status=VerificationStatus.INCONCLUSIVE, lyapunov=None,
            invariant=None),
        property_two=PropertyTwoResult(status=VerificationStatus.INCONCLUSIVE),
        options_summary={
            "scenario": scenario,
            "lyapunov_degree": problem.options.lyapunov.certificate_degree,
            "multiplier_degree": problem.options.lyapunov.multiplier_degree,
            "levelset_domain": problem.options.levelset_domain,
            "uncertainty": problem.uncertainty,
        },
    )

    lyap = results.get(JobSpec.make_id(scenario, STEP_LYAPUNOV))
    if lyap is None:
        return report
    if lyap.seconds:
        report.add_timing(STEP_ATTRACTIVE_INVARIANT, lyap.seconds,
                          detail=f"degree {lyap.data.get('degree', '?')}",
                          relaxation=lyap.relaxation)
    if not lyap.status.is_ok:
        report.property_one = PropertyOneResult(
            status=VerificationStatus.INCONCLUSIVE, lyapunov=None,
            invariant=None, message=lyap.detail)
        return report

    level_results = {spec.mode: results[spec.job_id]
                     for spec in driver.specs.values()
                     if spec.step == STEP_LEVELSET and spec.job_id in results}
    levels_ok = all(res.status.is_ok for res in level_results.values())
    levelset_seconds = sum(res.seconds for res in level_results.values())
    if levelset_seconds:
        report.add_timing(STEP_MAX_LEVEL_CURVES, levelset_seconds,
                          detail=f"{len(level_results)} mode(s)",
                          relaxation=join_relaxations(
                              res.relaxation for res in level_results.values()))
    invariant = None
    if levels_ok and level_results:
        invariant = _rebuild_invariant(
            problem, lyap.data["certificates"],
            {mode: res.data for mode, res in level_results.items()})
        report.property_one = PropertyOneResult(
            status=VerificationStatus.VERIFIED, lyapunov=None,
            invariant=invariant, message="attractive invariant constructed")
    else:
        failed = sorted(mode for mode, res in level_results.items()
                        if not res.status.is_ok)
        report.property_one = PropertyOneResult(
            status=VerificationStatus.INCONCLUSIVE, lyapunov=None,
            invariant=None,
            message=f"level-curve maximisation failed for {failed}")
        return report

    if not problem.options.verify_property_two:
        return report

    per_mode: Dict[str, ModePropertyTwoResult] = {}
    combined = VerificationStatus.VERIFIED
    for spec in driver.specs.values():
        if spec.step != JOB_STEP_ADVECTION or spec.job_id not in results:
            continue
        job = results[spec.job_id]
        if job.status in (JobStatus.SKIPPED, JobStatus.TIMEOUT, JobStatus.ERROR):
            mode_status = VerificationStatus.INCONCLUSIVE
            message = job.detail
        else:
            mode_status = _status_from(job.data.get("mode_status"))
            message = job.detail
        iterations = job.data.get("iterations")
        if iterations is not None:
            message = f"{message} ({iterations} advection iterations)"
        per_mode[spec.mode] = ModePropertyTwoResult(
            mode_name=spec.mode, advection=None, escape=None,
            status=mode_status, message=message)
        combined = combined.combine(mode_status)
        if job.data.get("advection_seconds"):
            report.add_timing(STEP_ADVECTION, float(job.data["advection_seconds"]),
                              detail=f"{spec.mode}: {iterations} iterations")
        if job.data.get("inclusion_seconds"):
            report.add_timing(STEP_SET_INCLUSION,
                              float(job.data["inclusion_seconds"]),
                              detail=spec.mode, relaxation=job.relaxation)
        if job.data.get("escape_seconds"):
            report.add_timing(STEP_ESCAPE, float(job.data["escape_seconds"]),
                              detail=spec.mode)
    message = ("bounded reachability of X1 established"
               if combined is VerificationStatus.VERIFIED
               else "property 2 could not be fully established")
    report.property_two = PropertyTwoResult(status=combined, per_mode=per_mode,
                                            message=message)

    fals = results.get(JobSpec.make_id(scenario, STEP_FALSIFICATION))
    if fals is not None and fals.status is not JobStatus.SKIPPED:
        report.add_timing(STEP_FALSIFICATION_CHECK, fals.seconds,
                          detail=fals.detail)
    return report


def _matches_expected(expected: str, report: VerificationReport,
                      driver: _ScenarioDriver) -> bool:
    # An infrastructure failure (crashed worker, exceeded budget) is never
    # the promised mathematical outcome — even for 'inconclusive'/'any'.
    if any(job.status in (JobStatus.ERROR, JobStatus.TIMEOUT)
           for job in driver.job_results()):
        return False
    fals = driver.results.get(
        JobSpec.make_id(driver.scenario, STEP_FALSIFICATION))
    if fals is not None and fals.status is JobStatus.FAILED:
        return False  # a simulated counterexample trumps any certificate
    if expected == "any":
        return True
    if expected == "verified":
        return report.inevitability_verified
    if expected == "property_one":
        return report.property_one.status is VerificationStatus.VERIFIED
    if expected == "inconclusive":
        return report.inevitability_status is VerificationStatus.INCONCLUSIVE
    raise ValueError(f"unknown expected outcome {expected!r}")


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class _InlineExecutor:
    """``jobs=1``: run everything synchronously through the Future API."""

    def submit(self, fn, *args, **kwargs) -> Future:
        future: Future = Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as exc:  # pragma: no cover - worker catches
            future.set_exception(exc)
        return future

    def shutdown(self, wait: bool = True) -> None:  # noqa: ARG002
        pass


class DistributedExecutor:
    """Run engine jobs on a fleet master instead of a local pool.

    Presents the same ``submit(fn, payload) -> Future`` surface as
    :class:`concurrent.futures` executors, but ``fn`` is ignored: the payload
    travels to the master's scheduler, which dispatches it to whichever
    worker pulls it first (or answers it straight from the job memo).  Each
    submission occupies one daemon thread blocked on the master's reply, so
    ``EngineOptions.jobs`` bounds this engine's inflight jobs on the fleet.
    Per-job timeouts are enforced by the master's deadline reaper, not here.
    """

    def __init__(self, address: str, priority: int = 0,
                 timeout: Optional[float] = None):
        from ..fleet.client import FleetClient

        self.client = FleetClient(address)
        self.priority = int(priority)
        self.timeout = timeout

    def submit(self, fn, payload) -> Future:  # noqa: ARG002 - fleet executes
        future: Future = Future()
        label = f"{payload.get('scenario')}/{payload.get('step')}" + \
            (f":{payload['mode']}" if payload.get("mode") else "")

        def _dispatch() -> None:
            try:
                outcome = self.client.exec_job(
                    payload, priority=self.priority,
                    timeout=self.timeout, label=label)
            except BaseException as exc:  # noqa: BLE001 - surfaced via future
                if not future.set_running_or_notify_cancel():
                    return
                future.set_exception(exc)
                return
            if future.set_running_or_notify_cancel():
                future.set_result(outcome)

        import threading

        threading.Thread(target=_dispatch, daemon=True,
                         name=f"fleet-dispatch-{label}").start()
        return future

    def shutdown(self, wait: bool = True) -> None:  # noqa: ARG002
        pass


class VerificationEngine:
    """Expand scenarios into job DAGs and run them to completion."""

    def __init__(self, options: Optional[EngineOptions] = None):
        self.options = options or EngineOptions()

    # ------------------------------------------------------------------
    def plan(self, scenario: str) -> List[JobSpec]:
        """The DAG the engine would run for one scenario (introspection)."""
        problem = _prepared_problem(scenario, self.options.relaxation)
        driver = _ScenarioDriver(scenario, problem, self.options)
        return list(driver.specs.values())

    # ------------------------------------------------------------------
    def run(self, scenarios: Sequence[str]) -> EngineReport:
        options = self.options
        start = time.perf_counter()

        drivers = []
        for name in scenarios:
            problem = _prepared_problem(name, options.relaxation)
            drivers.append(_ScenarioDriver(name, problem, options))

        if options.fleet:
            executor = DistributedExecutor(options.fleet,
                                           priority=options.fleet_priority,
                                           timeout=options.job_timeout)
        elif options.jobs > 1:
            executor = ProcessPoolExecutor(max_workers=options.jobs)
        else:
            executor = _InlineExecutor()
        active: Dict[Future, Tuple[_ScenarioDriver, JobSpec, float]] = {}
        ready_queue: List[Tuple[_ScenarioDriver, JobSpec, Dict[str, object]]] = []
        timed_out_running = False
        interrupted = False
        zombie_workers = 0   # workers stuck in a timed-out, uncancellable job
        try:
            while True:
                for driver in drivers:
                    for spec, payload in driver.take_ready():
                        ready_queue.append((driver, spec, payload))
                # Submit at most one job per *live* worker slot: an
                # executor-queued future never starts executing, so admitting
                # more would let the per-job timeout fire on jobs that were
                # merely waiting for a slot.  Workers stuck in a timed-out
                # solve still occupy their slot until teardown, so they no
                # longer count as capacity.
                live_slots = max(1, options.jobs) - zombie_workers
                if live_slots <= 0:
                    # Every worker is wedged: resolve the runnable jobs as
                    # errors rather than queueing work that can never start
                    # (anything further down the DAG is reported as skipped
                    # by job_results()).
                    for driver, spec, _payload in ready_queue:
                        driver.record(spec, {
                            "status": "error",
                            "detail": "worker pool exhausted by timed-out jobs"})
                    ready_queue.clear()
                    break
                while ready_queue and len(active) < live_slots:
                    driver, spec, payload = ready_queue.pop(0)
                    LOGGER.info("submitting %s", spec.job_id)
                    try:
                        future = executor.submit(_execute_job, payload)
                    except Exception as exc:  # e.g. BrokenProcessPool
                        driver.record(spec, {"status": "error",
                                             "detail": f"submission failed: {exc}"})
                        continue
                    active[future] = (driver, spec, time.perf_counter())
                if not active:
                    if not ready_queue and all(driver.done for driver in drivers):
                        break
                    # Nothing running and nothing submittable: every remaining
                    # job waits on a settled-but-failed dependency; the next
                    # take_ready pass records the skips.
                    continue
                done, _ = wait(list(active), timeout=0.25,
                               return_when=FIRST_COMPLETED)
                now = time.perf_counter()
                for future in done:
                    driver, spec, started = active.pop(future)
                    try:
                        outcome = future.result()
                    except Exception as exc:  # dead worker / broken pool
                        outcome = {"status": "error",
                                   "detail": f"{type(exc).__name__}: {exc}",
                                   "seconds": now - started}
                    driver.record(spec, outcome)
                    LOGGER.info("finished %s: %s", spec.job_id,
                                driver.results[spec.job_id].status.value)
                # In fleet mode the master's deadline reaper owns the per-job
                # timeout; resolving it here too would race the authoritative
                # outcome travelling back over the wire.
                if options.job_timeout is not None and not options.fleet:
                    for future in list(active):
                        driver, spec, started = active[future]
                        if now - started > options.job_timeout:
                            # cancel() only stops a future that has not
                            # started; a running pool task keeps its worker
                            # (and its slot) until the teardown below
                            # terminates it.
                            if not future.cancel():
                                timed_out_running = True
                                zombie_workers += 1
                            active.pop(future)
                            driver.record_timeout(spec, now - started)
                            LOGGER.warning("job %s timed out", spec.job_id)
        except KeyboardInterrupt:
            # Ctrl-C mid-run: resolve inflight jobs as errors and fall
            # through to report assembly — job_results() marks everything
            # the run never settled as SKIPPED, so the partial report is
            # well-formed and the pool teardown below reaps the children
            # instead of leaving them orphaned behind a dead parent.
            interrupted = True
            now = time.perf_counter()
            for future, (driver, spec, started) in list(active.items()):
                future.cancel()
                driver.record(spec, {
                    "status": "error", "detail": "interrupted (Ctrl-C)",
                    "seconds": now - started})
            active.clear()
            LOGGER.warning("run interrupted; returning partial report")
        finally:
            if isinstance(executor, ProcessPoolExecutor):
                executor.shutdown(wait=False, cancel_futures=True)
            else:
                executor.shutdown(wait=False)
            if (timed_out_running or interrupted) and \
                    isinstance(executor, ProcessPoolExecutor):
                # Workers stuck in a timed-out solve (or still mid-job when
                # the user hit Ctrl-C) would otherwise be joined by
                # concurrent.futures' atexit hook, hanging the CLI at
                # interpreter shutdown — or survive it as orphans.
                for process in list(getattr(executor, "_processes", {}).values()):
                    try:
                        process.terminate()
                    except Exception:  # pragma: no cover - best effort
                        pass

        outcomes = []
        for driver in drivers:
            report = _assemble_report(driver.problem, driver)
            counters: Dict[str, int] = {}
            for job in driver.job_results():
                for key, value in job.counters.items():
                    counters[key] = counters.get(key, 0) + value
            outcomes.append(ScenarioOutcome(
                scenario=driver.scenario,
                expected=driver.problem.expected,
                matches_expected=_matches_expected(
                    driver.problem.expected, report, driver),
                report=report,
                jobs=driver.job_results(),
                counters=counters,
            ))

        # Every job ran under its own SolveContext, so the run totals are the
        # exact per-job sums — inline and pooled runs aggregate identically,
        # and concurrent engine runs in one process never cross-contaminate.
        totals: Dict[str, int] = {}
        cache_totals: Dict[str, int] = {}
        for outcome in outcomes:
            for key, value in outcome.counters.items():
                totals[key] = totals.get(key, 0) + value
            for job in outcome.jobs:
                for key, value in job.cache_stats.items():
                    cache_totals[key] = cache_totals.get(key, 0) + value

        return EngineReport(
            outcomes=outcomes,
            options=options,
            wall_seconds=time.perf_counter() - start,
            counters=totals,
            cache_stats=cache_totals,
        )
