"""Parallel verification engine with a persistent certificate cache.

``VerificationEngine`` expands registered scenarios into DAGs of jobs and
runs them inline or across a process pool; every conic solve is memoised in
a content-addressed on-disk ``CertificateCache``, so re-verifying an
unchanged scenario performs zero SDP solves.
"""

from .cache import (
    CACHE_DIR_ENV,
    CacheStats,
    CertificateCache,
    RemoteCacheClient,
    default_cache_dir,
)
from .engine import (
    DistributedExecutor,
    EngineOptions,
    EngineReport,
    ScenarioOutcome,
    VerificationEngine,
)
from .jobs import (
    STEP_ADVECTION,
    STEP_FALSIFICATION,
    STEP_LEVELSET,
    STEP_LYAPUNOV,
    JobResult,
    JobSpec,
    JobStatus,
)
from .serialize import (
    SCHEMA_VERSION,
    WireSchemaError,
    certificates_from_data,
    certificates_to_data,
    job_result_from_wire,
    job_result_to_wire,
    job_spec_from_wire,
    job_spec_to_wire,
    memo_outcome,
    memoizable_status,
    payload_fingerprint,
    polynomial_from_data,
    polynomial_to_data,
    solver_result_from_wire,
    solver_result_to_wire,
)

__all__ = [
    "VerificationEngine",
    "EngineOptions",
    "EngineReport",
    "ScenarioOutcome",
    "DistributedExecutor",
    "JobSpec",
    "JobResult",
    "JobStatus",
    "STEP_LYAPUNOV",
    "STEP_LEVELSET",
    "STEP_ADVECTION",
    "STEP_FALSIFICATION",
    "CertificateCache",
    "RemoteCacheClient",
    "CacheStats",
    "default_cache_dir",
    "CACHE_DIR_ENV",
    "polynomial_to_data",
    "polynomial_from_data",
    "certificates_to_data",
    "certificates_from_data",
    "SCHEMA_VERSION",
    "WireSchemaError",
    "job_spec_to_wire",
    "job_spec_from_wire",
    "job_result_to_wire",
    "job_result_from_wire",
    "solver_result_to_wire",
    "solver_result_from_wire",
    "payload_fingerprint",
    "memo_outcome",
    "memoizable_status",
]
