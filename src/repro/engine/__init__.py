"""Parallel verification engine with a persistent certificate cache.

``VerificationEngine`` expands registered scenarios into DAGs of jobs and
runs them inline or across a process pool; every conic solve is memoised in
a content-addressed on-disk ``CertificateCache``, so re-verifying an
unchanged scenario performs zero SDP solves.
"""

from .cache import CACHE_DIR_ENV, CacheStats, CertificateCache, default_cache_dir
from .engine import (
    EngineOptions,
    EngineReport,
    ScenarioOutcome,
    VerificationEngine,
)
from .jobs import (
    STEP_ADVECTION,
    STEP_FALSIFICATION,
    STEP_LEVELSET,
    STEP_LYAPUNOV,
    JobResult,
    JobSpec,
    JobStatus,
)
from .serialize import (
    certificates_from_data,
    certificates_to_data,
    polynomial_from_data,
    polynomial_to_data,
)

__all__ = [
    "VerificationEngine",
    "EngineOptions",
    "EngineReport",
    "ScenarioOutcome",
    "JobSpec",
    "JobResult",
    "JobStatus",
    "STEP_LYAPUNOV",
    "STEP_LEVELSET",
    "STEP_ADVECTION",
    "STEP_FALSIFICATION",
    "CertificateCache",
    "CacheStats",
    "default_cache_dir",
    "CACHE_DIR_ENV",
    "polynomial_to_data",
    "polynomial_from_data",
    "certificates_to_data",
    "certificates_from_data",
]
