"""Persistent content-addressed certificate cache.

Every conic solve performed by the verification pipeline is keyed by the
sha256 of its problem data plus the canonical serialisation of its solver
options (see :func:`repro.sdp.solve_cache_key`).  The cache stores the full
:class:`~repro.sdp.result.SolverResult` on disk, so re-verifying an unchanged
scenario replays every certificate from disk and performs **zero** SDP solves
— the property asserted by the engine's warm-cache tests.

Layout: ``<root>/<key[:2]>/<key>.pkl`` with atomic tmp-file + rename writes,
so concurrent worker processes can share one cache directory.  A corrupted or
truncated entry is treated as a miss, deleted, and counted in
:attr:`CacheStats.corrupted`.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

from ..sdp.result import SolverResult
from ..utils import get_logger

LOGGER = get_logger("engine.cache")

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """Resolve the cache root: ``$REPRO_CACHE_DIR``, else XDG cache dir."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-pll-sos"


@dataclass
class CacheStats:
    """Running counters of one :class:`CertificateCache` instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupted: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "writes": self.writes, "corrupted": self.corrupted}


def cache_rate_summary(stats: Dict[str, int]) -> Dict[str, object]:
    """Aggregate hit/miss counters into a reportable cache section.

    The single source of the ``hit_rate`` arithmetic — engine JSON reports,
    ``report --metrics`` and sweep frontier reports all quote this, so the
    incremental-recertification claims ("warm re-run ≈ 100% hits") are
    machine-checkable from any of them.
    """
    hits = int(stats.get("hits", 0))
    misses = int(stats.get("misses", 0))
    lookups = hits + misses
    return {
        "hits": hits,
        "misses": misses,
        "writes": int(stats.get("writes", 0)),
        "corrupted": int(stats.get("corrupted", 0)),
        "lookups": lookups,
        "hit_rate": (hits / lookups) if lookups else 0.0,
    }


class CertificateCache:
    """Content-addressed on-disk store of conic :class:`SolverResult` values.

    Satisfies the ``get``/``put`` protocol of
    :class:`repro.sdp.context.SolveContext`, with a small in-memory front so
    one process never deserialises the same entry twice.  The in-memory
    front and the stats counters are lock-guarded: a session shared by a
    thread pool drives concurrent get/put through one cache instance.
    """

    def __init__(self, root: Optional[os.PathLike] = None,
                 memory_entries: int = 256):
        # expanduser so "~/.cache/..." lands in the home directory rather
        # than creating a literal "./~" directory.
        self.root = Path(root).expanduser() if root is not None \
            else default_cache_dir()
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._memory: Dict[str, SolverResult] = {}
        self._memory_entries = max(0, int(memory_entries))
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"cache keys must be lowercase hex digests, got {key!r}")
        return self.root / key[:2] / f"{key}.pkl"

    def _remember(self, key: str, result: SolverResult) -> None:
        with self._lock:
            if self._memory_entries == 0:
                return
            while len(self._memory) >= self._memory_entries:
                # Drop the oldest entry (dict preserves insertion order).
                self._memory.pop(next(iter(self._memory)))
            self._memory[key] = result

    def _count(self, field: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self.stats, field, getattr(self.stats, field) + amount)

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[SolverResult]:
        with self._lock:
            cached = self._memory.get(key)
        if cached is not None:
            self._count("hits")
            return cached
        path = self.path_for(key)
        if not path.exists():
            self._count("misses")
            return None
        try:
            with open(path, "rb") as handle:
                result = pickle.load(handle)
            if not isinstance(result, SolverResult):
                raise TypeError(f"cache entry holds {type(result).__name__}")
        except Exception as exc:  # corrupted / truncated / wrong type
            self._count("corrupted")
            self._count("misses")
            LOGGER.warning("dropping corrupted cache entry %s: %s", path.name, exc)
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self._count("hits")
        self._remember(key, result)
        return result

    def put(self, key: str, result: SolverResult) -> None:
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Atomic write: concurrent workers racing on the same key both write
        # valid files and the rename picks one winner.
        fd, tmp_name = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(result, handle, protocol=4)
            os.replace(tmp_name, path)
        except Exception:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._count("writes")
        self._remember(key, result)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    def clear(self) -> int:
        """Delete every entry; returns the number of files removed."""
        removed = 0
        for path in self.root.glob("*/*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        with self._lock:
            self._memory.clear()
        return removed

    def describe(self) -> str:
        return (f"CertificateCache({str(self.root)!r}: {len(self)} entries, "
                f"hits={self.stats.hits}, misses={self.stats.misses}, "
                f"writes={self.stats.writes}, corrupted={self.stats.corrupted})")


class RemoteCacheClient:
    """Client front of a fleet master's certificate cache.

    Satisfies the same ``get``/``put`` protocol as :class:`CertificateCache`
    (so it plugs straight into :class:`repro.sdp.context.SolveContext`), but
    every lookup travels to the master over the fleet's length-prefixed JSON
    protocol — :class:`~repro.sdp.result.SolverResult` values cross the wire
    through the explicit codecs of :mod:`repro.engine.serialize`, never as
    pickles.  One client instance holds one lazily-opened connection and is
    thread-safe.

    Failure policy: a cache must never take a job down with it.  If the
    master becomes unreachable mid-job, ``get`` degrades to a miss and
    ``put`` to a no-op (counted in ``stats``, logged once); the job then
    simply solves without memoisation — and the master will requeue it
    anyway if the whole fleet link is gone.
    """

    def __init__(self, address, timeout: float = 30.0):
        self.address = tuple(address)
        self.timeout = timeout
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._conn = None
        self._warned = False

    # ------------------------------------------------------------------
    def _request(self, message: Dict[str, object]) -> Optional[Dict[str, object]]:
        from ..fleet.protocol import Connection, ProtocolError

        with self._lock:
            for attempt in (0, 1):   # one transparent reconnect
                if self._conn is None:
                    try:
                        self._conn = Connection.connect(self.address,
                                                        timeout=self.timeout)
                        self._conn.settimeout(self.timeout)
                    except OSError as exc:
                        self._complain(exc)
                        return None
                try:
                    return self._conn.request(message)
                except (OSError, ProtocolError) as exc:
                    self._conn.close()
                    self._conn = None
                    if attempt:
                        self._complain(exc)
            return None

    def _complain(self, exc: Exception) -> None:
        if not self._warned:
            self._warned = True
            LOGGER.warning("remote certificate cache %s unreachable (%s); "
                           "continuing without cache", self.address, exc)

    # ------------------------------------------------------------------
    def get(self, key: str):
        from .serialize import solver_result_from_wire

        response = self._request({"type": "cache_get", "key": key})
        if response is None or not response.get("found"):
            with self._lock:
                self.stats.misses += 1
            return None
        result = solver_result_from_wire(response["result"])
        with self._lock:
            self.stats.hits += 1
        return result

    def put(self, key: str, result) -> None:
        from .serialize import solver_result_to_wire

        response = self._request({"type": "cache_put", "key": key,
                                  "result": solver_result_to_wire(result)})
        if response is not None and response.get("ok"):
            with self._lock:
                self.stats.writes += 1

    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    def describe(self) -> str:
        return (f"RemoteCacheClient({self.address}: hits={self.stats.hits}, "
                f"misses={self.stats.misses}, writes={self.stats.writes})")
