"""Job containers of the verification engine.

A scenario expands into a small DAG of *steps* (Lyapunov search → per-mode
level-set maximisation → per-mode advection/inclusion → falsification
cross-check).  Each step becomes one :class:`JobSpec`; running it yields a
structured :class:`JobResult` whose payload is plain data (JSON-able), so
results cross process boundaries and land in reports unchanged.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: Canonical step names.
STEP_LYAPUNOV = "lyapunov"
STEP_LEVELSET = "levelset"
STEP_ADVECTION = "advection"
STEP_FALSIFICATION = "falsification"
#: One batch of parameter-sweep probe points (see repro.sweep); executed by
#: the same hermetic worker entry point as the classic pipeline steps, so
#: local pools and fleet workers dispatch sweep shards unchanged.
STEP_SWEEP = "sweep_shard"


class JobStatus(enum.Enum):
    """Terminal state of one engine job."""

    OK = "ok"                    # step ran and produced its artifact
    FAILED = "failed"            # step ran; the verification claim failed
    ERROR = "error"              # step raised; detail carries the traceback
    TIMEOUT = "timeout"          # per-job wall-clock budget exceeded
    SKIPPED = "skipped"          # dependency failed or step not applicable

    @property
    def is_ok(self) -> bool:
        return self is JobStatus.OK


@dataclass(frozen=True)
class JobSpec:
    """One schedulable unit of verification work.

    ``job_id`` is unique within an engine run (``<scenario>/<step>[:mode]``);
    ``depends_on`` lists job ids that must reach ``OK`` before this job's
    payload can be assembled.
    """

    job_id: str
    scenario: str
    step: str
    mode: Optional[str] = None
    depends_on: Tuple[str, ...] = ()

    @staticmethod
    def make_id(scenario: str, step: str, mode: Optional[str] = None) -> str:
        return f"{scenario}/{step}:{mode}" if mode else f"{scenario}/{step}"


@dataclass
class JobResult:
    """Structured outcome of one executed (or skipped) job."""

    job_id: str
    scenario: str
    step: str
    mode: Optional[str]
    status: JobStatus
    seconds: float = 0.0
    detail: str = ""
    data: Dict[str, object] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    cache_stats: Dict[str, int] = field(default_factory=dict)
    #: Per-array-backend solver throughput (name -> {"solves", "iterations",
    #: "seconds", "iterations_per_second"}); empty for jobs without solves.
    array_backend_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Gram-cone relaxation that actually certified this step ("dsos",
    #: "sdsos" or "sos"); ``None`` for steps without conic certificates.
    relaxation: Optional[str] = None

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "job_id": self.job_id,
            "scenario": self.scenario,
            "step": self.step,
            "mode": self.mode,
            "status": self.status.value,
            "seconds": self.seconds,
            "detail": self.detail,
            "relaxation": self.relaxation,
            "counters": dict(self.counters),
            "cache_stats": dict(self.cache_stats),
            "array_backend_stats": {name: dict(entry) for name, entry
                                    in self.array_backend_stats.items()},
        }
