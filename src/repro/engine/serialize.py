"""Plain-data serialisation of certificate artifacts.

Engine jobs run in separate worker processes; the artifacts that cross the
process boundary (Lyapunov certificates, maximised levels) and the artifacts
persisted in JSON reports are encoded as plain dicts/lists so they pickle
cheaply, diff cleanly and survive round-trips independent of object identity.
Terms are sorted by monomial order, making the encoding deterministic.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..polynomial import Monomial, Polynomial, VariableVector, make_variables


def polynomial_to_data(poly: Polynomial) -> Dict[str, object]:
    """Encode a numeric polynomial as ``{"variables": [...], "terms": [...]}``."""
    terms = sorted(poly.coefficients.items(), key=lambda item: Monomial.sort_key(item[0]))
    return {
        "variables": list(poly.variables.names),
        "terms": [[list(mono.exponents), float(coeff)] for mono, coeff in terms],
    }


def polynomial_from_data(data: Dict[str, object]) -> Polynomial:
    """Inverse of :func:`polynomial_to_data`."""
    variables = VariableVector(make_variables(*data["variables"]))
    coefficients = {tuple(int(e) for e in exponents): float(coeff)
                    for exponents, coeff in data["terms"]}
    return Polynomial(variables, coefficients)


def certificates_to_data(certificates: Dict[str, Polynomial]) -> Dict[str, object]:
    """Encode a per-mode certificate dictionary (sorted by mode name)."""
    return {name: polynomial_to_data(certificates[name])
            for name in sorted(certificates)}


def certificates_from_data(data: Dict[str, object]) -> Dict[str, Polynomial]:
    return {name: polynomial_from_data(entry) for name, entry in data.items()}


def levels_to_data(levels: Dict[str, Tuple[float, int]]) -> Dict[str, object]:
    return {name: {"level": float(level), "iterations": int(iterations)}
            for name, (level, iterations) in sorted(levels.items())}
