"""Plain-data serialisation of certificate artifacts and the wire schema.

Engine jobs run in separate worker processes; the artifacts that cross the
process boundary (Lyapunov certificates, maximised levels) and the artifacts
persisted in JSON reports are encoded as plain dicts/lists so they pickle
cheaply, diff cleanly and survive round-trips independent of object identity.
Terms are sorted by monomial order, making the encoding deterministic.

The ``*_to_wire``/``*_from_wire`` codecs additionally stamp (and require) a
``"schema"`` version tag: they are the only encoding that fleet nodes accept
over the network (see :mod:`repro.fleet.protocol` — JSON frames, never
pickle), so an incompatible peer fails with a clear
:class:`WireSchemaError` instead of a ``KeyError`` deep inside a handler.
NumPy arrays are carried as tagged ``{"__ndarray__": ...}`` documents;
float64 values survive JSON exactly (shortest-repr round-trip).
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Optional, Tuple

import numpy as np

from ..polynomial import Monomial, Polynomial, VariableVector, make_variables
from ..sdp.result import SolveHistory, SolverResult, SolverStatus
from .jobs import JobResult, JobSpec, JobStatus

#: Version tag of every wire document produced by this module.
SCHEMA_VERSION = 1


class WireSchemaError(ValueError):
    """A wire document carries an unknown or missing schema version."""


def _require_schema(data: Dict[str, object], kind: str) -> None:
    if not isinstance(data, dict):
        raise WireSchemaError(f"{kind} wire document must be a JSON object, "
                              f"got {type(data).__name__}")
    version = data.get("schema")
    if version != SCHEMA_VERSION:
        raise WireSchemaError(
            f"unsupported {kind} schema version {version!r}; this build "
            f"reads version {SCHEMA_VERSION} — upgrade the older fleet node")


def polynomial_to_data(poly: Polynomial) -> Dict[str, object]:
    """Encode a numeric polynomial as ``{"variables": [...], "terms": [...]}``."""
    terms = sorted(poly.coefficients.items(), key=lambda item: Monomial.sort_key(item[0]))
    return {
        "variables": list(poly.variables.names),
        "terms": [[list(mono.exponents), float(coeff)] for mono, coeff in terms],
    }


def polynomial_from_data(data: Dict[str, object]) -> Polynomial:
    """Inverse of :func:`polynomial_to_data`."""
    variables = VariableVector(make_variables(*data["variables"]))
    coefficients = {tuple(int(e) for e in exponents): float(coeff)
                    for exponents, coeff in data["terms"]}
    return Polynomial(variables, coefficients)


def certificates_to_data(certificates: Dict[str, Polynomial]) -> Dict[str, object]:
    """Encode a per-mode certificate dictionary (sorted by mode name)."""
    return {name: polynomial_to_data(certificates[name])
            for name in sorted(certificates)}


def certificates_from_data(data: Dict[str, object]) -> Dict[str, Polynomial]:
    return {name: polynomial_from_data(entry) for name, entry in data.items()}


def levels_to_data(levels: Dict[str, Tuple[float, int]]) -> Dict[str, object]:
    return {name: {"level": float(level), "iterations": int(iterations)}
            for name, (level, iterations) in sorted(levels.items())}


# ----------------------------------------------------------------------
# JSON-safe value encoding (NumPy arrays and scalars)
# ----------------------------------------------------------------------
def to_jsonable(value: object, strict: bool = True) -> object:
    """Recursively encode a value so ``json.dumps`` accepts it.

    NumPy arrays become tagged ``{"__ndarray__": {dtype, shape, data}}``
    documents, solver :class:`~repro.sdp.result.SolveHistory` diagnostics
    become tagged ``{"__solve_history__": ...}`` documents, and NumPy
    scalars collapse to their Python equivalents.  Already plain values pass
    through unchanged.

    With ``strict=False`` any *other* object is replaced by a tagged
    ``{"__opaque__": repr}`` marker instead of poisoning ``json.dumps``
    downstream — the mode used for solver ``info`` dicts, where third-party
    backends may attach arbitrary diagnostics and the remote cache must
    degrade rather than fail the job.
    """
    if isinstance(value, np.ndarray):
        return {"__ndarray__": {"dtype": str(value.dtype),
                                "shape": list(value.shape),
                                "data": value.ravel().tolist()}}
    if isinstance(value, SolveHistory):
        return {"__solve_history__": {"primal": list(value.primal),
                                      "dual": list(value.dual),
                                      "objective": list(value.objective)}}
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, dict):
        return {str(key): to_jsonable(entry, strict)
                for key, entry in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(entry, strict) for entry in value]
    if strict or value is None or isinstance(value, (bool, int, float, str)):
        return value
    return {"__opaque__": repr(value)}


def from_jsonable(value: object) -> object:
    """Inverse of :func:`to_jsonable` (tagged documents back to objects).

    ``__opaque__`` markers decode to ``None``: the original object never
    crossed the wire, and every consumer of solver ``info`` treats a missing
    entry as "no diagnostics".
    """
    if isinstance(value, dict):
        if set(value) == {"__ndarray__"}:
            spec = value["__ndarray__"]
            array = np.array(spec["data"], dtype=np.dtype(spec["dtype"]))
            return array.reshape([int(n) for n in spec["shape"]])
        if set(value) == {"__solve_history__"}:
            spec = value["__solve_history__"]
            return SolveHistory(primal=[float(v) for v in spec["primal"]],
                                dual=[float(v) for v in spec["dual"]],
                                objective=[float(v) for v in spec["objective"]])
        if set(value) == {"__opaque__"}:
            return None
        return {key: from_jsonable(entry) for key, entry in value.items()}
    if isinstance(value, list):
        return [from_jsonable(entry) for entry in value]
    return value


# ----------------------------------------------------------------------
# Wire codecs (schema-tagged; the only encodings fleet nodes exchange)
# ----------------------------------------------------------------------
def job_spec_to_wire(spec: JobSpec) -> Dict[str, object]:
    return {
        "schema": SCHEMA_VERSION,
        "job_id": spec.job_id,
        "scenario": spec.scenario,
        "step": spec.step,
        "mode": spec.mode,
        "depends_on": list(spec.depends_on),
    }


def job_spec_from_wire(data: Dict[str, object]) -> JobSpec:
    _require_schema(data, "JobSpec")
    return JobSpec(
        job_id=str(data["job_id"]),
        scenario=str(data["scenario"]),
        step=str(data["step"]),
        mode=None if data.get("mode") is None else str(data["mode"]),
        depends_on=tuple(str(dep) for dep in data.get("depends_on", [])),
    )


def job_result_to_wire(result: JobResult) -> Dict[str, object]:
    return {
        "schema": SCHEMA_VERSION,
        "job_id": result.job_id,
        "scenario": result.scenario,
        "step": result.step,
        "mode": result.mode,
        "status": result.status.value,
        "seconds": float(result.seconds),
        "detail": result.detail,
        "relaxation": result.relaxation,
        "data": to_jsonable(result.data),
        "counters": {str(k): int(v) for k, v in result.counters.items()},
        "cache_stats": {str(k): int(v) for k, v in result.cache_stats.items()},
        "array_backend_stats": to_jsonable(result.array_backend_stats),
    }


def job_result_from_wire(data: Dict[str, object]) -> JobResult:
    _require_schema(data, "JobResult")
    return JobResult(
        job_id=str(data["job_id"]),
        scenario=str(data["scenario"]),
        step=str(data["step"]),
        mode=None if data.get("mode") is None else str(data["mode"]),
        status=JobStatus(data["status"]),
        seconds=float(data.get("seconds", 0.0)),
        detail=str(data.get("detail", "")),
        relaxation=(None if data.get("relaxation") is None
                    else str(data["relaxation"])),
        data=from_jsonable(data.get("data", {})),
        counters={str(k): int(v)
                  for k, v in dict(data.get("counters", {})).items()},
        cache_stats={str(k): int(v)
                     for k, v in dict(data.get("cache_stats", {})).items()},
        array_backend_stats={
            str(name): {str(k): float(v) for k, v in entry.items()}
            for name, entry in dict(data.get("array_backend_stats", {})).items()},
    )


def solver_result_to_wire(result: SolverResult) -> Dict[str, object]:
    """Encode a conic :class:`SolverResult` for the remote-cache protocol."""
    return {
        "schema": SCHEMA_VERSION,
        "status": result.status.value,
        "x": to_jsonable(result.x) if result.x is not None else None,
        "objective": float(result.objective),
        "primal_residual": float(result.primal_residual),
        "dual_residual": float(result.dual_residual),
        "equality_residual": float(result.equality_residual),
        "cone_violation": float(result.cone_violation),
        "iterations": int(result.iterations),
        "solve_time": float(result.solve_time),
        "info": to_jsonable(result.info, strict=False),
    }


def solver_result_from_wire(data: Dict[str, object]) -> SolverResult:
    _require_schema(data, "SolverResult")
    x = data.get("x")
    decoded = from_jsonable(x) if x is not None else None
    if decoded is not None and not isinstance(decoded, np.ndarray):
        decoded = np.asarray(decoded, dtype=float)
    return SolverResult(
        status=SolverStatus(data["status"]),
        x=decoded,
        objective=float(data.get("objective", float("nan"))),
        primal_residual=float(data.get("primal_residual", float("nan"))),
        dual_residual=float(data.get("dual_residual", float("nan"))),
        equality_residual=float(data.get("equality_residual", float("nan"))),
        cone_violation=float(data.get("cone_violation", float("nan"))),
        iterations=int(data.get("iterations", 0)),
        solve_time=float(data.get("solve_time", 0.0)),
        info=from_jsonable(data.get("info", {})),
    )


#: Payload keys that define a job's *mathematical* identity.  Transport
#: details (cache directory, cache on/off) are deliberately excluded: the
#: same job submitted against any cache configuration computes the same
#: certificates, which is what makes the master's job memo sound.
_FINGERPRINT_FIELDS = ("scenario", "step", "mode", "seed", "relaxation",
                       "backend", "array_backend", "certificate",
                       "certificates", "levels")


def payload_fingerprint(payload: Dict[str, object]) -> str:
    """Content address of one engine job payload (cache-aware scheduling).

    The sha256 of the canonical JSON of the payload's semantic fields plus
    the schema version, so a master can answer a previously-completed job
    from its memo without dispatching it to any worker.
    """
    semantic = {key: payload.get(key) for key in _FINGERPRINT_FIELDS
                if payload.get(key) is not None}
    semantic["schema"] = SCHEMA_VERSION
    text = json.dumps(semantic, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def memo_outcome(stored: Dict[str, object]) -> Dict[str, object]:
    """Rewrite a memoised job outcome as a warm-cache replay.

    A job answered from the master's memo performed **zero** solves; its
    counters must say exactly what a re-dispatched warm-cache execution
    would have said: every solve the original run performed (or itself
    replayed) becomes a cache hit, the cache stats record pure hits, and no
    array backend ran.  Status, detail, artifact data and relaxation are
    replayed verbatim.
    """
    counters: Dict[str, int] = {"solved": 0, "cache_hit": 0}
    for key, value in dict(stored.get("counters", {})).items():
        event, _, suffix = key.partition(":")
        if event not in ("solved", "cache_hit"):
            continue
        target = "cache_hit" + (f":{suffix}" if suffix else "")
        counters[target] = counters.get(target, 0) + int(value)
    stats = dict(stored.get("cache_stats", {}))
    lookups = int(stats.get("hits", 0)) + int(stats.get("misses", 0))
    outcome = dict(stored)
    outcome["counters"] = counters
    outcome["cache_stats"] = ({"hits": lookups, "misses": 0, "writes": 0,
                               "corrupted": 0} if stats else {})
    outcome["array_backend_stats"] = {}
    outcome["seconds"] = 0.0
    return outcome


def memoizable_status(status: Optional[str]) -> bool:
    """Only deterministic mathematical outcomes enter the job memo.

    Infrastructure verdicts (errors, timeouts, skips) must retry on the next
    submission rather than being replayed forever.
    """
    return status in ("ok", "failed")
