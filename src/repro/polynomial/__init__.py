"""Multivariate polynomial algebra substrate.

This subpackage provides everything the SOS layer needs from polynomial
algebra: variables, monomials, numeric polynomials (with calculus and
composition), affine decision expressions, parametric polynomials and
Gram-matrix utilities.
"""

from .variables import Variable, VariableVector, make_variables
from .monomial import (
    Monomial,
    basis_exponent_matrix,
    exponent_matrix_up_to_degree,
    exponents_up_to_degree,
    monomial_product_index,
)
from .polynomial import (
    Polynomial,
    PolynomialStack,
    polynomial_vector,
    COEFFICIENT_TOLERANCE,
)
from .basis import (
    basis_for_support,
    basis_size,
    basis_to_polynomials,
    equality_basis,
    even_basis,
    gram_basis_for_degree,
    monomial_basis,
    product_support,
)
from .linexpr import DecisionVariable, LinExpr, stack_coefficients
from .parampoly import ParametricPolynomial
from .gram import (
    GramProductTable,
    SOSDecomposition,
    check_sos_numerically,
    extract_sos_decomposition,
    gram_product_table,
    gram_residual,
    gram_to_polynomial,
    polynomial_to_gram_structure,
    project_to_psd,
)

__all__ = [
    "Variable",
    "VariableVector",
    "make_variables",
    "Monomial",
    "exponents_up_to_degree",
    "exponent_matrix_up_to_degree",
    "basis_exponent_matrix",
    "monomial_product_index",
    "Polynomial",
    "PolynomialStack",
    "polynomial_vector",
    "COEFFICIENT_TOLERANCE",
    "monomial_basis",
    "basis_size",
    "gram_basis_for_degree",
    "basis_for_support",
    "equality_basis",
    "even_basis",
    "basis_to_polynomials",
    "product_support",
    "DecisionVariable",
    "LinExpr",
    "stack_coefficients",
    "ParametricPolynomial",
    "gram_to_polynomial",
    "gram_product_table",
    "GramProductTable",
    "polynomial_to_gram_structure",
    "SOSDecomposition",
    "extract_sos_decomposition",
    "project_to_psd",
    "check_sos_numerically",
    "gram_residual",
]
