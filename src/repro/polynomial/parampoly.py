"""Polynomials whose coefficients are affine expressions in decision variables.

A :class:`ParametricPolynomial` represents ``p(x; d) = sum_k c_k(d) m_k(x)``
where each coefficient ``c_k`` is a :class:`LinExpr` over decision variables
``d``.  These objects are the terms of SOS constraints: unknown Lyapunov
certificates, unknown multipliers and unknown level-set polynomials are all
parametric polynomials; products with *numeric* polynomials keep them affine
in ``d``.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple, Union


from .linexpr import DecisionVariable, LinExpr, _is_number
from .monomial import Monomial
from .polynomial import Polynomial
from .variables import Variable, VariableVector

PolyLike = Union["ParametricPolynomial", Polynomial, Variable, float, int]


class ParametricPolynomial:
    """A polynomial in ``x`` with affine-in-decision-variable coefficients."""

    __slots__ = ("variables", "coefficients")

    def __init__(self, variables: VariableVector,
                 coefficients: Optional[Mapping[Monomial, LinExpr]] = None):
        if not isinstance(variables, VariableVector):
            variables = VariableVector(variables)
        self.variables = variables
        coeffs: Dict[Monomial, LinExpr] = {}
        if coefficients:
            for mono, expr in coefficients.items():
                if mono.num_variables != len(variables):
                    raise ValueError(
                        f"monomial {mono} incompatible with {len(variables)} variables"
                    )
                expr = LinExpr.coerce(expr)
                if expr:
                    coeffs[mono] = expr
        self.coefficients = coeffs

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero(cls, variables: VariableVector) -> "ParametricPolynomial":
        return cls(variables, {})

    @classmethod
    def from_polynomial(cls, poly: Polynomial) -> "ParametricPolynomial":
        return cls(poly.variables,
                   {m: LinExpr.from_constant(c) for m, c in poly.coefficients.items()})

    @classmethod
    def from_basis(cls, variables: VariableVector, basis: Sequence[Monomial],
                   decision_variables: Sequence[DecisionVariable]) -> "ParametricPolynomial":
        """``sum_k d_k * basis[k]`` — a fully free polynomial template."""
        if len(basis) != len(decision_variables):
            raise ValueError("basis and decision variable counts differ")
        return cls(variables, {m: LinExpr.from_variable(d)
                               for m, d in zip(basis, decision_variables)})

    @staticmethod
    def coerce(value: PolyLike,
               variables: Optional[VariableVector] = None) -> "ParametricPolynomial":
        if isinstance(value, ParametricPolynomial):
            return value
        if isinstance(value, Polynomial):
            return ParametricPolynomial.from_polynomial(value)
        if isinstance(value, Variable):
            if variables is None or value not in variables:
                variables = VariableVector([value]) if variables is None else variables.union(
                    VariableVector([value]))
            return ParametricPolynomial.from_polynomial(
                Polynomial.from_variable(value, variables))
        if _is_number(value):
            if variables is None:
                variables = VariableVector([])
            return ParametricPolynomial(
                variables, {Monomial.constant(len(variables)): LinExpr.from_constant(value)})
        if isinstance(value, (LinExpr, DecisionVariable)):
            if variables is None:
                variables = VariableVector([])
            return ParametricPolynomial(
                variables, {Monomial.constant(len(variables)): LinExpr.coerce(value)})
        raise TypeError(f"cannot interpret {value!r} as a parametric polynomial")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def degree(self) -> int:
        if not self.coefficients:
            return 0
        return max(m.degree for m in self.coefficients)

    def monomials(self) -> Tuple[Monomial, ...]:
        return tuple(sorted(self.coefficients, key=Monomial.sort_key))

    def decision_variables(self) -> Tuple[DecisionVariable, ...]:
        seen = {}
        for expr in self.coefficients.values():
            for var in expr.coeffs:
                seen[var.uid] = var
        return tuple(seen[uid] for uid in sorted(seen))

    def coefficient(self, monomial: Monomial) -> LinExpr:
        return self.coefficients.get(monomial, LinExpr.from_constant(0.0))

    def is_numeric(self) -> bool:
        return all(expr.is_constant() for expr in self.coefficients.values())

    # ------------------------------------------------------------------
    # Variable handling
    # ------------------------------------------------------------------
    def with_variables(self, variables: VariableVector) -> "ParametricPolynomial":
        if variables == self.variables:
            return self
        mapping = [variables.index(v) for v in self.variables]
        n_new = len(variables)
        coeffs: Dict[Monomial, LinExpr] = {}
        for mono, expr in self.coefficients.items():
            exps = [0] * n_new
            for old_idx, exp in enumerate(mono.exponents):
                exps[mapping[old_idx]] = exp
            key = Monomial(tuple(exps))
            coeffs[key] = coeffs.get(key, LinExpr.from_constant(0.0)) + expr
        return ParametricPolynomial(variables, coeffs)

    def _align(self, other: "ParametricPolynomial"):
        if self.variables == other.variables:
            return self, other
        merged = self.variables.union(other.variables)
        return self.with_variables(merged), other.with_variables(merged)

    # ------------------------------------------------------------------
    # Arithmetic (affine in decision variables)
    # ------------------------------------------------------------------
    def __add__(self, other: PolyLike) -> "ParametricPolynomial":
        try:
            other_pp = ParametricPolynomial.coerce(other, self.variables)
        except TypeError:
            return NotImplemented
        left, right = self._align(other_pp)
        coeffs = dict(left.coefficients)
        for mono, expr in right.coefficients.items():
            coeffs[mono] = coeffs.get(mono, LinExpr.from_constant(0.0)) + expr
        return ParametricPolynomial(left.variables, coeffs)

    def __radd__(self, other: PolyLike) -> "ParametricPolynomial":
        return self.__add__(other)

    def __neg__(self) -> "ParametricPolynomial":
        return ParametricPolynomial(self.variables,
                                    {m: -e for m, e in self.coefficients.items()})

    def __sub__(self, other: PolyLike) -> "ParametricPolynomial":
        try:
            other_pp = ParametricPolynomial.coerce(other, self.variables)
        except TypeError:
            return NotImplemented
        return self.__add__(-other_pp)

    def __rsub__(self, other: PolyLike) -> "ParametricPolynomial":
        return (-self).__add__(other)

    def __mul__(self, other) -> "ParametricPolynomial":
        # Scalar (number or affine expression) multiplication.
        if _is_number(other):
            return ParametricPolynomial(
                self.variables, {m: e * float(other) for m, e in self.coefficients.items()})
        if isinstance(other, (LinExpr, DecisionVariable)):
            expr = LinExpr.coerce(other)
            if expr.is_constant():
                return self * expr.constant
            if self.is_numeric():
                return ParametricPolynomial(
                    self.variables,
                    {m: expr * e.constant for m, e in self.coefficients.items()})
            raise ValueError("product would be bilinear in decision variables")
        # Polynomial multiplication: at most one factor may carry decision variables.
        if isinstance(other, Variable):
            other = Polynomial.from_variable(other)
        if isinstance(other, Polynomial):
            other = ParametricPolynomial.from_polynomial(other)
        if isinstance(other, ParametricPolynomial):
            if not (self.is_numeric() or other.is_numeric()):
                raise ValueError(
                    "product of two parametric polynomials with decision variables is bilinear; "
                    "restructure the SOS program so one factor is numeric"
                )
            left, right = self._align(other)
            coeffs: Dict[Monomial, LinExpr] = {}
            # Ensure the numeric factor supplies plain floats.
            if left.is_numeric():
                numeric, symbolic = left, right
            else:
                numeric, symbolic = right, left
            for m1, e1 in numeric.coefficients.items():
                c1 = e1.constant
                if c1 == 0.0:
                    continue
                for m2, e2 in symbolic.coefficients.items():
                    prod = m1 * m2
                    coeffs[prod] = coeffs.get(prod, LinExpr.from_constant(0.0)) + e2 * c1
            return ParametricPolynomial(left.variables, coeffs)
        return NotImplemented

    def __rmul__(self, other) -> "ParametricPolynomial":
        return self.__mul__(other)

    def __truediv__(self, other) -> "ParametricPolynomial":
        if _is_number(other):
            if float(other) == 0.0:
                raise ZeroDivisionError
            return self * (1.0 / float(other))
        return NotImplemented

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def instantiate(self, assignment: Mapping[DecisionVariable, float]) -> Polynomial:
        """Substitute decision-variable values, producing a numeric polynomial."""
        coeffs: Dict[Monomial, float] = {}
        for mono, expr in self.coefficients.items():
            coeffs[mono] = expr.evaluate(assignment)
        return Polynomial(self.variables, coeffs)

    def to_polynomial(self) -> Polynomial:
        """Convert a purely numeric parametric polynomial to a Polynomial."""
        if not self.is_numeric():
            raise ValueError("parametric polynomial still contains decision variables")
        return Polynomial(self.variables,
                          {m: e.constant for m, e in self.coefficients.items()})

    # ------------------------------------------------------------------
    # Calculus (needed for Lie derivatives of unknown certificates)
    # ------------------------------------------------------------------
    def differentiate(self, variable: Union[Variable, int]) -> "ParametricPolynomial":
        index = variable if isinstance(variable, int) else self.variables.index(variable)
        coeffs: Dict[Monomial, LinExpr] = {}
        for mono, expr in self.coefficients.items():
            factor, dmono = mono.differentiate(index)
            if factor:
                coeffs[dmono] = coeffs.get(dmono, LinExpr.from_constant(0.0)) + expr * factor
        return ParametricPolynomial(self.variables, coeffs)

    def gradient(self) -> Tuple["ParametricPolynomial", ...]:
        return tuple(self.differentiate(i) for i in range(len(self.variables)))

    def lie_derivative(self, vector_field: Sequence[Polynomial]) -> "ParametricPolynomial":
        if len(vector_field) != len(self.variables):
            raise ValueError("vector field dimension mismatch")
        result = ParametricPolynomial.zero(self.variables)
        for i, component in enumerate(vector_field):
            partial = self.differentiate(i)
            if not partial.coefficients:
                continue
            result = result + partial * component
        return result

    def __repr__(self) -> str:
        terms = []
        for mono in self.monomials():
            terms.append(f"({self.coefficients[mono]!r})*{mono.to_string(self.variables)}")
        return "ParametricPolynomial(" + (" + ".join(terms) if terms else "0") + ")"
