"""Monomial basis construction for SOS Gram parameterisations.

The central operation is: given a target polynomial degree ``2d``, build the
vector of monomials ``z(x)`` such that any SOS polynomial of degree ``2d`` can
be written ``z(x)^T Q z(x)`` with ``Q ⪰ 0``.  Utilities for trimming the basis
(parity filtering, degree windows) keep the resulting SDP blocks small.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Sequence, Tuple

from .monomial import Monomial, exponents_up_to_degree
from .polynomial import Polynomial
from .variables import VariableVector


@lru_cache(maxsize=1024)
def monomial_basis(num_variables: int, max_degree: int,
                   min_degree: int = 0) -> Tuple[Monomial, ...]:
    """All monomials with total degree in ``[min_degree, max_degree]``.

    Sorted in graded lexicographic order (constant first when included).
    Cached: the SOS layer requests the same handful of bases for every
    constraint it compiles.
    """
    if max_degree < 0:
        raise ValueError("max_degree must be non-negative")
    if min_degree < 0 or min_degree > max_degree:
        raise ValueError("min_degree must satisfy 0 <= min_degree <= max_degree")
    monos = [Monomial(e) for e in exponents_up_to_degree(num_variables, max_degree, min_degree)]
    monos.sort(key=Monomial.sort_key)
    return tuple(monos)


def basis_size(num_variables: int, max_degree: int) -> int:
    """Number of monomials of degree <= max_degree: C(n + d, d)."""
    from math import comb

    return comb(num_variables + max_degree, max_degree)


def gram_basis_for_degree(num_variables: int, polynomial_degree: int,
                          include_constant: bool = True) -> Tuple[Monomial, ...]:
    """Monomial vector for the Gram form of an SOS polynomial of given degree.

    An SOS polynomial of degree ``2d`` needs monomials up to degree ``d``.
    Odd target degrees are rounded up (the certificate is then of degree
    ``2*ceil(deg/2)``).  When ``include_constant`` is False the constant
    monomial is omitted, forcing the SOS polynomial to vanish at the origin —
    the natural choice for Lyapunov certificates with ``V(0) = 0``.
    """
    if polynomial_degree < 0:
        raise ValueError("polynomial degree must be non-negative")
    half = (polynomial_degree + 1) // 2
    min_degree = 0 if include_constant else 1
    if half < min_degree:
        half = min_degree
    return monomial_basis(num_variables, half, min_degree)


def basis_for_support(target: Polynomial, extra_degree: int = 0) -> Tuple[Monomial, ...]:
    """A Gram basis adapted to the support of ``target``.

    Uses the simple degree bound (Newton-polytope trimming would be tighter but
    the problems in this library are small enough that the degree bound keeps
    block sizes manageable).
    """
    half = (target.degree + 1) // 2 + extra_degree
    return monomial_basis(target.num_variables, half)


def equality_basis(polynomials: Sequence[Polynomial],
                   extra: Sequence[Monomial] = ()) -> Tuple[Monomial, ...]:
    """The union of the supports of ``polynomials`` plus ``extra`` monomials.

    Used to build the coefficient-matching equality constraints of an SOS
    program: every monomial that can appear on either side of the identity
    must be matched.
    """
    seen = set()
    result: List[Monomial] = []
    for poly in polynomials:
        for mono in poly.coefficients:
            if mono not in seen:
                seen.add(mono)
                result.append(mono)
    for mono in extra:
        if mono not in seen:
            seen.add(mono)
            result.append(mono)
    result.sort(key=Monomial.sort_key)
    return tuple(result)


def even_basis(num_variables: int, max_degree: int) -> Tuple[Monomial, ...]:
    """Monomials of even total degree only (useful for symmetric certificates)."""
    return tuple(m for m in monomial_basis(num_variables, max_degree) if m.degree % 2 == 0)


def basis_to_polynomials(variables: VariableVector,
                         basis: Sequence[Monomial]) -> Tuple[Polynomial, ...]:
    """Lift a monomial basis to a tuple of monomial polynomials."""
    return tuple(Polynomial(variables, {m: 1.0}) for m in basis)


def product_support(basis: Sequence[Monomial]) -> Tuple[Monomial, ...]:
    """All monomials reachable as products ``basis[i] * basis[j]`` (i <= j)."""
    seen = set()
    out: List[Monomial] = []
    for i, mi in enumerate(basis):
        for mj in basis[i:]:
            prod = mi * mj
            if prod not in seen:
                seen.add(prod)
                out.append(prod)
    out.sort(key=Monomial.sort_key)
    return tuple(out)
