"""Monomials over a fixed variable ordering.

A monomial is stored as a tuple of non-negative integer exponents whose
positions refer to a :class:`~repro.polynomial.variables.VariableVector`.
Monomials are value objects: hashable, comparable under graded lexicographic
order, and support multiplication / division / evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from .variables import Variable, VariableVector


@dataclass(frozen=True)
class Monomial:
    """A power product ``x1^e1 * x2^e2 * ... * xn^en``.

    Only the exponent tuple is stored; the meaning of each position is given
    by the variable vector of the enclosing polynomial.
    """

    exponents: Tuple[int, ...]

    def __post_init__(self) -> None:
        if any((not isinstance(e, (int, np.integer))) or e < 0 for e in self.exponents):
            raise ValueError(f"exponents must be non-negative integers, got {self.exponents}")
        exponents = tuple(int(e) for e in self.exponents)
        object.__setattr__(self, "exponents", exponents)
        # Hash and sort key are recomputed millions of times by the SOS
        # compiler's dict lookups and support orderings — cache both.
        object.__setattr__(self, "_hash", hash(exponents))
        object.__setattr__(self, "_sort_key",
                           (sum(exponents), tuple(-e for e in exponents)))

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Monomial):
            return self.exponents == other.exponents
        return NotImplemented

    # -- constructors ------------------------------------------------------
    @classmethod
    def constant(cls, num_variables: int) -> "Monomial":
        """The monomial ``1`` in ``num_variables`` variables (cached)."""
        return constant_monomial(num_variables)

    @classmethod
    def unit(cls, index: int, num_variables: int, power: int = 1) -> "Monomial":
        """The monomial ``x_index ** power`` (cached)."""
        return unit_monomial(index, num_variables, power)

    # -- basic queries -----------------------------------------------------
    @property
    def degree(self) -> int:
        return sum(self.exponents)

    @property
    def num_variables(self) -> int:
        return len(self.exponents)

    def is_constant(self) -> bool:
        return self.degree == 0

    def is_even(self) -> bool:
        """True when every exponent is even (needed for diagonal Gram entries)."""
        return all(e % 2 == 0 for e in self.exponents)

    def involves(self, index: int) -> bool:
        return self.exponents[index] > 0

    # -- algebra -----------------------------------------------------------
    def __mul__(self, other: "Monomial") -> "Monomial":
        if not isinstance(other, Monomial):
            return NotImplemented
        if len(self.exponents) != len(other.exponents):
            raise ValueError("cannot multiply monomials over different variable counts")
        return Monomial(tuple(a + b for a, b in zip(self.exponents, other.exponents)))

    def divides(self, other: "Monomial") -> bool:
        return all(a <= b for a, b in zip(self.exponents, other.exponents))

    def __truediv__(self, other: "Monomial") -> "Monomial":
        if not other.divides(self):
            raise ValueError(f"{other} does not divide {self}")
        return Monomial(tuple(a - b for a, b in zip(self.exponents, other.exponents)))

    def pow(self, power: int) -> "Monomial":
        if power < 0:
            raise ValueError("monomial powers must be non-negative")
        return Monomial(tuple(e * power for e in self.exponents))

    def differentiate(self, index: int) -> Tuple[float, "Monomial"]:
        """Return ``(coefficient, monomial)`` of d/dx_index applied to self."""
        e = self.exponents[index]
        if e == 0:
            return 0.0, Monomial.constant(self.num_variables)
        exps = list(self.exponents)
        exps[index] = e - 1
        return float(e), Monomial(tuple(exps))

    # -- evaluation --------------------------------------------------------
    def evaluate(self, point: Sequence[float]) -> float:
        if len(point) != len(self.exponents):
            raise ValueError(
                f"point has {len(point)} coordinates, monomial expects {len(self.exponents)}"
            )
        value = 1.0
        for coord, exp in zip(point, self.exponents):
            if exp:
                value *= float(coord) ** exp
        return value

    def evaluate_many(self, points: np.ndarray) -> np.ndarray:
        """Vectorised evaluation on an ``(m, n)`` array of points."""
        points = np.asarray(points, dtype=float)
        if points.ndim == 1:
            points = points.reshape(1, -1)
        if points.shape[1] != len(self.exponents):
            raise ValueError("point dimension mismatch")
        result = np.ones(points.shape[0])
        for j, exp in enumerate(self.exponents):
            if exp:
                result = result * points[:, j] ** exp
        return result

    # -- ordering / display ------------------------------------------------
    def sort_key(self) -> Tuple[int, Tuple[int, ...]]:
        """Graded lexicographic key: total degree first, then exponents."""
        return self._sort_key  # type: ignore[attr-defined]

    def __lt__(self, other: "Monomial") -> bool:
        return self.sort_key() < other.sort_key()

    def to_string(self, variables: Optional[VariableVector] = None) -> str:
        if self.is_constant():
            return "1"
        parts = []
        for i, exp in enumerate(self.exponents):
            if exp == 0:
                continue
            name = variables[i].name if variables is not None else f"x{i}"
            parts.append(name if exp == 1 else f"{name}^{exp}")
        return "*".join(parts)

    def __repr__(self) -> str:
        return f"Monomial{self.exponents}"

    def as_dict(self, variables: VariableVector) -> Dict[Variable, int]:
        return {variables[i]: e for i, e in enumerate(self.exponents) if e > 0}


@lru_cache(maxsize=4096)
def constant_monomial(num_variables: int) -> Monomial:
    """Cached ``Monomial.constant`` (the constant monomial is requested on
    nearly every coefficient lookup)."""
    return Monomial((0,) * num_variables)


@lru_cache(maxsize=4096)
def unit_monomial(index: int, num_variables: int, power: int = 1) -> Monomial:
    """Cached ``Monomial.unit``."""
    if not 0 <= index < num_variables:
        raise IndexError(f"variable index {index} out of range for {num_variables} variables")
    exps = [0] * num_variables
    exps[index] = power
    return Monomial(tuple(exps))


def monomial_product_index(
    basis: Sequence[Monomial],
) -> Dict[Tuple[int, int], Monomial]:
    """Pre-compute ``basis[i] * basis[j]`` for all ``i <= j``.

    Used by the Gram-matrix machinery: an SOS polynomial ``z(x)^T Q z(x)``
    expands as ``sum_{i,j} Q_ij basis[i] basis[j]``.
    """
    products: Dict[Tuple[int, int], Monomial] = {}
    for i, mi in enumerate(basis):
        for j in range(i, len(basis)):
            products[(i, j)] = mi * basis[j]
    return products


@lru_cache(maxsize=1024)
def basis_exponent_matrix(basis: Tuple[Monomial, ...]) -> np.ndarray:
    """The stacked ``(b, n)`` exponent matrix of a monomial basis (read-only).

    Cached because the SOS layer repeatedly converts the same Gram bases to
    arrays when assembling product-index tables.
    """
    if not basis:
        return np.zeros((0, 0), dtype=np.int64)
    matrix = np.array([m.exponents for m in basis], dtype=np.int64)
    matrix.setflags(write=False)
    return matrix


@lru_cache(maxsize=1024)
def exponent_matrix_up_to_degree(num_variables: int, max_degree: int,
                                 min_degree: int = 0) -> np.ndarray:
    """All exponent tuples with total degree in ``[min_degree, max_degree]``
    as a read-only ``(count, num_variables)`` array in graded-lex order.

    Built degree by degree with a vectorised recurrence instead of a Python
    composition generator; cached because every SOS constraint asks for the
    same handful of (n, d) combinations.
    """
    if num_variables == 0:
        if min_degree <= 0 <= max_degree:
            out = np.zeros((1, 0), dtype=np.int64)
        else:
            out = np.zeros((0, 0), dtype=np.int64)
        out.setflags(write=False)
        return out

    def _exact_degree(degree: int) -> np.ndarray:
        # Rows of non-negative integer solutions of e_1 + ... + e_n = degree,
        # ordered with e_1 descending (graded-lex within the degree level).
        if num_variables == 1:
            return np.array([[degree]], dtype=np.int64)
        blocks = []
        for first in range(degree, -1, -1):
            rest = _exact_by_degree[degree - first] if num_variables >= 2 else None
            block = np.empty((rest.shape[0], num_variables), dtype=np.int64)
            block[:, 0] = first
            block[:, 1:] = rest
            blocks.append(block)
        return np.vstack(blocks)

    # Tail tables for n-1 variables, one per degree, computed recursively via
    # the cache (the recursion depth is the variable count, which is tiny).
    _exact_by_degree = {}
    if num_variables >= 2:
        tail = exponent_matrix_up_to_degree(num_variables - 1, max_degree, 0)
        tail_degrees = tail.sum(axis=1)
        for degree in range(max_degree + 1):
            _exact_by_degree[degree] = tail[tail_degrees == degree]

    levels = [_exact_degree(d) for d in range(min_degree, max_degree + 1)]
    out = np.vstack(levels) if levels else np.zeros((0, num_variables), dtype=np.int64)
    out.setflags(write=False)
    return out


def exponents_up_to_degree(num_variables: int, max_degree: int,
                           min_degree: int = 0) -> Iterable[Tuple[int, ...]]:
    """Yield all exponent tuples with ``min_degree <= total degree <= max_degree``.

    Ordered by graded lexicographic order (constant first).  Backed by the
    cached :func:`exponent_matrix_up_to_degree` table.
    """
    matrix = exponent_matrix_up_to_degree(num_variables, max_degree, min_degree)
    for row in matrix:
        yield tuple(int(e) for e in row)
