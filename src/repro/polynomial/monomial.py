"""Monomials over a fixed variable ordering.

A monomial is stored as a tuple of non-negative integer exponents whose
positions refer to a :class:`~repro.polynomial.variables.VariableVector`.
Monomials are value objects: hashable, comparable under graded lexicographic
order, and support multiplication / division / evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from .variables import Variable, VariableVector


@dataclass(frozen=True)
class Monomial:
    """A power product ``x1^e1 * x2^e2 * ... * xn^en``.

    Only the exponent tuple is stored; the meaning of each position is given
    by the variable vector of the enclosing polynomial.
    """

    exponents: Tuple[int, ...]

    def __post_init__(self) -> None:
        if any((not isinstance(e, (int, np.integer))) or e < 0 for e in self.exponents):
            raise ValueError(f"exponents must be non-negative integers, got {self.exponents}")
        object.__setattr__(self, "exponents", tuple(int(e) for e in self.exponents))

    # -- constructors ------------------------------------------------------
    @classmethod
    def constant(cls, num_variables: int) -> "Monomial":
        """The monomial ``1`` in ``num_variables`` variables."""
        return cls((0,) * num_variables)

    @classmethod
    def unit(cls, index: int, num_variables: int, power: int = 1) -> "Monomial":
        """The monomial ``x_index ** power``."""
        if not 0 <= index < num_variables:
            raise IndexError(f"variable index {index} out of range for {num_variables} variables")
        exps = [0] * num_variables
        exps[index] = power
        return cls(tuple(exps))

    # -- basic queries -----------------------------------------------------
    @property
    def degree(self) -> int:
        return sum(self.exponents)

    @property
    def num_variables(self) -> int:
        return len(self.exponents)

    def is_constant(self) -> bool:
        return self.degree == 0

    def is_even(self) -> bool:
        """True when every exponent is even (needed for diagonal Gram entries)."""
        return all(e % 2 == 0 for e in self.exponents)

    def involves(self, index: int) -> bool:
        return self.exponents[index] > 0

    # -- algebra -----------------------------------------------------------
    def __mul__(self, other: "Monomial") -> "Monomial":
        if not isinstance(other, Monomial):
            return NotImplemented
        if len(self.exponents) != len(other.exponents):
            raise ValueError("cannot multiply monomials over different variable counts")
        return Monomial(tuple(a + b for a, b in zip(self.exponents, other.exponents)))

    def divides(self, other: "Monomial") -> bool:
        return all(a <= b for a, b in zip(self.exponents, other.exponents))

    def __truediv__(self, other: "Monomial") -> "Monomial":
        if not other.divides(self):
            raise ValueError(f"{other} does not divide {self}")
        return Monomial(tuple(a - b for a, b in zip(self.exponents, other.exponents)))

    def pow(self, power: int) -> "Monomial":
        if power < 0:
            raise ValueError("monomial powers must be non-negative")
        return Monomial(tuple(e * power for e in self.exponents))

    def differentiate(self, index: int) -> Tuple[float, "Monomial"]:
        """Return ``(coefficient, monomial)`` of d/dx_index applied to self."""
        e = self.exponents[index]
        if e == 0:
            return 0.0, Monomial.constant(self.num_variables)
        exps = list(self.exponents)
        exps[index] = e - 1
        return float(e), Monomial(tuple(exps))

    # -- evaluation --------------------------------------------------------
    def evaluate(self, point: Sequence[float]) -> float:
        if len(point) != len(self.exponents):
            raise ValueError(
                f"point has {len(point)} coordinates, monomial expects {len(self.exponents)}"
            )
        value = 1.0
        for coord, exp in zip(point, self.exponents):
            if exp:
                value *= float(coord) ** exp
        return value

    def evaluate_many(self, points: np.ndarray) -> np.ndarray:
        """Vectorised evaluation on an ``(m, n)`` array of points."""
        points = np.asarray(points, dtype=float)
        if points.ndim == 1:
            points = points.reshape(1, -1)
        if points.shape[1] != len(self.exponents):
            raise ValueError("point dimension mismatch")
        result = np.ones(points.shape[0])
        for j, exp in enumerate(self.exponents):
            if exp:
                result = result * points[:, j] ** exp
        return result

    # -- ordering / display ------------------------------------------------
    def sort_key(self) -> Tuple[int, Tuple[int, ...]]:
        """Graded lexicographic key: total degree first, then exponents."""
        return (self.degree, tuple(-e for e in self.exponents))

    def __lt__(self, other: "Monomial") -> bool:
        return self.sort_key() < other.sort_key()

    def to_string(self, variables: Optional[VariableVector] = None) -> str:
        if self.is_constant():
            return "1"
        parts = []
        for i, exp in enumerate(self.exponents):
            if exp == 0:
                continue
            name = variables[i].name if variables is not None else f"x{i}"
            parts.append(name if exp == 1 else f"{name}^{exp}")
        return "*".join(parts)

    def __repr__(self) -> str:
        return f"Monomial{self.exponents}"

    def as_dict(self, variables: VariableVector) -> Dict[Variable, int]:
        return {variables[i]: e for i, e in enumerate(self.exponents) if e > 0}


def monomial_product_index(
    basis: Sequence[Monomial],
) -> Dict[Tuple[int, int], Monomial]:
    """Pre-compute ``basis[i] * basis[j]`` for all ``i <= j``.

    Used by the Gram-matrix machinery: an SOS polynomial ``z(x)^T Q z(x)``
    expands as ``sum_{i,j} Q_ij basis[i] basis[j]``.
    """
    products: Dict[Tuple[int, int], Monomial] = {}
    for i, mi in enumerate(basis):
        for j in range(i, len(basis)):
            products[(i, j)] = mi * basis[j]
    return products


def exponents_up_to_degree(num_variables: int, max_degree: int,
                           min_degree: int = 0) -> Iterable[Tuple[int, ...]]:
    """Yield all exponent tuples with ``min_degree <= total degree <= max_degree``.

    Ordered by graded lexicographic order (constant first).
    """
    if num_variables == 0:
        if min_degree <= 0 <= max_degree:
            yield ()
        return

    def _compositions(total: int, slots: int):
        if slots == 1:
            yield (total,)
            return
        for first in range(total, -1, -1):
            for rest in _compositions(total - first, slots - 1):
                yield (first,) + rest

    for degree in range(min_degree, max_degree + 1):
        for combo in _compositions(degree, num_variables):
            yield combo
