"""Gram-matrix representations of (candidate) SOS polynomials.

A polynomial ``p`` of degree ``2d`` is a sum of squares iff there is a
positive semidefinite matrix ``Q`` (the Gram matrix) with
``p(x) = z(x)^T Q z(x)`` for the monomial vector ``z`` of degree ``d``.
This module provides the bookkeeping between the two representations and the
a-posteriori certification utilities used to validate solver output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .monomial import Monomial
from .polynomial import Polynomial
from .variables import VariableVector


def gram_to_polynomial(variables: VariableVector, basis: Sequence[Monomial],
                       gram: np.ndarray) -> Polynomial:
    """Expand ``z(x)^T Q z(x)`` into a :class:`Polynomial`."""
    gram = np.asarray(gram, dtype=float)
    n = len(basis)
    if gram.shape != (n, n):
        raise ValueError(f"Gram matrix shape {gram.shape} does not match basis size {n}")
    gram = 0.5 * (gram + gram.T)
    coeffs: Dict[Monomial, float] = {}
    for i in range(n):
        for j in range(n):
            prod = basis[i] * basis[j]
            coeffs[prod] = coeffs.get(prod, 0.0) + gram[i, j]
    return Polynomial(variables, coeffs)


def polynomial_to_gram_structure(
    basis: Sequence[Monomial],
) -> Dict[Monomial, List[Tuple[int, int, float]]]:
    """For each product monomial, the Gram entries (i, j, weight) contributing to it.

    The weight is 1.0 for diagonal entries and 2.0 for off-diagonal entries
    (since ``Q`` is symmetric, entry (i, j) with i < j appears twice).
    """
    structure: Dict[Monomial, List[Tuple[int, int, float]]] = {}
    n = len(basis)
    for i in range(n):
        for j in range(i, n):
            prod = basis[i] * basis[j]
            weight = 1.0 if i == j else 2.0
            structure.setdefault(prod, []).append((i, j, weight))
    return structure


@dataclass
class SOSDecomposition:
    """An explicit decomposition ``p = sum_k (g_k)^2 + residual``."""

    squares: Tuple[Polynomial, ...]
    residual: Polynomial
    gram: np.ndarray
    basis: Tuple[Monomial, ...]
    min_eigenvalue: float

    @property
    def residual_norm(self) -> float:
        return self.residual.max_abs_coefficient()

    def is_valid(self, residual_tolerance: float = 1e-6,
                 eigenvalue_tolerance: float = -1e-8) -> bool:
        """True when the Gram matrix is (numerically) PSD and the residual tiny."""
        return (self.min_eigenvalue >= eigenvalue_tolerance
                and self.residual_norm <= residual_tolerance)


def extract_sos_decomposition(poly: Polynomial, gram: np.ndarray,
                              basis: Sequence[Monomial]) -> SOSDecomposition:
    """Build the explicit sum-of-squares witnessed by a Gram matrix.

    The eigendecomposition of ``Q`` gives ``p ≈ sum_k lam_k (v_k^T z)^2``;
    negative eigenvalues (numerical noise) are clipped and reported through
    ``min_eigenvalue`` so the caller can decide whether the certificate is
    acceptable.
    """
    gram = 0.5 * (np.asarray(gram, dtype=float) + np.asarray(gram, dtype=float).T)
    eigenvalues, eigenvectors = np.linalg.eigh(gram)
    squares: List[Polynomial] = []
    variables = poly.variables
    basis_polys = [Polynomial(variables, {m: 1.0}) for m in basis]
    for lam, vec in zip(eigenvalues, eigenvectors.T):
        if lam <= 0:
            continue
        component = Polynomial.zero(variables)
        scale = float(np.sqrt(lam))
        for coeff, bp in zip(vec, basis_polys):
            if abs(coeff) > 1e-14:
                component = component + bp * (scale * float(coeff))
        squares.append(component)
    reconstructed = gram_to_polynomial(variables, basis, gram)
    residual = poly - reconstructed
    return SOSDecomposition(
        squares=tuple(squares),
        residual=residual,
        gram=gram,
        basis=tuple(basis),
        min_eigenvalue=float(eigenvalues.min()) if len(eigenvalues) else 0.0,
    )


def project_to_psd(matrix: np.ndarray, floor: float = 0.0) -> np.ndarray:
    """Nearest (Frobenius) PSD matrix, with eigenvalues clipped at ``floor``."""
    matrix = 0.5 * (np.asarray(matrix, dtype=float) + np.asarray(matrix, dtype=float).T)
    eigenvalues, eigenvectors = np.linalg.eigh(matrix)
    clipped = np.clip(eigenvalues, floor, None)
    return (eigenvectors * clipped) @ eigenvectors.T


def check_sos_numerically(poly: Polynomial, num_samples: int = 200,
                          radius: float = 2.0, seed: int = 0) -> float:
    """Minimum sampled value of ``poly`` over random points in a ball.

    This is a falsification aid: a genuinely SOS polynomial can never be
    negative, so a negative sampled value disproves a claimed decomposition.
    """
    rng = np.random.default_rng(seed)
    n = poly.num_variables
    if n == 0:
        return poly.constant_term()
    points = rng.normal(size=(num_samples, n))
    norms = np.linalg.norm(points, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    radii = radius * rng.uniform(size=(num_samples, 1)) ** (1.0 / n)
    points = points / norms * radii
    values = poly.evaluate_many(points)
    return float(values.min())


def gram_residual(poly: Polynomial, gram: np.ndarray, basis: Sequence[Monomial]) -> float:
    """Max coefficient mismatch between ``poly`` and ``z^T Q z``."""
    reconstructed = gram_to_polynomial(poly.variables, basis, gram)
    return (poly - reconstructed).max_abs_coefficient()
