"""Gram-matrix representations of (candidate) SOS polynomials.

A polynomial ``p`` of degree ``2d`` is a sum of squares iff there is a
positive semidefinite matrix ``Q`` (the Gram matrix) with
``p(x) = z(x)^T Q z(x)`` for the monomial vector ``z`` of degree ``d``.
This module provides the bookkeeping between the two representations and the
a-posteriori certification utilities used to validate solver output.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .monomial import Monomial, basis_exponent_matrix
from .polynomial import Polynomial, group_exponent_rows
from .variables import VariableVector


@dataclass(frozen=True)
class GramProductTable:
    """Vectorised index table of the products ``basis[i] * basis[j]``, i <= j.

    ``pair_i/pair_j`` enumerate the upper-triangle pairs in row-major (svec)
    order; ``pair_product`` maps each pair to an index into ``products`` (the
    distinct product monomials, graded-lex sorted); ``pair_weight`` is the
    symmetric-expansion multiplicity (1 on the diagonal, 2 off it).  The SOS
    compiler turns these arrays directly into COO equality-constraint
    triplets — no per-entry Python loop.
    """

    basis: Tuple[Monomial, ...]
    products: Tuple[Monomial, ...]
    pair_i: np.ndarray
    pair_j: np.ndarray
    pair_product: np.ndarray
    pair_weight: np.ndarray
    product_index: Dict[Monomial, int]


@lru_cache(maxsize=512)
def gram_product_table(basis: Tuple[Monomial, ...]) -> GramProductTable:
    """Precompute the Gram product structure of a monomial basis (cached).

    One NumPy pass: stack the basis exponents, form all upper-triangle pair
    sums, and group identical product monomials.  Compiling an SOS constraint
    over a basis seen before (ubiquitous in parameter sweeps and bisection
    loops) reuses the table for free.
    """
    b = len(basis)
    exps = basis_exponent_matrix(basis)
    pair_i, pair_j = np.triu_indices(b)
    prod_exps = exps[pair_i] + exps[pair_j]
    unique_rows, pair_product = group_exponent_rows(prod_exps)
    products = tuple(Monomial(tuple(int(e) for e in row)) for row in unique_rows)
    pair_weight = np.where(pair_i == pair_j, 1.0, 2.0)
    for arr in (pair_i, pair_j, pair_product, pair_weight):
        arr.setflags(write=False)
    return GramProductTable(
        basis=basis,
        products=products,
        pair_i=pair_i,
        pair_j=pair_j,
        pair_product=pair_product,
        pair_weight=pair_weight,
        product_index={m: k for k, m in enumerate(products)},
    )


def gram_to_polynomial(variables: VariableVector, basis: Sequence[Monomial],
                       gram: np.ndarray) -> Polynomial:
    """Expand ``z(x)^T Q z(x)`` into a :class:`Polynomial` (vectorised)."""
    gram = np.asarray(gram, dtype=float)
    n = len(basis)
    if gram.shape != (n, n):
        raise ValueError(f"Gram matrix shape {gram.shape} does not match basis size {n}")
    if n == 0:
        return Polynomial.zero(variables)
    gram = 0.5 * (gram + gram.T)
    table = gram_product_table(tuple(basis))
    values = gram[table.pair_i, table.pair_j] * table.pair_weight
    coeffs = np.bincount(table.pair_product, weights=values,
                         minlength=len(table.products))
    exps = basis_exponent_matrix(table.products)
    return Polynomial._from_arrays(variables, exps, coeffs)


def polynomial_to_gram_structure(
    basis: Sequence[Monomial],
) -> Dict[Monomial, List[Tuple[int, int, float]]]:
    """For each product monomial, the Gram entries (i, j, weight) contributing to it.

    The weight is 1.0 for diagonal entries and 2.0 for off-diagonal entries
    (since ``Q`` is symmetric, entry (i, j) with i < j appears twice).
    """
    structure: Dict[Monomial, List[Tuple[int, int, float]]] = {}
    n = len(basis)
    for i in range(n):
        for j in range(i, n):
            prod = basis[i] * basis[j]
            weight = 1.0 if i == j else 2.0
            structure.setdefault(prod, []).append((i, j, weight))
    return structure


@dataclass
class SOSDecomposition:
    """An explicit decomposition ``p = sum_k (g_k)^2 + residual``."""

    squares: Tuple[Polynomial, ...]
    residual: Polynomial
    gram: np.ndarray
    basis: Tuple[Monomial, ...]
    min_eigenvalue: float

    @property
    def residual_norm(self) -> float:
        return self.residual.max_abs_coefficient()

    def is_valid(self, residual_tolerance: float = 1e-6,
                 eigenvalue_tolerance: float = -1e-8) -> bool:
        """True when the Gram matrix is (numerically) PSD and the residual tiny."""
        return (self.min_eigenvalue >= eigenvalue_tolerance
                and self.residual_norm <= residual_tolerance)


def extract_sos_decomposition(poly: Polynomial, gram: np.ndarray,
                              basis: Sequence[Monomial]) -> SOSDecomposition:
    """Build the explicit sum-of-squares witnessed by a Gram matrix.

    The eigendecomposition of ``Q`` gives ``p ≈ sum_k lam_k (v_k^T z)^2``;
    negative eigenvalues (numerical noise) are clipped and reported through
    ``min_eigenvalue`` so the caller can decide whether the certificate is
    acceptable.
    """
    gram = 0.5 * (np.asarray(gram, dtype=float) + np.asarray(gram, dtype=float).T)
    eigenvalues, eigenvectors = np.linalg.eigh(gram)
    squares: List[Polynomial] = []
    variables = poly.variables
    basis_polys = [Polynomial(variables, {m: 1.0}) for m in basis]
    for lam, vec in zip(eigenvalues, eigenvectors.T):
        if lam <= 0:
            continue
        component = Polynomial.zero(variables)
        scale = float(np.sqrt(lam))
        for coeff, bp in zip(vec, basis_polys):
            if abs(coeff) > 1e-14:
                component = component + bp * (scale * float(coeff))
        squares.append(component)
    reconstructed = gram_to_polynomial(variables, basis, gram)
    residual = poly - reconstructed
    return SOSDecomposition(
        squares=tuple(squares),
        residual=residual,
        gram=gram,
        basis=tuple(basis),
        min_eigenvalue=float(eigenvalues.min()) if len(eigenvalues) else 0.0,
    )


def project_to_psd(matrix: np.ndarray, floor: float = 0.0) -> np.ndarray:
    """Nearest (Frobenius) PSD matrix, with eigenvalues clipped at ``floor``."""
    matrix = 0.5 * (np.asarray(matrix, dtype=float) + np.asarray(matrix, dtype=float).T)
    eigenvalues, eigenvectors = np.linalg.eigh(matrix)
    clipped = np.clip(eigenvalues, floor, None)
    return (eigenvectors * clipped) @ eigenvectors.T


def check_sos_numerically(poly: Polynomial, num_samples: int = 200,
                          radius: float = 2.0, seed: int = 0) -> float:
    """Minimum sampled value of ``poly`` over random points in a ball.

    This is a falsification aid: a genuinely SOS polynomial can never be
    negative, so a negative sampled value disproves a claimed decomposition.
    """
    rng = np.random.default_rng(seed)
    n = poly.num_variables
    if n == 0:
        return poly.constant_term()
    points = rng.normal(size=(num_samples, n))
    norms = np.linalg.norm(points, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    radii = radius * rng.uniform(size=(num_samples, 1)) ** (1.0 / n)
    points = points / norms * radii
    values = poly.evaluate_many(points)
    return float(values.min())


def gram_residual(poly: Polynomial, gram: np.ndarray, basis: Sequence[Monomial]) -> float:
    """Max coefficient mismatch between ``poly`` and ``z^T Q z``."""
    reconstructed = gram_to_polynomial(poly.variables, basis, gram)
    return (poly - reconstructed).max_abs_coefficient()
