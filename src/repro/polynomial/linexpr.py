"""Affine expressions over scalar decision variables.

The SOS layer builds polynomial identities whose coefficients are *affine*
functions of unknown scalars (Lyapunov coefficients, multiplier coefficients,
level-set radii, ...).  :class:`DecisionVariable` is one such unknown and
:class:`LinExpr` is an affine combination ``sum_k a_k * d_k + constant``.

Keeping this layer strictly affine is what guarantees that coefficient
matching yields *linear* equality constraints, i.e. a semidefinite program
rather than a bilinear matrix inequality.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Tuple, Union

import numpy as np

Number = Union[int, float, np.integer, np.floating]

_COUNTER = itertools.count()


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float, np.integer, np.floating))


@dataclass(frozen=True)
class DecisionVariable:
    """A scalar unknown of an optimisation problem.

    Instances are identified by a globally unique integer id so that two
    variables with the same display name never alias each other.
    """

    name: str
    uid: int = field(default_factory=lambda: next(_COUNTER))

    def __repr__(self) -> str:
        return f"DecisionVariable({self.name}#{self.uid})"

    def __str__(self) -> str:
        return self.name

    # Arithmetic promotes to LinExpr.
    def _as_expr(self) -> "LinExpr":
        return LinExpr({self: 1.0}, 0.0)

    def __add__(self, other):
        return self._as_expr() + other

    def __radd__(self, other):
        return self._as_expr() + other

    def __sub__(self, other):
        return self._as_expr() - other

    def __rsub__(self, other):
        return (-self._as_expr()) + other

    def __mul__(self, other):
        return self._as_expr() * other

    def __rmul__(self, other):
        return self._as_expr() * other

    def __neg__(self):
        return -self._as_expr()


class LinExpr:
    """An affine expression ``sum_k coeffs[d_k] * d_k + constant``."""

    __slots__ = ("coeffs", "constant")

    def __init__(self, coeffs: Optional[Mapping[DecisionVariable, Number]] = None,
                 constant: Number = 0.0):
        cleaned: Dict[DecisionVariable, float] = {}
        if coeffs:
            for var, coeff in coeffs.items():
                fc = float(coeff)
                if fc != 0.0:
                    cleaned[var] = cleaned.get(var, 0.0) + fc
        self.coeffs: Dict[DecisionVariable, float] = {
            v: c for v, c in cleaned.items() if c != 0.0
        }
        self.constant: float = float(constant)

    # -- constructors ------------------------------------------------------
    @classmethod
    def from_constant(cls, value: Number) -> "LinExpr":
        return cls({}, value)

    @classmethod
    def from_variable(cls, variable: DecisionVariable, coefficient: Number = 1.0) -> "LinExpr":
        return cls({variable: coefficient}, 0.0)

    @staticmethod
    def coerce(value: Union["LinExpr", DecisionVariable, Number]) -> "LinExpr":
        if isinstance(value, LinExpr):
            return value
        if isinstance(value, DecisionVariable):
            return LinExpr.from_variable(value)
        if _is_number(value):
            return LinExpr.from_constant(value)
        raise TypeError(f"cannot interpret {value!r} as an affine expression")

    # -- queries -----------------------------------------------------------
    def is_constant(self, tolerance: float = 0.0) -> bool:
        return all(abs(c) <= tolerance for c in self.coeffs.values())

    def variables(self) -> Tuple[DecisionVariable, ...]:
        return tuple(sorted(self.coeffs, key=lambda d: d.uid))

    def coefficient(self, variable: DecisionVariable) -> float:
        return self.coeffs.get(variable, 0.0)

    def evaluate(self, assignment: Mapping[DecisionVariable, float]) -> float:
        total = self.constant
        for var, coeff in self.coeffs.items():
            if var not in assignment:
                raise KeyError(f"no value assigned to {var}")
            total += coeff * float(assignment[var])
        return total

    def __bool__(self) -> bool:
        return bool(self.coeffs) or self.constant != 0.0

    # -- arithmetic ---------------------------------------------------------
    @staticmethod
    def _as_parametric(other):
        """Promote a Polynomial/ParametricPolynomial operand (None otherwise)."""
        from .polynomial import Polynomial
        from .parampoly import ParametricPolynomial

        if isinstance(other, (Polynomial, ParametricPolynomial)):
            return ParametricPolynomial.coerce(other)
        return None

    def __add__(self, other) -> "LinExpr":
        promoted = LinExpr._as_parametric(other)
        if promoted is not None:
            from .parampoly import ParametricPolynomial

            return ParametricPolynomial.coerce(self, promoted.variables) + promoted
        try:
            other_expr = LinExpr.coerce(other)
        except TypeError:
            return NotImplemented
        coeffs = dict(self.coeffs)
        for var, coeff in other_expr.coeffs.items():
            coeffs[var] = coeffs.get(var, 0.0) + coeff
        return LinExpr(coeffs, self.constant + other_expr.constant)

    def __radd__(self, other) -> "LinExpr":
        return self.__add__(other)

    def __neg__(self) -> "LinExpr":
        return LinExpr({v: -c for v, c in self.coeffs.items()}, -self.constant)

    def __sub__(self, other) -> "LinExpr":
        promoted = LinExpr._as_parametric(other)
        if promoted is not None:
            return self.__add__(-promoted)
        try:
            other_expr = LinExpr.coerce(other)
        except TypeError:
            return NotImplemented
        return self.__add__(-other_expr)

    def __rsub__(self, other) -> "LinExpr":
        return (-self).__add__(other)

    def __mul__(self, other) -> "LinExpr":
        promoted = LinExpr._as_parametric(other)
        if promoted is not None:
            return promoted * self
        if _is_number(other):
            scale = float(other)
            return LinExpr({v: c * scale for v, c in self.coeffs.items()}, self.constant * scale)
        other_expr = None
        if isinstance(other, (LinExpr, DecisionVariable)):
            other_expr = LinExpr.coerce(other)
        if other_expr is not None:
            if self.is_constant():
                return other_expr * self.constant
            if other_expr.is_constant():
                return self * other_expr.constant
            raise ValueError(
                "product of two non-constant affine expressions is not affine; "
                "SOS programs must remain linear in the decision variables"
            )
        return NotImplemented

    def __rmul__(self, other) -> "LinExpr":
        return self.__mul__(other)

    def __truediv__(self, other) -> "LinExpr":
        if _is_number(other):
            if float(other) == 0.0:
                raise ZeroDivisionError("division of affine expression by zero")
            return self * (1.0 / float(other))
        return NotImplemented

    # -- display -------------------------------------------------------------
    def __repr__(self) -> str:
        parts = [f"{c:+g}*{v.name}#{v.uid}" for v, c in sorted(self.coeffs.items(), key=lambda kv: kv[0].uid)]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return "LinExpr(" + " ".join(parts) + ")"


def stack_coefficients(expressions: Iterable[LinExpr],
                       variable_index: Mapping[DecisionVariable, int],
                       num_variables: int) -> Tuple[np.ndarray, np.ndarray]:
    """Convert affine expressions to matrix form ``A d + b``.

    Returns ``(A, b)`` where row ``k`` contains the coefficients of the k-th
    expression against the decision variables enumerated by ``variable_index``.
    """
    expressions = list(expressions)
    matrix = np.zeros((len(expressions), num_variables))
    offset = np.zeros(len(expressions))
    for row, expr in enumerate(expressions):
        offset[row] = expr.constant
        for var, coeff in expr.coeffs.items():
            matrix[row, variable_index[var]] = coeff
    return matrix, offset
