"""Dense-coefficient multivariate polynomials with real coefficients.

The :class:`Polynomial` class is the numeric workhorse of the whole library:
hybrid-system flow maps, Lyapunov certificates, level-set functions and escape
certificates are all instances of it.  Coefficients are stored sparsely as a
``{Monomial: float}`` mapping over a fixed :class:`VariableVector`.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from .monomial import Monomial
from .variables import Variable, VariableVector

Number = Union[int, float, np.integer, np.floating]

#: Coefficients with absolute value below this threshold are dropped.
COEFFICIENT_TOLERANCE = 1e-14


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float, np.integer, np.floating))


class Polynomial:
    """A real multivariate polynomial ``sum_k c_k * m_k(x)``.

    Parameters
    ----------
    variables:
        The ordered indeterminates.  All monomial exponent tuples are
        interpreted positionally against this vector.
    coefficients:
        Mapping from :class:`Monomial` (or raw exponent tuples) to real
        coefficients.  Near-zero coefficients are dropped.
    """

    __slots__ = ("variables", "coefficients")

    def __init__(
        self,
        variables: Union[VariableVector, Sequence[Variable]],
        coefficients: Optional[Mapping[Union[Monomial, Tuple[int, ...]], Number]] = None,
    ):
        if not isinstance(variables, VariableVector):
            variables = VariableVector(variables)
        self.variables: VariableVector = variables
        coeffs: Dict[Monomial, float] = {}
        if coefficients:
            n = len(variables)
            for key, value in coefficients.items():
                mono = key if isinstance(key, Monomial) else Monomial(tuple(key))
                if mono.num_variables != n:
                    raise ValueError(
                        f"monomial {mono} has {mono.num_variables} variables, expected {n}"
                    )
                fval = float(value)
                if abs(fval) > COEFFICIENT_TOLERANCE:
                    coeffs[mono] = coeffs.get(mono, 0.0) + fval
        self.coefficients: Dict[Monomial, float] = {
            m: c for m, c in coeffs.items() if abs(c) > COEFFICIENT_TOLERANCE
        }

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero(cls, variables: Union[VariableVector, Sequence[Variable]]) -> "Polynomial":
        return cls(variables, {})

    @classmethod
    def constant(
        cls, variables: Union[VariableVector, Sequence[Variable]], value: Number
    ) -> "Polynomial":
        if not isinstance(variables, VariableVector):
            variables = VariableVector(variables)
        return cls(variables, {Monomial.constant(len(variables)): float(value)})

    @classmethod
    def from_variable(cls, variable: Variable,
                      variables: Optional[VariableVector] = None) -> "Polynomial":
        """The degree-1 polynomial equal to ``variable``."""
        if variables is None:
            variables = VariableVector([variable])
        index = variables.index(variable)
        return cls(variables, {Monomial.unit(index, len(variables)): 1.0})

    @classmethod
    def monomial(cls, variables: VariableVector, exponents: Sequence[int],
                 coefficient: Number = 1.0) -> "Polynomial":
        return cls(variables, {Monomial(tuple(exponents)): coefficient})

    @classmethod
    def from_coefficient_vector(
        cls,
        variables: VariableVector,
        basis: Sequence[Monomial],
        vector: Sequence[Number],
    ) -> "Polynomial":
        """Build ``sum_k vector[k] * basis[k]``."""
        if len(basis) != len(vector):
            raise ValueError("basis and coefficient vector lengths differ")
        return cls(variables, dict(zip(basis, (float(v) for v in vector))))

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def degree(self) -> int:
        if not self.coefficients:
            return 0
        return max(m.degree for m in self.coefficients)

    def is_zero(self, tolerance: float = COEFFICIENT_TOLERANCE) -> bool:
        return all(abs(c) <= tolerance for c in self.coefficients.values())

    def is_constant(self) -> bool:
        return all(m.is_constant() for m in self.coefficients)

    def constant_term(self) -> float:
        return self.coefficients.get(Monomial.constant(self.num_variables), 0.0)

    def coefficient(self, monomial: Union[Monomial, Tuple[int, ...]]) -> float:
        if not isinstance(monomial, Monomial):
            monomial = Monomial(tuple(monomial))
        return self.coefficients.get(monomial, 0.0)

    def monomials(self) -> Tuple[Monomial, ...]:
        return tuple(sorted(self.coefficients, key=Monomial.sort_key))

    def max_abs_coefficient(self) -> float:
        if not self.coefficients:
            return 0.0
        return max(abs(c) for c in self.coefficients.values())

    def __len__(self) -> int:
        return len(self.coefficients)

    # ------------------------------------------------------------------
    # Variable management
    # ------------------------------------------------------------------
    def with_variables(self, variables: VariableVector) -> "Polynomial":
        """Re-express this polynomial over a superset variable vector."""
        if variables == self.variables:
            return self
        mapping = []
        for v in self.variables:
            if v not in variables:
                raise ValueError(f"target variable vector does not contain {v}")
            mapping.append(variables.index(v))
        n_new = len(variables)
        new_coeffs: Dict[Monomial, float] = {}
        for mono, coeff in self.coefficients.items():
            exps = [0] * n_new
            for old_idx, exp in enumerate(mono.exponents):
                exps[mapping[old_idx]] = exp
            new_coeffs[Monomial(tuple(exps))] = new_coeffs.get(Monomial(tuple(exps)), 0.0) + coeff
        return Polynomial(variables, new_coeffs)

    def _coerce(self, other: object) -> Optional["Polynomial"]:
        if isinstance(other, Polynomial):
            if other.variables == self.variables:
                return other
            merged = self.variables.union(other.variables)
            if merged == self.variables:
                return other.with_variables(self.variables)
            return other.with_variables(merged)
        if isinstance(other, Variable):
            if other in self.variables:
                return Polynomial.from_variable(other, self.variables)
            merged = self.variables.union(VariableVector([other]))
            return Polynomial.from_variable(other, merged)
        if _is_number(other):
            return Polynomial.constant(self.variables, other)
        return None

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: object) -> "Polynomial":
        other_poly = self._coerce(other)
        if other_poly is None:
            return NotImplemented
        left = self if other_poly.variables == self.variables else self.with_variables(other_poly.variables)
        coeffs = dict(left.coefficients)
        for mono, coeff in other_poly.coefficients.items():
            coeffs[mono] = coeffs.get(mono, 0.0) + coeff
        return Polynomial(left.variables, coeffs)

    def __radd__(self, other: object) -> "Polynomial":
        return self.__add__(other)

    def __neg__(self) -> "Polynomial":
        return Polynomial(self.variables, {m: -c for m, c in self.coefficients.items()})

    def __sub__(self, other: object) -> "Polynomial":
        other_poly = self._coerce(other)
        if other_poly is None:
            return NotImplemented
        return self.__add__(-other_poly)

    def __rsub__(self, other: object) -> "Polynomial":
        return (-self).__add__(other)

    def __mul__(self, other: object) -> "Polynomial":
        if _is_number(other):
            return Polynomial(
                self.variables, {m: c * float(other) for m, c in self.coefficients.items()}
            )
        other_poly = self._coerce(other)
        if other_poly is None:
            return NotImplemented
        left = self if other_poly.variables == self.variables else self.with_variables(other_poly.variables)
        coeffs: Dict[Monomial, float] = {}
        for m1, c1 in left.coefficients.items():
            for m2, c2 in other_poly.coefficients.items():
                prod = m1 * m2
                coeffs[prod] = coeffs.get(prod, 0.0) + c1 * c2
        return Polynomial(left.variables, coeffs)

    def __rmul__(self, other: object) -> "Polynomial":
        return self.__mul__(other)

    def __truediv__(self, other: object) -> "Polynomial":
        if _is_number(other):
            if other == 0:
                raise ZeroDivisionError("division of polynomial by zero")
            return self * (1.0 / float(other))
        return NotImplemented

    def __pow__(self, exponent: int) -> "Polynomial":
        if not isinstance(exponent, (int, np.integer)) or exponent < 0:
            raise ValueError("polynomial powers must be non-negative integers")
        result = Polynomial.constant(self.variables, 1.0)
        base = self
        e = int(exponent)
        while e > 0:
            if e & 1:
                result = result * base
            base = base * base
            e >>= 1
        return result

    def __eq__(self, other: object) -> bool:
        other_poly = self._coerce(other)
        if other_poly is None:
            return NotImplemented
        return (self - other_poly).is_zero()

    def __hash__(self) -> int:
        items = tuple(sorted(((m.exponents, round(c, 12)) for m, c in self.coefficients.items())))
        return hash((self.variables, items))

    def almost_equal(self, other: "Polynomial", tolerance: float = 1e-9) -> bool:
        diff = self - other
        return diff.max_abs_coefficient() <= tolerance

    # ------------------------------------------------------------------
    # Calculus
    # ------------------------------------------------------------------
    def differentiate(self, variable: Union[Variable, int]) -> "Polynomial":
        index = variable if isinstance(variable, int) else self.variables.index(variable)
        coeffs: Dict[Monomial, float] = {}
        for mono, coeff in self.coefficients.items():
            factor, dmono = mono.differentiate(index)
            if factor:
                coeffs[dmono] = coeffs.get(dmono, 0.0) + coeff * factor
        return Polynomial(self.variables, coeffs)

    def gradient(self) -> Tuple["Polynomial", ...]:
        return tuple(self.differentiate(i) for i in range(self.num_variables))

    def hessian(self) -> Tuple[Tuple["Polynomial", ...], ...]:
        grad = self.gradient()
        return tuple(tuple(g.differentiate(j) for j in range(self.num_variables)) for g in grad)

    def lie_derivative(self, vector_field: Sequence["Polynomial"]) -> "Polynomial":
        """``∇p · f`` along a polynomial vector field ``f``."""
        if len(vector_field) != self.num_variables:
            raise ValueError(
                f"vector field has {len(vector_field)} components, expected {self.num_variables}"
            )
        result = Polynomial.zero(self.variables)
        for i, component in enumerate(vector_field):
            partial = self.differentiate(i)
            if partial.is_zero():
                continue
            result = result + partial * component
        return result

    # ------------------------------------------------------------------
    # Evaluation and substitution
    # ------------------------------------------------------------------
    def __call__(self, *args, **kwargs) -> float:
        if kwargs and not args:
            point = [kwargs[v.name] for v in self.variables]
            return self.evaluate(point)
        if len(args) == 1 and isinstance(args[0], (list, tuple, np.ndarray)):
            return self.evaluate(args[0])
        return self.evaluate(args)

    def evaluate(self, point: Sequence[float]) -> float:
        point = [float(p) for p in point]
        if len(point) != self.num_variables:
            raise ValueError(
                f"point has {len(point)} coordinates, polynomial expects {self.num_variables}"
            )
        total = 0.0
        for mono, coeff in self.coefficients.items():
            total += coeff * mono.evaluate(point)
        return total

    def evaluate_many(self, points: np.ndarray) -> np.ndarray:
        points = np.asarray(points, dtype=float)
        if points.ndim == 1:
            points = points.reshape(1, -1)
        result = np.zeros(points.shape[0])
        for mono, coeff in self.coefficients.items():
            result += coeff * mono.evaluate_many(points)
        return result

    def substitute(self, substitutions: Mapping[Variable, Union[Number, "Polynomial"]]) -> "Polynomial":
        """Substitute variables by numbers or polynomials (composition)."""
        # Express every substitution target over a common variable vector.
        remaining = [v for v in self.variables if v not in substitutions]
        target_vars = VariableVector(remaining) if remaining else None
        poly_subs: Dict[int, Polynomial] = {}
        for var, value in substitutions.items():
            if var not in self.variables:
                continue
            idx = self.variables.index(var)
            if _is_number(value):
                sub_poly = None
                poly_subs[idx] = ("const", float(value))  # type: ignore[assignment]
            else:
                poly_subs[idx] = ("poly", value)  # type: ignore[assignment]

        # Determine the output variable vector: all remaining original vars plus
        # any variables introduced by polynomial substitutions.
        out_vars = VariableVector(remaining) if remaining else VariableVector([])
        for idx, entry in poly_subs.items():
            kind, value = entry  # type: ignore[misc]
            if kind == "poly":
                out_vars = out_vars.union(value.variables)
        if len(out_vars) == 0:
            # Fully numeric substitution: keep one dummy variable-free polynomial by
            # evaluating directly.
            point = []
            for i, v in enumerate(self.variables):
                entry = poly_subs.get(i)
                if entry is None or entry[0] != "const":
                    raise ValueError("substitution does not cover all variables with numbers")
                point.append(entry[1])
            # Represent the result as a constant polynomial over a fresh variable-less vector.
            out_vars = VariableVector([])
            return Polynomial(out_vars, {Monomial(()): self.evaluate(point)})

        result = Polynomial.zero(out_vars)
        # Pre-build per-variable replacement polynomials over out_vars.
        replacements: Dict[int, Polynomial] = {}
        for i, v in enumerate(self.variables):
            entry = poly_subs.get(i)
            if entry is None:
                replacements[i] = Polynomial.from_variable(v, out_vars)
            elif entry[0] == "const":
                replacements[i] = Polynomial.constant(out_vars, entry[1])
            else:
                replacements[i] = entry[1].with_variables(out_vars)

        for mono, coeff in self.coefficients.items():
            term = Polynomial.constant(out_vars, coeff)
            for i, exp in enumerate(mono.exponents):
                if exp:
                    term = term * (replacements[i] ** exp)
            result = result + term
        return result

    def compose(self, mapping: Sequence["Polynomial"]) -> "Polynomial":
        """Compose ``p(g_1(x), ..., g_n(x))`` where ``mapping[i]`` replaces variable i."""
        if len(mapping) != self.num_variables:
            raise ValueError("composition mapping must provide one polynomial per variable")
        return self.substitute(dict(zip(self.variables, mapping)))

    def shift(self, offset: Sequence[float]) -> "Polynomial":
        """Return ``p(x + offset)`` as a polynomial in ``x``."""
        if len(offset) != self.num_variables:
            raise ValueError("offset dimension mismatch")
        mapping = [
            Polynomial.from_variable(v, self.variables) + float(offset[i])
            for i, v in enumerate(self.variables)
        ]
        return self.compose(mapping)

    def scale_variables(self, scales: Sequence[float]) -> "Polynomial":
        """Return ``p(S x)`` where ``S = diag(scales)``."""
        if len(scales) != self.num_variables:
            raise ValueError("scale dimension mismatch")
        mapping = [
            Polynomial.from_variable(v, self.variables) * float(scales[i])
            for i, v in enumerate(self.variables)
        ]
        return self.compose(mapping)

    # ------------------------------------------------------------------
    # Vector form (for solvers)
    # ------------------------------------------------------------------
    def coefficient_vector(self, basis: Sequence[Monomial]) -> np.ndarray:
        """Coefficients against an explicit monomial basis.

        Raises if the polynomial has support outside the basis.
        """
        index = {m: i for i, m in enumerate(basis)}
        vec = np.zeros(len(basis))
        for mono, coeff in self.coefficients.items():
            if mono not in index:
                raise ValueError(f"monomial {mono} not contained in the provided basis")
            vec[index[mono]] = coeff
        return vec

    def truncate(self, tolerance: float) -> "Polynomial":
        """Drop coefficients with magnitude below ``tolerance``."""
        return Polynomial(
            self.variables,
            {m: c for m, c in self.coefficients.items() if abs(c) > tolerance},
        )

    def round_coefficients(self, decimals: int = 12) -> "Polynomial":
        return Polynomial(
            self.variables, {m: round(c, decimals) for m, c in self.coefficients.items()}
        )

    # ------------------------------------------------------------------
    # Quadratic-form helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_quadratic_form(cls, variables: VariableVector, matrix: np.ndarray) -> "Polynomial":
        """Build ``x^T M x`` (matrix is symmetrised)."""
        matrix = np.asarray(matrix, dtype=float)
        n = len(variables)
        if matrix.shape != (n, n):
            raise ValueError(f"matrix shape {matrix.shape} does not match {n} variables")
        matrix = 0.5 * (matrix + matrix.T)
        coeffs: Dict[Monomial, float] = {}
        for i in range(n):
            for j in range(n):
                exps = [0] * n
                exps[i] += 1
                exps[j] += 1
                mono = Monomial(tuple(exps))
                coeffs[mono] = coeffs.get(mono, 0.0) + matrix[i, j]
        return cls(variables, coeffs)

    @classmethod
    def from_affine(cls, variables: VariableVector, linear: Sequence[float],
                    constant: Number = 0.0) -> "Polynomial":
        """Build ``linear · x + constant``."""
        n = len(variables)
        if len(linear) != n:
            raise ValueError("linear coefficient dimension mismatch")
        coeffs: Dict[Monomial, float] = {Monomial.constant(n): float(constant)}
        for i, c in enumerate(linear):
            coeffs[Monomial.unit(i, n)] = float(c)
        return cls(variables, coeffs)

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return f"Polynomial({self.to_string()})"

    def to_string(self, precision: int = 6) -> str:
        if not self.coefficients:
            return "0"
        parts = []
        for mono in self.monomials():
            coeff = self.coefficients[mono]
            mono_str = mono.to_string(self.variables)
            if mono.is_constant():
                term = f"{coeff:.{precision}g}"
            elif math.isclose(coeff, 1.0):
                term = mono_str
            elif math.isclose(coeff, -1.0):
                term = f"-{mono_str}"
            else:
                term = f"{coeff:.{precision}g}*{mono_str}"
            parts.append(term)
        text = " + ".join(parts)
        return text.replace("+ -", "- ")


def polynomial_vector(variables: VariableVector,
                      rows: Iterable[Iterable[float]],
                      constants: Optional[Iterable[float]] = None) -> Tuple[Polynomial, ...]:
    """Build an affine polynomial vector field ``A x + b`` row by row."""
    rows = [list(row) for row in rows]
    consts = list(constants) if constants is not None else [0.0] * len(rows)
    if len(consts) != len(rows):
        raise ValueError("constants length must match number of rows")
    return tuple(
        Polynomial.from_affine(variables, row, const) for row, const in zip(rows, consts)
    )
