"""Array-backed multivariate polynomials with real coefficients.

The :class:`Polynomial` class is the numeric workhorse of the whole library:
hybrid-system flow maps, Lyapunov certificates, level-set functions and escape
certificates are all instances of it.  Terms are stored as an exponent matrix
``E`` of shape ``(m, n)`` (one row per monomial) paired with a coefficient
vector of shape ``(m,)``, so arithmetic, differentiation and (batched)
evaluation are single NumPy passes instead of per-monomial Python loops.  The
historical ``{Monomial: float}`` mapping remains available through the
:attr:`coefficients` view, which is materialised lazily and cached.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from .monomial import Monomial
from .variables import Variable, VariableVector

Number = Union[int, float, np.integer, np.floating]

#: Coefficients with absolute value below this threshold are dropped.
COEFFICIENT_TOLERANCE = 1e-14

_EXPONENT_DTYPE = np.int64


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float, np.integer, np.floating))


def _empty_terms(num_variables: int) -> Tuple[np.ndarray, np.ndarray]:
    return (np.zeros((0, num_variables), dtype=_EXPONENT_DTYPE), np.zeros(0))


def _graded_lex_order(exponents: np.ndarray) -> np.ndarray:
    """Sorting permutation matching :meth:`Monomial.sort_key` (degree, then
    descending exponents left-to-right)."""
    degrees = exponents.sum(axis=1)
    keys = np.vstack([(-exponents[:, ::-1]).T, degrees]) if exponents.shape[1] \
        else degrees.reshape(1, -1)
    return np.lexsort(keys)


def group_exponent_rows(exponents: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Deduplicate exponent rows into graded-lex order.

    Returns ``(unique_rows, inverse)`` where ``unique_rows`` is sorted
    graded-lexicographically and ``inverse[k]`` is the position of input row
    ``k`` in ``unique_rows``.  Shared by term canonicalisation, stacked
    evaluators and the Gram product tables, so the canonical ordering lives in
    exactly one place.
    """
    m, n = exponents.shape
    if m == 0:
        return exponents, np.zeros(0, dtype=np.int64)
    order = _graded_lex_order(exponents)
    sorted_rows = exponents[order]
    new_group = np.empty(m, dtype=bool)
    new_group[0] = True
    if m > 1:
        new_group[1:] = np.any(sorted_rows[1:] != sorted_rows[:-1], axis=1) if n \
            else False
    inverse = np.empty(m, dtype=np.int64)
    inverse[order] = np.cumsum(new_group) - 1
    return sorted_rows[new_group], inverse


def _canonicalize_terms(
    exponents: np.ndarray,
    coefficients: np.ndarray,
    tolerance: float = COEFFICIENT_TOLERANCE,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sort rows graded-lexicographically, merge duplicates, drop near-zeros."""
    if exponents.shape[0] == 0:
        return _empty_terms(exponents.shape[1])
    unique_exps, inverse = group_exponent_rows(exponents)
    merged = np.bincount(inverse, weights=coefficients,
                         minlength=unique_exps.shape[0])
    keep = np.abs(merged) > tolerance
    if keep.all():
        return unique_exps, merged
    return unique_exps[keep], merged[keep]


class Polynomial:
    """A real multivariate polynomial ``sum_k c_k * m_k(x)``.

    Parameters
    ----------
    variables:
        The ordered indeterminates.  All monomial exponent tuples are
        interpreted positionally against this vector.
    coefficients:
        Mapping from :class:`Monomial` (or raw exponent tuples) to real
        coefficients.  Near-zero coefficients are dropped.
    """

    __slots__ = ("variables", "_exponents", "_coefficients", "_coeff_view")

    def __init__(
        self,
        variables: Union[VariableVector, Sequence[Variable]],
        coefficients: Optional[Mapping[Union[Monomial, Tuple[int, ...]], Number]] = None,
    ):
        if not isinstance(variables, VariableVector):
            variables = VariableVector(variables)
        self.variables: VariableVector = variables
        n = len(variables)
        if coefficients:
            rows = np.empty((len(coefficients), n), dtype=_EXPONENT_DTYPE)
            values = np.empty(len(coefficients))
            for k, (key, value) in enumerate(coefficients.items()):
                mono = key if isinstance(key, Monomial) else Monomial(tuple(key))
                if mono.num_variables != n:
                    raise ValueError(
                        f"monomial {mono} has {mono.num_variables} variables, expected {n}"
                    )
                rows[k] = mono.exponents
                values[k] = float(value)
            self._exponents, self._coefficients = _canonicalize_terms(rows, values)
        else:
            self._exponents, self._coefficients = _empty_terms(n)
        self._coeff_view: Optional[Dict[Monomial, float]] = None

    @classmethod
    def _from_arrays(
        cls,
        variables: VariableVector,
        exponents: np.ndarray,
        coefficients: np.ndarray,
        canonical: bool = False,
    ) -> "Polynomial":
        """Internal fast constructor from term arrays (bypasses dict parsing)."""
        poly = cls.__new__(cls)
        poly.variables = variables
        if canonical:
            poly._exponents, poly._coefficients = exponents, coefficients
        else:
            poly._exponents, poly._coefficients = _canonicalize_terms(
                exponents, coefficients)
        poly._coeff_view = None
        return poly

    # ------------------------------------------------------------------
    # Array views
    # ------------------------------------------------------------------
    @property
    def exponent_matrix(self) -> np.ndarray:
        """The ``(m, n)`` integer exponent matrix (one row per term)."""
        return self._exponents

    @property
    def coefficient_array(self) -> np.ndarray:
        """The ``(m,)`` coefficient vector aligned with :attr:`exponent_matrix`."""
        return self._coefficients

    @property
    def coefficients(self) -> Dict[Monomial, float]:
        """The classic ``{Monomial: float}`` view (built lazily, cached)."""
        if self._coeff_view is None:
            self._coeff_view = {
                Monomial(tuple(int(e) for e in row)): float(c)
                for row, c in zip(self._exponents, self._coefficients)
            }
        return self._coeff_view

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero(cls, variables: Union[VariableVector, Sequence[Variable]]) -> "Polynomial":
        if not isinstance(variables, VariableVector):
            variables = VariableVector(variables)
        return cls._from_arrays(variables, *_empty_terms(len(variables)), canonical=True)

    @classmethod
    def constant(
        cls, variables: Union[VariableVector, Sequence[Variable]], value: Number
    ) -> "Polynomial":
        if not isinstance(variables, VariableVector):
            variables = VariableVector(variables)
        n = len(variables)
        fval = float(value)
        if abs(fval) <= COEFFICIENT_TOLERANCE:
            return cls.zero(variables)
        return cls._from_arrays(
            variables,
            np.zeros((1, n), dtype=_EXPONENT_DTYPE),
            np.array([fval]),
            canonical=True,
        )

    @classmethod
    def from_variable(cls, variable: Variable,
                      variables: Optional[VariableVector] = None) -> "Polynomial":
        """The degree-1 polynomial equal to ``variable``."""
        if variables is None:
            variables = VariableVector([variable])
        index = variables.index(variable)
        exps = np.zeros((1, len(variables)), dtype=_EXPONENT_DTYPE)
        exps[0, index] = 1
        return cls._from_arrays(variables, exps, np.array([1.0]), canonical=True)

    @classmethod
    def monomial(cls, variables: VariableVector, exponents: Sequence[int],
                 coefficient: Number = 1.0) -> "Polynomial":
        return cls(variables, {Monomial(tuple(exponents)): coefficient})

    @classmethod
    def from_coefficient_vector(
        cls,
        variables: VariableVector,
        basis: Sequence[Monomial],
        vector: Sequence[Number],
    ) -> "Polynomial":
        """Build ``sum_k vector[k] * basis[k]``."""
        if len(basis) != len(vector):
            raise ValueError("basis and coefficient vector lengths differ")
        exps = np.array([m.exponents for m in basis], dtype=_EXPONENT_DTYPE).reshape(
            len(basis), len(variables))
        return cls._from_arrays(variables, exps, np.asarray(vector, dtype=float).copy())

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def degree(self) -> int:
        if self._exponents.shape[0] == 0:
            return 0
        return int(self._exponents.sum(axis=1).max())

    def is_zero(self, tolerance: float = COEFFICIENT_TOLERANCE) -> bool:
        if self._coefficients.size == 0:
            return True
        return bool(np.all(np.abs(self._coefficients) <= tolerance))

    def is_constant(self) -> bool:
        return self.degree == 0

    def constant_term(self) -> float:
        if self._exponents.shape[0] == 0:
            return 0.0
        mask = self._exponents.sum(axis=1) == 0
        if not mask.any():
            return 0.0
        return float(self._coefficients[mask][0])

    def coefficient(self, monomial: Union[Monomial, Tuple[int, ...]]) -> float:
        if not isinstance(monomial, Monomial):
            monomial = Monomial(tuple(monomial))
        return self.coefficients.get(monomial, 0.0)

    def monomials(self) -> Tuple[Monomial, ...]:
        # Terms are already stored in graded-lex order.
        return tuple(self.coefficients)

    def max_abs_coefficient(self) -> float:
        if self._coefficients.size == 0:
            return 0.0
        return float(np.abs(self._coefficients).max())

    def __len__(self) -> int:
        return self._coefficients.shape[0]

    # ------------------------------------------------------------------
    # Variable management
    # ------------------------------------------------------------------
    def with_variables(self, variables: VariableVector) -> "Polynomial":
        """Re-express this polynomial over a superset variable vector."""
        if variables == self.variables:
            return self
        mapping = []
        for v in self.variables:
            if v not in variables:
                raise ValueError(f"target variable vector does not contain {v}")
            mapping.append(variables.index(v))
        new_exps = np.zeros((self._exponents.shape[0], len(variables)),
                            dtype=_EXPONENT_DTYPE)
        if mapping:
            new_exps[:, mapping] = self._exponents
        return Polynomial._from_arrays(variables, new_exps, self._coefficients.copy())

    def _coerce(self, other: object) -> Optional["Polynomial"]:
        if isinstance(other, Polynomial):
            if other.variables == self.variables:
                return other
            merged = self.variables.union(other.variables)
            if merged == self.variables:
                return other.with_variables(self.variables)
            return other.with_variables(merged)
        if isinstance(other, Variable):
            if other in self.variables:
                return Polynomial.from_variable(other, self.variables)
            merged = self.variables.union(VariableVector([other]))
            return Polynomial.from_variable(other, merged)
        if _is_number(other):
            return Polynomial.constant(self.variables, other)
        return None

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: object) -> "Polynomial":
        other_poly = self._coerce(other)
        if other_poly is None:
            return NotImplemented
        left = self if other_poly.variables == self.variables else self.with_variables(other_poly.variables)
        return Polynomial._from_arrays(
            left.variables,
            np.vstack([left._exponents, other_poly._exponents]),
            np.concatenate([left._coefficients, other_poly._coefficients]),
        )

    def __radd__(self, other: object) -> "Polynomial":
        return self.__add__(other)

    def __neg__(self) -> "Polynomial":
        return Polynomial._from_arrays(
            self.variables, self._exponents, -self._coefficients, canonical=True)

    def __sub__(self, other: object) -> "Polynomial":
        other_poly = self._coerce(other)
        if other_poly is None:
            return NotImplemented
        return self.__add__(-other_poly)

    def __rsub__(self, other: object) -> "Polynomial":
        return (-self).__add__(other)

    def __mul__(self, other: object) -> "Polynomial":
        if _is_number(other):
            scale = float(other)
            scaled = self._coefficients * scale
            keep = np.abs(scaled) > COEFFICIENT_TOLERANCE
            if keep.all():
                return Polynomial._from_arrays(
                    self.variables, self._exponents, scaled, canonical=True)
            return Polynomial._from_arrays(
                self.variables, self._exponents[keep], scaled[keep], canonical=True)
        other_poly = self._coerce(other)
        if other_poly is None:
            return NotImplemented
        left = self if other_poly.variables == self.variables else self.with_variables(other_poly.variables)
        m1 = left._exponents.shape[0]
        m2 = other_poly._exponents.shape[0]
        if m1 == 0 or m2 == 0:
            return Polynomial.zero(left.variables)
        prod_exps = (left._exponents[:, None, :] + other_poly._exponents[None, :, :]
                     ).reshape(m1 * m2, -1)
        prod_coeffs = np.multiply.outer(left._coefficients,
                                        other_poly._coefficients).ravel()
        return Polynomial._from_arrays(left.variables, prod_exps, prod_coeffs)

    def __rmul__(self, other: object) -> "Polynomial":
        return self.__mul__(other)

    def __truediv__(self, other: object) -> "Polynomial":
        if _is_number(other):
            if other == 0:
                raise ZeroDivisionError("division of polynomial by zero")
            return self * (1.0 / float(other))
        return NotImplemented

    def __pow__(self, exponent: int) -> "Polynomial":
        if not isinstance(exponent, (int, np.integer)) or exponent < 0:
            raise ValueError("polynomial powers must be non-negative integers")
        result = Polynomial.constant(self.variables, 1.0)
        base = self
        e = int(exponent)
        while e > 0:
            if e & 1:
                result = result * base
            base = base * base
            e >>= 1
        return result

    def __eq__(self, other: object) -> bool:
        other_poly = self._coerce(other)
        if other_poly is None:
            return NotImplemented
        return (self - other_poly).is_zero()

    def __hash__(self) -> int:
        items = tuple(sorted(((m.exponents, round(c, 12)) for m, c in self.coefficients.items())))
        return hash((self.variables, items))

    def almost_equal(self, other: "Polynomial", tolerance: float = 1e-9) -> bool:
        diff = self - other
        return diff.max_abs_coefficient() <= tolerance

    # ------------------------------------------------------------------
    # Calculus
    # ------------------------------------------------------------------
    def differentiate(self, variable: Union[Variable, int]) -> "Polynomial":
        index = variable if isinstance(variable, int) else self.variables.index(variable)
        powers = self._exponents[:, index]
        keep = powers > 0
        if not keep.any():
            return Polynomial.zero(self.variables)
        new_exps = self._exponents[keep].copy()
        new_exps[:, index] -= 1
        new_coeffs = self._coefficients[keep] * powers[keep]
        return Polynomial._from_arrays(self.variables, new_exps, new_coeffs)

    def gradient(self) -> Tuple["Polynomial", ...]:
        return tuple(self.differentiate(i) for i in range(self.num_variables))

    def hessian(self) -> Tuple[Tuple["Polynomial", ...], ...]:
        grad = self.gradient()
        return tuple(tuple(g.differentiate(j) for j in range(self.num_variables)) for g in grad)

    def lie_derivative(self, vector_field: Sequence["Polynomial"]) -> "Polynomial":
        """``∇p · f`` along a polynomial vector field ``f``."""
        if len(vector_field) != self.num_variables:
            raise ValueError(
                f"vector field has {len(vector_field)} components, expected {self.num_variables}"
            )
        result = Polynomial.zero(self.variables)
        for i, component in enumerate(vector_field):
            partial = self.differentiate(i)
            if partial.is_zero():
                continue
            result = result + partial * component
        return result

    # ------------------------------------------------------------------
    # Evaluation and substitution
    # ------------------------------------------------------------------
    def __call__(self, *args, **kwargs) -> float:
        if kwargs and not args:
            point = [kwargs[v.name] for v in self.variables]
            return self.evaluate(point)
        if len(args) == 1 and isinstance(args[0], (list, tuple, np.ndarray)):
            return self.evaluate(args[0])
        return self.evaluate(args)

    def evaluate(self, point: Sequence[float]) -> float:
        point = np.asarray(point, dtype=float).ravel()
        if point.shape[0] != self.num_variables:
            raise ValueError(
                f"point has {point.shape[0]} coordinates, polynomial expects {self.num_variables}"
            )
        if self._coefficients.size == 0:
            return 0.0
        return float(np.prod(point ** self._exponents, axis=1) @ self._coefficients)

    def evaluate_many(self, points: np.ndarray) -> np.ndarray:
        """Evaluate at an ``(N, n)`` batch of points in one vectorised pass."""
        points = np.asarray(points, dtype=float)
        if points.ndim == 1:
            points = points.reshape(1, -1)
        if points.shape[1] != self.num_variables:
            raise ValueError("point dimension mismatch")
        if self._coefficients.size == 0:
            return np.zeros(points.shape[0])
        powers = np.prod(points[:, None, :] ** self._exponents[None, :, :], axis=2)
        return powers @ self._coefficients

    def substitute(self, substitutions: Mapping[Variable, Union[Number, "Polynomial"]]) -> "Polynomial":
        """Substitute variables by numbers or polynomials (composition)."""
        # Express every substitution target over a common variable vector.
        remaining = [v for v in self.variables if v not in substitutions]
        poly_subs: Dict[int, Tuple[str, object]] = {}
        for var, value in substitutions.items():
            if var not in self.variables:
                continue
            idx = self.variables.index(var)
            if _is_number(value):
                poly_subs[idx] = ("const", float(value))
            else:
                poly_subs[idx] = ("poly", value)

        # Determine the output variable vector: all remaining original vars plus
        # any variables introduced by polynomial substitutions.
        out_vars = VariableVector(remaining) if remaining else VariableVector([])
        for idx, entry in poly_subs.items():
            kind, value = entry
            if kind == "poly":
                out_vars = out_vars.union(value.variables)
        if len(out_vars) == 0:
            # Fully numeric substitution: keep one dummy variable-free polynomial by
            # evaluating directly.
            point = []
            for i, v in enumerate(self.variables):
                entry = poly_subs.get(i)
                if entry is None or entry[0] != "const":
                    raise ValueError("substitution does not cover all variables with numbers")
                point.append(entry[1])
            # Represent the result as a constant polynomial over a fresh variable-less vector.
            out_vars = VariableVector([])
            return Polynomial(out_vars, {Monomial(()): self.evaluate(point)})

        result = Polynomial.zero(out_vars)
        # Pre-build per-variable replacement polynomials over out_vars.
        replacements: Dict[int, Polynomial] = {}
        for i, v in enumerate(self.variables):
            entry = poly_subs.get(i)
            if entry is None:
                replacements[i] = Polynomial.from_variable(v, out_vars)
            elif entry[0] == "const":
                replacements[i] = Polynomial.constant(out_vars, entry[1])
            else:
                replacements[i] = entry[1].with_variables(out_vars)

        for mono, coeff in self.coefficients.items():
            term = Polynomial.constant(out_vars, coeff)
            for i, exp in enumerate(mono.exponents):
                if exp:
                    term = term * (replacements[i] ** exp)
            result = result + term
        return result

    def compose(self, mapping: Sequence["Polynomial"]) -> "Polynomial":
        """Compose ``p(g_1(x), ..., g_n(x))`` where ``mapping[i]`` replaces variable i."""
        if len(mapping) != self.num_variables:
            raise ValueError("composition mapping must provide one polynomial per variable")
        return self.substitute(dict(zip(self.variables, mapping)))

    def shift(self, offset: Sequence[float]) -> "Polynomial":
        """Return ``p(x + offset)`` as a polynomial in ``x``."""
        if len(offset) != self.num_variables:
            raise ValueError("offset dimension mismatch")
        mapping = [
            Polynomial.from_variable(v, self.variables) + float(offset[i])
            for i, v in enumerate(self.variables)
        ]
        return self.compose(mapping)

    def scale_variables(self, scales: Sequence[float]) -> "Polynomial":
        """Return ``p(S x)`` where ``S = diag(scales)``."""
        if len(scales) != self.num_variables:
            raise ValueError("scale dimension mismatch")
        mapping = [
            Polynomial.from_variable(v, self.variables) * float(scales[i])
            for i, v in enumerate(self.variables)
        ]
        return self.compose(mapping)

    # ------------------------------------------------------------------
    # Vector form (for solvers)
    # ------------------------------------------------------------------
    def coefficient_vector(self, basis: Sequence[Monomial]) -> np.ndarray:
        """Coefficients against an explicit monomial basis.

        Raises if the polynomial has support outside the basis.
        """
        index = {m: i for i, m in enumerate(basis)}
        vec = np.zeros(len(basis))
        for mono, coeff in self.coefficients.items():
            if mono not in index:
                raise ValueError(f"monomial {mono} not contained in the provided basis")
            vec[index[mono]] = coeff
        return vec

    def truncate(self, tolerance: float) -> "Polynomial":
        """Drop coefficients with magnitude below ``tolerance``."""
        keep = np.abs(self._coefficients) > tolerance
        return Polynomial._from_arrays(
            self.variables, self._exponents[keep], self._coefficients[keep],
            canonical=True)

    def round_coefficients(self, decimals: int = 12) -> "Polynomial":
        return Polynomial._from_arrays(
            self.variables, self._exponents, np.round(self._coefficients, decimals))

    # ------------------------------------------------------------------
    # Quadratic-form helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_quadratic_form(cls, variables: VariableVector, matrix: np.ndarray) -> "Polynomial":
        """Build ``x^T M x`` (matrix is symmetrised)."""
        matrix = np.asarray(matrix, dtype=float)
        n = len(variables)
        if matrix.shape != (n, n):
            raise ValueError(f"matrix shape {matrix.shape} does not match {n} variables")
        matrix = 0.5 * (matrix + matrix.T)
        ii, jj = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
        exps = np.zeros((n * n, n), dtype=_EXPONENT_DTYPE)
        flat = np.arange(n * n)
        np.add.at(exps, (flat, ii.ravel()), 1)
        np.add.at(exps, (flat, jj.ravel()), 1)
        return cls._from_arrays(variables, exps, matrix.ravel().copy())

    @classmethod
    def from_affine(cls, variables: VariableVector, linear: Sequence[float],
                    constant: Number = 0.0) -> "Polynomial":
        """Build ``linear · x + constant``."""
        n = len(variables)
        if len(linear) != n:
            raise ValueError("linear coefficient dimension mismatch")
        exps = np.vstack([np.zeros((1, n), dtype=_EXPONENT_DTYPE),
                          np.eye(n, dtype=_EXPONENT_DTYPE)])
        coeffs = np.concatenate([[float(constant)], np.asarray(linear, dtype=float)])
        return cls._from_arrays(variables, exps, coeffs)

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return f"Polynomial({self.to_string()})"

    def to_string(self, precision: int = 6) -> str:
        if not self.coefficients:
            return "0"
        parts = []
        for mono in self.monomials():
            coeff = self.coefficients[mono]
            mono_str = mono.to_string(self.variables)
            if mono.is_constant():
                term = f"{coeff:.{precision}g}"
            elif math.isclose(coeff, 1.0):
                term = mono_str
            elif math.isclose(coeff, -1.0):
                term = f"-{mono_str}"
            else:
                term = f"{coeff:.{precision}g}*{mono_str}"
            parts.append(term)
        text = " + ".join(parts)
        return text.replace("+ -", "- ")


class PolynomialStack:
    """Several polynomials over shared variables, evaluated in one array pass.

    The stack merges the exponent rows of all component polynomials into one
    ``(M, n)`` matrix and a ``(k, M)`` coefficient matrix, so evaluating a
    whole polynomial vector field (or a set of level-set functions) at ``N``
    points costs a single ``(N, M) @ (M, k)`` product instead of ``k``
    separate dictionary walks.
    """

    __slots__ = ("variables", "_exponents", "_coeff_matrix")

    def __init__(self, polynomials: Sequence[Polynomial],
                 variables: Optional[VariableVector] = None):
        polynomials = list(polynomials)
        if not polynomials:
            raise ValueError("PolynomialStack needs at least one polynomial")
        if variables is None:
            variables = polynomials[0].variables
            for poly in polynomials[1:]:
                variables = variables.union(poly.variables)
        aligned = [p.with_variables(variables) for p in polynomials]
        self.variables = variables
        n = len(variables)
        stacked = np.vstack([p.exponent_matrix for p in aligned]) if aligned \
            else np.zeros((0, n), dtype=_EXPONENT_DTYPE)
        if stacked.shape[0] == 0:
            self._exponents = np.zeros((1, n), dtype=_EXPONENT_DTYPE)
            self._coeff_matrix = np.zeros((len(aligned), 1))
            return
        unique, inverse = group_exponent_rows(stacked)
        self._exponents = unique
        self._coeff_matrix = np.zeros((len(aligned), unique.shape[0]))
        offset = 0
        for k, poly in enumerate(aligned):
            count = poly.exponent_matrix.shape[0]
            self._coeff_matrix[k, inverse[offset:offset + count]] = \
                poly.coefficient_array
            offset += count

    @property
    def num_polynomials(self) -> int:
        return self._coeff_matrix.shape[0]

    def evaluate(self, point: Sequence[float]) -> np.ndarray:
        """Values of all stacked polynomials at one point, shape ``(k,)``."""
        point = np.asarray(point, dtype=float).ravel()
        if point.shape[0] != len(self.variables):
            raise ValueError(
                f"point has {point.shape[0]} coordinates, stack expects {len(self.variables)}"
            )
        return self._coeff_matrix @ np.prod(point ** self._exponents, axis=1)

    def evaluate_many(self, points: np.ndarray) -> np.ndarray:
        """Values at an ``(N, n)`` batch of points, shape ``(N, k)``."""
        points = np.asarray(points, dtype=float)
        if points.ndim == 1:
            points = points.reshape(1, -1)
        if points.shape[1] != len(self.variables):
            raise ValueError("point dimension mismatch")
        powers = np.prod(points[:, None, :] ** self._exponents[None, :, :], axis=2)
        return powers @ self._coeff_matrix.T


def polynomial_vector(variables: VariableVector,
                      rows: Iterable[Iterable[float]],
                      constants: Optional[Iterable[float]] = None) -> Tuple[Polynomial, ...]:
    """Build an affine polynomial vector field ``A x + b`` row by row."""
    rows = [list(row) for row in rows]
    consts = list(constants) if constants is not None else [0.0] * len(rows)
    if len(consts) != len(rows):
        raise ValueError("constants length must match number of rows")
    return tuple(
        Polynomial.from_affine(variables, row, const) for row, const in zip(rows, consts)
    )
