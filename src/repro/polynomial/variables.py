"""Symbolic variables for multivariate polynomials.

A :class:`Variable` is an immutable named symbol.  Polynomials are expressed
over an ordered tuple of variables (a :class:`VariableVector`), and monomials
store exponents positionally with respect to that ordering, so variable
identity (by name) is the only piece of global state needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple


@dataclass(frozen=True, order=True)
class Variable:
    """An immutable, named polynomial indeterminate.

    Two variables with the same name compare equal; ordering is lexicographic
    by name so that variable tuples have a canonical order.
    """

    name: str

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError("variable name must be a non-empty string")

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    def __str__(self) -> str:
        return self.name

    # The polynomial module gives Variables arithmetic by converting them to
    # Polynomial instances lazily (to avoid an import cycle at module load).
    def _as_polynomial(self):
        from .polynomial import Polynomial

        return Polynomial.from_variable(self)

    def __add__(self, other):
        return self._as_polynomial() + other

    def __radd__(self, other):
        return self._as_polynomial() + other

    def __sub__(self, other):
        return self._as_polynomial() - other

    def __rsub__(self, other):
        return (-self._as_polynomial()) + other

    def __mul__(self, other):
        return self._as_polynomial() * other

    def __rmul__(self, other):
        return self._as_polynomial() * other

    def __neg__(self):
        return -self._as_polynomial()

    def __pow__(self, exponent: int):
        return self._as_polynomial() ** exponent


class VariableVector(Sequence[Variable]):
    """An ordered, duplicate-free tuple of :class:`Variable` objects.

    The vector defines the positional meaning of monomial exponent tuples.
    """

    __slots__ = ("_variables", "_index")

    def __init__(self, variables: Iterable[Variable]):
        vars_tuple = tuple(variables)
        names = [v.name for v in vars_tuple]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate variable names in vector: {names}")
        self._variables: Tuple[Variable, ...] = vars_tuple
        self._index = {v: i for i, v in enumerate(vars_tuple)}

    @classmethod
    def from_names(cls, *names: str) -> "VariableVector":
        return cls(Variable(name) for name in names)

    def index(self, variable: Variable) -> int:  # type: ignore[override]
        try:
            return self._index[variable]
        except KeyError as exc:
            raise KeyError(f"{variable} is not in this variable vector") from exc

    def __contains__(self, item: object) -> bool:
        return item in self._index

    def __len__(self) -> int:
        return len(self._variables)

    def __iter__(self) -> Iterator[Variable]:
        return iter(self._variables)

    def __getitem__(self, item):
        result = self._variables[item]
        if isinstance(item, slice):
            return VariableVector(result)
        return result

    def __eq__(self, other: object) -> bool:
        if isinstance(other, VariableVector):
            return self._variables == other._variables
        if isinstance(other, tuple):
            return self._variables == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._variables)

    def __repr__(self) -> str:
        return f"VariableVector({', '.join(v.name for v in self._variables)})"

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(v.name for v in self._variables)

    def union(self, other: "VariableVector") -> "VariableVector":
        """Ordered union: self's variables followed by new ones from ``other``."""
        merged = list(self._variables)
        for v in other:
            if v not in self._index:
                merged.append(v)
        return VariableVector(merged)


def make_variables(*names: str) -> Tuple[Variable, ...]:
    """Convenience constructor: ``x, y = make_variables("x", "y")``."""
    return tuple(Variable(name) for name in names)
