"""Lightweight library-wide logging helpers.

The library never prints unless asked: modules obtain a logger through
:func:`get_logger` and callers opt into console output with
:func:`enable_console_logging` (the benchmark harness does this).
"""

from __future__ import annotations

import logging
from typing import Optional

_ROOT_NAME = "repro"


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A child logger of the library root (``repro``)."""
    if name is None:
        return logging.getLogger(_ROOT_NAME)
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def enable_console_logging(level: int = logging.INFO) -> None:
    """Attach a simple console handler to the library root logger (idempotent)."""
    logger = logging.getLogger(_ROOT_NAME)
    logger.setLevel(level)
    has_console = any(isinstance(h, logging.StreamHandler) for h in logger.handlers)
    if not has_console:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter("[%(name)s] %(levelname)s: %(message)s"))
        logger.addHandler(handler)


def disable_console_logging() -> None:
    logger = logging.getLogger(_ROOT_NAME)
    for handler in list(logger.handlers):
        if isinstance(handler, logging.StreamHandler):
            logger.removeHandler(handler)
