"""Closed-interval arithmetic for uncertain circuit parameters.

Table 1 of the paper specifies every CP PLL parameter as a closed interval
(e.g. ``C1 ∈ [1.98, 2.2] pF``).  The verification conditions quantify over
these intervals; the behavioural simulator samples them.  This module keeps
that bookkeeping in one place.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple, Union

import numpy as np

Number = Union[int, float]


@dataclass(frozen=True)
class Interval:
    """A non-empty closed interval ``[lower, upper]``."""

    lower: float
    upper: float

    def __post_init__(self) -> None:
        if math.isnan(self.lower) or math.isnan(self.upper):
            raise ValueError("interval bounds must not be NaN")
        if self.lower > self.upper:
            raise ValueError(f"empty interval: [{self.lower}, {self.upper}]")
        object.__setattr__(self, "lower", float(self.lower))
        object.__setattr__(self, "upper", float(self.upper))

    # -- constructors -------------------------------------------------------
    @classmethod
    def point(cls, value: Number) -> "Interval":
        return cls(float(value), float(value))

    @classmethod
    def from_center(cls, center: Number, half_width: Number) -> "Interval":
        if half_width < 0:
            raise ValueError("half width must be non-negative")
        return cls(float(center) - float(half_width), float(center) + float(half_width))

    @classmethod
    def coerce(cls, value: Union["Interval", Number, Tuple[Number, Number]]) -> "Interval":
        if isinstance(value, Interval):
            return value
        if isinstance(value, (tuple, list)) and len(value) == 2:
            return cls(float(value[0]), float(value[1]))
        return cls.point(float(value))

    # -- queries -------------------------------------------------------------
    @property
    def center(self) -> float:
        return 0.5 * (self.lower + self.upper)

    @property
    def width(self) -> float:
        return self.upper - self.lower

    @property
    def radius(self) -> float:
        return 0.5 * self.width

    def is_degenerate(self, tolerance: float = 0.0) -> bool:
        return self.width <= tolerance

    def contains(self, value: Number, tolerance: float = 0.0) -> bool:
        return self.lower - tolerance <= float(value) <= self.upper + tolerance

    def contains_interval(self, other: "Interval") -> bool:
        return self.lower <= other.lower and other.upper <= self.upper

    def intersects(self, other: "Interval") -> bool:
        return self.lower <= other.upper and other.lower <= self.upper

    def clamp(self, value: Number) -> float:
        return min(max(float(value), self.lower), self.upper)

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        return rng.uniform(self.lower, self.upper, size=size)

    def endpoints(self) -> Tuple[float, float]:
        return (self.lower, self.upper)

    def linspace(self, count: int) -> np.ndarray:
        return np.linspace(self.lower, self.upper, count)

    # -- arithmetic ------------------------------------------------------------
    def __add__(self, other: Union["Interval", Number]) -> "Interval":
        other = Interval.coerce(other)
        return Interval(self.lower + other.lower, self.upper + other.upper)

    def __radd__(self, other: Number) -> "Interval":
        return self.__add__(other)

    def __neg__(self) -> "Interval":
        return Interval(-self.upper, -self.lower)

    def __sub__(self, other: Union["Interval", Number]) -> "Interval":
        return self.__add__(-Interval.coerce(other))

    def __rsub__(self, other: Number) -> "Interval":
        return (-self).__add__(other)

    def __mul__(self, other: Union["Interval", Number]) -> "Interval":
        other = Interval.coerce(other)
        candidates = [self.lower * other.lower, self.lower * other.upper,
                      self.upper * other.lower, self.upper * other.upper]
        return Interval(min(candidates), max(candidates))

    def __rmul__(self, other: Number) -> "Interval":
        return self.__mul__(other)

    def reciprocal(self) -> "Interval":
        if self.lower <= 0.0 <= self.upper:
            raise ZeroDivisionError(f"interval {self} contains zero")
        return Interval(1.0 / self.upper, 1.0 / self.lower)

    def __truediv__(self, other: Union["Interval", Number]) -> "Interval":
        return self.__mul__(Interval.coerce(other).reciprocal())

    def __rtruediv__(self, other: Number) -> "Interval":
        return Interval.coerce(other).__mul__(self.reciprocal())

    def scaled(self, factor: Number) -> "Interval":
        return self * float(factor)

    # -- display -----------------------------------------------------------------
    def __iter__(self) -> Iterator[float]:
        return iter((self.lower, self.upper))

    def __str__(self) -> str:
        return f"[{self.lower:g}, {self.upper:g}]"


def interval_vertices(intervals: Sequence[Interval]) -> Iterator[Tuple[float, ...]]:
    """All corner points of a box of intervals (2^n vertices)."""
    if not intervals:
        yield ()
        return
    first, rest = intervals[0], intervals[1:]
    for tail in interval_vertices(rest):
        yield (first.lower,) + tail
        if not first.is_degenerate():
            yield (first.upper,) + tail


def box_center(intervals: Sequence[Interval]) -> Tuple[float, ...]:
    return tuple(iv.center for iv in intervals)


def sample_box_parameters(intervals: Sequence[Interval], rng: np.random.Generator) -> Tuple[float, ...]:
    return tuple(float(iv.sample(rng, 1)[0]) for iv in intervals)
