"""Shared utilities: interval arithmetic and logging."""

from .intervals import (
    Interval,
    box_center,
    interval_vertices,
    sample_box_parameters,
)
from .logging import disable_console_logging, enable_console_logging, get_logger

__all__ = [
    "Interval",
    "interval_vertices",
    "box_center",
    "sample_box_parameters",
    "get_logger",
    "enable_console_logging",
    "disable_console_logging",
]
