"""Declarative scenario registry.

A *scenario* is a named, fully specified verification workload: a hybrid (or
continuous) system, certificate degrees, solver options and the outcome the
maintainers expect the pipeline to reach.  Scenarios are registered with the
:func:`register_scenario` decorator at import time and consumed by the
verification engine and the ``python -m repro`` CLI::

    @register_scenario(
        name="my_system",
        description="…",
        certificate_degree=2,
        expected="verified",
    )
    def _build(spec: ScenarioSpec) -> ScenarioProblem:
        return ScenarioProblem(...)

The builder receives its own spec so declarative knobs (degrees, solver
settings) stay in one place and the engine can rebuild problems from the name
alone inside worker processes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Tuple

from ..sdp import RELAXATIONS
from .problem import ScenarioProblem

#: Allowed values of :attr:`ScenarioSpec.expected`.
EXPECTED_OUTCOMES = ("verified", "property_one", "inconclusive", "any")


@dataclass(frozen=True)
class ScenarioSpec:
    """Declarative description of one verification workload.

    Attributes
    ----------
    name:
        Registry key; also the CLI argument of ``python -m repro verify``.
    description:
        One-line human summary shown by ``python -m repro list``.
    builder:
        Callable producing the :class:`~repro.scenarios.problem.ScenarioProblem`;
        invoked lazily (building compiles polynomials, so listing stays cheap).
    certificate_degree / multiplier_degree:
        Headline SOS degrees; the builder threads them into the stage options.
    solver_settings:
        Baseline conic-solver settings shared by every stage of the scenario.
    expected:
        Outcome the registry promises: ``"verified"`` (both properties),
        ``"property_one"`` (attractive invariant only), ``"inconclusive"``
        (known-hard workload) or ``"any"`` (exploratory).
    relaxation:
        Gram-cone relaxation of the certificate pipeline: ``"dsos"``,
        ``"sdsos"``, ``"chordal"``, ``"sos"`` (default) or ``"auto"``
        (escalation ladder).
        Propagated into the built problem's stage options; the engine/CLI
        ``--relaxation`` override wins over this registered default.
    tags:
        Free-form labels (``"pll"``, ``"power"``, ``"continuous"``, …).
    fast:
        Marks scenarios cheap enough for CI smoke runs and warm-cache tests.
    sweep_axes:
        Declared numeric parameter axes, mapping axis name to its nominal
        value (``{"mu": 1.0}``).  Only declared axes may be overridden via
        :meth:`with_parameters` — the path behind ``verify --param`` and the
        ``repro.sweep`` families.  An empty mapping means the scenario is a
        fixed point in parameter space.
    parameters:
        Active overrides for this spec instance (empty on the registered
        spec; populated by :meth:`with_parameters`).  Builders read effective
        values through :meth:`parameter`.
    """

    name: str
    description: str
    builder: Callable[["ScenarioSpec"], ScenarioProblem]
    certificate_degree: int = 2
    multiplier_degree: int = 2
    solver_settings: Mapping[str, object] = field(default_factory=dict)
    expected: str = "verified"
    relaxation: str = "sos"
    tags: Tuple[str, ...] = ()
    fast: bool = False
    sweep_axes: Mapping[str, float] = field(default_factory=dict)
    parameters: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.expected not in EXPECTED_OUTCOMES:
            raise ValueError(
                f"scenario {self.name!r}: expected outcome {self.expected!r} "
                f"not in {EXPECTED_OUTCOMES}")
        if self.relaxation not in RELAXATIONS:
            raise ValueError(
                f"scenario {self.name!r}: relaxation {self.relaxation!r} "
                f"not in {RELAXATIONS}")

    def parameter(self, name: str, default: Optional[float] = None) -> float:
        """Effective value of a parameter axis: override > nominal > default.

        Builders call this for every swept knob so the same builder serves
        the registered nominal scenario and every point of a sweep family.
        """
        if name in self.parameters:
            return float(self.parameters[name])
        if name in self.sweep_axes:
            return float(self.sweep_axes[name])
        if default is not None:
            return float(default)
        raise KeyError(
            f"scenario {self.name!r} declares no axis {name!r} and the "
            f"builder gave no default")

    def with_parameters(self, params: Mapping[str, float]) -> "ScenarioSpec":
        """A copy of this spec with parameter overrides applied.

        Every key must be a declared sweep axis — overriding an axis the
        builder would silently ignore is an error, not a no-op.
        """
        if not params:
            return self
        unknown = sorted(set(params) - set(self.sweep_axes))
        if unknown:
            declared = sorted(self.sweep_axes) or ["<none>"]
            raise ValueError(
                f"scenario {self.name!r} has no sweep axes {unknown}; "
                f"declared axes: {declared}")
        merged = dict(self.parameters)
        merged.update({key: float(value) for key, value in params.items()})
        return dataclasses.replace(self, parameters=merged)

    def build(self, relaxation: Optional[str] = None,
              backend: Optional[str] = None,
              params: Optional[Mapping[str, float]] = None) -> ScenarioProblem:
        """Construct the scenario's verification problem.

        ``relaxation`` overrides this spec's registered Gram-cone relaxation
        (the engine/CLI ``--relaxation`` flag and session defaults arrive
        here); ``backend`` forces a stage-level solver backend onto every
        pipeline stage (the usual way to select a backend is the session's
        solve context, which needs no option rewriting — this override exists
        for workloads that must pin the backend regardless of context);
        ``params`` overrides declared sweep axes (``verify --param`` and the
        sweep planner arrive here).
        """
        spec = self.with_parameters(params) if params else self
        problem = spec.builder(spec)
        problem.name = self.name
        problem.expected = self.expected
        if relaxation is not None:
            # An explicit override always lands on the stage options, even
            # when it names the default ("sos" must reset a builder that
            # chose a cheaper cone itself).
            problem.options.apply_relaxation(relaxation)
        elif self.relaxation != "sos":
            problem.options.apply_relaxation(self.relaxation)
        if backend is not None:
            problem.options.apply_backend(backend)
        return problem

    def summary_row(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "description": self.description,
            "degree": self.certificate_degree,
            "expected": self.expected,
            "relaxation": self.relaxation,
            "tags": list(self.tags),
            "fast": self.fast,
            "sweep_axes": sorted(self.sweep_axes),
        }


_REGISTRY: Dict[str, ScenarioSpec] = {}


def register_scenario(name: str, description: str, *,
                      certificate_degree: int = 2,
                      multiplier_degree: int = 2,
                      solver_settings: Optional[Mapping[str, object]] = None,
                      expected: str = "verified",
                      relaxation: str = "sos",
                      tags: Tuple[str, ...] = (),
                      fast: bool = False,
                      sweep_axes: Optional[Mapping[str, float]] = None,
                      overwrite: bool = False):
    """Decorator registering a scenario builder under ``name``."""

    def decorator(builder: Callable[[ScenarioSpec], ScenarioProblem]):
        if name in _REGISTRY and not overwrite:
            raise ValueError(f"scenario {name!r} is already registered")
        _REGISTRY[name] = ScenarioSpec(
            name=name,
            description=description,
            builder=builder,
            certificate_degree=certificate_degree,
            multiplier_degree=multiplier_degree,
            solver_settings=dict(solver_settings or {}),
            expected=expected,
            relaxation=relaxation,
            tags=tuple(tags),
            fast=fast,
            sweep_axes={k: float(v) for k, v in (sweep_axes or {}).items()},
        )
        return builder

    return decorator


def get_scenario(name: str) -> ScenarioSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {scenario_names()}") from None


def all_scenarios() -> Tuple[ScenarioSpec, ...]:
    """Every registered scenario, sorted by name (deterministic listings)."""
    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


def scenario_names() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def fast_scenario_names() -> Tuple[str, ...]:
    return tuple(spec.name for spec in all_scenarios() if spec.fast)


def build_problem(name: str, relaxation: Optional[str] = None,
                  backend: Optional[str] = None,
                  params: Optional[Mapping[str, float]] = None) -> ScenarioProblem:
    """Build the named scenario's problem (the engine worker entry point).

    ``relaxation`` / ``backend`` / ``params`` optionally override the
    registered defaults (see :meth:`ScenarioSpec.build`).
    """
    return get_scenario(name).build(relaxation=relaxation, backend=backend,
                                    params=params)
