"""Registered charge-pump PLL scenarios.

Wraps the paper's third- and fourth-order workloads and adds degraded /
parameter-corner variants built through :mod:`repro.pll.parameters`.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core import (
    AdvectionOptions,
    EscapeOptions,
    InevitabilityOptions,
    LevelSetOptions,
    LyapunovSynthesisOptions,
)
from ..pll import (
    PLLParameters,
    PLLVerificationModel,
    RegionOfInterest,
    build_fourth_order_model,
    build_third_order_model,
)
from ..polynomial import Polynomial
from ..utils import Interval
from .problem import ScenarioProblem
from .registry import ScenarioSpec, register_scenario


def _pll_options(spec: ScenarioSpec, model: PLLVerificationModel, *,
                 lock_tube_radius: float = 0.8,
                 validate_samples: int = 400,
                 advection_iterations: int = 6,
                 initial_upper_bound: Optional[float] = 0.5,
                 attempt_escape: bool = False) -> InevitabilityOptions:
    """Stage options derived from a scenario spec's declarative knobs.

    Two configuration points matter for the PLL family:

    * the idle mode is pinned to its sliding surface ``e = 0`` (in the relay
      abstraction mode1 only flows there), otherwise the decrease condition
      is quantified over the whole phase strip and is infeasible;
    * level curves are maximised over the region box (``levelset_domain =
      "box"``) because the pumping modes' flow sets touch the equilibrium.

    ``initial_upper_bound`` is always pinned (no sampling-based bracket), so
    the level ladder — and with it every SDP — is identical across runs and
    processes, which the content-addressed certificate cache relies on.
    """
    solver = dict(spec.solver_settings) or dict(max_iterations=30000,
                                                eps_rel=1e-4, eps_abs=1e-5)
    phase = Polynomial.from_variable(model.phase_variable, model.state_variables)
    return InevitabilityOptions(
        lyapunov=LyapunovSynthesisOptions(
            certificate_degree=spec.certificate_degree,
            multiplier_degree=spec.multiplier_degree,
            positivity_margin=0.05,
            lock_tube_radius=lock_tube_radius,
            validate_samples=validate_samples,
            validation_tolerance=5e-2,
            mode_equalities={"mode1": (phase,)},
            solver_settings=dict(solver),
        ),
        levelset=LevelSetOptions(
            multiplier_degree=spec.multiplier_degree,
            bisection_tolerance=0.05,
            max_bisection_iterations=6,
            initial_upper_bound=initial_upper_bound,
            solver_settings=dict(max_iterations=8000, eps_rel=1e-4, eps_abs=1e-5),
        ),
        advection=AdvectionOptions(
            time_step=0.1,
            max_iterations=advection_iterations,
            inclusion_check_every=2,
            solver_settings=dict(max_iterations=4000),
        ),
        escape=EscapeOptions(certificate_degree=2, validate_samples=300,
                             solver_settings=dict(max_iterations=3000)),
        attempt_escape_on_inconclusive=attempt_escape,
        levelset_domain="box",
    )


def _point_parameters(base: PLLParameters, overrides: Dict[str, float],
                      name: str) -> PLLParameters:
    """Pin every interval of a Table 1 column to a concrete point.

    Defaults to interval centres; ``overrides`` substitutes absolute values
    for named constants.  This is the sweep-axis analogue of
    :func:`_corner_parameters` — a point in the design space rather than a
    vertex of the interval box.
    """
    values = {}
    for pname, interval in base.named_intervals().items():
        if pname in overrides:
            values[pname] = Interval.point(float(overrides[pname]))
        else:
            values[pname] = Interval.point(interval.center)
    return PLLParameters(
        order=base.order,
        c1=values["c1"], c2=values["c2"], r=values["r"],
        f_ref=values["f_ref"], k_vco=values["k_vco"], i_p=values["i_p"],
        divider=values["divider"],
        c3=values.get("c3"), r2=values.get("r2"),
        f_free=base.f_free, name=name,
    )


#: Declared sweep axes of the third-order PLL: every Table 1 constant, with
#: the interval centre as nominal value.  The conic data is affine in ``i_p``
#: and ``k_vco`` (they enter the normalised rates linearly) — those axes get
#: the one-compile parametric fast path; sweeps over ``c2``/``r``/``divider``
#: transparently fall back to per-point rebuilds.
_PLL3_SWEEP_AXES = {
    pname: interval.center
    for pname, interval in PLLParameters.third_order_paper().named_intervals().items()
}


@register_scenario(
    name="pll3",
    description="3rd-order CP PLL (paper Table 1), nominal constants, full pipeline",
    certificate_degree=4,
    expected="property_one",
    tags=("pll", "paper"),
    fast=True,
    sweep_axes=_PLL3_SWEEP_AXES,
)
def _build_pll3(spec: ScenarioSpec) -> ScenarioProblem:
    # Parameter overrides pin every constant to a point; the no-override
    # build keeps the historical ``parameters=None`` path so its conic data
    # (and therefore its certificate-cache keys) are untouched.
    parameters = None
    if spec.parameters:
        parameters = _point_parameters(
            PLLParameters.third_order_paper(), dict(spec.parameters),
            name="third_order_swept")
    model = build_third_order_model(
        parameters=parameters,
        region=RegionOfInterest(voltage_bound=3.0, phase_bound=1.5),
        uncertainty="none",
    )
    return ScenarioProblem.from_pll_model(
        model, _pll_options(spec, model), falsification_count=6,
        falsification_duration=40.0)


@register_scenario(
    name="pll3_uncertain",
    description="3rd-order CP PLL with interval charge-pump current (vertex handling)",
    certificate_degree=4,
    expected="property_one",
    tags=("pll", "uncertainty"),
)
def _build_pll3_uncertain(spec: ScenarioSpec) -> ScenarioProblem:
    model = build_third_order_model(
        region=RegionOfInterest(voltage_bound=3.0, phase_bound=1.5),
        uncertainty="pump",
    )
    options = _pll_options(spec, model)
    options.verify_property_two = False
    return ScenarioProblem.from_pll_model(model, options, falsification_count=4)


def _corner_parameters(base: PLLParameters, corner: Dict[str, str],
                       name: str) -> PLLParameters:
    """Collapse selected intervals of a Table 1 column to one corner.

    ``corner`` maps parameter names to ``"lower"``/``"upper"``; everything
    else is pinned to its nominal (interval centre).  This turns the interval
    design into one concrete process corner for a corner-sweep scenario.
    """
    values = {}
    for pname, interval in base.named_intervals().items():
        side = corner.get(pname)
        if side == "lower":
            values[pname] = Interval.point(interval.lower)
        elif side == "upper":
            values[pname] = Interval.point(interval.upper)
        else:
            values[pname] = Interval.point(interval.center)
    return PLLParameters(
        order=base.order,
        c1=values["c1"], c2=values["c2"], r=values["r"],
        f_ref=values["f_ref"], k_vco=values["k_vco"], i_p=values["i_p"],
        divider=values["divider"],
        c3=values.get("c3"), r2=values.get("r2"),
        f_free=base.f_free, name=name,
    )


@register_scenario(
    name="pll3_slow_corner",
    description="3rd-order PLL at the slowest Table 1 process corner "
                "(min pump current, max C2, max divider)",
    certificate_degree=4,
    expected="property_one",
    tags=("pll", "corner-sweep"),
)
def _build_pll3_slow_corner(spec: ScenarioSpec) -> ScenarioProblem:
    parameters = _corner_parameters(
        PLLParameters.third_order_paper(),
        {"i_p": "lower", "c2": "upper", "divider": "upper"},
        name="third_order_slow_corner",
    )
    model = build_third_order_model(
        parameters=parameters,
        region=RegionOfInterest(voltage_bound=3.0, phase_bound=1.5),
        uncertainty="none",
    )
    options = _pll_options(spec, model)
    options.verify_property_two = False
    return ScenarioProblem.from_pll_model(model, options, falsification_count=4)


@register_scenario(
    name="pll3_weak_pump",
    description="Degraded charge pump: 3rd-order PLL with Ip aged to 40% of nominal",
    certificate_degree=4,
    expected="property_one",
    tags=("pll", "degraded"),
)
def _build_pll3_weak_pump(spec: ScenarioSpec) -> ScenarioProblem:
    base = PLLParameters.third_order_paper()
    degraded = _corner_parameters(base, {}, name="third_order_weak_pump")
    nominal_ip = base.i_p.center
    degraded = PLLParameters(
        order=3, c1=degraded.c1, c2=degraded.c2, r=degraded.r,
        f_ref=degraded.f_ref, k_vco=degraded.k_vco,
        i_p=Interval.point(0.4 * nominal_ip),
        divider=degraded.divider, f_free=base.f_free,
        name="third_order_weak_pump",
    )
    model = build_third_order_model(
        parameters=degraded,
        region=RegionOfInterest(voltage_bound=3.0, phase_bound=1.5),
        uncertainty="none",
    )
    # A 60% weaker pump slows reachability; promise the attractive invariant
    # and let advection report whatever its budget reaches.
    options = _pll_options(spec, model, advection_iterations=4)
    options.verify_property_two = False
    return ScenarioProblem.from_pll_model(model, options, falsification_count=4)


@register_scenario(
    name="pll4",
    description="4th-order CP PLL (paper Table 1): certificates validate, but "
                "pumping-mode level maximisation exceeds default ADMM budgets",
    certificate_degree=4,
    expected="inconclusive",
    tags=("pll", "paper", "hard"),
)
def _build_pll4(spec: ScenarioSpec) -> ScenarioProblem:
    model = build_fourth_order_model(
        region=RegionOfInterest(voltage_bound=2.0, phase_bound=1.0),
        uncertainty="none",
    )
    options = _pll_options(spec, model, lock_tube_radius=0.8,
                           validate_samples=300)
    options.verify_property_two = False
    return ScenarioProblem.from_pll_model(model, options, falsification_count=0)


@register_scenario(
    name="pll4_deg4",
    description="4th-order CP PLL with degree-4 certificates on the auto "
                "relaxation ladder (dsos -> sdsos -> chordal -> sos); the "
                "chordal rung splits the large degree-4 Gram blocks into "
                "clique-sized PSD cones",
    certificate_degree=4,
    expected="inconclusive",
    relaxation="auto",
    tags=("pll", "paper", "chordal", "hard"),
)
def _build_pll4_deg4(spec: ScenarioSpec) -> ScenarioProblem:
    model = build_fourth_order_model(
        region=RegionOfInterest(voltage_bound=2.0, phase_bound=1.0),
        uncertainty="none",
    )
    # Same plant as ``pll4``, but the stage options inherit the spec's
    # ``auto`` ladder, so every certificate search climbs through the
    # chordal rung before paying for the monolithic PSD Gram.
    options = _pll_options(spec, model, lock_tube_radius=0.8,
                           validate_samples=300)
    options.verify_property_two = False
    return ScenarioProblem.from_pll_model(model, options, falsification_count=0)
