"""Registered non-PLL scenarios: power electronics and continuous systems.

These workloads route genuinely different dynamics through the same
Lyapunov → level-set → advection pipeline: a two-mode buck converter (hybrid,
affine modes with constant forcing), and two polynomial continuous systems
(time-reversed Van der Pol, damped Duffing) wrapped as single-mode hybrid
systems.
"""

from __future__ import annotations

from ..core import (
    AdvectionOptions,
    EscapeOptions,
    InevitabilityOptions,
    LevelSetOptions,
    LyapunovSynthesisOptions,
)
from .problem import ScenarioProblem
from .registry import ScenarioSpec, register_scenario
from .systems import (
    build_buck_converter_system,
    build_duffing_system,
    build_vanderpol_system,
)


def _generic_options(spec: ScenarioSpec, *,
                     lock_tube_radius: float,
                     voltage_indices=None,
                     initial_upper_bound: float = 1.0,
                     advection_iterations: int = 4,
                     advection_operator: str = "composition",
                     verify_property_two: bool = True,
                     validate_samples: int = 400,
                     levelset_domain: str = "mode") -> InevitabilityOptions:
    solver = dict(spec.solver_settings) or dict(max_iterations=4000,
                                                eps_rel=1e-4, eps_abs=1e-5)
    return InevitabilityOptions(
        lyapunov=LyapunovSynthesisOptions(
            certificate_degree=spec.certificate_degree,
            multiplier_degree=spec.multiplier_degree,
            positivity_margin=0.02,
            lock_tube_radius=lock_tube_radius,
            voltage_indices=voltage_indices,
            validate_samples=validate_samples,
            validation_tolerance=5e-2,
            solver_settings=dict(solver),
        ),
        levelset=LevelSetOptions(
            multiplier_degree=spec.multiplier_degree,
            bisection_tolerance=0.05,
            max_bisection_iterations=8,
            initial_upper_bound=initial_upper_bound,
            solver_settings=dict(max_iterations=8000, eps_rel=1e-4, eps_abs=1e-5),
        ),
        advection=AdvectionOptions(
            time_step=0.1,
            max_iterations=advection_iterations,
            operator=advection_operator,
            inclusion_check_every=2,
            solver_settings=dict(max_iterations=3000),
        ),
        escape=EscapeOptions(certificate_degree=2, validate_samples=300,
                             solver_settings=dict(max_iterations=3000)),
        attempt_escape_on_inconclusive=False,
        verify_property_two=verify_property_two,
        levelset_domain=levelset_domain,
    )


@register_scenario(
    name="buck",
    description="Two-mode DC-DC buck converter under sliding voltage-mode control",
    certificate_degree=2,
    expected="property_one",
    tags=("power", "hybrid"),
    fast=True,
    sweep_axes={"v_in": 1.0, "load": 1.0, "duty": 0.5},
)
def _build_buck(spec: ScenarioSpec) -> ScenarioProblem:
    system = build_buck_converter_system(
        v_in=spec.parameter("v_in"), load=spec.parameter("load"),
        duty=spec.parameter("duty"))
    bounds = [(-2.0, 2.0), (-2.0, 2.0)]
    # Both modes carry a constant forcing (the switch ripple), so — exactly as
    # for the CP PLL — the decrease condition is imposed off a tube around the
    # averaged operating point, here a disc over both states.
    options = _generic_options(
        spec, lock_tube_radius=0.5, voltage_indices=(0, 1),
        initial_upper_bound=2.0, verify_property_two=True,
        levelset_domain="box",
    )
    return ScenarioProblem(system=system, bounds=bounds, options=options)


@register_scenario(
    name="vanderpol",
    description="Time-reversed Van der Pol oscillator (basin certificate inside "
                "the unstable limit cycle)",
    certificate_degree=2,
    expected="property_one",
    tags=("continuous", "polynomial"),
    fast=True,
    sweep_axes={"mu": 1.0, "stiffness": 1.0},
)
def _build_vanderpol(spec: ScenarioSpec) -> ScenarioProblem:
    system = build_vanderpol_system(mu=spec.parameter("mu"),
                                    stiffness=spec.parameter("stiffness"))
    bounds = [(-0.8, 0.8), (-0.8, 0.8)]
    options = _generic_options(
        spec, lock_tube_radius=0.0, initial_upper_bound=0.5,
        verify_property_two=False,
    )
    return ScenarioProblem(system=system, bounds=bounds, options=options)


@register_scenario(
    name="duffing",
    description="Damped Duffing oscillator with a degree-4 (energy-shaped) certificate",
    certificate_degree=4,
    expected="property_one",
    tags=("continuous", "polynomial", "degree4"),
    sweep_axes={"delta": 0.8, "alpha": 1.0, "beta": 1.0},
)
def _build_duffing(spec: ScenarioSpec) -> ScenarioProblem:
    system = build_duffing_system(delta=spec.parameter("delta"),
                                  alpha=spec.parameter("alpha"),
                                  beta=spec.parameter("beta"))
    bounds = [(-1.2, 1.2), (-1.2, 1.2)]
    options = _generic_options(
        spec, lock_tube_radius=0.0, initial_upper_bound=1.0,
        verify_property_two=False, validate_samples=300,
    )
    return ScenarioProblem(system=system, bounds=bounds, options=options)
