"""The common verification-problem container consumed by the engine.

:class:`ScenarioProblem` exposes the same structural interface as
:class:`~repro.pll.model.PLLVerificationModel` (state bounds, per-mode
domains, the outer set ``X2``), so the existing
:class:`~repro.core.inevitability.InevitabilityVerifier` runs unchanged on
any registered workload — PLLs, power converters or plain continuous
polynomial systems wrapped in a single-mode hybrid shell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


from ..core.inevitability import InevitabilityOptions
from ..hybrid import HybridSystem
from ..pll.model import PLLVerificationModel
from ..polynomial import Polynomial, VariableVector
from ..sos import SemialgebraicSet


@dataclass
class ScenarioProblem:
    """One concrete verification workload.

    Attributes
    ----------
    system:
        The hybrid system under verification.
    bounds:
        Region-of-interest box, one ``(lo, hi)`` pair per state.
    options:
        Aggregated per-stage options (degrees, budgets, solver settings).
    outer:
        Polynomial whose 0-sub-level set is the initial outer set ``X2``;
        ``None`` selects the axis-aligned ellipsoid inscribed in ``bounds``.
    uncertainty:
        Label recorded in reports (mirrors the PLL models).
    pll_model:
        The underlying PLL verification model, when the scenario wraps one;
        enables the simulation-based falsification cross-check.
    falsification_count:
        Number of random initial states for the cross-check (0 disables it).
    falsification_duration:
        Simulated horizon (in normalised time units) per falsification run.
    lock_radius:
        Convergence radius used by the falsification convergence claim.
    name / expected:
        Filled in by the registry when the problem is built from a spec.
    """

    system: HybridSystem
    bounds: List[Tuple[float, float]]
    options: InevitabilityOptions
    outer: Optional[Polynomial] = None
    uncertainty: str = "none"
    pll_model: Optional[PLLVerificationModel] = None
    falsification_count: int = 0
    falsification_duration: float = 40.0
    lock_radius: float = 0.6
    name: str = "scenario"
    expected: str = "any"

    def __post_init__(self) -> None:
        if len(self.bounds) != self.system.num_states:
            raise ValueError(
                f"scenario {self.name!r}: {len(self.bounds)} bounds for "
                f"{self.system.num_states} states")

    # ------------------------------------------------------------------
    # The PLLVerificationModel structural interface used by the verifier.
    # ------------------------------------------------------------------
    @property
    def state_variables(self) -> VariableVector:
        return self.system.state_variables

    @property
    def state_names(self) -> Tuple[str, ...]:
        return self.system.state_variables.names

    def state_bounds(self) -> List[Tuple[float, float]]:
        return list(self.bounds)

    def region_box_set(self, name: str = "region") -> SemialgebraicSet:
        if self.pll_model is not None:
            return self.pll_model.region_box_set(name=name)
        empty = SemialgebraicSet(self.state_variables, name=name)
        return empty.with_box(self.bounds)

    def mode_domain(self, mode_name: str) -> SemialgebraicSet:
        if self.pll_model is not None:
            return self.pll_model.mode_domain(mode_name)
        mode = self.system.mode(mode_name)
        return mode.flow_set.intersect(self.region_box_set(name=f"{mode_name}_roi"))

    def outer_set_polynomial(self, margin: float = 1.0) -> Polynomial:
        if self.pll_model is not None and self.outer is None:
            return self.pll_model.outer_set_polynomial(margin=margin)
        if self.outer is not None:
            return self.outer if margin == 1.0 else \
                self.outer + (1.0 - float(margin))
        variables = self.state_variables
        poly = Polynomial.constant(variables, -float(margin))
        for i, (lo, hi) in enumerate(self.bounds):
            limit = max(abs(lo), abs(hi))
            xi = Polynomial.from_variable(variables[i], variables)
            poly = poly + xi * xi * (1.0 / (limit * limit))
        return poly

    def nominal_fields(self) -> Dict[str, Tuple[Polynomial, ...]]:
        if self.pll_model is not None:
            return self.pll_model.nominal_fields()
        nominal = self.system.nominal_parameters()
        return {mode.name: mode.flow_map_with_parameters(nominal)
                for mode in self.system.modes}

    # ------------------------------------------------------------------
    @classmethod
    def from_pll_model(cls, model: PLLVerificationModel,
                       options: InevitabilityOptions,
                       falsification_count: int = 0,
                       falsification_duration: float = 40.0,
                       lock_radius: float = 0.6) -> "ScenarioProblem":
        """Wrap an existing PLL verification model as a scenario problem."""
        return cls(
            system=model.system,
            bounds=model.state_bounds(),
            options=options,
            uncertainty=model.uncertainty,
            pll_model=model,
            falsification_count=falsification_count,
            falsification_duration=falsification_duration,
            lock_radius=lock_radius,
        )

    @property
    def supports_falsification(self) -> bool:
        return self.pll_model is not None and self.falsification_count > 0

    def describe(self) -> str:
        lines = [
            f"ScenarioProblem({self.name!r}, expected={self.expected!r}, "
            f"uncertainty={self.uncertainty!r})",
            f"  states: {list(self.state_names)}  bounds: {self.bounds}",
        ]
        lines.append(self.system.describe())
        return "\n".join(lines)
