"""Declarative scenario registry for the verification engine and CLI.

Importing this package registers the built-in workloads (the paper's PLLs,
parameter-corner and degraded variants, a buck converter and two continuous
polynomial systems).  Register additional scenarios with
:func:`register_scenario`; they become visible to ``python -m repro list``
and runnable by the engine immediately.
"""

from .problem import ScenarioProblem
from .registry import (
    EXPECTED_OUTCOMES,
    ScenarioSpec,
    all_scenarios,
    build_problem,
    fast_scenario_names,
    get_scenario,
    register_scenario,
    scenario_names,
)
from .systems import (
    build_buck_converter_system,
    build_duffing_system,
    build_vanderpol_system,
)

# Importing the scenario modules populates the registry.
from . import pll_scenarios  # noqa: F401  (registration side effects)
from . import workloads  # noqa: F401  (registration side effects)

__all__ = [
    "ScenarioSpec",
    "ScenarioProblem",
    "EXPECTED_OUTCOMES",
    "register_scenario",
    "get_scenario",
    "all_scenarios",
    "scenario_names",
    "fast_scenario_names",
    "build_problem",
    "build_buck_converter_system",
    "build_vanderpol_system",
    "build_duffing_system",
]
