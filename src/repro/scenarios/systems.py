"""Hybrid and continuous systems for the non-PLL scenarios.

Three genuinely new workloads exercising the existing ``hybrid``/``core``
layers:

* a two-mode sliding-control DC-DC **buck converter** in deviation
  coordinates — structurally a sibling of the CP PLL (two affine modes with
  opposite constant forcing, switching on the sign of one state);
* the time-reversed **Van der Pol** oscillator — a polynomial continuous
  system whose origin is locally attractive inside the unstable limit cycle;
* a damped **Duffing** oscillator — globally attractive origin with a natural
  quartic (degree-4) Lyapunov certificate.

Continuous systems are wrapped in a single-mode hybrid shell so the multiple-
Lyapunov synthesiser, level-set maximiser and advection engine run unchanged.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..hybrid import HybridSystem, Mode, Transition
from ..polynomial import Polynomial, VariableVector, make_variables
from ..sos import SemialgebraicSet


def build_buck_converter_system(
    v_in: float = 1.0,
    load: float = 1.0,
    duty: float = 0.5,
    name: str = "buck_converter",
) -> HybridSystem:
    """Two-mode buck converter in normalised deviation coordinates.

    States are ``(i, v)``: inductor-current and capacitor-voltage deviations
    from the averaged operating point ``(i*, v*) = (d·V_in/R, d·V_in)`` with
    ``L = C = 1`` after time normalisation.  The sliding voltage-mode control
    closes the switch while the output voltage is below the reference
    (``v <= 0``) and opens it above, giving

    * ``mode2`` (switch closed, ``v <= 0``):  ``i' = (1-d)·V_in − v``,
      ``v' = i − v/R``
    * ``mode3`` (switch open,  ``v >= 0``):  ``i' = −d·V_in − v``,
      ``v' = i − v/R``

    — two affine modes whose difference is a constant forcing term, exactly
    the structure the PLL machinery (lock-tube relaxed decrease, identity
    jumps on a sign guard) was built for.
    """
    state_vars = VariableVector(make_variables("i", "v"))
    i = Polynomial.from_variable(state_vars[0], state_vars)
    v = Polynomial.from_variable(state_vars[1], state_vars)

    on_force = (1.0 - duty) * v_in      # closed-switch forcing above average
    off_force = -duty * v_in            # open-switch forcing below average
    di_on = -v + on_force
    di_off = -v + off_force
    dv = i - v * (1.0 / load)

    on_set = SemialgebraicSet(state_vars, inequalities=(-v,), name="mode2_flowset")
    off_set = SemialgebraicSet(state_vars, inequalities=(v,), name="mode3_flowset")

    modes = (
        Mode(name="mode2", index=1, state_variables=state_vars,
             flow_map=(di_on, dv), flow_set=on_set, contains_equilibrium=True),
        Mode(name="mode3", index=2, state_variables=state_vars,
             flow_map=(di_off, dv), flow_set=off_set, contains_equilibrium=True),
    )
    transitions = (
        Transition(source="mode2", target="mode3", state_variables=state_vars,
                   guard_set=off_set, trigger=v),
        Transition(source="mode3", target="mode2", state_variables=state_vars,
                   guard_set=on_set, trigger=-v),
    )
    return HybridSystem(
        name=name,
        state_variables=state_vars,
        modes=modes,
        transitions=transitions,
        equilibrium=np.zeros(2),
    )


def _single_mode_system(name: str, state_names: Tuple[str, ...],
                        flow_map: Tuple[Polynomial, ...],
                        state_vars: VariableVector) -> HybridSystem:
    """Wrap a continuous polynomial vector field as a one-mode hybrid system."""
    flow_set = SemialgebraicSet(state_vars, name=f"{name}_flowset")
    mode = Mode(name="flow", index=1, state_variables=state_vars,
                flow_map=flow_map, flow_set=flow_set, contains_equilibrium=True)
    return HybridSystem(
        name=name,
        state_variables=state_vars,
        modes=(mode,),
        equilibrium=np.zeros(len(state_names)),
    )


def build_vanderpol_system(mu: float = 1.0, stiffness: float = 1.0,
                           name: str = "vanderpol_reversed") -> HybridSystem:
    """Time-reversed Van der Pol oscillator.

    ``x' = −y,  y' = k·x − μ(1 − x²)y``.  Reversing time turns the classical
    limit cycle inside out: the origin is asymptotically stable and the cycle
    bounds its basin, so sub-level sets of a synthesised Lyapunov function
    inside the unit box are genuine attractive invariants.  ``stiffness``
    (``k``, 1 in the classical oscillator) scales the restoring force and is
    the second sweep axis next to the damping ``mu``.
    """
    state_vars = VariableVector(make_variables("x", "y"))
    x = Polynomial.from_variable(state_vars[0], state_vars)
    y = Polynomial.from_variable(state_vars[1], state_vars)
    dx = -y
    dy = x * stiffness - (y - x * x * y) * mu
    return _single_mode_system(name, ("x", "y"), (dx, dy), state_vars)


def build_duffing_system(delta: float = 0.8, alpha: float = 1.0,
                         beta: float = 1.0,
                         name: str = "duffing_damped") -> HybridSystem:
    """Damped, unforced Duffing oscillator ``x' = y, y' = −δy − αx − βx³``.

    With ``α, β, δ > 0`` the origin is globally asymptotically stable; the
    mechanical energy ``αx²/2 + βx⁴/4 + y²/2`` is a quartic Lyapunov
    function, making this the registry's canonical degree-4 certificate
    workload.
    """
    state_vars = VariableVector(make_variables("x", "y"))
    x = Polynomial.from_variable(state_vars[0], state_vars)
    y = Polynomial.from_variable(state_vars[1], state_vars)
    dx = y
    dy = y * (-delta) + x * (-alpha) + (x ** 3) * (-beta)
    return _single_mode_system(name, ("x", "y"), (dx, dy), state_vars)
