"""Cone descriptions and Euclidean projections for the conic SDP solver.

The solver works over the symmetric cone

    K = R^{f}  x  R_+^{l}  x  S_+^{k_1} x ... x S_+^{k_p}

where PSD blocks are stored in scaled-vector (``svec``) form so that the
Euclidean inner product on vectors equals the Frobenius inner product on
matrices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

SQRT2 = float(np.sqrt(2.0))


def svec_dim(order: int) -> int:
    """Length of the svec of a symmetric ``order x order`` matrix."""
    return order * (order + 1) // 2


def svec(matrix: np.ndarray) -> np.ndarray:
    """Scaled vectorisation of a symmetric matrix (upper triangle, off-diag * sqrt 2)."""
    matrix = np.asarray(matrix, dtype=float)
    order = matrix.shape[0]
    if matrix.shape != (order, order):
        raise ValueError("svec expects a square matrix")
    out = np.empty(svec_dim(order))
    idx = 0
    for i in range(order):
        out[idx] = matrix[i, i]
        idx += 1
        for j in range(i + 1, order):
            out[idx] = SQRT2 * 0.5 * (matrix[i, j] + matrix[j, i])
            idx += 1
    return out


def smat(vector: np.ndarray, order: int) -> np.ndarray:
    """Inverse of :func:`svec`."""
    vector = np.asarray(vector, dtype=float)
    if vector.shape[0] != svec_dim(order):
        raise ValueError(
            f"vector of length {vector.shape[0]} is not an svec of order {order}"
        )
    matrix = np.zeros((order, order))
    idx = 0
    for i in range(order):
        matrix[i, i] = vector[idx]
        idx += 1
        for j in range(i + 1, order):
            value = vector[idx] / SQRT2
            matrix[i, j] = value
            matrix[j, i] = value
            idx += 1
    return matrix


def svec_indices(order: int) -> List[Tuple[int, int]]:
    """The (row, col) pair addressed by each svec position."""
    pairs = []
    for i in range(order):
        pairs.append((i, i))
        for j in range(i + 1, order):
            pairs.append((i, j))
    return pairs


def svec_entry_coefficient(i: int, j: int) -> float:
    """Multiplier converting a matrix entry ``M_ij`` into its svec coordinate."""
    return 1.0 if i == j else SQRT2


@dataclass(frozen=True)
class ConeDims:
    """Dimensions of the product cone."""

    free: int = 0
    nonneg: int = 0
    psd: Tuple[int, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.free < 0 or self.nonneg < 0 or any(k <= 0 for k in self.psd):
            raise ValueError(f"invalid cone dimensions: {self}")

    @property
    def total(self) -> int:
        return self.free + self.nonneg + sum(svec_dim(k) for k in self.psd)

    def slices(self) -> Tuple[slice, slice, List[slice]]:
        """(free slice, nonneg slice, list of PSD svec slices) into the variable vector."""
        free_slice = slice(0, self.free)
        nonneg_slice = slice(self.free, self.free + self.nonneg)
        psd_slices = []
        offset = self.free + self.nonneg
        for order in self.psd:
            length = svec_dim(order)
            psd_slices.append(slice(offset, offset + length))
            offset += length
        return free_slice, nonneg_slice, psd_slices

    def describe(self) -> str:
        return (f"free={self.free}, nonneg={self.nonneg}, "
                f"psd blocks={list(self.psd)} (total dim={self.total})")


def project_psd_svec(vector: np.ndarray, order: int) -> Tuple[np.ndarray, float]:
    """Project an svec onto the PSD cone; also return the smallest eigenvalue."""
    matrix = smat(vector, order)
    eigenvalues, eigenvectors = np.linalg.eigh(matrix)
    clipped = np.clip(eigenvalues, 0.0, None)
    projected = (eigenvectors * clipped) @ eigenvectors.T
    return svec(projected), float(eigenvalues.min()) if eigenvalues.size else 0.0


def project_onto_cone(vector: np.ndarray, dims: ConeDims) -> np.ndarray:
    """Euclidean projection of ``vector`` onto ``K``."""
    vector = np.asarray(vector, dtype=float)
    if vector.shape[0] != dims.total:
        raise ValueError(
            f"vector length {vector.shape[0]} does not match cone dimension {dims.total}"
        )
    out = vector.copy()
    free_slice, nonneg_slice, psd_slices = dims.slices()
    out[nonneg_slice] = np.clip(vector[nonneg_slice], 0.0, None)
    for order, sl in zip(dims.psd, psd_slices):
        out[sl], _ = project_psd_svec(vector[sl], order)
    return out


def cone_violation(vector: np.ndarray, dims: ConeDims) -> float:
    """Infinity-norm distance of ``vector`` from ``K`` (0 when inside)."""
    vector = np.asarray(vector, dtype=float)
    free_slice, nonneg_slice, psd_slices = dims.slices()
    violation = 0.0
    nonneg_part = vector[nonneg_slice]
    if nonneg_part.size:
        violation = max(violation, float(np.clip(-nonneg_part, 0.0, None).max(initial=0.0)))
    for order, sl in zip(dims.psd, psd_slices):
        matrix = smat(vector[sl], order)
        min_eig = float(np.linalg.eigvalsh(matrix).min()) if order else 0.0
        violation = max(violation, max(0.0, -min_eig))
    return violation
