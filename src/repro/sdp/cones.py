"""Cone descriptions and Euclidean projections for the conic SDP solver.

The solver works over the symmetric cone

    K = R^{f}  x  R_+^{l}  x  S_+^{k_1} x ... x S_+^{k_p}

where PSD blocks are stored in scaled-vector (``svec``) form so that the
Euclidean inner product on vectors equals the Frobenius inner product on
matrices.  All svec/smat conversions run through cached upper-triangle index
tables, and cone projections batch equal-size PSD blocks through a single
stacked ``eigh`` call — the per-iteration hot path of the ADMM backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

import numpy as np

from .backend import ArrayBackend, resolve_array_backend

SQRT2 = float(np.sqrt(2.0))

#: The reference backend every cone operation defaults to.
_NUMPY_BACKEND = resolve_array_backend("numpy")


def svec_dim(order: int) -> int:
    """Length of the svec of a symmetric ``order x order`` matrix."""
    return order * (order + 1) // 2


@lru_cache(maxsize=512)
def _triu_cache(order: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(row, col, scale) index tables for the svec layout of one order.

    The svec layout walks the upper triangle row-major — (0,0), (0,1), ...,
    (0,n-1), (1,1), ... — which is exactly ``np.triu_indices`` order.  The
    scale is 1 on the diagonal and sqrt(2) off it.
    """
    rows, cols = np.triu_indices(order)
    scale = np.where(rows == cols, 1.0, SQRT2)
    for arr in (rows, cols, scale):
        arr.setflags(write=False)
    return rows, cols, scale


def svec(matrix: np.ndarray) -> np.ndarray:
    """Scaled vectorisation of a symmetric matrix (upper triangle, off-diag * sqrt 2)."""
    matrix = np.asarray(matrix, dtype=float)
    order = matrix.shape[0]
    if matrix.shape != (order, order):
        raise ValueError("svec expects a square matrix")
    rows, cols, scale = _triu_cache(order)
    return 0.5 * (matrix[rows, cols] + matrix[cols, rows]) * scale


def smat(vector: np.ndarray, order: int) -> np.ndarray:
    """Inverse of :func:`svec`."""
    vector = np.asarray(vector, dtype=float)
    if vector.shape[0] != svec_dim(order):
        raise ValueError(
            f"vector of length {vector.shape[0]} is not an svec of order {order}"
        )
    rows, cols, scale = _triu_cache(order)
    values = vector / scale
    matrix = np.zeros((order, order))
    matrix[rows, cols] = values
    matrix[cols, rows] = values
    return matrix


def smat_many(vectors: np.ndarray, order: int) -> np.ndarray:
    """Batched :func:`smat`: ``(k, svec_dim)`` svecs to ``(k, order, order)``."""
    vectors = np.asarray(vectors, dtype=float)
    rows, cols, scale = _triu_cache(order)
    values = vectors / scale
    matrices = np.zeros((vectors.shape[0], order, order))
    matrices[:, rows, cols] = values
    matrices[:, cols, rows] = values
    return matrices


def svec_many(matrices: np.ndarray, order: int) -> np.ndarray:
    """Batched :func:`svec`: ``(k, order, order)`` matrices to ``(k, svec_dim)``."""
    matrices = np.asarray(matrices, dtype=float)
    rows, cols, scale = _triu_cache(order)
    return 0.5 * (matrices[:, rows, cols] + matrices[:, cols, rows]) * scale


def svec_indices(order: int) -> List[Tuple[int, int]]:
    """The (row, col) pair addressed by each svec position."""
    rows, cols, _ = _triu_cache(order)
    return [(int(i), int(j)) for i, j in zip(rows, cols)]


def svec_entry_coefficient(i: int, j: int) -> float:
    """Multiplier converting a matrix entry ``M_ij`` into its svec coordinate."""
    return 1.0 if i == j else SQRT2


@dataclass(frozen=True)
class ConeDims:
    """Dimensions of the product cone."""

    free: int = 0
    nonneg: int = 0
    psd: Tuple[int, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.free < 0 or self.nonneg < 0 or any(k <= 0 for k in self.psd):
            raise ValueError(f"invalid cone dimensions: {self}")

    @property
    def total(self) -> int:
        return self.free + self.nonneg + sum(svec_dim(k) for k in self.psd)

    def slices(self) -> Tuple[slice, slice, List[slice]]:
        """(free slice, nonneg slice, list of PSD svec slices) into the variable vector."""
        free_slice = slice(0, self.free)
        nonneg_slice = slice(self.free, self.free + self.nonneg)
        psd_slices = []
        offset = self.free + self.nonneg
        for order in self.psd:
            length = svec_dim(order)
            psd_slices.append(slice(offset, offset + length))
            offset += length
        return free_slice, nonneg_slice, psd_slices

    def describe(self) -> str:
        return (f"free={self.free}, nonneg={self.nonneg}, "
                f"psd blocks={list(self.psd)} (total dim={self.total})")


@lru_cache(maxsize=256)
def _psd_block_groups(dims: ConeDims) -> Tuple[Tuple[int, np.ndarray], ...]:
    """Group the PSD blocks of ``dims`` by matrix order.

    Returns ``(order, gather)`` pairs where ``gather`` is a ``(k, svec_dim)``
    index matrix selecting the svec coordinates of the ``k`` same-order blocks
    from the stacked variable vector.  Equal-size blocks (the common case:
    every S-procedure multiplier of a mode shares one Gram order) are then
    projected with one stacked ``eigh`` instead of ``k`` separate calls.
    """
    starts: dict = {}
    offset = dims.free + dims.nonneg
    for order in dims.psd:
        starts.setdefault(order, []).append(offset)
        offset += svec_dim(order)
    groups = []
    for order in sorted(starts):
        base = np.asarray(starts[order], dtype=np.int64)
        gather = base[:, None] + np.arange(svec_dim(order), dtype=np.int64)[None, :]
        gather.setflags(write=False)
        groups.append((order, gather))
    return tuple(groups)


def project_psd_svec(vector: np.ndarray, order: int) -> Tuple[np.ndarray, float]:
    """Project an svec onto the PSD cone; also return the smallest eigenvalue."""
    matrix = smat(vector, order)
    eigenvalues, eigenvectors = np.linalg.eigh(matrix)
    clipped = np.clip(eigenvalues, 0.0, None)
    projected = (eigenvectors * clipped) @ eigenvectors.T
    return svec(projected), float(eigenvalues.min()) if eigenvalues.size else 0.0


# ----------------------------------------------------------------------
# Backend-resident index tables.  The svec/gather tables are tiny host
# arrays; device backends need them transferred once, not per projection.
# Backends are process singletons, so keying on the backend name is stable.
# ----------------------------------------------------------------------
_DEVICE_TRIU: Dict[Tuple[str, int], tuple] = {}
_DEVICE_GATHER: Dict[Tuple[str, ConeDims], tuple] = {}


def _device_triu(xb: ArrayBackend, order: int):
    """(rows, cols, scale) svec tables of one order, on ``xb``'s device."""
    key = (xb.name, order)
    tables = _DEVICE_TRIU.get(key)
    if tables is None:
        rows, cols, scale = _triu_cache(order)
        tables = (xb.index_from_host(rows), xb.index_from_host(cols),
                  xb.from_host(scale))
        _DEVICE_TRIU[key] = tables
    return tables


def _device_gather_groups(xb: ArrayBackend, dims: ConeDims):
    """The per-order PSD gather tables of ``dims``, on ``xb``'s device."""
    key = (xb.name, dims)
    groups = _DEVICE_GATHER.get(key)
    if groups is None:
        groups = tuple((order, xb.index_from_host(gather))
                       for order, gather in _psd_block_groups(dims))
        _DEVICE_GATHER[key] = groups
    return groups


def _project_psd2_batch(vectors, backend: Optional[ArrayBackend] = None):
    """Closed-form PSD projection of ``(k, 3)`` svecs of 2x2 blocks.

    A symmetric 2x2 matrix ``[[a, c], [c, b]]`` has eigenvalues ``m ± r``
    with ``m = (a+b)/2`` and ``r = hypot((a-b)/2, c)``; clipping them and
    recombining through the spectral projector ``(M - e_-) / (2r)`` projects
    without any LAPACK call.  This is the hot path of the SDSOS (scaled
    diagonal dominance) relaxation, whose Gram matrices lower to hundreds of
    2x2 pair blocks: a stacked ``eigh`` over thousands of 2x2 matrices is
    dominated by per-block LAPACK overhead, while this formula is a handful
    of vectorised array operations.
    """
    xb = backend or _NUMPY_BACKEND
    a = vectors[:, 0]
    c = vectors[:, 1] / SQRT2
    b = vectors[:, 2]
    mean = 0.5 * (a + b)
    radius = xb.hypot(0.5 * (a - b), c)
    lo = mean - radius
    hi = mean + radius
    lo_clip = xb.clip_min(lo, 0.0)
    hi_clip = xb.clip_min(hi, 0.0)
    # P = w * M + shift * I with w = (hi+ - lo+) / (hi - lo); a zero radius
    # means a spherical matrix, whose projection is plain eigenvalue clipping
    # (w = 0, shift = clip(mean)).
    weight = xb.where(radius > 0.0,
                      (hi_clip - lo_clip) / xb.where(radius > 0.0, 2.0 * radius, 1.0),
                      0.0)
    shift = lo_clip - weight * lo
    projected = xb.empty((vectors.shape[0], 3))
    projected[:, 0] = weight * a + shift
    projected[:, 1] = weight * c * SQRT2
    projected[:, 2] = weight * b + shift
    return projected, lo


def _smat_many_backend(xb: ArrayBackend, vectors, order: int):
    """Backend-generic :func:`smat_many` on device svecs."""
    rows, cols, scale = _device_triu(xb, order)
    values = vectors / scale
    matrices = xb.zeros((vectors.shape[0], order, order))
    matrices[:, rows, cols] = values
    matrices[:, cols, rows] = values
    return matrices


def _svec_many_backend(xb: ArrayBackend, matrices, order: int):
    """Backend-generic :func:`svec_many` on device matrix stacks."""
    rows, cols, scale = _device_triu(xb, order)
    return 0.5 * (matrices[:, rows, cols] + matrices[:, cols, rows]) * scale


def _project_psd_batch(vectors, order: int,
                       backend: Optional[ArrayBackend] = None):
    """Project ``(k, svec_dim)`` svecs onto the PSD cone with one stacked eigh.

    Returns the projected svecs and the per-block minimum eigenvalues.
    Order-2 blocks bypass LAPACK entirely through the closed-form
    :func:`_project_psd2_batch`.  ``backend`` selects the array namespace;
    the default (NumPy) path is unchanged and arrays stay wherever the
    backend keeps them — no transfers happen here.
    """
    xb = backend or _NUMPY_BACKEND
    if backend is None:
        vectors = np.asarray(vectors, dtype=float)
    if order == 2:
        return _project_psd2_batch(vectors, xb)
    matrices = _smat_many_backend(xb, vectors, order)
    eigenvalues, eigenvectors = xb.eigh(matrices)
    clipped = xb.clip_min(eigenvalues, 0.0)
    projected = (eigenvectors * clipped[:, None, :]) @ eigenvectors.swapaxes(1, 2)
    return _svec_many_backend(xb, projected, order), eigenvalues[:, 0]


def project_onto_cone(vector, dims: ConeDims,
                      backend: Optional[ArrayBackend] = None):
    """Euclidean projection of ``vector`` onto ``K``.

    With a ``backend``, ``vector`` is that backend's array and the projection
    runs entirely on its device (the return value too).
    """
    xb = backend or _NUMPY_BACKEND
    if backend is None or isinstance(vector, np.ndarray):
        vector = np.asarray(vector, dtype=float)
        if backend is not None:
            vector = xb.from_host(vector)
    if vector.shape[0] != dims.total:
        raise ValueError(
            f"vector length {vector.shape[0]} does not match cone dimension {dims.total}"
        )
    out = xb.copy(vector)
    nonneg_slice = slice(dims.free, dims.free + dims.nonneg)
    out[nonneg_slice] = xb.clip_min(vector[nonneg_slice], 0.0)
    for order, gather in _device_gather_groups(xb, dims):
        projected, _ = _project_psd_batch(vector[gather], order, xb)
        out[gather] = projected
    return out


def project_onto_cone_many(points, dims: ConeDims,
                           backend: Optional[ArrayBackend] = None):
    """Batched :func:`project_onto_cone` for a ``(B, total)`` array of points.

    All PSD blocks of all batch members that share a matrix order are
    projected with a single stacked ``eigh`` — the hot path of the batched
    ADMM engine, where ``B`` structurally identical problems advance in one
    iteration loop.  Row ``i`` of the result equals
    ``project_onto_cone(points[i], dims)``.

    ``backend`` selects the array namespace; device inputs stay on the
    device end to end.  Host (NumPy) inputs are accepted on any backend and
    transferred in, which keeps the function drop-in for existing callers.
    """
    xb = backend or _NUMPY_BACKEND
    if backend is None or isinstance(points, np.ndarray):
        points = np.atleast_2d(np.asarray(points, dtype=float))
        if backend is not None:
            points = xb.from_host(points)
    if points.shape[1] != dims.total:
        raise ValueError(
            f"point length {points.shape[1]} does not match cone dimension {dims.total}"
        )
    out = xb.copy(points)
    nonneg_slice = slice(dims.free, dims.free + dims.nonneg)
    out[:, nonneg_slice] = xb.clip_min(points[:, nonneg_slice], 0.0)
    batch = points.shape[0]
    for order, gather in _device_gather_groups(xb, dims):
        k = gather.shape[0]
        stacked = points[:, gather].reshape(batch * k, svec_dim(order))
        projected, _ = _project_psd_batch(stacked, order, xb)
        out[:, gather] = projected.reshape(batch, k, svec_dim(order))
    return out


def cone_violation(vector: np.ndarray, dims: ConeDims) -> float:
    """Infinity-norm distance of ``vector`` from ``K`` (0 when inside)."""
    vector = np.asarray(vector, dtype=float)
    violation = 0.0
    nonneg_part = vector[dims.free:dims.free + dims.nonneg]
    if nonneg_part.size:
        violation = max(violation, float(np.clip(-nonneg_part, 0.0, None).max(initial=0.0)))
    for order, gather in _psd_block_groups(dims):
        eigenvalues = np.linalg.eigvalsh(smat_many(vector[gather], order))
        min_eig = float(eigenvalues[:, 0].min())
        violation = max(violation, max(0.0, -min_eig))
    return violation
