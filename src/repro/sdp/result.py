"""Solver result types shared by all SDP backends."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


class SolverStatus(enum.Enum):
    """Termination status of a conic solve."""

    OPTIMAL = "optimal"
    FEASIBLE = "feasible"            # feasibility problem solved to tolerance
    MAX_ITERATIONS = "max_iterations"
    INFEASIBLE_SUSPECTED = "infeasible_suspected"
    NUMERICAL_ERROR = "numerical_error"

    @property
    def is_success(self) -> bool:
        return self in (SolverStatus.OPTIMAL, SolverStatus.FEASIBLE)


@dataclass
class SolverResult:
    """Output of a conic SDP solve.

    Attributes
    ----------
    status:
        Termination status.
    x:
        Primal solution in the stacked variable order of the problem.
    objective:
        Primal objective value ``c^T x`` (0 for pure feasibility problems).
    primal_residual / dual_residual:
        Final ADMM / IPM residuals, useful for diagnosing marginal solves.
    equality_residual:
        ``||A x - b||_inf`` of the returned point.
    cone_violation:
        Distance of the returned point from the cone (infinity norm).
    iterations:
        Number of iterations performed.
    solve_time:
        Wall-clock seconds spent inside the solver.
    info:
        Backend-specific diagnostics.
    """

    status: SolverStatus
    x: Optional[np.ndarray] = None
    objective: float = float("nan")
    primal_residual: float = float("nan")
    dual_residual: float = float("nan")
    equality_residual: float = float("nan")
    cone_violation: float = float("nan")
    iterations: int = 0
    solve_time: float = 0.0
    info: Dict[str, object] = field(default_factory=dict)

    @property
    def is_success(self) -> bool:
        return self.status.is_success and self.x is not None

    def summary(self) -> str:
        return (
            f"status={self.status.value}, obj={self.objective:.6g}, "
            f"eq_res={self.equality_residual:.2e}, cone_viol={self.cone_violation:.2e}, "
            f"iters={self.iterations}, time={self.solve_time:.3f}s"
        )


@dataclass
class SolveHistory:
    """Per-iteration residual history (kept small; sampled every few iterations)."""

    primal: List[float] = field(default_factory=list)
    dual: List[float] = field(default_factory=list)
    objective: List[float] = field(default_factory=list)

    def record(self, primal: float, dual: float, objective: float) -> None:
        self.primal.append(float(primal))
        self.dual.append(float(dual))
        self.objective.append(float(objective))

    def __len__(self) -> int:
        return len(self.primal)
