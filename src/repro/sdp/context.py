"""Explicit solver state: the :class:`SolveContext` context object.

Historically the conic layer kept its cross-cutting state — the installed
solve cache, the solve/compile counters, the default backend — in module
globals of :mod:`repro.sdp.solver` (``_SOLVE_CACHE``, ``_SOLVE_COUNTERS``)
and :mod:`repro.sos.program` (``_COMPILE_COUNTERS``).  A :class:`SolveContext`
owns all of that state explicitly, so independent verification pipelines —
different caches, backends, relaxations — can run *concurrently in one
process* without clobbering each other's counters or sharing cache entries.

The module-level functions of :mod:`repro.sdp.solver`
(:func:`~repro.sdp.solver.solve_conic_problem`,
:func:`~repro.sdp.solver.solve_counters`, …) remain as thin shims over the
process-default context returned by :func:`default_context`, so pre-existing
call sites keep working unchanged; new code should pass a context (usually
via :class:`repro.api.VerificationSession`) instead.

All counter updates are guarded by a per-context lock: concurrent solves
from a thread pool never lose increments.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Union

from .problem import ConicProblem
from .result import SolverResult

#: Base solve-counter keys always present in a counter snapshot.
BASE_SOLVE_COUNTERS = ("solved", "cache_hit")
#: Base compile-counter keys always present in a compile snapshot.
BASE_COMPILE_COUNTERS = ("full", "memoised")

# Process-wide compile aggregate.  ``repro.sos.compile_counters()`` has
# always been documented as *process-wide* accounting, and callers use it to
# prove that a warm-cache replay genuinely recompiled its programs — work
# that nowadays happens inside per-job/session contexts.  Every context
# therefore mirrors its compile events into this aggregate (telemetry only;
# per-context counters remain exact and isolated).
_AGGREGATE_COMPILE_LOCK = threading.Lock()
_AGGREGATE_COMPILE_COUNTERS: Dict[str, int] = {k: 0 for k in BASE_COMPILE_COUNTERS}


def aggregate_compile_counters() -> Dict[str, int]:
    """Process-wide compile counters, summed across every context."""
    with _AGGREGATE_COMPILE_LOCK:
        return dict(_AGGREGATE_COMPILE_COUNTERS)


def reset_aggregate_compile_counters() -> None:
    with _AGGREGATE_COMPILE_LOCK:
        for key in BASE_COMPILE_COUNTERS:
            _AGGREGATE_COMPILE_COUNTERS[key] = 0


class SolveContext:
    """Owns everything ambient about conic solving.

    Parameters
    ----------
    backend:
        Default solver backend (name or constructed solver object) used when
        a solve call does not name one; ``None`` falls back to the registry
        default (``"admm"``).
    solver_settings:
        Default keyword settings merged under every solve call's explicit
        settings (explicit keys win).
    cache:
        Optional solve-result cache — any object with ``get(key) ->
        Optional[SolverResult]`` and ``put(key, result)``, e.g. a
        :class:`repro.engine.cache.CertificateCache`.
    array_backend:
        Default array namespace of the solver hot loops (``"auto"``,
        ``"numpy"``, ``"cupy"`` or ``"torch"``; see
        :mod:`repro.sdp.backend`).  ``None`` leaves the solver's own default
        (``"auto"``) in charge; an explicit per-solve
        ``array_backend=`` setting wins over the context's.

    Caching policy (unchanged from the historical module-global cache):
    EVERY terminal result is cached, including failure statuses — in this
    pipeline a rejected feasibility probe is a meaningful outcome, and
    replaying it keeps a warm-cache run a bit-identical, zero-solve replay
    of the cold run.  The key intentionally excludes warm starts (they
    affect the path, not the validity, of a result).
    """

    def __init__(self, backend: Union[str, object, None] = None,
                 solver_settings: Optional[Dict[str, object]] = None,
                 cache: Optional[object] = None,
                 name: str = "context",
                 array_backend: Optional[str] = None):
        self.name = name
        self.backend = backend
        self.solver_settings: Dict[str, object] = dict(solver_settings or {})
        self.cache = cache
        self.array_backend = array_backend
        self._lock = threading.Lock()
        self._solve_counters: Dict[str, int] = {k: 0 for k in BASE_SOLVE_COUNTERS}
        self._compile_counters: Dict[str, int] = {k: 0 for k in BASE_COMPILE_COUNTERS}
        self._array_backend_stats: Dict[str, Dict[str, float]] = {}

    # ------------------------------------------------------------------
    # Counters (thread-safe)
    # ------------------------------------------------------------------
    def record_solve_event(self, event: str, layout_kind: Optional[str] = None,
                           amount: int = 1) -> None:
        """Count one solve event (``"solved"`` / ``"cache_hit"``).

        ``layout_kind`` additionally bumps the cone-layout-keyed counter
        (``solved:psd``, ``cache_hit:sdd``, …) so relaxation-aware tests can
        assert *which* Gram cone actually solved.
        """
        with self._lock:
            self._solve_counters[event] = self._solve_counters.get(event, 0) + amount
            if layout_kind is not None:
                keyed = f"{event}:{layout_kind}"
                self._solve_counters[keyed] = self._solve_counters.get(keyed, 0) + amount

    def record_compile_event(self, event: str, amount: int = 1) -> None:
        """Count one SOS compile event (``"full"`` / ``"memoised"``)."""
        with self._lock:
            self._compile_counters[event] = self._compile_counters.get(event, 0) + amount
        with _AGGREGATE_COMPILE_LOCK:
            _AGGREGATE_COMPILE_COUNTERS[event] = \
                _AGGREGATE_COMPILE_COUNTERS.get(event, 0) + amount

    def _record_backend_stats(self, result: SolverResult) -> None:
        """Accumulate iteration-throughput telemetry per array backend.

        Backends report which array namespace ran their hot loop in
        ``result.info["array_backend"]``; results lacking it (external or
        cached results) are skipped.  Batch results share one wall clock, so
        each member contributes its per-problem share of the batch time.
        """
        info = getattr(result, "info", None) or {}
        name = info.get("array_backend")
        if not name:
            return
        seconds = float(result.solve_time or 0.0)
        batch_size = info.get("batch_size")
        if batch_size:
            seconds /= float(batch_size)
        with self._lock:
            entry = self._array_backend_stats.setdefault(
                name, {"solves": 0, "iterations": 0, "seconds": 0.0})
            entry["solves"] += 1
            entry["iterations"] += int(result.iterations or 0)
            entry["seconds"] += seconds

    def array_backend_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-array-backend throughput telemetry of this context's solves.

        Maps backend name to ``{"solves", "iterations", "seconds",
        "iterations_per_second"}`` accumulated over every uncached solve.
        """
        with self._lock:
            stats = {name: dict(entry)
                     for name, entry in self._array_backend_stats.items()}
        for entry in stats.values():
            entry["iterations_per_second"] = \
                entry["iterations"] / max(entry["seconds"], 1e-12)
        return stats

    def solve_counters(self) -> Dict[str, int]:
        """Snapshot of this context's conic solve counters."""
        with self._lock:
            return dict(self._solve_counters)

    def compile_counters(self) -> Dict[str, int]:
        """Snapshot of this context's SOS compile counters."""
        with self._lock:
            return dict(self._compile_counters)

    def reset_solve_counters(self) -> None:
        """Zero the solve counters only."""
        with self._lock:
            self._solve_counters = {k: 0 for k in BASE_SOLVE_COUNTERS}

    def reset_compile_counters(self) -> None:
        """Zero the compile counters only."""
        with self._lock:
            self._compile_counters = {k: 0 for k in BASE_COMPILE_COUNTERS}

    def reset_counters(self) -> None:
        """Zero both counter families."""
        self.reset_solve_counters()
        self.reset_compile_counters()

    # ------------------------------------------------------------------
    # Cache management
    # ------------------------------------------------------------------
    def set_cache(self, cache: Optional[object]) -> Optional[object]:
        """Install (or clear, with ``None``) this context's solve cache.

        Returns the previously installed cache so callers can restore it.
        """
        previous = self.cache
        self.cache = cache
        return previous

    # ------------------------------------------------------------------
    # Resolution helpers
    # ------------------------------------------------------------------
    def _resolve(self, backend: Union[str, object, None],
                 settings: Dict[str, object]):
        from .solver import effective_solver_settings

        resolved_backend = backend if backend is not None else self.backend
        if self.solver_settings:
            resolved_settings = {**self.solver_settings, **settings}
        else:
            resolved_settings = dict(settings)
        if self.array_backend is not None:
            resolved_settings.setdefault("array_backend", self.array_backend)
        # Normalise to the settings the backend actually consumes, so cache
        # keys (and the solve itself) ignore knobs another backend owns.
        resolved_settings = effective_solver_settings(resolved_backend,
                                                      resolved_settings)
        return resolved_backend, resolved_settings

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(self, problem: ConicProblem,
              backend: Union[str, object, None] = None,
              warm_start: Optional[object] = None,
              **settings) -> SolverResult:
        """Solve one conic problem under this context's cache and defaults.

        ``backend``/``settings`` passed here win over the context defaults;
        the context defaults win over the registry default.  Results are
        served from and written to this context's cache (when installed) and
        counted in this context's counters only.
        """
        from .solver import solve_cache_key, solve_single_uncached

        backend, settings = self._resolve(backend, settings)
        cache = self.cache
        key: Optional[str] = None
        if cache is not None:
            key = solve_cache_key(problem, backend, settings)
            cached = cache.get(key)
            if cached is not None:
                self.record_solve_event("cache_hit", problem.layout_kind)
                return cached
        result = solve_single_uncached(problem, backend, warm_start, settings)
        self.record_solve_event("solved", problem.layout_kind)
        self._record_backend_stats(result)
        if cache is not None and key is not None:
            cache.put(key, result)
        return result

    def solve_many(self, problems: Sequence[ConicProblem],
                   backend: Union[str, object, None] = None,
                   warm_starts: Optional[Sequence[Optional[object]]] = None,
                   **settings) -> List[SolverResult]:
        """Solve a batch of structurally identical conic problems.

        The ADMM backend (the default) routes the whole batch through
        :class:`~repro.sdp.batch.BatchADMMSolver`; other backends are solved
        sequentially with per-problem warm starts.  Per-problem statuses
        match solving each problem alone.
        """
        from .solver import solve_batch_uncached, solve_cache_key

        backend, settings = self._resolve(backend, settings)
        problems = list(problems)
        if warm_starts is None:
            warm_starts = [None] * len(problems)
        warm_starts = list(warm_starts)
        if len(warm_starts) != len(problems):
            raise ValueError("warm_starts must align with problems")

        cache = self.cache
        results: List[Optional[SolverResult]] = [None] * len(problems)
        keys: List[Optional[str]] = [None] * len(problems)
        pending = list(range(len(problems)))
        if cache is not None:
            pending = []
            for i, problem in enumerate(problems):
                keys[i] = solve_cache_key(problem, backend, settings)
                cached = cache.get(keys[i])
                if cached is not None:
                    self.record_solve_event("cache_hit", problem.layout_kind)
                    results[i] = cached
                else:
                    pending.append(i)
        if pending:
            sub_problems = [problems[i] for i in pending]
            sub_starts = [warm_starts[i] for i in pending]
            solved = solve_batch_uncached(sub_problems, backend, sub_starts, settings)
            for problem in sub_problems:
                self.record_solve_event("solved", problem.layout_kind)
            for result in solved:
                self._record_backend_stats(result)
            for i, result in zip(pending, solved):
                results[i] = result
                if cache is not None and keys[i] is not None:
                    cache.put(keys[i], result)
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def describe(self) -> str:
        counters = self.solve_counters()
        return (f"SolveContext({self.name!r}: backend={self.backend!r}, "
                f"cache={'on' if self.cache is not None else 'off'}, "
                f"solved={counters.get('solved', 0)}, "
                f"cache_hit={counters.get('cache_hit', 0)})")

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return self.describe()


#: The process-default context backing the legacy module-level API.
_DEFAULT_CONTEXT = SolveContext(name="default")


def default_context() -> SolveContext:
    """The process-default :class:`SolveContext`.

    Every context-less call (``solve_conic_problem(...)`` without
    ``context=``, a :class:`~repro.sos.program.SOSProgram` built without one)
    lands here, which preserves the historical module-global behaviour.
    """
    return _DEFAULT_CONTEXT
