"""Problem equilibration for the conic solver.

Badly scaled coefficient matrices (which SOS coefficient matching produces
readily when the underlying dynamics are not normalised) slow the ADMM
solver down dramatically.  We apply row equilibration to the equality
constraints — this never changes the feasible set or the cone — plus a scalar
normalisation of the cost vector.

:func:`presolve` fuses zero-row elimination and equilibration into a single
pass over one CSR copy of ``A`` (one row-norm computation, one data-array
scale), which is what the solver backends call; :func:`drop_zero_rows` and
:func:`equilibrate` remain available as standalone transformations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from .problem import ConicProblem


@dataclass
class ScalingData:
    """Diagonal row scaling ``D`` and cost scale ``sigma`` applied to a problem."""

    row_scale: np.ndarray
    cost_scale: float

    def unscale_objective(self, value: float) -> float:
        return value * self.cost_scale


def row_inf_norms(A: sp.spmatrix) -> np.ndarray:
    """Per-row infinity norms of a sparse matrix (no CSC/dense round-trips).

    Shared by zero-row detection and row equilibration: one pass over the CSR
    data array with ``np.maximum.reduceat`` instead of two ``abs(A).max(axis=1)``
    dense-matrix detours.
    """
    A = A if sp.isspmatrix_csr(A) else A.tocsr()
    m = A.shape[0]
    norms = np.zeros(m)
    if m == 0 or A.nnz == 0:
        return norms
    counts = np.diff(A.indptr)
    nonempty = counts > 0
    norms[nonempty] = np.maximum.reduceat(np.abs(A.data), A.indptr[:-1][nonempty])
    return norms


def column_inf_norms(A: sp.spmatrix) -> np.ndarray:
    """Per-column infinity norms of a sparse matrix, straight off CSR data.

    The column counterpart of :func:`row_inf_norms`: a single unbuffered
    ``np.maximum.at`` scatter over ``(|data|, indices)``.  No CSC conversion,
    and — like every norm helper in this module — no dense ``(m, n)``
    materialisation, which matters once SOS coefficient matching produces
    thousands of equality rows.
    """
    A = A if sp.isspmatrix_csr(A) else A.tocsr()
    norms = np.zeros(A.shape[1])
    if A.nnz:
        np.maximum.at(norms, A.indices, np.abs(A.data))
    return norms


def _check_zero_rows(zero_rows: np.ndarray, b: np.ndarray) -> None:
    bad = [int(r) for r in zero_rows if abs(b[r]) > 1e-12]
    if bad:
        raise ValueError(
            f"equality rows {bad} have zero coefficients but nonzero right-hand side; "
            "the polynomial identity cannot be satisfied"
        )


def equilibrate(problem: ConicProblem, min_scale: float = 1e-6,
                max_scale: float = 1e6) -> Tuple[ConicProblem, ScalingData]:
    """Row-equilibrate ``A x = b`` and normalise the cost vector.

    Each equality row is divided by the infinity norm of its coefficients
    (clipped to ``[min_scale, max_scale]``) so all rows have comparable
    magnitude.  The cost vector is divided by its own infinity norm; the
    original objective value is recovered through :class:`ScalingData`.
    """
    A = problem.A.tocsr(copy=True)
    b = problem.b.copy()
    m = A.shape[0]
    row_scale = np.ones(m)
    if m > 0 and A.nnz > 0:
        row_norms = row_inf_norms(A)
        row_norms[row_norms == 0.0] = 1.0
        row_scale = 1.0 / np.clip(row_norms, min_scale, max_scale)
        A.data *= np.repeat(row_scale, np.diff(A.indptr))
        b = row_scale * b

    c = problem.c.copy()
    cost_norm = float(np.abs(c).max()) if c.size else 0.0
    if cost_norm > 0.0:
        cost_scale = cost_norm
        c = c / cost_norm
    else:
        cost_scale = 1.0

    scaled = ConicProblem(c=c, A=A, b=b, dims=problem.dims, layout=problem.layout)
    return scaled, ScalingData(row_scale=row_scale, cost_scale=cost_scale)


def drop_zero_rows(problem: ConicProblem, tolerance: float = 0.0) -> ConicProblem:
    """Remove equality rows with all-zero coefficients.

    A zero row with nonzero right-hand side makes the problem trivially
    infeasible; that is reported by raising ``ValueError`` so the SOS layer can
    surface a meaningful error (it means a monomial appears with a fixed
    nonzero coefficient but no decision variable can produce it).
    """
    A = problem.A.tocsr()
    if A.shape[0] == 0:
        return problem
    row_norms = row_inf_norms(A)
    zero_rows = np.where(row_norms <= tolerance)[0]
    if zero_rows.size == 0:
        return problem
    _check_zero_rows(zero_rows, problem.b)
    keep = np.setdiff1d(np.arange(A.shape[0]), zero_rows)
    return ConicProblem(c=problem.c, A=A[keep], b=problem.b[keep],
                        dims=problem.dims, layout=problem.layout)


def presolve(problem: ConicProblem, scale: bool = True, min_scale: float = 1e-6,
             max_scale: float = 1e6) -> Tuple[ConicProblem, Optional[ScalingData]]:
    """Fused ``drop_zero_rows`` + ``equilibrate`` sharing one row-norm pass.

    Returns the presolved problem and the applied :class:`ScalingData`
    (``None`` when ``scale`` is false).  Raises ``ValueError`` for trivially
    infeasible zero rows, exactly like :func:`drop_zero_rows`.
    """
    A = problem.A  # ConicProblem guarantees CSR
    b = problem.b
    m = A.shape[0]
    if m == 0:
        if not scale:
            return problem, None
        return equilibrate(problem, min_scale, max_scale)

    row_norms = row_inf_norms(A)
    zero_rows = np.where(row_norms == 0.0)[0]
    if zero_rows.size:
        _check_zero_rows(zero_rows, b)
        keep = np.setdiff1d(np.arange(m), zero_rows)
        A = A[keep]
        b = b[keep]
        row_norms = row_norms[keep]
        m = A.shape[0]

    if not scale:
        return ConicProblem(c=problem.c, A=A, b=b, dims=problem.dims,
                            layout=problem.layout), None

    row_scale = np.ones(m)
    if m > 0 and A.nnz > 0:
        norms = row_norms.copy()
        norms[norms == 0.0] = 1.0
        row_scale = 1.0 / np.clip(norms, min_scale, max_scale)
        scaled_data = A.data * np.repeat(row_scale, np.diff(A.indptr))
        A = sp.csr_matrix((scaled_data, A.indices, A.indptr), shape=A.shape)
        b = row_scale * b

    c = problem.c.copy()
    cost_norm = float(np.abs(c).max()) if c.size else 0.0
    if cost_norm > 0.0:
        cost_scale = cost_norm
        c = c / cost_norm
    else:
        cost_scale = 1.0

    scaled = ConicProblem(c=c, A=A, b=b, dims=problem.dims, layout=problem.layout)
    return scaled, ScalingData(row_scale=row_scale, cost_scale=cost_scale)
