"""Problem equilibration for the conic solver.

Badly scaled coefficient matrices (which SOS coefficient matching produces
readily when the underlying dynamics are not normalised) slow the ADMM
solver down dramatically.  We apply row equilibration to the equality
constraints — this never changes the feasible set or the cone — plus a scalar
normalisation of the cost vector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from .problem import ConicProblem


@dataclass
class ScalingData:
    """Diagonal row scaling ``D`` and cost scale ``sigma`` applied to a problem."""

    row_scale: np.ndarray
    cost_scale: float

    def unscale_objective(self, value: float) -> float:
        return value * self.cost_scale


def equilibrate(problem: ConicProblem, min_scale: float = 1e-6,
                max_scale: float = 1e6) -> Tuple[ConicProblem, ScalingData]:
    """Row-equilibrate ``A x = b`` and normalise the cost vector.

    Each equality row is divided by the infinity norm of its coefficients
    (clipped to ``[min_scale, max_scale]``) so all rows have comparable
    magnitude.  The cost vector is divided by its own infinity norm; the
    original objective value is recovered through :class:`ScalingData`.
    """
    A = problem.A.tocsr(copy=True)
    b = problem.b.copy()
    m = A.shape[0]
    row_scale = np.ones(m)
    if m > 0 and A.nnz > 0:
        abs_A = abs(A)
        row_norms = np.asarray(abs_A.max(axis=1).todense()).ravel()
        row_norms[row_norms == 0.0] = 1.0
        row_scale = 1.0 / np.clip(row_norms, min_scale, max_scale)
        D = sp.diags(row_scale)
        A = D @ A
        b = row_scale * b

    c = problem.c.copy()
    cost_norm = float(np.abs(c).max()) if c.size else 0.0
    if cost_norm > 0.0:
        cost_scale = cost_norm
        c = c / cost_norm
    else:
        cost_scale = 1.0

    scaled = ConicProblem(c=c, A=A, b=b, dims=problem.dims)
    return scaled, ScalingData(row_scale=row_scale, cost_scale=cost_scale)


def drop_zero_rows(problem: ConicProblem, tolerance: float = 0.0) -> ConicProblem:
    """Remove equality rows with all-zero coefficients.

    A zero row with nonzero right-hand side makes the problem trivially
    infeasible; that is reported by raising ``ValueError`` so the SOS layer can
    surface a meaningful error (it means a monomial appears with a fixed
    nonzero coefficient but no decision variable can produce it).
    """
    A = problem.A.tocsr()
    if A.shape[0] == 0:
        return problem
    abs_A = abs(A)
    row_norms = np.asarray(abs_A.max(axis=1).todense()).ravel()
    zero_rows = np.where(row_norms <= tolerance)[0]
    if zero_rows.size == 0:
        return problem
    bad = [int(r) for r in zero_rows if abs(problem.b[r]) > 1e-12]
    if bad:
        raise ValueError(
            f"equality rows {bad} have zero coefficients but nonzero right-hand side; "
            "the polynomial identity cannot be satisfied"
        )
    keep = np.setdiff1d(np.arange(A.shape[0]), zero_rows)
    return ConicProblem(c=problem.c, A=A[keep], b=problem.b[keep], dims=problem.dims)
