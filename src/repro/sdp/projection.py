"""Alternating-projection backend for pure conic *feasibility* problems.

Many of the SOS programs in the verification pipeline are feasibility
problems (find any Gram matrices satisfying the coefficient-matching
equalities).  For those, plain alternating projections between the affine set
``{x : A x = b}`` and the cone ``K`` is a simple, robust alternative to ADMM
and serves as an ablation baseline (``benchmarks/test_ablation_solver_backend``).

The affine projection reuses a cached factorisation of ``A A^T`` (with a tiny
regularisation absorbing redundant rows).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.sparse as sp

from .admm import WarmStart, unpack_warm_start
from .backend import resolve_array_backend
from .cones import project_onto_cone
from .problem import ConicProblem
from .result import SolverResult, SolverStatus
from .scaling import presolve


@dataclass
class ProjectionSettings:
    max_iterations: int = 20000
    tolerance: float = 1e-8
    regularization: float = 1e-10
    scale_problem: bool = True
    stall_window: int = 2000
    verbose: bool = False
    #: Array namespace of the projection loop (same semantics as
    #: :attr:`repro.sdp.admm.ADMMSettings.array_backend`).
    array_backend: str = "auto"


class AlternatingProjectionSolver:
    """Von Neumann alternating projections onto ``{Ax=b}`` and ``K``.

    Ignores the objective (raises if a nonzero cost vector is supplied) —
    use the ADMM backend for optimisation problems.
    """

    def __init__(self, settings: Optional[ProjectionSettings] = None):
        self.settings = settings or ProjectionSettings()

    def solve(self, problem: ConicProblem,
              warm_start: Optional[WarmStart] = None) -> SolverResult:
        start = time.perf_counter()
        if np.any(problem.c != 0.0):
            raise ValueError(
                "AlternatingProjectionSolver only handles feasibility problems "
                "(zero cost vector); use the ADMM backend for optimisation"
            )
        original = problem
        try:
            problem, _ = presolve(problem, scale=self.settings.scale_problem)
        except ValueError as exc:
            return SolverResult(
                status=SolverStatus.INFEASIBLE_SUSPECTED,
                info={"reason": str(exc)},
                solve_time=time.perf_counter() - start,
            )

        A = problem.A.tocsr()
        b = problem.b
        n = problem.num_variables
        m = problem.num_constraints
        dims = problem.dims
        xb = resolve_array_backend(self.settings.array_backend)

        if m > 0:
            gram = (A @ A.T + self.settings.regularization * sp.identity(m)).tocsc()
            gram_lu = xb.kkt_factor(gram)
            b_dev = xb.from_host(b)
            AT = A.T.tocsr()

            def project_affine(point):
                residual = xb.matvec(A, point) - b_dev
                correction = xb.matvec(AT, gram_lu.solve(residual))
                return point - correction
        else:
            def project_affine(point):
                return point

        initial = unpack_warm_start(warm_start, n)
        x = xb.from_host(initial[1]) if initial is not None else xb.zeros(n)
        best_gap = np.inf
        best_gap_at = 0
        status = SolverStatus.MAX_ITERATIONS
        iteration = 0
        tolerance = self.settings.tolerance * np.sqrt(max(n, 1))
        for iteration in range(1, self.settings.max_iterations + 1):
            x_affine = project_affine(x)
            x_cone = project_onto_cone(x_affine, dims, backend=xb)
            gap = xb.vec_norm(x_affine - x_cone)
            x = x_cone
            if gap < best_gap * 0.99:
                best_gap = gap
                best_gap_at = iteration
            if gap <= tolerance:
                status = SolverStatus.FEASIBLE
                break
            if iteration - best_gap_at > self.settings.stall_window:
                status = SolverStatus.INFEASIBLE_SUSPECTED
                break

        x = xb.to_host(x)
        equality_residual = original.equality_residual(x)
        violation = original.cone_violation(x)
        return SolverResult(
            status=status,
            x=x,
            objective=original.objective_value(x),
            primal_residual=float("nan"),
            dual_residual=float("nan"),
            equality_residual=equality_residual,
            cone_violation=violation,
            iterations=iteration,
            solve_time=time.perf_counter() - start,
            info={
                "backend": "alternating_projection",
                "array_backend": xb.name,
                "warm_started": initial is not None,
                "warm_start_data": {"x": x.copy(), "z": x.copy(),
                                    "u": np.zeros(n)},
            },
        )
