"""Chordal decomposition of sparse symmetric matrix cones.

The classical sparse-SDP scale-up trick (Grone et al. / Agler et al.): a
symmetric matrix ``M`` whose nonzero pattern is a *chordal* graph is positive
semidefinite **iff** it splits as a sum of PSD matrices supported on the
maximal cliques of that graph::

    M  =  Σ_k  E_k^T  M_k  E_k,        M_k ⪰ 0,

where ``E_k`` selects the rows/columns of clique ``k``.  For the ADMM solver
this replaces one ``O(n^3)`` eigendecomposition per iteration with a handful
of clique-sized ones that the stacked projection of :mod:`repro.sdp.cones`
batches by size — *without* weakening the relaxation on chordally-sparse
problems (unlike the DSOS/SDSOS inner approximations).

This module holds the pure graph machinery; the conic lowering lives in
:class:`repro.sdp.gramcone.ChordalGramBlock`:

* :func:`chordal_decomposition` — greedy minimum-degree (min-fill tie-break)
  elimination of the sparsity graph, producing a perfect elimination ordering
  of a chordal extension, its maximal cliques, and a size/overlap-driven
  clique merge pass,
* :func:`clique_tree` — a maximum-weight spanning tree over clique
  intersections, which satisfies the running-intersection property for the
  cliques of a chordal graph (asserted by the test suite).

Everything is deterministic: ties break on vertex/clique index, so the same
sparsity pattern always yields the same clique layout — a requirement for the
layout tag entering :meth:`repro.sdp.problem.ConicProblem.fingerprint` and
for ``bind(θ)`` structural stability of parametric families.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

#: Default cap on the size of a merged clique.  Merging two overlapping
#: cliques trades a consensus overlap for one slightly larger eigh block;
#: past ~order 12 the cubic eigh cost outweighs the saved overlap work.
DEFAULT_MERGE_SIZE = 12

#: Default overlap ratio (``|C_i ∩ C_j| / min(|C_i|, |C_j|)``) above which
#: two cliques are merged regardless of :data:`DEFAULT_MERGE_SIZE` — almost
#: coincident cliques duplicate nearly every variable for no projection win.
DEFAULT_MERGE_OVERLAP = 0.75


def _normalized_edges(order: int,
                      edges: Iterable[Tuple[int, int]]) -> List[set]:
    """Adjacency sets of the sparsity graph (diagonal/self loops dropped)."""
    adjacency: List[set] = [set() for _ in range(order)]
    for i, j in edges:
        i, j = int(i), int(j)
        if not (0 <= i < order and 0 <= j < order):
            raise ValueError(
                f"sparsity edge ({i}, {j}) out of range for order {order}")
        if i == j:
            continue
        adjacency[i].add(j)
        adjacency[j].add(i)
    return adjacency


def _elimination_cliques(order: int, adjacency: List[set]) -> List[frozenset]:
    """Greedy min-degree elimination with a min-fill tie-break.

    Eliminating vertex ``v`` connects its remaining neighbours into a clique
    (the *fill*); the visited clique ``{v} ∪ N(v)`` of each elimination step
    is a clique of the resulting chordal extension, and the elimination order
    is a perfect elimination ordering of it.  Greedy minimum degree is the
    standard fast heuristic; the min-fill tie-break avoids the pathological
    fill of degree ties on grids/cycles.  Ties beyond that break on the
    vertex index, keeping the whole decomposition deterministic.
    """
    remaining = set(range(order))
    work = [set(nbrs) for nbrs in adjacency]
    cliques: List[frozenset] = []
    while remaining:
        best = None
        best_key = None
        for v in sorted(remaining):
            nbrs = work[v]
            degree = len(nbrs)
            fill = 0
            nbr_list = sorted(nbrs)
            for a_pos, a in enumerate(nbr_list):
                missing = [b for b in nbr_list[a_pos + 1:] if b not in work[a]]
                fill += len(missing)
            key = (degree, fill, v)
            if best_key is None or key < best_key:
                best, best_key = v, key
        nbrs = work[best]
        cliques.append(frozenset({best} | nbrs))
        for a in nbrs:
            work[a] |= nbrs
            work[a].discard(a)
            work[a].discard(best)
        remaining.discard(best)
        work[best] = set()
        for other in remaining:
            work[other].discard(best)
    return cliques


def _maximal_cliques(cliques: Sequence[frozenset]) -> List[frozenset]:
    """Drop elimination cliques contained in another (keeps the maximal ones)."""
    ordered = sorted(set(cliques), key=lambda c: (-len(c), sorted(c)))
    maximal: List[frozenset] = []
    for clique in ordered:
        if not any(clique < kept for kept in maximal):
            maximal.append(clique)
    return maximal


def _merge_cliques(cliques: List[frozenset], merge_size: int,
                   merge_overlap: float) -> List[frozenset]:
    """Greedy size/overlap clique merging.

    Repeatedly merges the *overlapping* pair of cliques with the largest
    intersection, provided the union stays within ``merge_size`` *or* the
    overlap ratio ``|C_i ∩ C_j| / min(|C_i|, |C_j|)`` reaches
    ``merge_overlap``; disjoint cliques never merge (batched projection
    handles separate blocks natively — merging would only grow the eigh).
    Small
    highly-overlapping cliques cost more in consensus bookkeeping than the
    slightly larger merged eigh block; large disjoint-ish cliques stay split
    so the projection keeps its batched small-block shape.
    """
    merged = [set(c) for c in cliques]
    while len(merged) > 1:
        best_pair = None
        best_key = None
        for a in range(len(merged)):
            for b in range(a + 1, len(merged)):
                overlap = len(merged[a] & merged[b])
                if overlap == 0:
                    continue  # disjoint blocks: merging only grows the eigh
                union = len(merged[a] | merged[b])
                small = min(len(merged[a]), len(merged[b]))
                allowed = union <= merge_size or overlap / small >= merge_overlap
                if not allowed:
                    continue
                key = (-overlap, union, a, b)
                if best_key is None or key < best_key:
                    best_key, best_pair = key, (a, b)
        if best_pair is None:
            break
        a, b = best_pair
        merged[a] |= merged[b]
        del merged[b]
        # Re-run maximality: the merged clique may now absorb others.
        merged = [set(c) for c in _maximal_cliques(
            [frozenset(c) for c in merged])]
    return [frozenset(c) for c in merged]


def chordal_decomposition(order: int,
                          edges: Iterable[Tuple[int, int]],
                          merge_size: int = DEFAULT_MERGE_SIZE,
                          merge_overlap: float = DEFAULT_MERGE_OVERLAP,
                          ) -> Tuple[Tuple[int, ...], ...]:
    """Cliques of a chordal extension of the sparsity graph, merged and sorted.

    ``edges`` are (i, j) index pairs of potentially-nonzero off-diagonal
    entries (order and duplicates are irrelevant; self loops are ignored —
    every diagonal entry is always representable).  Vertices touched by no
    edge become singleton cliques, so the union of cliques always covers
    ``range(order)`` and every input edge lies inside at least one clique.

    Returns a tuple of cliques, each a sorted tuple of vertex indices; the
    clique list itself is sorted (by size descending, then lexicographic) so
    the output — and everything derived from it, layout tags included — is a
    pure function of the sparsity pattern.
    """
    if order <= 0:
        raise ValueError("chordal decomposition needs a positive order")
    adjacency = _normalized_edges(order, edges)
    cliques = _maximal_cliques(_elimination_cliques(order, adjacency))
    if merge_size > 1 or merge_overlap < 1.0:
        cliques = _merge_cliques(cliques, int(merge_size), float(merge_overlap))
    as_tuples = [tuple(sorted(c)) for c in cliques]
    as_tuples.sort(key=lambda c: (-len(c), c))
    covered = set()
    for clique in as_tuples:
        covered.update(clique)
    if covered != set(range(order)):
        raise RuntimeError("internal error: cliques do not cover all vertices")
    return tuple(as_tuples)


def clique_tree(cliques: Sequence[Sequence[int]]
                ) -> Tuple[Tuple[int, int], ...]:
    """Maximum-weight spanning tree over clique-intersection sizes.

    For the maximal cliques of a chordal graph this tree satisfies the
    running-intersection property: for any two cliques ``C_a``/``C_b``,
    their intersection is contained in every clique on the tree path between
    them.  Returned as ``(parent, child)`` index pairs (empty for a single
    clique); disconnected components are joined with weight-0 edges so the
    result is always a spanning tree.
    """
    sets = [set(c) for c in cliques]
    n = len(sets)
    if n <= 1:
        return ()
    in_tree = {0}
    edges: List[Tuple[int, int]] = []
    while len(in_tree) < n:
        best = None
        best_key = None
        for a in sorted(in_tree):
            for b in range(n):
                if b in in_tree:
                    continue
                key = (-len(sets[a] & sets[b]), a, b)
                if best_key is None or key < best_key:
                    best_key, best = key, (a, b)
        assert best is not None
        edges.append(best)
        in_tree.add(best[1])
    return tuple(edges)
