"""Backend registry and the single entry point :func:`solve_conic_problem`.

The SOS layer never talks to a specific solver class; it requests a backend
by name (``"admm"`` by default) so that experiments can swap or ablate the
numerical engine without touching the verification code.
"""

from __future__ import annotations

import inspect
from typing import Callable, Dict, Optional, Union

from .admm import ADMMConicSolver, ADMMSettings, WarmStart
from .problem import ConicProblem
from .projection import AlternatingProjectionSolver, ProjectionSettings
from .result import SolverResult

SolverFactory = Callable[[], object]

_BACKENDS: Dict[str, SolverFactory] = {
    "admm": ADMMConicSolver,
    "projection": AlternatingProjectionSolver,
}

DEFAULT_BACKEND = "admm"


def available_backends() -> tuple:
    return tuple(sorted(_BACKENDS))


def register_backend(name: str, factory: SolverFactory, overwrite: bool = False) -> None:
    """Register a custom solver backend (must expose ``solve(problem) -> SolverResult``)."""
    if name in _BACKENDS and not overwrite:
        raise ValueError(f"backend {name!r} already registered")
    _BACKENDS[name] = factory


def make_solver(backend: Union[str, object, None] = None, **settings):
    """Instantiate a solver backend.

    ``backend`` may be a name, an already-constructed solver object (returned
    unchanged) or ``None`` for the default.  Keyword settings are forwarded to
    the backend's settings dataclass.
    """
    if backend is None:
        backend = DEFAULT_BACKEND
    if not isinstance(backend, str):
        return backend
    if backend not in _BACKENDS:
        raise KeyError(f"unknown solver backend {backend!r}; available: {available_backends()}")
    if backend == "admm":
        return ADMMConicSolver(ADMMSettings(**settings)) if settings else ADMMConicSolver()
    if backend == "projection":
        return AlternatingProjectionSolver(ProjectionSettings(**settings)) \
            if settings else AlternatingProjectionSolver()
    factory = _BACKENDS[backend]
    return factory(**settings) if settings else factory()


def solve_conic_problem(problem: ConicProblem,
                        backend: Union[str, object, None] = None,
                        warm_start: Optional[WarmStart] = None,
                        **settings) -> SolverResult:
    """Solve a conic problem with the requested backend.

    ``warm_start`` is forwarded to backends that support it (the built-in ADMM
    and alternating-projection solvers); other backends are called without it.
    Pass the ``warm_start_data`` dict from a previous result on a structurally
    identical problem to accelerate sequential solves.
    """
    solver = make_solver(backend, **settings)
    if warm_start is not None and _accepts_warm_start(solver):
        return solver.solve(problem, warm_start=warm_start)
    return solver.solve(problem)


def _accepts_warm_start(solver: object) -> bool:
    try:
        return "warm_start" in inspect.signature(solver.solve).parameters
    except (TypeError, ValueError):  # pragma: no cover - exotic callables
        return False
