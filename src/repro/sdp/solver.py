"""Backend registry and the single entry point :func:`solve_conic_problem`.

The SOS layer never talks to a specific solver class; it requests a backend
by name (``"admm"`` by default) so that experiments can swap or ablate the
numerical engine without touching the verification code.
"""

from __future__ import annotations

import inspect
from typing import Callable, Dict, List, Optional, Sequence, Union

from .admm import ADMMConicSolver, ADMMSettings, WarmStart
from .batch import BatchADMMSolver
from .problem import ConicProblem
from .projection import AlternatingProjectionSolver, ProjectionSettings
from .result import SolverResult

SolverFactory = Callable[[], object]

_BACKENDS: Dict[str, SolverFactory] = {
    "admm": ADMMConicSolver,
    "batch_admm": BatchADMMSolver,
    "projection": AlternatingProjectionSolver,
}

DEFAULT_BACKEND = "admm"


def available_backends() -> tuple:
    return tuple(sorted(_BACKENDS))


def register_backend(name: str, factory: SolverFactory, overwrite: bool = False) -> None:
    """Register a custom solver backend (must expose ``solve(problem) -> SolverResult``)."""
    if name in _BACKENDS and not overwrite:
        raise ValueError(f"backend {name!r} already registered")
    _BACKENDS[name] = factory


def make_solver(backend: Union[str, object, None] = None, **settings):
    """Instantiate a solver backend.

    ``backend`` may be a name, an already-constructed solver object (returned
    unchanged) or ``None`` for the default.  Keyword settings are forwarded to
    the backend's settings dataclass.
    """
    if backend is None:
        backend = DEFAULT_BACKEND
    if not isinstance(backend, str):
        return backend
    if backend not in _BACKENDS:
        raise KeyError(f"unknown solver backend {backend!r}; available: {available_backends()}")
    if backend == "admm":
        return ADMMConicSolver(ADMMSettings(**settings)) if settings else ADMMConicSolver()
    if backend == "batch_admm":
        return BatchADMMSolver(ADMMSettings(**settings)) if settings else BatchADMMSolver()
    if backend == "projection":
        return AlternatingProjectionSolver(ProjectionSettings(**settings)) \
            if settings else AlternatingProjectionSolver()
    factory = _BACKENDS[backend]
    return factory(**settings) if settings else factory()


def solve_conic_problem(problem: ConicProblem,
                        backend: Union[str, object, None] = None,
                        warm_start: Optional[WarmStart] = None,
                        **settings) -> SolverResult:
    """Solve a conic problem with the requested backend.

    ``warm_start`` is forwarded to backends that support it (the built-in ADMM
    and alternating-projection solvers); other backends are called without it.
    Pass the ``warm_start_data`` dict from a previous result on a structurally
    identical problem to accelerate sequential solves.
    """
    solver = make_solver(backend, **settings)
    if warm_start is not None and _accepts_warm_start(solver):
        return solver.solve(problem, warm_start=warm_start)
    return solver.solve(problem)


def solve_conic_problems(problems: Sequence[ConicProblem],
                         backend: Union[str, object, None] = None,
                         warm_starts: Optional[Sequence[Optional[WarmStart]]] = None,
                         **settings) -> List[SolverResult]:
    """Solve a batch of structurally identical conic problems.

    The ADMM backend (the default) routes the whole batch through
    :class:`~repro.sdp.batch.BatchADMMSolver` — one iteration loop, stacked
    cone projections, multi-RHS KKT solves and per-problem convergence
    masking.  Other backends are solved sequentially with per-problem warm
    starts.  Per-problem statuses match solving each problem alone.
    """
    problems = list(problems)
    if warm_starts is None:
        warm_starts = [None] * len(problems)
    warm_starts = list(warm_starts)
    if len(warm_starts) != len(problems):
        raise ValueError("warm_starts must align with problems")
    if backend is None or backend in ("admm", "batch_admm"):
        solver = BatchADMMSolver(ADMMSettings(**settings)) if settings else BatchADMMSolver()
        return solver.solve_batch(problems, warm_starts)
    if isinstance(backend, BatchADMMSolver):
        return backend.solve_batch(problems, warm_starts)
    if isinstance(backend, ADMMConicSolver):
        return BatchADMMSolver(backend.settings).solve_batch(problems, warm_starts)
    return [solve_conic_problem(problem, backend=backend, warm_start=ws, **settings)
            for problem, ws in zip(problems, warm_starts)]


def _accepts_warm_start(solver: object) -> bool:
    try:
        return "warm_start" in inspect.signature(solver.solve).parameters
    except (TypeError, ValueError):  # pragma: no cover - exotic callables
        return False
