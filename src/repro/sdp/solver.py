"""Backend registry and the :func:`solve_conic_problem` entry points.

The SOS layer never talks to a specific solver class; it requests a backend
by name (``"admm"`` by default) so that experiments can swap or ablate the
numerical engine without touching the verification code.

Cross-cutting solver state — the result cache, the solve counters, backend
defaults — lives in a :class:`~repro.sdp.context.SolveContext`.  The
functions here accept an explicit ``context=``; when omitted they fall back
to the process-default context, which is what the deprecated module-level
state accessors (:func:`set_solve_cache`, :func:`reset_solve_counters`)
manipulate.  New code should hold its own context (usually through
:class:`repro.api.VerificationSession`) instead of mutating the default one.
"""

from __future__ import annotations

import dataclasses
import hashlib
import inspect
import warnings
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..utils import get_logger
from .admm import ADMMConicSolver, ADMMSettings, WarmStart
from .batch import BatchADMMSolver
from .problem import ConicProblem
from .projection import AlternatingProjectionSolver, ProjectionSettings
from .result import SolverResult

LOGGER = get_logger("sdp.solver")

SolverFactory = Callable[[], object]


def _settings_for(settings_cls, settings: Dict[str, object]) -> Dict[str, object]:
    """Drop keyword settings the backend's settings dataclass does not know.

    Scenario options carry one ``solver_settings`` dict tuned for the default
    backend; swapping backends (``--backend projection``) must not crash on
    tuning knobs the other backend has no counterpart for.  Only keys that
    belong to *some* built-in backend are dropped (and logged); a key no
    backend recognises is a typo and still raises ``TypeError``, preserving
    the pre-swap validation.
    """
    known = {field.name for field in dataclasses.fields(settings_cls)}
    kept = {key: value for key, value in settings.items() if key in known}
    dropped = sorted(set(settings) - known)
    if dropped:
        recognised = set()
        for cls in (ADMMSettings, ProjectionSettings):
            recognised |= {field.name for field in dataclasses.fields(cls)}
        bogus = [key for key in dropped if key not in recognised]
        if bogus:
            raise TypeError(
                f"unknown solver setting(s) {bogus} (not accepted by any "
                f"built-in backend; {settings_cls.__name__} accepts {sorted(known)})")
        LOGGER.info("backend %s ignores solver settings %s",
                    settings_cls.__name__, dropped)
    return kept


def effective_solver_settings(backend: Union[str, object, None],
                              settings: Dict[str, object]) -> Dict[str, object]:
    """The settings a named built-in backend will actually consume.

    Used to normalise cache keys: two solves whose settings differ only in
    knobs the backend ignores are the same solve and must share a cache
    entry.  Unknown backend names and backend objects pass through unchanged
    (their factories decide what they accept).
    """
    if backend is None or backend in ("admm", "batch_admm"):
        return _settings_for(ADMMSettings, settings)
    if backend == "projection":
        return _settings_for(ProjectionSettings, settings)
    return dict(settings)


def solve_counters(context: Optional[object] = None) -> Dict[str, int]:
    """Snapshot of a context's conic solve counters (default context if none).

    ``solved`` counts actual conic solves performed by a backend,
    ``cache_hit`` counts solves served from the context's cache.  Each event
    is additionally keyed by the problem's cone layout kind (``solved:psd``,
    ``cache_hit:dd``, …; see
    :attr:`repro.sdp.problem.ConicProblem.layout_kind`).
    """
    from .context import default_context

    return (context or default_context()).solve_counters()


def reset_solve_counters() -> None:
    """Deprecated: reset the *default* context's solve counters.

    Session-scoped code never needs this — a fresh
    :class:`~repro.sdp.context.SolveContext` starts at zero.
    """
    warnings.warn(
        "reset_solve_counters() mutates process-global state; create a "
        "SolveContext (or repro.api.VerificationSession) instead",
        DeprecationWarning, stacklevel=2)
    from .context import default_context

    default_context().reset_solve_counters()


def set_solve_cache(cache: Optional[object]) -> Optional[object]:
    """Deprecated: install (or clear, with ``None``) the default context's cache.

    Returns the previously installed cache so callers can restore it.  New
    code should pass ``cache=`` to a :class:`~repro.sdp.context.SolveContext`
    or :class:`repro.api.VerificationSession` instead of mutating the
    process-wide default.
    """
    warnings.warn(
        "set_solve_cache() mutates process-global state; create a "
        "SolveContext (or repro.api.VerificationSession) with cache= instead",
        DeprecationWarning, stacklevel=2)
    from .context import default_context

    return default_context().set_cache(cache)


def get_solve_cache(context: Optional[object] = None) -> Optional[object]:
    """The cache installed on ``context`` (default context if none)."""
    from .context import default_context

    return (context or default_context()).cache


def canonical_solver_options(backend: Union[str, object, None],
                             settings: Dict[str, object]) -> str:
    """Deterministic text form of (backend, settings) for cache keys.

    Backend objects (rather than names) are identified by their class name and
    settings dataclass repr; keyword settings are sorted by key.  Two solves
    configured identically therefore serialise identically across processes.
    A backend object that exposes no ``settings`` attribute falls back to its
    full ``repr`` — for default reprs this includes the object id, which
    biases the cache towards misses rather than ever serving a result solved
    under unknown, possibly different, configuration.
    """
    if backend is None:
        backend_token = DEFAULT_BACKEND
    elif isinstance(backend, str):
        backend_token = backend
    else:
        inner = getattr(backend, "settings", None)
        if inner is not None:
            backend_token = f"{type(backend).__name__}({inner!r})"
        else:
            backend_token = repr(backend)
    items = ", ".join(f"{key}={settings[key]!r}" for key in sorted(settings))
    return f"{backend_token}|{items}"


def solve_cache_key(problem: ConicProblem,
                    backend: Union[str, object, None],
                    settings: Dict[str, object]) -> str:
    """Content-addressed cache key: problem data hash + solver options."""
    options = canonical_solver_options(backend, settings)
    digest = hashlib.sha256()
    digest.update(problem.fingerprint().encode("ascii"))
    digest.update(b"|")
    digest.update(options.encode("utf-8"))
    return digest.hexdigest()

_BACKENDS: Dict[str, SolverFactory] = {
    "admm": ADMMConicSolver,
    "batch_admm": BatchADMMSolver,
    "projection": AlternatingProjectionSolver,
}

DEFAULT_BACKEND = "admm"


def available_backends() -> tuple:
    return tuple(sorted(_BACKENDS))


def register_backend(name: str, factory: SolverFactory, overwrite: bool = False) -> None:
    """Register a custom solver backend (must expose ``solve(problem) -> SolverResult``)."""
    if name in _BACKENDS and not overwrite:
        raise ValueError(f"backend {name!r} already registered")
    _BACKENDS[name] = factory


def make_solver(backend: Union[str, object, None] = None, **settings):
    """Instantiate a solver backend.

    ``backend`` may be a name, an already-constructed solver object (returned
    unchanged) or ``None`` for the default.  Keyword settings are forwarded to
    the backend's settings dataclass.
    """
    if backend is None:
        backend = DEFAULT_BACKEND
    if not isinstance(backend, str):
        return backend
    if backend not in _BACKENDS:
        raise KeyError(f"unknown solver backend {backend!r}; available: {available_backends()}")
    if backend in ("admm", "batch_admm"):
        settings = _settings_for(ADMMSettings, settings)
        solver_cls = ADMMConicSolver if backend == "admm" else BatchADMMSolver
        return solver_cls(ADMMSettings(**settings)) if settings else solver_cls()
    if backend == "projection":
        settings = _settings_for(ProjectionSettings, settings)
        return AlternatingProjectionSolver(ProjectionSettings(**settings)) \
            if settings else AlternatingProjectionSolver()
    factory = _BACKENDS[backend]
    return factory(**settings) if settings else factory()


def solve_conic_problem(problem: ConicProblem,
                        backend: Union[str, object, None] = None,
                        warm_start: Optional[WarmStart] = None,
                        context: Optional[object] = None,
                        **settings) -> SolverResult:
    """Solve a conic problem with the requested backend.

    ``context`` is the :class:`~repro.sdp.context.SolveContext` whose cache,
    counters and defaults govern this solve; ``None`` uses the process
    default.  ``warm_start`` is forwarded to backends that support it (the
    built-in ADMM and alternating-projection solvers); other backends are
    called without it.  Pass the ``warm_start_data`` dict from a previous
    result on a structurally identical problem to accelerate sequential
    solves.
    """
    from .context import default_context

    return (context or default_context()).solve(
        problem, backend=backend, warm_start=warm_start, **settings)


def solve_conic_problems(problems: Sequence[ConicProblem],
                         backend: Union[str, object, None] = None,
                         warm_starts: Optional[Sequence[Optional[WarmStart]]] = None,
                         context: Optional[object] = None,
                         **settings) -> List[SolverResult]:
    """Solve a batch of structurally identical conic problems.

    The ADMM backend (the default) routes the whole batch through
    :class:`~repro.sdp.batch.BatchADMMSolver` — one iteration loop, stacked
    cone projections, multi-RHS KKT solves and per-problem convergence
    masking.  Other backends are solved sequentially with per-problem warm
    starts.  Per-problem statuses match solving each problem alone.
    ``context`` selects the governing :class:`~repro.sdp.context.SolveContext`
    (the process default when ``None``).
    """
    from .context import default_context

    return (context or default_context()).solve_many(
        problems, backend=backend, warm_starts=warm_starts, **settings)


def solve_batch_uncached(problems: List[ConicProblem],
                         backend: Union[str, object, None],
                         warm_starts: List[Optional[WarmStart]],
                         settings: Dict[str, object]) -> List[SolverResult]:
    """Raw batch solve — no cache, no counters (used by :class:`SolveContext`)."""
    if backend is None or backend in ("admm", "batch_admm"):
        settings = _settings_for(ADMMSettings, settings)
        solver = BatchADMMSolver(ADMMSettings(**settings)) if settings else BatchADMMSolver()
        return solver.solve_batch(problems, warm_starts)
    if isinstance(backend, BatchADMMSolver):
        return backend.solve_batch(problems, warm_starts)
    if isinstance(backend, ADMMConicSolver):
        return BatchADMMSolver(backend.settings).solve_batch(problems, warm_starts)
    return [solve_single_uncached(problem, backend, ws, settings)
            for problem, ws in zip(problems, warm_starts)]


def solve_single_uncached(problem: ConicProblem,
                          backend: Union[str, object, None],
                          warm_start: Optional[WarmStart],
                          settings: Dict[str, object]) -> SolverResult:
    """Raw single solve — no cache, no counters (used by :class:`SolveContext`)."""
    solver = make_solver(backend, **settings)
    if warm_start is not None and _accepts_warm_start(solver):
        return solver.solve(problem, warm_start=warm_start)
    return solver.solve(problem)


def _accepts_warm_start(solver: object) -> bool:
    try:
        return "warm_start" in inspect.signature(solver.solve).parameters
    except (TypeError, ValueError):  # pragma: no cover - exotic callables
        return False
