"""Backend registry and the single entry point :func:`solve_conic_problem`.

The SOS layer never talks to a specific solver class; it requests a backend
by name (``"admm"`` by default) so that experiments can swap or ablate the
numerical engine without touching the verification code.
"""

from __future__ import annotations

import hashlib
import inspect
from typing import Callable, Dict, List, Optional, Sequence, Union

from .admm import ADMMConicSolver, ADMMSettings, WarmStart
from .batch import BatchADMMSolver
from .problem import ConicProblem
from .projection import AlternatingProjectionSolver, ProjectionSettings
from .result import SolverResult

SolverFactory = Callable[[], object]

# Process-wide solve accounting, mirroring ``repro.sos.compile_counters``:
# ``solved`` counts actual conic solves performed by a backend, ``cache_hit``
# counts solves served from the installed solve cache.  The verification
# engine asserts against these that a warm-cache re-verification performs
# zero SDP solves.  Each event is additionally keyed by the problem's cone
# layout kind (``solved:psd``, ``solved:sdd``, ``cache_hit:dd``, ...) so
# cache and parity tests can assert *which* Gram-cone relaxation actually
# solved (see :attr:`repro.sdp.problem.ConicProblem.layout_kind`).
_BASE_COUNTERS = ("solved", "cache_hit")
_SOLVE_COUNTERS: Dict[str, int] = {key: 0 for key in _BASE_COUNTERS}


def _count_solve_event(event: str, problem: ConicProblem, amount: int = 1) -> None:
    _SOLVE_COUNTERS[event] = _SOLVE_COUNTERS.get(event, 0) + amount
    keyed = f"{event}:{problem.layout_kind}"
    _SOLVE_COUNTERS[keyed] = _SOLVE_COUNTERS.get(keyed, 0) + amount


def solve_counters() -> Dict[str, int]:
    """Snapshot of the process-wide conic solve counters."""
    return dict(_SOLVE_COUNTERS)


def reset_solve_counters() -> None:
    _SOLVE_COUNTERS.clear()
    _SOLVE_COUNTERS.update({key: 0 for key in _BASE_COUNTERS})


# Optional pluggable result cache.  Any object with ``get(key) ->
# Optional[SolverResult]`` and ``put(key, result)`` works; the engine installs
# a content-addressed on-disk :class:`repro.engine.cache.CertificateCache`.
#
# Policy: EVERY terminal result is cached, including failure statuses
# (MAX_ITERATIONS, INFEASIBLE_SUSPECTED) — in this pipeline a rejected
# feasibility probe is a meaningful outcome (e.g. a rejected level in the
# level-ladder), and replaying it keeps a warm-cache run a bit-identical,
# zero-solve replay of the cold run.  The key intentionally excludes warm
# starts (they affect the path, not the validity, of a result); callers who
# want a fresh attempt at a previously failed solve bypass the cache.
_SOLVE_CACHE: Optional[object] = None


def set_solve_cache(cache: Optional[object]) -> Optional[object]:
    """Install (or clear, with ``None``) the process-wide solve cache.

    Returns the previously installed cache so callers can restore it.
    """
    global _SOLVE_CACHE
    previous = _SOLVE_CACHE
    _SOLVE_CACHE = cache
    return previous


def get_solve_cache() -> Optional[object]:
    return _SOLVE_CACHE


def canonical_solver_options(backend: Union[str, object, None],
                             settings: Dict[str, object]) -> str:
    """Deterministic text form of (backend, settings) for cache keys.

    Backend objects (rather than names) are identified by their class name and
    settings dataclass repr; keyword settings are sorted by key.  Two solves
    configured identically therefore serialise identically across processes.
    A backend object that exposes no ``settings`` attribute falls back to its
    full ``repr`` — for default reprs this includes the object id, which
    biases the cache towards misses rather than ever serving a result solved
    under unknown, possibly different, configuration.
    """
    if backend is None:
        backend_token = DEFAULT_BACKEND
    elif isinstance(backend, str):
        backend_token = backend
    else:
        inner = getattr(backend, "settings", None)
        if inner is not None:
            backend_token = f"{type(backend).__name__}({inner!r})"
        else:
            backend_token = repr(backend)
    items = ", ".join(f"{key}={settings[key]!r}" for key in sorted(settings))
    return f"{backend_token}|{items}"


def solve_cache_key(problem: ConicProblem,
                    backend: Union[str, object, None],
                    settings: Dict[str, object]) -> str:
    """Content-addressed cache key: problem data hash + solver options."""
    options = canonical_solver_options(backend, settings)
    digest = hashlib.sha256()
    digest.update(problem.fingerprint().encode("ascii"))
    digest.update(b"|")
    digest.update(options.encode("utf-8"))
    return digest.hexdigest()

_BACKENDS: Dict[str, SolverFactory] = {
    "admm": ADMMConicSolver,
    "batch_admm": BatchADMMSolver,
    "projection": AlternatingProjectionSolver,
}

DEFAULT_BACKEND = "admm"


def available_backends() -> tuple:
    return tuple(sorted(_BACKENDS))


def register_backend(name: str, factory: SolverFactory, overwrite: bool = False) -> None:
    """Register a custom solver backend (must expose ``solve(problem) -> SolverResult``)."""
    if name in _BACKENDS and not overwrite:
        raise ValueError(f"backend {name!r} already registered")
    _BACKENDS[name] = factory


def make_solver(backend: Union[str, object, None] = None, **settings):
    """Instantiate a solver backend.

    ``backend`` may be a name, an already-constructed solver object (returned
    unchanged) or ``None`` for the default.  Keyword settings are forwarded to
    the backend's settings dataclass.
    """
    if backend is None:
        backend = DEFAULT_BACKEND
    if not isinstance(backend, str):
        return backend
    if backend not in _BACKENDS:
        raise KeyError(f"unknown solver backend {backend!r}; available: {available_backends()}")
    if backend == "admm":
        return ADMMConicSolver(ADMMSettings(**settings)) if settings else ADMMConicSolver()
    if backend == "batch_admm":
        return BatchADMMSolver(ADMMSettings(**settings)) if settings else BatchADMMSolver()
    if backend == "projection":
        return AlternatingProjectionSolver(ProjectionSettings(**settings)) \
            if settings else AlternatingProjectionSolver()
    factory = _BACKENDS[backend]
    return factory(**settings) if settings else factory()


def solve_conic_problem(problem: ConicProblem,
                        backend: Union[str, object, None] = None,
                        warm_start: Optional[WarmStart] = None,
                        **settings) -> SolverResult:
    """Solve a conic problem with the requested backend.

    ``warm_start`` is forwarded to backends that support it (the built-in ADMM
    and alternating-projection solvers); other backends are called without it.
    Pass the ``warm_start_data`` dict from a previous result on a structurally
    identical problem to accelerate sequential solves.
    """
    cache = _SOLVE_CACHE
    key: Optional[str] = None
    if cache is not None:
        key = solve_cache_key(problem, backend, settings)
        cached = cache.get(key)
        if cached is not None:
            _count_solve_event("cache_hit", problem)
            return cached
    result = _solve_single_uncached(problem, backend, warm_start, settings)
    _count_solve_event("solved", problem)
    if cache is not None and key is not None:
        cache.put(key, result)
    return result


def solve_conic_problems(problems: Sequence[ConicProblem],
                         backend: Union[str, object, None] = None,
                         warm_starts: Optional[Sequence[Optional[WarmStart]]] = None,
                         **settings) -> List[SolverResult]:
    """Solve a batch of structurally identical conic problems.

    The ADMM backend (the default) routes the whole batch through
    :class:`~repro.sdp.batch.BatchADMMSolver` — one iteration loop, stacked
    cone projections, multi-RHS KKT solves and per-problem convergence
    masking.  Other backends are solved sequentially with per-problem warm
    starts.  Per-problem statuses match solving each problem alone.
    """
    problems = list(problems)
    if warm_starts is None:
        warm_starts = [None] * len(problems)
    warm_starts = list(warm_starts)
    if len(warm_starts) != len(problems):
        raise ValueError("warm_starts must align with problems")

    cache = _SOLVE_CACHE
    results: List[Optional[SolverResult]] = [None] * len(problems)
    keys: List[Optional[str]] = [None] * len(problems)
    pending = list(range(len(problems)))
    if cache is not None:
        pending = []
        for i, problem in enumerate(problems):
            keys[i] = solve_cache_key(problem, backend, settings)
            cached = cache.get(keys[i])
            if cached is not None:
                _count_solve_event("cache_hit", problem)
                results[i] = cached
            else:
                pending.append(i)
    if pending:
        sub_problems = [problems[i] for i in pending]
        sub_starts = [warm_starts[i] for i in pending]
        solved = _solve_batch_uncached(sub_problems, backend, sub_starts, settings)
        for problem in sub_problems:
            _count_solve_event("solved", problem)
        for i, result in zip(pending, solved):
            results[i] = result
            if cache is not None and keys[i] is not None:
                cache.put(keys[i], result)
    return results  # type: ignore[return-value]


def _solve_batch_uncached(problems: List[ConicProblem],
                          backend: Union[str, object, None],
                          warm_starts: List[Optional[WarmStart]],
                          settings: Dict[str, object]) -> List[SolverResult]:
    if backend is None or backend in ("admm", "batch_admm"):
        solver = BatchADMMSolver(ADMMSettings(**settings)) if settings else BatchADMMSolver()
        return solver.solve_batch(problems, warm_starts)
    if isinstance(backend, BatchADMMSolver):
        return backend.solve_batch(problems, warm_starts)
    if isinstance(backend, ADMMConicSolver):
        return BatchADMMSolver(backend.settings).solve_batch(problems, warm_starts)
    return [_solve_single_uncached(problem, backend, ws, settings)
            for problem, ws in zip(problems, warm_starts)]


def _solve_single_uncached(problem: ConicProblem,
                           backend: Union[str, object, None],
                           warm_start: Optional[WarmStart],
                           settings: Dict[str, object]) -> SolverResult:
    solver = make_solver(backend, **settings)
    if warm_start is not None and _accepts_warm_start(solver):
        return solver.solve(problem, warm_start=warm_start)
    return solver.solve(problem)


def _accepts_warm_start(solver: object) -> bool:
    try:
        return "warm_start" in inspect.signature(solver.solve).parameters
    except (TypeError, ValueError):  # pragma: no cover - exotic callables
        return False
