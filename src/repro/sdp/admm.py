"""ADMM (operator-splitting) solver for conic SDPs.

This is the default backend.  The algorithm is the classic consensus split

    minimize  c^T x + I_{Ax=b}(x) + I_K(z)     subject to  x = z

with iterations

    x^{k+1} = argmin_x  c^T x + (rho/2) ||x - (z^k - u^k)||^2   s.t.  A x = b
    z^{k+1} = Proj_K(x^{k+1} + u^k)
    u^{k+1} = u^k + x^{k+1} - z^{k+1}

The x-update is an equality-constrained quadratic programme whose KKT matrix
is constant across iterations, so it is factorised once (sparse LU with a
small diagonal regularisation that also absorbs redundant equality rows).
This is the same splitting used by SCS-style solvers, specialised to equality
constraints plus cone membership, which is exactly the shape of SOS
feasibility problems.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

import numpy as np
import scipy.sparse as sp

from .backend import resolve_array_backend
from .cones import project_onto_cone
from .problem import ConicProblem
from .result import SolveHistory, SolverResult, SolverStatus
from .scaling import presolve

WarmStart = Union[Dict[str, np.ndarray], Tuple[np.ndarray, np.ndarray, np.ndarray]]


def unpack_warm_start(warm_start: Optional[WarmStart],
                      num_variables: int) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Normalise a warm start into ``(x, z, u)`` arrays, or ``None``.

    Accepts a dict with ``x``/``z``/``u`` keys (the ``warm_start_data`` dict
    attached to :class:`SolverResult`), a plain 3-tuple, or a previous
    :class:`SolverResult`.  Silently rejects starts whose dimension does not
    match the problem (a sequential solve with a different structure).
    """
    if warm_start is None:
        return None
    if isinstance(warm_start, SolverResult):
        warm_start = warm_start.info.get("warm_start_data")  # type: ignore[assignment]
        if warm_start is None:
            return None
    if isinstance(warm_start, dict):
        parts = (warm_start.get("x"), warm_start.get("z"), warm_start.get("u"))
    else:
        parts = tuple(warm_start)  # type: ignore[assignment]
        if len(parts) != 3:
            return None
    arrays = []
    for part in parts:
        if part is None:
            return None
        arr = np.asarray(part, dtype=float).ravel()
        if arr.shape[0] != num_variables:
            return None
        arrays.append(arr.copy())
    return arrays[0], arrays[1], arrays[2]


@dataclass
class ADMMSettings:
    """Tuning knobs of the ADMM backend."""

    max_iterations: int = 20000
    rho: float = 1.0
    adaptive_rho: bool = True
    rho_update_interval: int = 100
    eps_abs: float = 1e-7
    eps_rel: float = 1e-6
    kkt_regularization: float = 1e-9
    stall_window: int = 2500
    stall_improvement: float = 0.9
    scale_problem: bool = True
    over_relaxation: float = 1.6
    history_stride: int = 25
    verbose: bool = False
    #: Early infeasibility detection (SCS/OSQP-style divergence check): on an
    #: infeasible instance the splitting converges to the positive distance
    #: between the affine set and the cone, so the primal residual locks onto
    #: a plateau far above the feasibility tolerance while the dual residual
    #: stays below it.  A plateau stable to ``infeasibility_rel_change``
    #: across ``infeasibility_streak`` consecutive check windows fires
    #: thousands of iterations before the generic stall window — this is
    #: what makes rejected levels cheap in bisection/K-section loops.
    infeasibility_detection: bool = True
    infeasibility_interval: int = 100
    infeasibility_min_iteration: int = 300
    infeasibility_rel_change: float = 1e-3
    infeasibility_streak: int = 2
    #: Array namespace of the iteration loop: ``"auto"`` (an accelerator when
    #: one is usable, NumPy otherwise), ``"numpy"``, ``"cupy"`` or ``"torch"``.
    #: Problems, warm starts and results stay NumPy; iterates live on the
    #: selected backend and cross the boundary once per solve.
    array_backend: str = "auto"
    #: Asynchronous batch mode (:class:`~repro.sdp.batch.BatchADMMSolver`
    #: only): converged/stalled problems retire from the stacked projection
    #: immediately via active-set compaction, and residual/termination
    #: bookkeeping runs every ``staleness_bound`` iterations instead of every
    #: iteration — individual problems may therefore run up to
    #: ``staleness_bound`` iterations past their synchronous stopping point
    #: (bounded staleness), with statuses unchanged.
    async_mode: bool = False
    staleness_bound: int = 25


# Positional construction predates the array-backend/async knobs; it still
# works (the new fields sit at the end of the dataclass) but is fragile
# against future growth, so steer callers to keywords.
_ADMM_SETTINGS_INIT = ADMMSettings.__init__


def _admm_settings_init(self, *args, **kwargs):
    if args:
        warnings.warn(
            "positional ADMMSettings arguments are deprecated; pass settings "
            "by keyword (ADMMSettings(max_iterations=..., rho=...))",
            DeprecationWarning, stacklevel=2)
    _ADMM_SETTINGS_INIT(self, *args, **kwargs)


ADMMSettings.__init__ = _admm_settings_init


class ADMMConicSolver:
    """Operator-splitting conic solver (free, nonneg and PSD cones)."""

    def __init__(self, settings: Optional[ADMMSettings] = None):
        self.settings = settings or ADMMSettings()

    # ------------------------------------------------------------------
    def solve(self, problem: ConicProblem,
              warm_start: Optional[WarmStart] = None) -> SolverResult:
        """Solve ``problem``; optionally warm-start ``(x, z, u)``.

        Warm starts come from the ``warm_start_data`` entry of a previous
        :class:`SolverResult` on a structurally identical problem (sequential
        level-set bisection queries, parameter sweeps).  Row equilibration
        only rescales the equality rows, so primal iterates transfer between
        scaled problems unchanged.
        """
        start = time.perf_counter()
        settings = self.settings
        original = problem
        try:
            problem, scaling = presolve(problem, scale=settings.scale_problem)
        except ValueError as exc:
            return SolverResult(
                status=SolverStatus.INFEASIBLE_SUSPECTED,
                info={"reason": str(exc)},
                solve_time=time.perf_counter() - start,
            )

        n = problem.num_variables
        m = problem.num_constraints
        dims = problem.dims
        c = problem.c
        A = problem.A.tocsc()
        b = problem.b
        xb = resolve_array_backend(settings.array_backend)

        rho = settings.rho
        # KKT matrix [[rho I, A^T], [A, -reg I]]; refactorised when rho changes.
        def factorize(current_rho: float):
            upper = sp.hstack([current_rho * sp.identity(n, format="csc"), A.T])
            lower = sp.hstack([A, -settings.kkt_regularization * sp.identity(m, format="csc")])
            kkt = sp.vstack([upper, lower]).tocsc()
            return xb.kkt_factor(kkt)

        try:
            lu = factorize(rho)
        except RuntimeError as exc:  # pragma: no cover - singular KKT is pathological
            return SolverResult(
                status=SolverStatus.NUMERICAL_ERROR,
                info={"reason": f"KKT factorization failed: {exc}"},
                solve_time=time.perf_counter() - start,
            )

        initial = unpack_warm_start(warm_start, n)
        if initial is not None:
            x, z, u = (xb.from_host(part) for part in initial)
        else:
            x = xb.zeros(n)
            z = xb.zeros(n)
            u = xb.zeros(n)
        c_dev = xb.from_host(c)
        b_dev = xb.from_host(b)
        # Persistent right-hand-side buffer: the only per-iteration allocation
        # left on the x-update path is the triangular solve's own output.  The
        # lower block is the constant b, written once.
        rhs = xb.empty(n + m)
        rhs[n:] = b_dev
        history = SolveHistory()
        status = SolverStatus.MAX_ITERATIONS
        # Stall detection: track the best primal residual seen so far and when it
        # last improved by a meaningful relative amount.
        best_primal = np.inf
        best_primal_at = 0
        alpha = settings.over_relaxation
        dual_residual = float("nan")
        primal_snapshot = np.inf
        frozen_streak = 0
        sqrt_n = float(np.sqrt(n))

        iteration = 0
        for iteration in range(1, settings.max_iterations + 1):
            rhs_x = rhs[:n]
            rhs_x[:] = z
            rhs_x -= u
            rhs_x *= rho
            rhs_x -= c_dev
            sol = lu.solve(rhs)
            x = sol[:n]
            x_relaxed = alpha * x + (1.0 - alpha) * z
            z_prev = z
            z = project_onto_cone(x_relaxed + u, dims, backend=xb)
            u = u + x_relaxed - z

            primal_residual = xb.vec_norm(x - z)
            dual_residual = rho * xb.vec_norm(z - z_prev)
            scale_primal = max(xb.vec_norm(x), xb.vec_norm(z), 1.0)
            scale_dual = max(rho * xb.vec_norm(u), 1.0)
            eps_primal = settings.eps_abs * sqrt_n + settings.eps_rel * scale_primal
            eps_dual = settings.eps_abs * sqrt_n + settings.eps_rel * scale_dual

            if iteration % settings.history_stride == 0 or iteration == 1:
                history.record(primal_residual, dual_residual, xb.vec_dot(c_dev, x))

            if primal_residual < best_primal * settings.stall_improvement:
                best_primal_at = iteration
            best_primal = min(best_primal, primal_residual)

            if primal_residual <= eps_primal and dual_residual <= eps_dual:
                status = SolverStatus.OPTIMAL
                break

            # Early infeasibility detection: the primal residual locked onto a
            # plateau far above feasibility (with the dual residual below it)
            # means the split has converged to the affine-set/cone separation.
            if settings.infeasibility_detection and \
                    iteration % settings.infeasibility_interval == 0:
                if iteration >= settings.infeasibility_min_iteration:
                    frozen = primal_residual > 100 * eps_primal and \
                        dual_residual < primal_residual and \
                        abs(primal_residual - primal_snapshot) <= \
                        settings.infeasibility_rel_change * primal_residual
                    frozen_streak = frozen_streak + 1 if frozen else 0
                else:
                    frozen_streak = 0
                primal_snapshot = primal_residual
                if frozen_streak >= settings.infeasibility_streak:
                    status = SolverStatus.INFEASIBLE_SUSPECTED
                    break

            # Stall detection: the primal residual has not improved meaningfully
            # for a long stretch while remaining far from feasibility — for a
            # feasibility problem this strongly suggests infeasibility.
            if (iteration - best_primal_at) > settings.stall_window and \
                    primal_residual > 100 * eps_primal:
                status = SolverStatus.INFEASIBLE_SUSPECTED
                break

            if settings.adaptive_rho and iteration % settings.rho_update_interval == 0:
                if primal_residual > 10.0 * dual_residual and rho < 1e6:
                    rho *= 2.0
                    u /= 2.0
                    lu = factorize(rho)
                elif dual_residual > 10.0 * primal_residual and rho > 1e-6:
                    rho /= 2.0
                    u *= 2.0
                    lu = factorize(rho)

        # Report the cone-feasible iterate z (it satisfies the cone exactly and
        # Ax = b approximately through x ≈ z); iterates cross back to the host
        # exactly once, here at the ConicProblem boundary.
        x_host = xb.to_host(x)
        z_host = xb.to_host(z)
        u_host = xb.to_host(u)
        candidate = z_host
        equality_residual = original.equality_residual(candidate)
        violation = original.cone_violation(candidate)
        objective = original.objective_value(candidate)

        if status == SolverStatus.OPTIMAL and np.allclose(original.c, 0.0):
            status = SolverStatus.FEASIBLE

        solve_time = time.perf_counter() - start
        result = SolverResult(
            status=status,
            x=candidate,
            objective=objective,
            primal_residual=float(np.linalg.norm(x_host - z_host)),
            dual_residual=float(dual_residual),
            equality_residual=equality_residual,
            cone_violation=violation,
            iterations=iteration,
            solve_time=solve_time,
            info={
                "rho_final": rho,
                "history": history,
                "scaled": scaling is not None,
                "warm_started": initial is not None,
                "array_backend": xb.name,
                "iterations_per_second": iteration / max(solve_time, 1e-12),
                "warm_start_data": {"x": x_host.copy(), "z": z_host.copy(),
                                    "u": u_host.copy()},
            },
        )
        if settings.verbose:  # pragma: no cover - logging only
            print(f"[admm] {result.summary()}")
        return result
