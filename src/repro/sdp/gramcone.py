"""Pluggable Gram-cone relaxations: PSD (SOS), SDD (SDSOS) and DD (DSOS).

A polynomial is certified nonnegative through a Gram representation
``p = z^T M z`` with the Gram matrix ``M`` constrained to a convex cone.
The classical choice is the PSD cone (full SOS); the DSOS/SDSOS hierarchy of
Ahmadi & Majumdar replaces it with the cones of diagonally-dominant and
scaled-diagonally-dominant matrices::

    DD(n)  ⊂  SDD(n)  ⊂  PSD(n)

* ``psd`` — one order-``n`` PSD block (the exact Gram parameterisation).
* ``sdd`` — ``M = Σ_{i<j} E_ij M_ij E_ij^T`` with each ``M_ij`` a 2x2 PSD
  block.  The stacked-``eigh`` batcher of :mod:`repro.sdp.cones` projects all
  equal-size 2x2 blocks in one call, so the per-iteration cost of the ADMM
  backend collapses from one ``O(n^3)`` eigendecomposition to a batched
  closed-form-sized factorisation.
* ``dd`` — ``M_ii >= Σ_{j≠i} |M_ij|`` lowered to pure LP rows: off-diagonals
  split as ``M_ij = p_ij - q_ij`` with ``p, q >= 0`` and diagonals as
  ``M_ii = s_i + Σ_{j≠i} (p_ij + q_ij)`` with slack ``s_i >= 0``, so every
  matrix reachable by the variables is diagonally dominant by construction
  (and conversely every DD matrix is reachable).

Each :class:`GramBlockHandle` allocates the lifted variables of one Gram
matrix inside a :class:`~repro.sdp.problem.ConicProblemBuilder` and exposes

* :meth:`~GramBlockHandle.entry_triplets` — the linear functional expressing
  a symmetric-weighted Gram entry in terms of the lifted variables, emitted
  as COO triplet groups for the bulk equality-row API of the builder,
* :meth:`~GramBlockHandle.matrix` — reconstruction of the full Gram matrix
  from a solution vector (used for certificate extraction and the
  cone-agnostic ``is_numerically_sos`` check), and
* :meth:`~GramBlockHandle.structure_margin` — a structure-aware feasibility
  margin: the exact minimum eigenvalue for ``psd``, the summed negative
  part of the 2x2 pair-block eigenvalues for ``sdd`` and the Gershgorin
  dominance margin ``min_i (M_ii - Σ_{j≠i} |M_ij|)`` for ``dd``.  Both
  DD/SDD margins are lower bounds on the true minimum eigenvalue, so a
  nonnegative margin certifies the decomposition itself, not just the
  assembled matrix.

The user-facing relaxation names map onto the cones as
``dsos -> dd``, ``sdsos -> sdd``, ``sos -> psd``; ``auto`` is the escalation
ladder ``dsos -> sdsos -> sos`` (try cheap, validate, escalate on failure).
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

import numpy as np

from .cones import SQRT2

#: Supported Gram-cone kinds, cheapest first.
GRAM_CONES = ("dd", "sdd", "psd")

#: User-facing relaxation names (scenario specs, CLI, stage options).
RELAXATIONS = ("dsos", "sdsos", "sos", "auto")

#: Relaxation name -> Gram cone implementing it.
RELAXATION_CONES = {"dsos": "dd", "sdsos": "sdd", "sos": "psd"}

#: The ``auto`` escalation ladder, cheapest relaxation first.
AUTO_LADDER = ("dsos", "sdsos", "sos")


def normalize_gram_cone(cone: str) -> str:
    """Validate a Gram-cone kind (accepting relaxation aliases)."""
    cone = str(cone).lower()
    cone = RELAXATION_CONES.get(cone, cone)
    if cone not in GRAM_CONES:
        raise ValueError(
            f"unknown Gram cone {cone!r}; expected one of {GRAM_CONES} "
            f"(or a relaxation name in {RELAXATIONS[:-1]})")
    return cone


def cone_for_relaxation(relaxation: str) -> str:
    """The Gram cone implementing one (non-``auto``) relaxation level."""
    relaxation = str(relaxation).lower()
    if relaxation == "auto":
        raise ValueError(
            "'auto' is an escalation ladder, not a single cone; iterate "
            "relaxation_ladder('auto') instead")
    if relaxation in GRAM_CONES:
        return relaxation
    try:
        return RELAXATION_CONES[relaxation]
    except KeyError:
        raise ValueError(
            f"unknown relaxation {relaxation!r}; expected one of {RELAXATIONS}"
        ) from None


def relaxation_ladder(relaxation: str) -> Tuple[str, ...]:
    """The sequence of relaxations to attempt for a requested level.

    ``"auto"`` expands to the full DSOS -> SDSOS -> SOS escalation ladder;
    any concrete level is a one-element ladder.
    """
    relaxation = str(relaxation).lower()
    if relaxation == "auto":
        return AUTO_LADDER
    cone_for_relaxation(relaxation)  # validation
    return (relaxation,)


@lru_cache(maxsize=256)
def _pair_table(order: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Upper-triangle pair enumeration of one Gram order.

    Returns ``(pair_a, pair_b, index)`` where ``pair_a[p] < pair_b[p]`` walk
    the strict upper triangle row-major and ``index`` is an
    ``(order, order)`` symmetric lookup from an entry to its pair position
    (-1 on the diagonal).
    """
    pair_a, pair_b = np.triu_indices(order, k=1)
    index = np.full((order, order), -1, dtype=np.int64)
    index[pair_a, pair_b] = np.arange(pair_a.shape[0])
    index[pair_b, pair_a] = index[pair_a, pair_b]
    for arr in (pair_a, pair_b, index):
        arr.setflags(write=False)
    return pair_a, pair_b, index


#: One COO triplet group consumed by ``ConicProblemBuilder.add_equality_rows``.
TripletGroup = Tuple[int, np.ndarray, np.ndarray, np.ndarray]


def _split_diag_entries(order: int, rows: np.ndarray, i: np.ndarray,
                        j: np.ndarray, weight: np.ndarray):
    """Split Gram entries into off-diagonal and expanded diagonal triplets.

    Both DD and SDD spread each diagonal entry ``M_aa`` over the ``order-1``
    pairs containing ``a``; this helper vectorises that expansion.  Returns
    ``(off_rows, off_pairs, off_weight, diag_rows, diag_a, diag_c,
    diag_pairs, diag_weight)`` where the ``diag_*`` arrays enumerate one
    element per (diagonal entry, partner ``c != a``) combination and
    ``*_pairs`` index into the pair enumeration of :func:`_pair_table`.
    """
    _, _, pair_index = _pair_table(order)
    off = i != j
    off_rows = rows[off]
    off_pairs = pair_index[i[off], j[off]]
    off_weight = weight[off]

    diag = ~off
    a = i[diag]
    partners = np.broadcast_to(np.arange(order), (a.size, order))
    keep = partners != a[:, None]
    diag_c = partners[keep]
    diag_a = np.repeat(a, order - 1)
    diag_rows = np.repeat(rows[diag], order - 1)
    diag_weight = np.repeat(weight[diag], order - 1)
    diag_pairs = pair_index[diag_a, diag_c]
    return (off_rows, off_pairs, off_weight,
            diag_rows, diag_a, diag_c, diag_pairs, diag_weight)


class GramBlockHandle:
    """Handle to the lifted variables of one Gram matrix inside a builder."""

    #: Cone kind implemented by the handle (one of :data:`GRAM_CONES`).
    cone: str = ""

    def __init__(self, order: int, name: str = ""):
        if order <= 0:
            raise ValueError("Gram block order must be positive")
        self.order = int(order)
        self.name = name

    # -- lowering -----------------------------------------------------------
    def entry_triplets(self, rows: np.ndarray, i: np.ndarray, j: np.ndarray,
                       weight: np.ndarray) -> List[TripletGroup]:
        """COO triplet groups adding ``weight_k * M[i_k, j_k]`` to ``rows_k``.

        ``i <= j`` index the upper triangle of the Gram matrix and ``weight``
        already carries the symmetric-expansion multiplicity (1 on the
        diagonal, 2 off it), i.e. the coefficient of ``M_ij`` in the
        coefficient-matching row of the product monomial.
        """
        raise NotImplementedError

    # -- extraction ---------------------------------------------------------
    def matrix(self, builder, x: np.ndarray) -> np.ndarray:
        """Reconstruct the full Gram matrix from a stacked solution vector."""
        raise NotImplementedError

    def structure_margin(self, builder, x: np.ndarray) -> float:
        """Structure-aware feasibility margin (see module docstring)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(order={self.order}, name={self.name!r})"


class PSDGramBlock(GramBlockHandle):
    """The classical parameterisation: one order-``n`` PSD block."""

    cone = "psd"

    def __init__(self, builder, order: int, name: str = ""):
        super().__init__(order, name)
        self.block_id, _ = builder.add_psd_block(order, name=name)

    def entry_triplets(self, rows, i, j, weight) -> List[TripletGroup]:
        # svec layout per row r: (r, r), (r, r+1), ...; the svec coordinate
        # stores sqrt(2) * M_ij off the diagonal.
        locals_ = i * self.order - (i * (i - 1)) // 2 + (j - i)
        values = np.where(i == j, weight, weight / SQRT2)
        return [(self.block_id, np.asarray(rows, dtype=np.int64),
                 locals_.astype(np.int64), np.asarray(values, dtype=float))]

    def matrix(self, builder, x) -> np.ndarray:
        return builder.psd_block_matrix(self.block_id, x)

    def structure_margin(self, builder, x) -> float:
        gram = self.matrix(builder, x)
        if not gram.size:
            return 0.0
        return float(np.linalg.eigvalsh(0.5 * (gram + gram.T)).min())


class SDDGramBlock(GramBlockHandle):
    """Scaled diagonal dominance: a sum of 2x2 PSD blocks, one per pair."""

    cone = "sdd"

    def __init__(self, builder, order: int, name: str = ""):
        super().__init__(order, name)
        if order == 1:
            # No pairs: an SDD 1x1 matrix is just a nonnegative scalar.
            self.scalar_id, _ = builder.add_nonneg_block(1, name=f"{name}[sdd]")
            self.pair_ids: Tuple[int, ...] = ()
        else:
            pair_a, pair_b, _ = _pair_table(order)
            self.scalar_id = -1
            self.pair_ids = tuple(
                builder.add_psd_block(2, name=f"{name}[{a},{b}]")[0]
                for a, b in zip(pair_a.tolist(), pair_b.tolist()))

    def entry_triplets(self, rows, i, j, weight) -> List[TripletGroup]:
        rows = np.asarray(rows, dtype=np.int64)
        i = np.asarray(i, dtype=np.int64)
        j = np.asarray(j, dtype=np.int64)
        weight = np.asarray(weight, dtype=float)
        if self.order == 1:
            return [(self.scalar_id, rows, np.zeros(rows.shape[0], dtype=np.int64),
                     weight)]
        # 2x2 svec layout: [m11, sqrt2*m12, m22] -> locals 0, 1, 2.  An
        # off-diagonal entry is the m12 of its pair block; a diagonal entry
        # M_aa is the sum over the pairs containing ``a`` of the matching
        # diagonal of their 2x2 block.
        (off_rows, off_pairs, off_weight,
         diag_rows, diag_a, diag_c, diag_pairs, diag_weight) = \
            _split_diag_entries(self.order, rows, i, j, weight)
        pairs = np.concatenate([off_pairs, diag_pairs])
        all_rows = np.concatenate([off_rows, diag_rows])
        locals_ = np.concatenate([np.ones(off_rows.shape[0], dtype=np.int64),
                                  np.where(diag_a < diag_c, 0, 2)])
        values = np.concatenate([off_weight / SQRT2, diag_weight])
        # One triplet group per touched 2x2 block.
        order_idx = np.argsort(pairs, kind="stable")
        pairs, all_rows = pairs[order_idx], all_rows[order_idx]
        locals_, values = locals_[order_idx], values[order_idx]
        unique_pairs, starts = np.unique(pairs, return_index=True)
        bounds = np.append(starts, pairs.shape[0])
        return [(self.pair_ids[pair], all_rows[lo:hi], locals_[lo:hi],
                 values[lo:hi])
                for pair, lo, hi in zip(unique_pairs.tolist(),
                                        bounds[:-1].tolist(), bounds[1:].tolist())]

    def matrix(self, builder, x) -> np.ndarray:
        gram = np.zeros((self.order, self.order))
        if self.order == 1:
            gram[0, 0] = builder.block_value(self.scalar_id, x)[0]
            return gram
        pair_a, pair_b, _ = _pair_table(self.order)
        for a, b, block_id in zip(pair_a.tolist(), pair_b.tolist(), self.pair_ids):
            block = builder.psd_block_matrix(block_id, x)
            gram[a, a] += block[0, 0]
            gram[b, b] += block[1, 1]
            gram[a, b] += block[0, 1]
            gram[b, a] += block[0, 1]
        return gram

    def structure_margin(self, builder, x) -> float:
        if self.order == 1:
            return float(builder.block_value(self.scalar_id, x)[0])
        # Closed-form minimum eigenvalue of each 2x2 block [[a, c], [c, b]].
        # Negative block eigenvalues on pairs sharing a diagonal index add up
        # in the assembled matrix (B_ij >= lmin_ij * I2 gives
        # M >= (sum_ij min(lmin_ij, 0)) * I), so the sound lower bound on
        # lambda_min(M) is the *sum* of the clipped violations, not their
        # minimum; it is 0 for an exactly feasible decomposition.
        margins = []
        for block_id in self.pair_ids:
            block = builder.psd_block_matrix(block_id, x)
            a, b, c = block[0, 0], block[1, 1], block[0, 1]
            margins.append(0.5 * (a + b) - np.hypot(0.5 * (a - b), c))
        return float(sum(min(margin, 0.0) for margin in margins))


class DDGramBlock(GramBlockHandle):
    """Diagonal dominance lowered to nonnegative (LP) variables only."""

    cone = "dd"

    def __init__(self, builder, order: int, name: str = ""):
        super().__init__(order, name)
        self.slack_id, _ = builder.add_nonneg_block(order, name=f"{name}[dd:s]")
        if order >= 2:
            num_pairs = order * (order - 1) // 2
            self.pos_id, _ = builder.add_nonneg_block(num_pairs, name=f"{name}[dd:p]")
            self.neg_id, _ = builder.add_nonneg_block(num_pairs, name=f"{name}[dd:q]")
        else:
            self.pos_id = self.neg_id = -1

    def entry_triplets(self, rows, i, j, weight) -> List[TripletGroup]:
        rows = np.asarray(rows, dtype=np.int64)
        i = np.asarray(i, dtype=np.int64)
        j = np.asarray(j, dtype=np.int64)
        weight = np.asarray(weight, dtype=float)
        diag = i == j
        # M_aa = s_a + sum of the |off-diagonal| budgets (p + q) of row a;
        # M_ab = p_ab - q_ab.
        groups: List[TripletGroup] = [
            (self.slack_id, rows[diag], i[diag], weight[diag])]
        if self.order >= 2:
            (off_rows, off_pairs, off_weight,
             diag_rows, _, _, diag_pairs, diag_weight) = \
                _split_diag_entries(self.order, rows, i, j, weight)
            pos_rows = np.concatenate([off_rows, diag_rows])
            pos_pairs = np.concatenate([off_pairs, diag_pairs])
            groups.append((self.pos_id, pos_rows, pos_pairs,
                           np.concatenate([off_weight, diag_weight])))
            groups.append((self.neg_id, pos_rows, pos_pairs,
                           np.concatenate([-off_weight, diag_weight])))
        return [group for group in groups if group[1].shape[0]]

    def matrix(self, builder, x) -> np.ndarray:
        slack = builder.block_value(self.slack_id, x)
        gram = np.diag(slack.copy())
        if self.order >= 2:
            pos = builder.block_value(self.pos_id, x)
            neg = builder.block_value(self.neg_id, x)
            pair_a, pair_b, _ = _pair_table(self.order)
            off = pos - neg
            budget = pos + neg
            gram[pair_a, pair_b] = off
            gram[pair_b, pair_a] = off
            np.add.at(gram, (pair_a, pair_a), budget)
            np.add.at(gram, (pair_b, pair_b), budget)
        return gram

    def structure_margin(self, builder, x) -> float:
        gram = self.matrix(builder, x)
        off_sums = np.abs(gram).sum(axis=1) - np.abs(np.diag(gram))
        return float((np.diag(gram) - off_sums).min())


_GRAM_BLOCK_CLASSES = {
    "psd": PSDGramBlock,
    "sdd": SDDGramBlock,
    "dd": DDGramBlock,
}


def make_gram_block(builder, order: int, cone: str = "psd",
                    name: str = "") -> GramBlockHandle:
    """Allocate the lifted variables of one Gram matrix inside ``builder``."""
    cone = normalize_gram_cone(cone)
    return _GRAM_BLOCK_CLASSES[cone](builder, order, name=name)
