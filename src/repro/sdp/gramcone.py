"""Pluggable Gram-cone relaxations: PSD (SOS), chordal, SDD (SDSOS), DD (DSOS).

A polynomial is certified nonnegative through a Gram representation
``p = z^T M z`` with the Gram matrix ``M`` constrained to a convex cone.
The classical choice is the PSD cone (full SOS); the DSOS/SDSOS hierarchy of
Ahmadi & Majumdar replaces it with the cones of diagonally-dominant and
scaled-diagonally-dominant matrices::

    DD(n)  ⊂  SDD(n)  ⊂  chordal(n; G)  ⊆  PSD(n)

* ``psd`` — one order-``n`` PSD block (the exact Gram parameterisation).
* ``chordal`` — ``M = Σ_k E_k^T M_k E_k`` with one PSD block per maximal
  clique of a chordal extension of the constraint's correlative-sparsity
  graph (see :mod:`repro.sdp.chordal`).  Entries outside the extended
  pattern are structurally zero; by the Agler/Grone decomposition theorem
  the cone equals the patterned slice of the PSD cone, so the relaxation is
  *exact* for chordally-sparse problems while the per-iteration projection
  runs clique-sized eighs instead of one ``O(n^3)`` factorisation.  On a
  dense pattern the graph is complete, the single clique is the whole basis
  and the lowering degenerates to ``psd`` (with a distinct cache identity).
* ``sdd`` — ``M = Σ_{i<j} E_ij M_ij E_ij^T`` with each ``M_ij`` a 2x2 PSD
  block.  The stacked-``eigh`` batcher of :mod:`repro.sdp.cones` projects all
  equal-size 2x2 blocks in one call, so the per-iteration cost of the ADMM
  backend collapses from one ``O(n^3)`` eigendecomposition to a batched
  closed-form-sized factorisation.  (SDD is the chordal decomposition of the
  *complete* pair cover — every edge its own clique — hence the inclusion
  above.)
* ``dd`` — ``M_ii >= Σ_{j≠i} |M_ij|`` lowered to pure LP rows: off-diagonals
  split as ``M_ij = p_ij - q_ij`` with ``p, q >= 0`` and diagonals as
  ``M_ii = s_i + Σ_{j≠i} (p_ij + q_ij)`` with slack ``s_i >= 0``, so every
  matrix reachable by the variables is diagonally dominant by construction
  (and conversely every DD matrix is reachable).

Each :class:`GramBlockHandle` allocates the lifted variables of one Gram
matrix inside a :class:`~repro.sdp.problem.ConicProblemBuilder` and exposes

* :meth:`~GramBlockHandle.entry_triplets` — the linear functional expressing
  a symmetric-weighted Gram entry in terms of the lifted variables, emitted
  as COO triplet groups for the bulk equality-row API of the builder,
* :meth:`~GramBlockHandle.matrix` — reconstruction of the full Gram matrix
  from a solution vector (used for certificate extraction and the
  cone-agnostic ``is_numerically_sos`` check), and
* :meth:`~GramBlockHandle.structure_margin` — a structure-aware feasibility
  margin: the exact minimum eigenvalue for ``psd``, the summed negative
  part of the 2x2 pair-block eigenvalues for ``sdd`` and the Gershgorin
  dominance margin ``min_i (M_ii - Σ_{j≠i} |M_ij|)`` for ``dd``.  Both
  DD/SDD margins are lower bounds on the true minimum eigenvalue, so a
  nonnegative margin certifies the decomposition itself, not just the
  assembled matrix.

The user-facing relaxation names map onto the cones as
``dsos -> dd``, ``sdsos -> sdd``, ``chordal -> chordal``, ``sos -> psd``;
``auto`` is the escalation ladder ``dsos -> sdsos -> chordal -> sos`` (try
cheap, validate, escalate on failure — chordal sits between SDSOS and the
monolithic PSD block because it is exact on sparse problems but still a
restriction when the pattern is an artifact of missing cross terms).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, List, Optional, Tuple

import numpy as np

from .chordal import (DEFAULT_MERGE_OVERLAP, DEFAULT_MERGE_SIZE,
                      chordal_decomposition)
from .cones import SQRT2

#: Supported Gram-cone kinds, cheapest first.
GRAM_CONES = ("dd", "sdd", "chordal", "psd")

#: User-facing relaxation names (scenario specs, CLI, stage options).
RELAXATIONS = ("dsos", "sdsos", "chordal", "sos", "auto")

#: Relaxation name -> Gram cone implementing it.
RELAXATION_CONES = {"dsos": "dd", "sdsos": "sdd", "chordal": "chordal",
                    "sos": "psd"}

#: The ``auto`` escalation ladder, cheapest relaxation first.
AUTO_LADDER = ("dsos", "sdsos", "chordal", "sos")


def normalize_gram_cone(cone: str) -> str:
    """Validate a Gram-cone kind (accepting relaxation aliases)."""
    cone = str(cone).lower()
    cone = RELAXATION_CONES.get(cone, cone)
    if cone not in GRAM_CONES:
        raise ValueError(
            f"unknown Gram cone {cone!r}; expected one of {GRAM_CONES} "
            f"(or a relaxation name in {RELAXATIONS[:-1]})")
    return cone


def cone_for_relaxation(relaxation: str) -> str:
    """The Gram cone implementing one (non-``auto``) relaxation level."""
    relaxation = str(relaxation).lower()
    if relaxation == "auto":
        raise ValueError(
            "'auto' is an escalation ladder, not a single cone; iterate "
            "relaxation_ladder('auto') instead")
    if relaxation in GRAM_CONES:
        return relaxation
    try:
        return RELAXATION_CONES[relaxation]
    except KeyError:
        raise ValueError(
            f"unknown relaxation {relaxation!r}; expected one of {RELAXATIONS}"
        ) from None


def relaxation_ladder(relaxation: str) -> Tuple[str, ...]:
    """The sequence of relaxations to attempt for a requested level.

    ``"auto"`` expands to the full DSOS -> SDSOS -> SOS escalation ladder;
    any concrete level is a one-element ladder.
    """
    relaxation = str(relaxation).lower()
    if relaxation == "auto":
        return AUTO_LADDER
    cone_for_relaxation(relaxation)  # validation
    return (relaxation,)


@lru_cache(maxsize=256)
def _pair_table(order: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Upper-triangle pair enumeration of one Gram order.

    Returns ``(pair_a, pair_b, index)`` where ``pair_a[p] < pair_b[p]`` walk
    the strict upper triangle row-major and ``index`` is an
    ``(order, order)`` symmetric lookup from an entry to its pair position
    (-1 on the diagonal).
    """
    pair_a, pair_b = np.triu_indices(order, k=1)
    index = np.full((order, order), -1, dtype=np.int64)
    index[pair_a, pair_b] = np.arange(pair_a.shape[0])
    index[pair_b, pair_a] = index[pair_a, pair_b]
    for arr in (pair_a, pair_b, index):
        arr.setflags(write=False)
    return pair_a, pair_b, index


#: One COO triplet group consumed by ``ConicProblemBuilder.add_equality_rows``.
TripletGroup = Tuple[int, np.ndarray, np.ndarray, np.ndarray]


def _split_diag_entries(order: int, rows: np.ndarray, i: np.ndarray,
                        j: np.ndarray, weight: np.ndarray):
    """Split Gram entries into off-diagonal and expanded diagonal triplets.

    Both DD and SDD spread each diagonal entry ``M_aa`` over the ``order-1``
    pairs containing ``a``; this helper vectorises that expansion.  Returns
    ``(off_rows, off_pairs, off_weight, diag_rows, diag_a, diag_c,
    diag_pairs, diag_weight)`` where the ``diag_*`` arrays enumerate one
    element per (diagonal entry, partner ``c != a``) combination and
    ``*_pairs`` index into the pair enumeration of :func:`_pair_table`.
    """
    _, _, pair_index = _pair_table(order)
    off = i != j
    off_rows = rows[off]
    off_pairs = pair_index[i[off], j[off]]
    off_weight = weight[off]

    diag = ~off
    a = i[diag]
    partners = np.broadcast_to(np.arange(order), (a.size, order))
    keep = partners != a[:, None]
    diag_c = partners[keep]
    diag_a = np.repeat(a, order - 1)
    diag_rows = np.repeat(rows[diag], order - 1)
    diag_weight = np.repeat(weight[diag], order - 1)
    diag_pairs = pair_index[diag_a, diag_c]
    return (off_rows, off_pairs, off_weight,
            diag_rows, diag_a, diag_c, diag_pairs, diag_weight)


class GramBlockHandle:
    """Handle to the lifted variables of one Gram matrix inside a builder."""

    #: Cone kind implemented by the handle (one of :data:`GRAM_CONES`).
    cone: str = ""

    def __init__(self, order: int, name: str = ""):
        if order <= 0:
            raise ValueError("Gram block order must be positive")
        self.order = int(order)
        self.name = name

    # -- lowering -----------------------------------------------------------
    def entry_triplets(self, rows: np.ndarray, i: np.ndarray, j: np.ndarray,
                       weight: np.ndarray) -> List[TripletGroup]:
        """COO triplet groups adding ``weight_k * M[i_k, j_k]`` to ``rows_k``.

        ``i <= j`` index the upper triangle of the Gram matrix and ``weight``
        already carries the symmetric-expansion multiplicity (1 on the
        diagonal, 2 off it), i.e. the coefficient of ``M_ij`` in the
        coefficient-matching row of the product monomial.
        """
        raise NotImplementedError

    # -- extraction ---------------------------------------------------------
    def matrix(self, builder, x: np.ndarray) -> np.ndarray:
        """Reconstruct the full Gram matrix from a stacked solution vector."""
        raise NotImplementedError

    def structure_margin(self, builder, x: np.ndarray) -> float:
        """Structure-aware feasibility margin (see module docstring)."""
        raise NotImplementedError

    # -- identity -----------------------------------------------------------
    @property
    def layout_tag(self) -> str:
        """Deterministic layout token of this block for the problem fingerprint.

        Joined (comma-separated) across a program's Gram blocks into
        :attr:`repro.sdp.problem.ConicProblem.layout`, so it must not contain
        ``","`` and must be a pure function of the block's structure — cones
        whose lowering depends on more than ``(cone, order)`` (chordal clique
        layouts) extend it.
        """
        return f"{self.cone}:{self.order}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(order={self.order}, name={self.name!r})"


class PSDGramBlock(GramBlockHandle):
    """The classical parameterisation: one order-``n`` PSD block."""

    cone = "psd"

    def __init__(self, builder, order: int, name: str = ""):
        super().__init__(order, name)
        self.block_id, _ = builder.add_psd_block(order, name=name)

    def entry_triplets(self, rows, i, j, weight) -> List[TripletGroup]:
        # svec layout per row r: (r, r), (r, r+1), ...; the svec coordinate
        # stores sqrt(2) * M_ij off the diagonal.
        locals_ = i * self.order - (i * (i - 1)) // 2 + (j - i)
        values = np.where(i == j, weight, weight / SQRT2)
        return [(self.block_id, np.asarray(rows, dtype=np.int64),
                 locals_.astype(np.int64), np.asarray(values, dtype=float))]

    def matrix(self, builder, x) -> np.ndarray:
        return builder.psd_block_matrix(self.block_id, x)

    def structure_margin(self, builder, x) -> float:
        gram = self.matrix(builder, x)
        if not gram.size:
            return 0.0
        return float(np.linalg.eigvalsh(0.5 * (gram + gram.T)).min())


@lru_cache(maxsize=512)
def _clique_cover_table(order: int, cliques: Tuple[Tuple[int, ...], ...]
                        ) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                                   np.ndarray]:
    """CSR-style lookup from a Gram entry (i <= j) to its clique covers.

    Returns ``(indptr, cov_clique, cov_local, cov_scale)`` where the covers
    of entry ``(i, j)`` occupy ``slice(indptr[i*order+j], indptr[i*order+j+1])``
    of the ``cov_*`` arrays: the clique index, the svec-local position of the
    entry inside that clique's PSD block, and the matrix-entry -> svec
    coefficient (1 on the diagonal, 1/sqrt(2) off it).  Entries covered by no
    clique get an empty slice — they are structurally zero in the chordal
    parameterisation.
    """
    keys: List[int] = []
    cov_clique: List[int] = []
    cov_local: List[int] = []
    cov_scale: List[float] = []
    for k, clique in enumerate(cliques):
        size = len(clique)
        for a in range(size):
            for b in range(a, size):
                i, j = clique[a], clique[b]
                keys.append(i * order + j)
                cov_clique.append(k)
                cov_local.append(a * size - (a * (a - 1)) // 2 + (b - a))
                cov_scale.append(1.0 if a == b else 1.0 / SQRT2)
    keys_arr = np.asarray(keys, dtype=np.int64)
    sort = np.argsort(keys_arr, kind="stable")
    keys_arr = keys_arr[sort]
    indptr = np.zeros(order * order + 1, dtype=np.int64)
    np.add.at(indptr, keys_arr + 1, 1)
    indptr = np.cumsum(indptr)
    tables = (indptr,
              np.asarray(cov_clique, dtype=np.int64)[sort],
              np.asarray(cov_local, dtype=np.int64)[sort],
              np.asarray(cov_scale, dtype=float)[sort])
    for arr in tables:
        arr.setflags(write=False)
    return tables


class ChordalGramBlock(GramBlockHandle):
    """Chordal decomposition: one PSD block per clique, ``M = Σ E_k^T M_k E_k``.

    ``sparsity`` is the set of off-diagonal Gram entries (i, j) that may be
    nonzero — the edge set of the correlative-sparsity graph, typically
    derived by the SOS compiler from which basis products land in the
    constrained polynomial's support.  ``None`` means dense (a single clique,
    degenerating to one full PSD block).  The graph is chordally extended
    and its maximal cliques merged through :func:`repro.sdp.chordal.
    chordal_decomposition`; each clique becomes a PSD block and a Gram entry
    covered by several cliques is the *sum* of the matching block entries, so
    the overlap consensus is carried implicitly by the shared coefficient-
    matching equality rows — the same sum-splitting the SDD lowering uses for
    its diagonals, with no extra consensus rows in the problem.
    """

    cone = "chordal"

    def __init__(self, builder, order: int, name: str = "",
                 sparsity: Optional[Iterable[Tuple[int, int]]] = None,
                 merge_size: int = DEFAULT_MERGE_SIZE,
                 merge_overlap: float = DEFAULT_MERGE_OVERLAP):
        super().__init__(order, name)
        if sparsity is None:
            edges: List[Tuple[int, int]] = [(i, j) for i in range(order)
                                            for j in range(i + 1, order)]
        else:
            edges = [(int(i), int(j)) for i, j in sparsity]
        self.cliques: Tuple[Tuple[int, ...], ...] = chordal_decomposition(
            order, edges, merge_size=merge_size, merge_overlap=merge_overlap)
        self.block_ids: Tuple[int, ...] = tuple(
            builder.add_psd_block(len(clique), name=f"{name}[cl{k}]")[0]
            for k, clique in enumerate(self.cliques))

    @property
    def clique_sizes(self) -> Tuple[int, ...]:
        return tuple(len(clique) for clique in self.cliques)

    @property
    def layout_tag(self) -> str:
        # The full clique contents (not just sizes) enter the tag: two
        # different sparsity patterns must never share a cache identity or
        # pass the parametric structural-stability check by accident.
        body = ";".join(".".join(str(v) for v in clique)
                        for clique in self.cliques)
        return f"chordal:{self.order}[{body}]"

    def entry_triplets(self, rows, i, j, weight) -> List[TripletGroup]:
        rows = np.asarray(rows, dtype=np.int64)
        i = np.asarray(i, dtype=np.int64)
        j = np.asarray(j, dtype=np.int64)
        weight = np.asarray(weight, dtype=float)
        indptr, cov_clique, cov_local, cov_scale = \
            _clique_cover_table(self.order, self.cliques)
        keys = i * self.order + j
        starts = indptr[keys]
        counts = indptr[keys + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return []
        # Expand each entry into its covers (vectorised ragged gather):
        # entry e contributes counts[e] consecutive cover slots.
        entry_of = np.repeat(np.arange(keys.shape[0], dtype=np.int64), counts)
        cover_idx = np.repeat(starts, counts) + \
            (np.arange(total, dtype=np.int64)
             - np.repeat(np.cumsum(counts) - counts, counts))
        out_rows = rows[entry_of]
        out_values = weight[entry_of] * cov_scale[cover_idx]
        out_locals = cov_local[cover_idx]
        out_cliques = cov_clique[cover_idx]
        # One triplet group per touched clique block.
        order_idx = np.argsort(out_cliques, kind="stable")
        out_cliques = out_cliques[order_idx]
        out_rows, out_locals = out_rows[order_idx], out_locals[order_idx]
        out_values = out_values[order_idx]
        unique_cliques, group_starts = np.unique(out_cliques, return_index=True)
        bounds = np.append(group_starts, out_cliques.shape[0])
        return [(self.block_ids[k], out_rows[lo:hi], out_locals[lo:hi],
                 out_values[lo:hi])
                for k, lo, hi in zip(unique_cliques.tolist(),
                                     bounds[:-1].tolist(), bounds[1:].tolist())]

    def matrix(self, builder, x) -> np.ndarray:
        gram = np.zeros((self.order, self.order))
        for clique, block_id in zip(self.cliques, self.block_ids):
            idx = np.asarray(clique, dtype=np.int64)
            gram[np.ix_(idx, idx)] += builder.psd_block_matrix(block_id, x)
        return gram

    def structure_margin(self, builder, x) -> float:
        # M >= (sum_k min(lambda_min(M_k), 0)) * I: each clique block obeys
        # E_k^T M_k E_k >= min(lambda_min_k, 0) * E_k^T E_k >= min(..., 0) * I,
        # so — exactly as for SDD — the sound lower bound on lambda_min(M) is
        # the *sum* of the clipped per-block violations (0 when feasible).
        margins = []
        for block_id in self.block_ids:
            block = builder.psd_block_matrix(block_id, x)
            if block.size:
                margins.append(float(np.linalg.eigvalsh(
                    0.5 * (block + block.T)).min()))
        return float(sum(min(margin, 0.0) for margin in margins))


class SDDGramBlock(GramBlockHandle):
    """Scaled diagonal dominance: a sum of 2x2 PSD blocks, one per pair."""

    cone = "sdd"

    def __init__(self, builder, order: int, name: str = ""):
        super().__init__(order, name)
        if order == 1:
            # No pairs: an SDD 1x1 matrix is just a nonnegative scalar.
            self.scalar_id, _ = builder.add_nonneg_block(1, name=f"{name}[sdd]")
            self.pair_ids: Tuple[int, ...] = ()
        else:
            pair_a, pair_b, _ = _pair_table(order)
            self.scalar_id = -1
            self.pair_ids = tuple(
                builder.add_psd_block(2, name=f"{name}[{a},{b}]")[0]
                for a, b in zip(pair_a.tolist(), pair_b.tolist()))

    def entry_triplets(self, rows, i, j, weight) -> List[TripletGroup]:
        rows = np.asarray(rows, dtype=np.int64)
        i = np.asarray(i, dtype=np.int64)
        j = np.asarray(j, dtype=np.int64)
        weight = np.asarray(weight, dtype=float)
        if self.order == 1:
            return [(self.scalar_id, rows, np.zeros(rows.shape[0], dtype=np.int64),
                     weight)]
        # 2x2 svec layout: [m11, sqrt2*m12, m22] -> locals 0, 1, 2.  An
        # off-diagonal entry is the m12 of its pair block; a diagonal entry
        # M_aa is the sum over the pairs containing ``a`` of the matching
        # diagonal of their 2x2 block.
        (off_rows, off_pairs, off_weight,
         diag_rows, diag_a, diag_c, diag_pairs, diag_weight) = \
            _split_diag_entries(self.order, rows, i, j, weight)
        pairs = np.concatenate([off_pairs, diag_pairs])
        all_rows = np.concatenate([off_rows, diag_rows])
        locals_ = np.concatenate([np.ones(off_rows.shape[0], dtype=np.int64),
                                  np.where(diag_a < diag_c, 0, 2)])
        values = np.concatenate([off_weight / SQRT2, diag_weight])
        # One triplet group per touched 2x2 block.
        order_idx = np.argsort(pairs, kind="stable")
        pairs, all_rows = pairs[order_idx], all_rows[order_idx]
        locals_, values = locals_[order_idx], values[order_idx]
        unique_pairs, starts = np.unique(pairs, return_index=True)
        bounds = np.append(starts, pairs.shape[0])
        return [(self.pair_ids[pair], all_rows[lo:hi], locals_[lo:hi],
                 values[lo:hi])
                for pair, lo, hi in zip(unique_pairs.tolist(),
                                        bounds[:-1].tolist(), bounds[1:].tolist())]

    def matrix(self, builder, x) -> np.ndarray:
        gram = np.zeros((self.order, self.order))
        if self.order == 1:
            gram[0, 0] = builder.block_value(self.scalar_id, x)[0]
            return gram
        pair_a, pair_b, _ = _pair_table(self.order)
        for a, b, block_id in zip(pair_a.tolist(), pair_b.tolist(), self.pair_ids):
            block = builder.psd_block_matrix(block_id, x)
            gram[a, a] += block[0, 0]
            gram[b, b] += block[1, 1]
            gram[a, b] += block[0, 1]
            gram[b, a] += block[0, 1]
        return gram

    def structure_margin(self, builder, x) -> float:
        if self.order == 1:
            return float(builder.block_value(self.scalar_id, x)[0])
        # Closed-form minimum eigenvalue of each 2x2 block [[a, c], [c, b]].
        # Negative block eigenvalues on pairs sharing a diagonal index add up
        # in the assembled matrix (B_ij >= lmin_ij * I2 gives
        # M >= (sum_ij min(lmin_ij, 0)) * I), so the sound lower bound on
        # lambda_min(M) is the *sum* of the clipped violations, not their
        # minimum; it is 0 for an exactly feasible decomposition.
        margins = []
        for block_id in self.pair_ids:
            block = builder.psd_block_matrix(block_id, x)
            a, b, c = block[0, 0], block[1, 1], block[0, 1]
            margins.append(0.5 * (a + b) - np.hypot(0.5 * (a - b), c))
        return float(sum(min(margin, 0.0) for margin in margins))


class DDGramBlock(GramBlockHandle):
    """Diagonal dominance lowered to nonnegative (LP) variables only."""

    cone = "dd"

    def __init__(self, builder, order: int, name: str = ""):
        super().__init__(order, name)
        self.slack_id, _ = builder.add_nonneg_block(order, name=f"{name}[dd:s]")
        if order >= 2:
            num_pairs = order * (order - 1) // 2
            self.pos_id, _ = builder.add_nonneg_block(num_pairs, name=f"{name}[dd:p]")
            self.neg_id, _ = builder.add_nonneg_block(num_pairs, name=f"{name}[dd:q]")
        else:
            self.pos_id = self.neg_id = -1

    def entry_triplets(self, rows, i, j, weight) -> List[TripletGroup]:
        rows = np.asarray(rows, dtype=np.int64)
        i = np.asarray(i, dtype=np.int64)
        j = np.asarray(j, dtype=np.int64)
        weight = np.asarray(weight, dtype=float)
        diag = i == j
        # M_aa = s_a + sum of the |off-diagonal| budgets (p + q) of row a;
        # M_ab = p_ab - q_ab.
        groups: List[TripletGroup] = [
            (self.slack_id, rows[diag], i[diag], weight[diag])]
        if self.order >= 2:
            (off_rows, off_pairs, off_weight,
             diag_rows, _, _, diag_pairs, diag_weight) = \
                _split_diag_entries(self.order, rows, i, j, weight)
            pos_rows = np.concatenate([off_rows, diag_rows])
            pos_pairs = np.concatenate([off_pairs, diag_pairs])
            groups.append((self.pos_id, pos_rows, pos_pairs,
                           np.concatenate([off_weight, diag_weight])))
            groups.append((self.neg_id, pos_rows, pos_pairs,
                           np.concatenate([-off_weight, diag_weight])))
        return [group for group in groups if group[1].shape[0]]

    def matrix(self, builder, x) -> np.ndarray:
        slack = builder.block_value(self.slack_id, x)
        gram = np.diag(slack.copy())
        if self.order >= 2:
            pos = builder.block_value(self.pos_id, x)
            neg = builder.block_value(self.neg_id, x)
            pair_a, pair_b, _ = _pair_table(self.order)
            off = pos - neg
            budget = pos + neg
            gram[pair_a, pair_b] = off
            gram[pair_b, pair_a] = off
            np.add.at(gram, (pair_a, pair_a), budget)
            np.add.at(gram, (pair_b, pair_b), budget)
        return gram

    def structure_margin(self, builder, x) -> float:
        gram = self.matrix(builder, x)
        off_sums = np.abs(gram).sum(axis=1) - np.abs(np.diag(gram))
        return float((np.diag(gram) - off_sums).min())


_GRAM_BLOCK_CLASSES = {
    "psd": PSDGramBlock,
    "chordal": ChordalGramBlock,
    "sdd": SDDGramBlock,
    "dd": DDGramBlock,
}


def make_gram_block(builder, order: int, cone: str = "psd",
                    name: str = "", **cone_options) -> GramBlockHandle:
    """Allocate the lifted variables of one Gram matrix inside ``builder``.

    ``cone_options`` are forwarded to the handle class of cones whose
    lowering takes structural inputs — for ``chordal`` these are
    ``sparsity`` (the correlative-sparsity edge set) and the
    ``merge_size``/``merge_overlap`` clique-merge knobs.  Other cones accept
    no options.
    """
    cone = normalize_gram_cone(cone)
    return _GRAM_BLOCK_CLASSES[cone](builder, order, name=name, **cone_options)
