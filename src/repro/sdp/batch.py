"""Batched ADMM engine: many structurally identical conic SDPs in one loop.

The verification pipeline produces *families* of near-identical problems —
every bisection level of a level-curve maximisation, every domain inequality
of a mode, every point of a parameter sweep.  Solving them one at a time pays
the per-iteration Python and LAPACK dispatch overhead ``B`` times over.

:class:`BatchADMMSolver` advances all ``B`` problems through the same
operator-splitting iteration as :class:`~repro.sdp.admm.ADMMConicSolver`:

* the iterates live in ``(n, B)`` Fortran-ordered arrays so each problem's
  column is contiguous;
* the x-update is one sparse solve for the whole active set: when all active
  problems share the same ``A`` and ``rho`` (parameter sweeps in ``b``) a
  single cached ``splu`` factorisation handles the batch as a multi-RHS
  solve; otherwise the per-problem KKT blocks are assembled into one
  block-diagonal factorisation that is only recomputed when the active set
  or a problem's adaptive ``rho`` changes — never per iteration;
* the z-update projects all PSD blocks of all problems through one stacked
  ``eigh`` (:func:`~repro.sdp.cones.project_onto_cone_many`);
* residuals, tolerances, stall detection and adaptive-``rho`` updates are
  vectorised per problem, and converged (or stalled) problems drop out of the
  active set so the tail of the batch doesn't pay for the finished head.

There is **no cross-problem coupling**: each problem follows exactly the
iteration it would follow in a standalone :class:`ADMMConicSolver.solve`, so
per-problem statuses match the serial solver.  Batches whose members turn out
not to share a structure (different cone dims or constraint counts after
presolve) transparently fall back to serial solves.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from .admm import ADMMConicSolver, ADMMSettings, WarmStart, unpack_warm_start
from .cones import project_onto_cone_many
from .problem import ConicProblem
from .result import SolveHistory, SolverResult, SolverStatus
from .scaling import presolve


def _block_diag_csc(blocks: List[sp.csc_matrix], size: int) -> sp.csc_matrix:
    """Block-diagonal CSC assembly of equally sized square CSC blocks.

    Plain array concatenation with offsets — ~100x cheaper than
    ``scipy.sparse.block_diag`` (which routes through COO) for the epoch
    refactorisations of the batch loop.
    """
    nnz_offsets = np.cumsum([0] + [b.nnz for b in blocks])
    data = np.concatenate([b.data for b in blocks])
    indices = np.concatenate([b.indices + i * size for i, b in enumerate(blocks)])
    indptr = np.concatenate(
        [b.indptr[(1 if i else 0):] + nnz_offsets[i] for i, b in enumerate(blocks)])
    total = size * len(blocks)
    return sp.csc_matrix((data, indices, indptr), shape=(total, total))


def _column_norms(matrix: np.ndarray) -> np.ndarray:
    """Euclidean norm of every column (einsum — less dispatch than norm(axis=0))."""
    return np.sqrt(np.einsum("ij,ij->j", matrix, matrix))


class BatchADMMSolver:
    """Solve a batch of structurally identical conic problems in one ADMM loop."""

    def __init__(self, settings: Optional[ADMMSettings] = None):
        self.settings = settings or ADMMSettings()

    # ------------------------------------------------------------------
    def solve(self, problem: ConicProblem,
              warm_start: Optional[WarmStart] = None) -> SolverResult:
        """Single-problem convenience wrapper (backend-registry compatible)."""
        return self.solve_batch([problem], [warm_start])[0]

    def _solve_serial(self, problems: Sequence[ConicProblem],
                      warm_starts: Sequence[Optional[WarmStart]]) -> List[SolverResult]:
        solver = ADMMConicSolver(self.settings)
        return [solver.solve(p, warm_start=ws) for p, ws in zip(problems, warm_starts)]

    # ------------------------------------------------------------------
    def solve_batch(self, problems: Sequence[ConicProblem],
                    warm_starts: Optional[Sequence[Optional[WarmStart]]] = None,
                    ) -> List[SolverResult]:
        """Solve ``problems`` together; returns one :class:`SolverResult` each.

        All problems must share cone dimensions and, after presolve, the
        equality-row count; otherwise the batch silently degrades to serial
        solves with identical semantics.
        """
        start = time.perf_counter()
        problems = list(problems)
        if not problems:
            return []
        if warm_starts is None:
            warm_starts = [None] * len(problems)
        warm_starts = list(warm_starts)
        if len(warm_starts) != len(problems):
            raise ValueError("warm_starts must align with problems")

        settings = self.settings
        dims = problems[0].dims
        if any(p.dims != dims for p in problems[1:]):
            return self._solve_serial(problems, warm_starts)

        results: List[Optional[SolverResult]] = [None] * len(problems)
        prepped: List[Tuple[int, ConicProblem, ConicProblem, object]] = []
        for i, problem in enumerate(problems):
            try:
                scaled, scaling = presolve(problem, scale=settings.scale_problem)
            except ValueError as exc:
                results[i] = SolverResult(
                    status=SolverStatus.INFEASIBLE_SUSPECTED,
                    info={"reason": str(exc)},
                    solve_time=time.perf_counter() - start,
                )
                continue
            prepped.append((i, problem, scaled, scaling))
        if not prepped:
            return results  # type: ignore[return-value]

        n = dims.total
        m = prepped[0][2].num_constraints
        if any(entry[2].num_constraints != m for entry in prepped[1:]):
            return self._solve_serial(problems, warm_starts)

        # Deduplicate coefficient matrices: problems differing only in b (or
        # in nothing) share one KKT factorisation and one multi-RHS solve.
        batch = len(prepped)
        group_of = np.zeros(batch, dtype=np.int64)
        group_keys: Dict[tuple, int] = {}
        unique_A: List[sp.csc_matrix] = []
        for col, (_, _, scaled, _) in enumerate(prepped):
            A = scaled.A.tocsc()
            key = (A.nnz, A.indptr.tobytes(), A.indices.tobytes(), A.data.tobytes())
            group = group_keys.setdefault(key, len(unique_A))
            if group == len(unique_A):
                unique_A.append(A)
            group_of[col] = group

        regularization = settings.kkt_regularization
        kkt_cache: Dict[Tuple[int, float], sp.csc_matrix] = {}
        lu_cache: Dict[Tuple[int, float], object] = {}

        def kkt_block(group: int, rho_value: float) -> sp.csc_matrix:
            cache_key = (group, rho_value)
            kkt = kkt_cache.get(cache_key)
            if kkt is None:
                A = unique_A[group]
                upper = sp.hstack([rho_value * sp.identity(n, format="csc"), A.T])
                lower = sp.hstack([A, -regularization * sp.identity(m, format="csc")])
                kkt = sp.vstack([upper, lower]).tocsc()
                kkt_cache[cache_key] = kkt
            return kkt

        def get_lu(group: int, rho_value: float):
            cache_key = (group, rho_value)
            lu = lu_cache.get(cache_key)
            if lu is None:
                lu = spla.splu(kkt_block(group, rho_value))
                lu_cache[cache_key] = lu
            return lu

        # The factorisation epoch: one block-diagonal LU over the active set,
        # rebuilt only when the active set or a problem's rho changes.
        epoch_key: Optional[tuple] = None
        epoch_lu = None
        epoch_shared = False

        # Column-contiguous state so per-problem slices match the serial solver.
        X = np.zeros((n, batch), order="F")
        Z = np.zeros((n, batch), order="F")
        U = np.zeros((n, batch), order="F")
        C = np.zeros((n, batch), order="F")
        Bmat = np.zeros((m, batch), order="F")
        warm_flags = np.zeros(batch, dtype=bool)
        for col, (i, _, scaled, _) in enumerate(prepped):
            C[:, col] = scaled.c
            Bmat[:, col] = scaled.b
            initial = unpack_warm_start(warm_starts[i], n)
            if initial is not None:
                X[:, col], Z[:, col], U[:, col] = initial
                warm_flags[col] = True

        rho = np.full(batch, float(settings.rho))
        alpha = settings.over_relaxation
        sqrt_n = float(np.sqrt(n))
        best_primal = np.full(batch, np.inf)
        best_primal_at = np.zeros(batch, dtype=np.int64)
        primal_snapshot = np.full(batch, np.inf)
        frozen_streak = np.zeros(batch, dtype=np.int64)
        last_primal = np.full(batch, np.nan)
        last_dual = np.full(batch, np.nan)
        statuses: List[SolverStatus] = [SolverStatus.MAX_ITERATIONS] * batch
        final_iteration = np.full(batch, settings.max_iterations, dtype=np.int64)
        histories = [SolveHistory() for _ in range(batch)]
        numerical_failures: Dict[int, str] = {}
        active = np.arange(batch)

        for iteration in range(1, settings.max_iterations + 1):
            if active.size == 0:
                break

            # x-update: one sparse solve for the whole active set.
            current_key = (active.tobytes(), rho[active].tobytes())
            if current_key != epoch_key:
                failed_cols: List[int] = []
                groups_rhos = [(int(group_of[col]), float(rho[col])) for col in active]
                epoch_shared = len(set(groups_rhos)) == 1
                try:
                    if epoch_shared:
                        epoch_lu = get_lu(*groups_rhos[0])
                    else:
                        epoch_lu = spla.splu(_block_diag_csc(
                            [kkt_block(g, r) for g, r in groups_rhos], n + m))
                except RuntimeError:  # pragma: no cover - singular KKT
                    # Find the offending problem(s) individually.
                    epoch_lu = None
                    for col, (g, r) in zip(active, groups_rhos):
                        try:
                            get_lu(g, r)
                        except RuntimeError as exc:
                            numerical_failures[int(col)] = f"KKT factorization failed: {exc}"
                            statuses[int(col)] = SolverStatus.NUMERICAL_ERROR
                            final_iteration[int(col)] = iteration
                            failed_cols.append(int(col))
                if epoch_lu is None and not failed_cols:  # pragma: no cover
                    # The assembled block-diagonal factorisation failed even
                    # though every per-problem KKT is healthy: preserve the
                    # per-problem-parity guarantee by solving serially.
                    return self._solve_serial(problems, warm_starts)
                if failed_cols:
                    active = active[~np.isin(active, failed_cols)]
                    epoch_key = None
                    if active.size == 0:
                        break
                    continue
                epoch_key = current_key
            k = active.size
            rhs = np.empty((n + m, k), order="F")
            rhs[:n] = rho[active] * (Z[:, active] - U[:, active]) - C[:, active]
            rhs[n:] = Bmat[:, active]
            if epoch_shared:
                X[:, active] = epoch_lu.solve(rhs)[:n]
            else:
                sol = epoch_lu.solve(rhs.ravel(order="F"))
                X[:, active] = sol.reshape((n + m, k), order="F")[:n]

            act = active
            x_act = X[:, act]
            z_prev = Z[:, act].copy()
            x_relaxed = alpha * x_act + (1.0 - alpha) * z_prev
            z_new = project_onto_cone_many((x_relaxed + U[:, act]).T, dims).T
            Z[:, act] = z_new
            U[:, act] = U[:, act] + x_relaxed - z_new

            primal = _column_norms(x_act - z_new)
            dual = rho[act] * _column_norms(z_new - z_prev)
            scale_primal = np.maximum(
                np.maximum(_column_norms(x_act), _column_norms(z_new)), 1.0)
            scale_dual = np.maximum(rho[act] * _column_norms(U[:, act]), 1.0)
            eps_primal = settings.eps_abs * sqrt_n + settings.eps_rel * scale_primal
            eps_dual = settings.eps_abs * sqrt_n + settings.eps_rel * scale_dual
            last_primal[act] = primal
            last_dual[act] = dual

            if iteration % settings.history_stride == 0 or iteration == 1:
                for position, col in enumerate(act):
                    histories[col].record(primal[position], dual[position],
                                          float(C[:, col] @ X[:, col]))

            improved = primal < best_primal[act] * settings.stall_improvement
            best_primal_at[act[improved]] = iteration
            best_primal[act] = np.minimum(best_primal[act], primal)

            converged = (primal <= eps_primal) & (dual <= eps_dual)

            # Early infeasibility detection (mirrors the serial solver): the
            # primal residual locked onto a plateau far above feasibility
            # with the dual residual below it.
            frozen_fire = np.zeros(act.shape[0], dtype=bool)
            if settings.infeasibility_detection and \
                    iteration % settings.infeasibility_interval == 0:
                if iteration >= settings.infeasibility_min_iteration:
                    frozen = (primal > 100.0 * eps_primal) & (dual < primal) \
                        & (np.abs(primal - primal_snapshot[act])
                           <= settings.infeasibility_rel_change * primal)
                    frozen_streak[act] = np.where(frozen, frozen_streak[act] + 1, 0)
                else:
                    frozen_streak[act] = 0
                primal_snapshot[act] = primal
                frozen_fire = (~converged) & \
                    (frozen_streak[act] >= settings.infeasibility_streak)

            stalled = (~converged) & (~frozen_fire) \
                & ((iteration - best_primal_at[act]) > settings.stall_window) \
                & (primal > 100.0 * eps_primal)
            for col in act[converged]:
                statuses[col] = SolverStatus.OPTIMAL
                final_iteration[col] = iteration
            for col in act[frozen_fire | stalled]:
                statuses[col] = SolverStatus.INFEASIBLE_SUSPECTED
                final_iteration[col] = iteration
            keep = ~(converged | frozen_fire | stalled)
            active = act[keep]

            if settings.adaptive_rho and iteration % settings.rho_update_interval == 0 \
                    and active.size:
                primal_keep = primal[keep]
                dual_keep = dual[keep]
                raise_rho = (primal_keep > 10.0 * dual_keep) & (rho[active] < 1e6)
                lower_rho = (~raise_rho) & (dual_keep > 10.0 * primal_keep) & (rho[active] > 1e-6)
                cols_up = active[raise_rho]
                if cols_up.size:
                    rho[cols_up] *= 2.0
                    U[:, cols_up] /= 2.0
                cols_down = active[lower_rho]
                if cols_down.size:
                    rho[cols_down] /= 2.0
                    U[:, cols_down] *= 2.0

        elapsed = time.perf_counter() - start
        for col, (i, original, _, scaling) in enumerate(prepped):
            if col in numerical_failures:
                results[i] = SolverResult(
                    status=SolverStatus.NUMERICAL_ERROR,
                    info={"reason": numerical_failures[col]},
                    solve_time=elapsed,
                )
                continue
            candidate = Z[:, col].copy()
            status = statuses[col]
            if status == SolverStatus.OPTIMAL and np.allclose(original.c, 0.0):
                status = SolverStatus.FEASIBLE
            results[i] = SolverResult(
                status=status,
                x=candidate,
                objective=original.objective_value(candidate),
                primal_residual=float(np.linalg.norm(X[:, col] - Z[:, col])),
                dual_residual=float(last_dual[col]),
                equality_residual=original.equality_residual(candidate),
                cone_violation=original.cone_violation(candidate),
                iterations=int(final_iteration[col]),
                solve_time=elapsed,
                info={
                    "rho_final": float(rho[col]),
                    "history": histories[col],
                    "scaled": scaling is not None,
                    "warm_started": bool(warm_flags[col]),
                    "warm_start_data": {"x": X[:, col].copy(), "z": candidate.copy(),
                                        "u": U[:, col].copy()},
                    "batch_size": batch,
                    "batch_index": col,
                    "batch_wall_time": elapsed,
                },
            )
            if settings.verbose:  # pragma: no cover - logging only
                print(f"[batch-admm {col + 1}/{batch}] {results[i].summary()}")
        return results  # type: ignore[return-value]
