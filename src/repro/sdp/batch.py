"""Batched ADMM engine: many structurally identical conic SDPs in one loop.

The verification pipeline produces *families* of near-identical problems —
every bisection level of a level-curve maximisation, every domain inequality
of a mode, every point of a parameter sweep.  Solving them one at a time pays
the per-iteration Python and LAPACK dispatch overhead ``B`` times over.

:class:`BatchADMMSolver` advances all ``B`` problems through the same
operator-splitting iteration as :class:`~repro.sdp.admm.ADMMConicSolver`:

* the iterates live in ``(B, n)`` row-contiguous arrays on the configured
  :class:`~repro.sdp.backend.ArrayBackend` (``ADMMSettings.array_backend``),
  so each problem's row is contiguous and the identical loop runs on NumPy,
  CuPy or torch tensors; problems and results stay NumPy and cross the
  device boundary once per batch;
* the x-update is one sparse solve for the whole active set: when all active
  problems share the same ``A`` and ``rho`` (parameter sweeps in ``b``) a
  single cached ``splu`` factorisation handles the batch as a multi-RHS
  solve; otherwise the per-problem KKT blocks are assembled into one
  block-diagonal factorisation that is only recomputed when the active set
  or a problem's adaptive ``rho`` changes — never per iteration;
* the z-update projects all PSD blocks of all problems through one stacked
  ``eigh`` (:func:`~repro.sdp.cones.project_onto_cone_many`);
* residuals, tolerances, stall detection and adaptive-``rho`` updates are
  vectorised per problem.

Two scheduling modes decide what happens when problems finish early:

**Synchronous** (default): every iteration gathers the active columns out of
the full batch state, checks every termination criterion, and drops finished
problems from the active index — the schedule every existing test pins.

**Asynchronous bounded-staleness** (``ADMMSettings.async_mode``): the state
is *physically compacted* to the live problems, so retired rows cost nothing
at all (no gather/scatter traffic over dead state), and the termination
bookkeeping — residual reductions, convergence/infeasibility/stall checks,
history snapshots — runs every ``staleness_bound`` iterations instead of
every iteration.  Between checks the per-problem epochs advance freely, so a
problem may run up to ``staleness_bound`` iterations past its synchronous
stopping point before it retires (bounded staleness in the sense of the
asynchronous approximate distributed ADMM analyses); statuses are unchanged
because every retirement decision evaluates the same criteria on the same
residual definitions.

There is **no cross-problem coupling**: each problem follows exactly the
iteration it would follow in a standalone :class:`ADMMConicSolver.solve`, so
per-problem statuses match the serial solver.  Batches whose members turn out
not to share a structure (different cone dims or constraint counts after
presolve) transparently fall back to serial solves.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from .admm import ADMMConicSolver, ADMMSettings, WarmStart, unpack_warm_start
from .backend import resolve_array_backend
from .cones import project_onto_cone_many
from .problem import ConicProblem
from .result import SolveHistory, SolverResult, SolverStatus
from .scaling import presolve


def _block_diag_csc(blocks: List[sp.csc_matrix], size: int) -> sp.csc_matrix:
    """Block-diagonal CSC assembly of equally sized square CSC blocks.

    Plain array concatenation with offsets — ~100x cheaper than
    ``scipy.sparse.block_diag`` (which routes through COO) for the epoch
    refactorisations of the batch loop.
    """
    nnz_offsets = np.cumsum([0] + [b.nnz for b in blocks])
    data = np.concatenate([b.data for b in blocks])
    indices = np.concatenate([b.indices + i * size for i, b in enumerate(blocks)])
    indptr = np.concatenate(
        [b.indptr[(1 if i else 0):] + nnz_offsets[i] for i, b in enumerate(blocks)])
    total = size * len(blocks)
    return sp.csc_matrix((data, indices, indptr), shape=(total, total))


def _due(iteration: int, last: int, interval: int) -> bool:
    """Has a multiple of ``interval`` passed since the event at ``last``?

    The async loop only looks at the world every ``staleness_bound``
    iterations; interval-based events (adaptive rho, plateau snapshots) fire
    on the first check at-or-after each multiple of their interval, which
    coincides with the synchronous schedule whenever ``staleness_bound``
    divides the interval (the default 25 divides 100).
    """
    return (iteration // interval) > (last // interval)


class BatchADMMSolver:
    """Solve a batch of structurally identical conic problems in one ADMM loop."""

    def __init__(self, settings: Optional[ADMMSettings] = None):
        self.settings = settings or ADMMSettings()

    # ------------------------------------------------------------------
    def solve(self, problem: ConicProblem,
              warm_start: Optional[WarmStart] = None) -> SolverResult:
        """Single-problem convenience wrapper (backend-registry compatible)."""
        return self.solve_batch([problem], [warm_start])[0]

    def _solve_serial(self, problems: Sequence[ConicProblem],
                      warm_starts: Sequence[Optional[WarmStart]]) -> List[SolverResult]:
        solver = ADMMConicSolver(self.settings)
        return [solver.solve(p, warm_start=ws) for p, ws in zip(problems, warm_starts)]

    # ------------------------------------------------------------------
    def solve_batch(self, problems: Sequence[ConicProblem],
                    warm_starts: Optional[Sequence[Optional[WarmStart]]] = None,
                    ) -> List[SolverResult]:
        """Solve ``problems`` together; returns one :class:`SolverResult` each.

        All problems must share cone dimensions and, after presolve, the
        equality-row count; otherwise the batch silently degrades to serial
        solves with identical semantics.
        """
        start = time.perf_counter()
        problems = list(problems)
        if not problems:
            return []
        if warm_starts is None:
            warm_starts = [None] * len(problems)
        warm_starts = list(warm_starts)
        if len(warm_starts) != len(problems):
            raise ValueError("warm_starts must align with problems")

        settings = self.settings
        dims = problems[0].dims
        if any(p.dims != dims for p in problems[1:]):
            return self._solve_serial(problems, warm_starts)

        results: List[Optional[SolverResult]] = [None] * len(problems)
        prepped: List[Tuple[int, ConicProblem, ConicProblem, object]] = []
        for i, problem in enumerate(problems):
            try:
                scaled, scaling = presolve(problem, scale=settings.scale_problem)
            except ValueError as exc:
                results[i] = SolverResult(
                    status=SolverStatus.INFEASIBLE_SUSPECTED,
                    info={"reason": str(exc)},
                    solve_time=time.perf_counter() - start,
                )
                continue
            prepped.append((i, problem, scaled, scaling))
        if not prepped:
            return results  # type: ignore[return-value]

        n = dims.total
        m = prepped[0][2].num_constraints
        if any(entry[2].num_constraints != m for entry in prepped[1:]):
            return self._solve_serial(problems, warm_starts)

        xb = resolve_array_backend(settings.array_backend)

        # Deduplicate coefficient matrices: problems differing only in b (or
        # in nothing) share one KKT factorisation and one multi-RHS solve.
        batch = len(prepped)
        group_of = np.zeros(batch, dtype=np.int64)
        group_keys: Dict[tuple, int] = {}
        unique_A: List[sp.csc_matrix] = []
        for col, (_, _, scaled, _) in enumerate(prepped):
            A = scaled.A.tocsc()
            key = (A.nnz, A.indptr.tobytes(), A.indices.tobytes(), A.data.tobytes())
            group = group_keys.setdefault(key, len(unique_A))
            if group == len(unique_A):
                unique_A.append(A)
            group_of[col] = group

        regularization = settings.kkt_regularization
        kkt_cache: Dict[Tuple[int, float], sp.csc_matrix] = {}
        lu_cache: Dict[Tuple[int, float], object] = {}

        def kkt_block(group: int, rho_value: float) -> sp.csc_matrix:
            cache_key = (group, rho_value)
            kkt = kkt_cache.get(cache_key)
            if kkt is None:
                A = unique_A[group]
                upper = sp.hstack([rho_value * sp.identity(n, format="csc"), A.T])
                lower = sp.hstack([A, -regularization * sp.identity(m, format="csc")])
                kkt = sp.vstack([upper, lower]).tocsc()
                kkt_cache[cache_key] = kkt
            return kkt

        def get_lu(group: int, rho_value: float):
            cache_key = (group, rho_value)
            lu = lu_cache.get(cache_key)
            if lu is None:
                lu = xb.kkt_factor(kkt_block(group, rho_value))
                lu_cache[cache_key] = lu
            return lu

        def build_epoch(cols: np.ndarray):
            """LU + workspace for the problems in ``cols``.

            Returns ``(lu, shared, failed_cols)``: ``lu`` is ``None`` exactly
            when some per-problem factorisation failed (``failed_cols``) or
            when only the assembled block-diagonal failed (empty
            ``failed_cols`` — the caller falls back to serial solves).
            """
            groups_rhos = [(int(group_of[col]), float(rho[col])) for col in cols]
            shared = len(set(groups_rhos)) == 1
            failed: List[int] = []
            try:
                if shared:
                    return get_lu(*groups_rhos[0]), True, failed
                return xb.kkt_factor(_block_diag_csc(
                    [kkt_block(g, r) for g, r in groups_rhos], n + m)), False, failed
            except RuntimeError:  # pragma: no cover - singular KKT
                for col, (g, r) in zip(cols, groups_rhos):
                    try:
                        get_lu(g, r)
                    except RuntimeError as exc:
                        numerical_failures[int(col)] = \
                            f"KKT factorization failed: {exc}"
                        statuses[int(col)] = SolverStatus.NUMERICAL_ERROR
                return None, shared, failed

        # Row-contiguous (B, n) state on the backend's device; each problem is
        # one row.  Problems/warm starts are host NumPy and cross over here.
        C_host = np.zeros((batch, n))
        B_host = np.zeros((batch, m))
        X_host = np.zeros((batch, n))
        Z_host = np.zeros((batch, n))
        U_host = np.zeros((batch, n))
        warm_flags = np.zeros(batch, dtype=bool)
        for col, (i, _, scaled, _) in enumerate(prepped):
            C_host[col] = scaled.c
            B_host[col] = scaled.b
            initial = unpack_warm_start(warm_starts[i], n)
            if initial is not None:
                X_host[col], Z_host[col], U_host[col] = initial
                warm_flags[col] = True
        C_dev = xb.from_host(C_host)
        B_dev = xb.from_host(B_host)
        X = xb.from_host(X_host)
        Z = xb.from_host(Z_host)
        U = xb.from_host(U_host)

        # Per-problem termination bookkeeping stays on the host: these are
        # (B,)-sized vectors driving Python-level control flow.
        rho = np.full(batch, float(settings.rho))
        alpha = settings.over_relaxation
        sqrt_n = float(np.sqrt(n))
        best_primal = np.full(batch, np.inf)
        best_primal_at = np.zeros(batch, dtype=np.int64)
        primal_snapshot = np.full(batch, np.inf)
        frozen_streak = np.zeros(batch, dtype=np.int64)
        last_primal = np.full(batch, np.nan)
        last_dual = np.full(batch, np.nan)
        statuses: List[SolverStatus] = [SolverStatus.MAX_ITERATIONS] * batch
        final_iteration = np.full(batch, settings.max_iterations, dtype=np.int64)
        histories = [SolveHistory() for _ in range(batch)]
        numerical_failures: Dict[int, str] = {}

        shared = _SharedLoopState(
            xb=xb, settings=settings, dims=dims, n=n, m=m, batch=batch,
            build_epoch=build_epoch, rho=rho, alpha=alpha, sqrt_n=sqrt_n,
            best_primal=best_primal, best_primal_at=best_primal_at,
            primal_snapshot=primal_snapshot, frozen_streak=frozen_streak,
            last_primal=last_primal, last_dual=last_dual, statuses=statuses,
            final_iteration=final_iteration, histories=histories,
            numerical_failures=numerical_failures,
        )
        if settings.async_mode:
            finals = self._run_async(shared, C_dev, B_dev, X, Z, U)
        else:
            finals = self._run_sync(shared, C_dev, B_dev, X, Z, U)
        if finals is None:
            # An assembled block-diagonal factorisation failed even though
            # every per-problem KKT is healthy: preserve the per-problem
            # parity guarantee by solving serially.
            return self._solve_serial(problems, warm_starts)  # pragma: no cover
        X_fin, Z_fin, U_fin, work = finals

        elapsed = time.perf_counter() - start
        for col, (i, original, _, scaling) in enumerate(prepped):
            if col in numerical_failures:
                results[i] = SolverResult(
                    status=SolverStatus.NUMERICAL_ERROR,
                    info={"reason": numerical_failures[col]},
                    solve_time=elapsed,
                )
                continue
            candidate = Z_fin[col].copy()
            status = statuses[col]
            if status == SolverStatus.OPTIMAL and np.allclose(original.c, 0.0):
                status = SolverStatus.FEASIBLE
            results[i] = SolverResult(
                status=status,
                x=candidate,
                objective=original.objective_value(candidate),
                primal_residual=float(np.linalg.norm(X_fin[col] - Z_fin[col])),
                dual_residual=float(last_dual[col]),
                equality_residual=original.equality_residual(candidate),
                cone_violation=original.cone_violation(candidate),
                iterations=int(final_iteration[col]),
                solve_time=elapsed,
                info={
                    "rho_final": float(rho[col]),
                    "history": histories[col],
                    "scaled": scaling is not None,
                    "warm_started": bool(warm_flags[col]),
                    "warm_start_data": {"x": X_fin[col].copy(), "z": candidate.copy(),
                                        "u": U_fin[col].copy()},
                    "batch_size": batch,
                    "batch_index": col,
                    "batch_wall_time": elapsed,
                    "array_backend": xb.name,
                    "async_mode": settings.async_mode,
                    "batch_iterations_per_second": work / max(elapsed, 1e-12),
                },
            )
            if settings.verbose:  # pragma: no cover - logging only
                print(f"[batch-admm {col + 1}/{batch}] {results[i].summary()}")
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def _run_sync(self, s: "_SharedLoopState", C_dev, B_dev, X, Z, U):
        """The synchronous schedule: masked gathers over the full batch state.

        Checks every termination criterion every iteration; finished problems
        leave the active index but their state rows stay in place (their last
        iterate is the final answer).  This is numerically identical to the
        historical column-major implementation — the state layout is the
        transpose of the same memory, and every arithmetic expression keeps
        its evaluation order.
        """
        xb, settings = s.xb, s.settings
        n, m = s.n, s.m
        active = np.arange(s.batch)
        epoch_key: Optional[tuple] = None
        epoch_lu = None
        epoch_shared = False
        act_dev = rho_dev = C_act = W = None
        work = 0

        for iteration in range(1, settings.max_iterations + 1):
            if active.size == 0:
                break

            # x-update: one sparse solve for the whole active set.
            current_key = (active.tobytes(), s.rho[active].tobytes())
            if current_key != epoch_key:
                epoch_lu, epoch_shared, _ = s.build_epoch(active)
                if epoch_lu is None:
                    failed = [c for c in active if c in s.numerical_failures]
                    if not failed:  # pragma: no cover - block-diag-only failure
                        return None
                    for col in failed:
                        s.final_iteration[col] = iteration
                    active = active[~np.isin(active, failed)]
                    epoch_key = None
                    if active.size == 0:
                        break
                    continue
                epoch_key = current_key
                k = active.size
                act_dev = xb.index_from_host(active)
                rho_dev = xb.from_host(s.rho[active][:, None])
                C_act = C_dev[act_dev]
                W = xb.empty((k, n + m))
                W[:, n:] = B_dev[act_dev]
            k = active.size
            work += k
            W[:, :n] = rho_dev * (Z[act_dev] - U[act_dev]) - C_act
            if epoch_shared:
                x_act = epoch_lu.solve(W.T)[:n].T
            else:
                sol = epoch_lu.solve(W.reshape(-1))
                x_act = sol.reshape((k, n + m))[:, :n]
            X[act_dev] = x_act

            act = active
            z_prev = Z[act_dev]
            x_relaxed = alpha_combine(s.alpha, x_act, z_prev)
            z_new = project_onto_cone_many(x_relaxed + U[act_dev], s.dims,
                                           backend=xb)
            Z[act_dev] = z_new
            U[act_dev] = U[act_dev] + x_relaxed - z_new

            primal = xb.to_host(xb.row_norms(x_act - z_new))
            dual = s.rho[act] * xb.to_host(xb.row_norms(z_new - z_prev))
            scale_primal = np.maximum(np.maximum(
                xb.to_host(xb.row_norms(x_act)),
                xb.to_host(xb.row_norms(z_new))), 1.0)
            scale_dual = np.maximum(
                s.rho[act] * xb.to_host(xb.row_norms(U[act_dev])), 1.0)
            eps_primal = settings.eps_abs * s.sqrt_n + settings.eps_rel * scale_primal
            eps_dual = settings.eps_abs * s.sqrt_n + settings.eps_rel * scale_dual
            s.last_primal[act] = primal
            s.last_dual[act] = dual

            if iteration % settings.history_stride == 0 or iteration == 1:
                objectives = xb.to_host(xb.row_dots(C_act, x_act))
                for position, col in enumerate(act):
                    s.histories[col].record(primal[position], dual[position],
                                            float(objectives[position]))

            improved = primal < s.best_primal[act] * settings.stall_improvement
            s.best_primal_at[act[improved]] = iteration
            s.best_primal[act] = np.minimum(s.best_primal[act], primal)

            converged = (primal <= eps_primal) & (dual <= eps_dual)

            # Early infeasibility detection (mirrors the serial solver): the
            # primal residual locked onto a plateau far above feasibility
            # with the dual residual below it.
            frozen_fire = np.zeros(act.shape[0], dtype=bool)
            if settings.infeasibility_detection and \
                    iteration % settings.infeasibility_interval == 0:
                if iteration >= settings.infeasibility_min_iteration:
                    frozen = (primal > 100.0 * eps_primal) & (dual < primal) \
                        & (np.abs(primal - s.primal_snapshot[act])
                           <= settings.infeasibility_rel_change * primal)
                    s.frozen_streak[act] = np.where(frozen, s.frozen_streak[act] + 1, 0)
                else:
                    s.frozen_streak[act] = 0
                s.primal_snapshot[act] = primal
                frozen_fire = (~converged) & \
                    (s.frozen_streak[act] >= settings.infeasibility_streak)

            stalled = (~converged) & (~frozen_fire) \
                & ((iteration - s.best_primal_at[act]) > settings.stall_window) \
                & (primal > 100.0 * eps_primal)
            for col in act[converged]:
                s.statuses[col] = SolverStatus.OPTIMAL
                s.final_iteration[col] = iteration
            for col in act[frozen_fire | stalled]:
                s.statuses[col] = SolverStatus.INFEASIBLE_SUSPECTED
                s.final_iteration[col] = iteration
            keep = ~(converged | frozen_fire | stalled)
            active = act[keep]

            if settings.adaptive_rho and iteration % settings.rho_update_interval == 0 \
                    and active.size:
                primal_keep = primal[keep]
                dual_keep = dual[keep]
                raise_rho = (primal_keep > 10.0 * dual_keep) & (s.rho[active] < 1e6)
                lower_rho = (~raise_rho) & (dual_keep > 10.0 * primal_keep) \
                    & (s.rho[active] > 1e-6)
                cols_up = active[raise_rho]
                if cols_up.size:
                    s.rho[cols_up] *= 2.0
                    up_dev = xb.index_from_host(cols_up)
                    U[up_dev] = U[up_dev] / 2.0
                cols_down = active[lower_rho]
                if cols_down.size:
                    s.rho[cols_down] /= 2.0
                    down_dev = xb.index_from_host(cols_down)
                    U[down_dev] = U[down_dev] * 2.0

        return xb.to_host(X), xb.to_host(Z), xb.to_host(U), work

    # ------------------------------------------------------------------
    def _run_async(self, s: "_SharedLoopState", C_dev, B_dev, X, Z, U):
        """The asynchronous bounded-staleness schedule.

        The live problems are *compacted* into dense state blocks (no masked
        gathers over retired rows), and every reduction that exists only to
        decide termination runs once per ``staleness_bound`` iterations.
        Between checks the update sweeps are pure: two in-place triads, one
        multi-RHS back-substitution and one stacked projection — per-iteration
        allocations on the NumPy path are just the two solver outputs.
        """
        xb, settings = s.xb, s.settings
        n, m = s.n, s.m
        stride = max(1, int(settings.staleness_bound))
        idx = np.arange(s.batch)  # compacted row -> original problem column
        X_fin = np.zeros((s.batch, n))
        Z_fin = np.zeros((s.batch, n))
        U_fin = np.zeros((s.batch, n))
        dirty = True
        epoch_lu = None
        epoch_shared = False
        rho_dev = W = XR = ZB = None
        last_infeas = 0
        last_rho = 0
        work = 0
        iteration = 0

        while iteration < settings.max_iterations and idx.size:
            iteration += 1
            if dirty:
                epoch_lu, epoch_shared, _ = s.build_epoch(idx)
                if epoch_lu is None:
                    failed_mask = np.asarray(
                        [int(col) in s.numerical_failures for col in idx])
                    if not failed_mask.any():  # pragma: no cover
                        return None
                    s.final_iteration[idx[failed_mask]] = iteration
                    keep_dev = xb.index_from_host(np.flatnonzero(~failed_mask))
                    X, Z, U = X[keep_dev], Z[keep_dev], U[keep_dev]
                    C_dev, B_dev = C_dev[keep_dev], B_dev[keep_dev]
                    idx = idx[~failed_mask]
                    iteration -= 1  # nothing advanced this pass
                    continue
                k = idx.size
                rho_dev = xb.from_host(s.rho[idx][:, None])
                W = xb.empty((k, n + m))
                W[:, n:] = B_dev
                XR = xb.empty((k, n))
                ZB = xb.empty((k, n))
                dirty = False
            k = idx.size
            work += k
            check = iteration % stride == 0 or iteration == settings.max_iterations

            Wx = W[:, :n]
            Wx[:] = Z
            Wx -= U
            Wx *= rho_dev
            Wx -= C_dev
            if epoch_shared:
                X = epoch_lu.solve(W.T)[:n].T
            else:
                X = epoch_lu.solve(W.reshape(-1)).reshape((k, n + m))[:, :n]
            XR[:] = X
            XR *= s.alpha
            ZB[:] = Z
            ZB *= (1.0 - s.alpha)
            XR += ZB  # XR = alpha * x + (1 - alpha) * z
            ZB[:] = XR
            ZB += U
            z_new = project_onto_cone_many(ZB, s.dims, backend=xb)
            U += XR
            U -= z_new
            z_prev, Z = Z, z_new

            if not check:
                continue

            primal = xb.to_host(xb.row_norms(X - Z))
            dual = s.rho[idx] * xb.to_host(xb.row_norms(Z - z_prev))
            scale_primal = np.maximum(np.maximum(
                xb.to_host(xb.row_norms(X)), xb.to_host(xb.row_norms(Z))), 1.0)
            scale_dual = np.maximum(s.rho[idx] * xb.to_host(xb.row_norms(U)), 1.0)
            eps_primal = settings.eps_abs * s.sqrt_n + settings.eps_rel * scale_primal
            eps_dual = settings.eps_abs * s.sqrt_n + settings.eps_rel * scale_dual
            s.last_primal[idx] = primal
            s.last_dual[idx] = dual

            objectives = xb.to_host(xb.row_dots(C_dev, X))
            for position, col in enumerate(idx):
                s.histories[col].record(primal[position], dual[position],
                                        float(objectives[position]))

            improved = primal < s.best_primal[idx] * settings.stall_improvement
            s.best_primal_at[idx[improved]] = iteration
            s.best_primal[idx] = np.minimum(s.best_primal[idx], primal)

            converged = (primal <= eps_primal) & (dual <= eps_dual)

            frozen_fire = np.zeros(k, dtype=bool)
            if settings.infeasibility_detection and \
                    _due(iteration, last_infeas, settings.infeasibility_interval):
                last_infeas = iteration
                if iteration >= settings.infeasibility_min_iteration:
                    frozen = (primal > 100.0 * eps_primal) & (dual < primal) \
                        & (np.abs(primal - s.primal_snapshot[idx])
                           <= settings.infeasibility_rel_change * primal)
                    s.frozen_streak[idx] = np.where(frozen, s.frozen_streak[idx] + 1, 0)
                else:
                    s.frozen_streak[idx] = 0
                s.primal_snapshot[idx] = primal
                frozen_fire = (~converged) & \
                    (s.frozen_streak[idx] >= settings.infeasibility_streak)

            stalled = (~converged) & (~frozen_fire) \
                & ((iteration - s.best_primal_at[idx]) > settings.stall_window) \
                & (primal > 100.0 * eps_primal)
            for col in idx[converged]:
                s.statuses[col] = SolverStatus.OPTIMAL
                s.final_iteration[col] = iteration
            for col in idx[frozen_fire | stalled]:
                s.statuses[col] = SolverStatus.INFEASIBLE_SUSPECTED
                s.final_iteration[col] = iteration
            keep = ~(converged | frozen_fire | stalled)

            if settings.adaptive_rho and keep.any() and \
                    _due(iteration, last_rho, settings.rho_update_interval):
                last_rho = iteration
                survivors = idx[keep]
                primal_keep = primal[keep]
                dual_keep = dual[keep]
                raise_rho = (primal_keep > 10.0 * dual_keep) & (s.rho[survivors] < 1e6)
                lower_rho = (~raise_rho) & (dual_keep > 10.0 * primal_keep) \
                    & (s.rho[survivors] > 1e-6)
                if raise_rho.any():
                    s.rho[survivors[raise_rho]] *= 2.0
                    rows = xb.index_from_host(np.flatnonzero(keep)[raise_rho])
                    U[rows] = U[rows] / 2.0
                    dirty = True
                if lower_rho.any():
                    s.rho[survivors[lower_rho]] /= 2.0
                    rows = xb.index_from_host(np.flatnonzero(keep)[lower_rho])
                    U[rows] = U[rows] * 2.0
                    dirty = True

            if not keep.all():
                # Retiring problems leave the device now; the survivors are
                # compacted so the next epoch's sweeps touch live rows only.
                retired = np.flatnonzero(~keep)
                ret_dev = xb.index_from_host(retired)
                X_fin[idx[~keep]] = xb.to_host(X[ret_dev])
                Z_fin[idx[~keep]] = xb.to_host(Z[ret_dev])
                U_fin[idx[~keep]] = xb.to_host(U[ret_dev])
                keep_dev = xb.index_from_host(np.flatnonzero(keep))
                X, Z, U = X[keep_dev], Z[keep_dev], U[keep_dev]
                C_dev, B_dev = C_dev[keep_dev], B_dev[keep_dev]
                idx = idx[keep]
                dirty = True

        if idx.size:
            X_fin[idx] = xb.to_host(X)
            Z_fin[idx] = xb.to_host(Z)
            U_fin[idx] = xb.to_host(U)
        return X_fin, Z_fin, U_fin, work


def alpha_combine(alpha: float, x, z):
    """Over-relaxed combination ``alpha * x + (1 - alpha) * z``."""
    return alpha * x + (1.0 - alpha) * z


class _SharedLoopState:
    """Bookkeeping shared by the synchronous and asynchronous loop bodies."""

    __slots__ = (
        "xb", "settings", "dims", "n", "m", "batch", "build_epoch", "rho",
        "alpha", "sqrt_n", "best_primal", "best_primal_at", "primal_snapshot",
        "frozen_streak", "last_primal", "last_dual", "statuses",
        "final_iteration", "histories", "numerical_failures",
    )

    def __init__(self, **fields):
        for name in self.__slots__:
            setattr(self, name, fields[name])
