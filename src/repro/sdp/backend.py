"""Pluggable array backends for the conic-solver hot loops.

The ADMM inner loop is dominated by dense array work — stacked ``eigh`` cone
projections, residual reductions, iterate updates — that is expressible in
the Python array-API style against *any* conforming namespace.  An
:class:`ArrayBackend` owns exactly that surface:

* array creation (``zeros`` / ``empty`` / ``full`` / ``asarray``) on the
  backend's device in float64,
* device↔host transfer (``to_host`` / ``from_host``) at the
  :class:`~repro.sdp.problem.ConicProblem` boundary — problems, warm starts
  and results stay plain NumPy, iterates live on the device,
* the batched symmetric eigendecomposition (``eigh``) behind the stacked
  PSD projection,
* per-problem reductions (``row_norms``) over ``(batch, n)`` iterate
  blocks, and
* the sparse KKT factorisation dispatch (``kkt_factor``).  Sparse LU stays
  a SciPy/host concern on every backend today; non-NumPy backends pay one
  device→host→device round trip per x-update while the projections and
  residual work stay on the device.  (CuPy's ``cupyx`` sparse LU is used
  when it is importable, keeping the whole loop on the GPU.)

The NumPy implementation is the reference and always available; the CuPy and
torch adapters are *discovered lazily* — importing this module never imports
them — and selected through ``ADMMSettings.array_backend``:

``"auto"``
    CuPy with a usable GPU if importable, else torch with CUDA if
    importable, else NumPy.  A CPU-only torch install is deliberately *not*
    auto-selected (it benchmarks slower than NumPy on this workload); ask
    for it explicitly with ``array_backend="torch"``.
``"numpy"`` / ``"cupy"`` / ``"torch"``
    That backend, or :class:`BackendUnavailableError` if its library is
    missing.

Backends are stateless singletons: ``resolve_array_backend`` returns the
same instance per name, so index-table caches keyed on the backend are
stable for the life of the process.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

__all__ = [
    "ArrayBackend",
    "NumpyBackend",
    "CupyBackend",
    "TorchBackend",
    "BackendUnavailableError",
    "ARRAY_BACKENDS",
    "available_array_backends",
    "resolve_array_backend",
]

#: Names accepted by ``ADMMSettings.array_backend`` / ``--array-backend``.
ARRAY_BACKENDS = ("auto", "numpy", "cupy", "torch")


class BackendUnavailableError(RuntimeError):
    """Requested array backend cannot be used (library missing or no device)."""


class ArrayBackend:
    """Interface of one array namespace the solver hot loops run against.

    Subclasses provide the primitive set below; everything else in the
    iteration loops is ordinary arithmetic on the backend's arrays
    (operators, slicing, boolean masks), which all supported namespaces
    share.  ``to_host`` on small per-problem vectors is the designated way
    to get control-flow decisions (convergence, retirement) back to Python.
    """

    #: Registry name ("numpy", "cupy", "torch").
    name: str = "abstract"
    #: True when arrays live off the host (transfers at the boundary are real).
    device: bool = False

    # -- creation / transfer -------------------------------------------------
    def from_host(self, array: np.ndarray):
        raise NotImplementedError

    def index_from_host(self, array: np.ndarray):
        """Transfer an integer index table (kept integral for fancy indexing)."""
        raise NotImplementedError

    def to_host(self, array) -> np.ndarray:
        raise NotImplementedError

    def copy(self, array):
        """A fresh backend array with the same contents."""
        raise NotImplementedError

    def zeros(self, shape):
        raise NotImplementedError

    def empty(self, shape):
        raise NotImplementedError

    def full(self, shape, value: float):
        raise NotImplementedError

    # -- dense kernels -------------------------------------------------------
    def eigh(self, matrices):
        """Eigendecomposition of a stack of symmetric matrices."""
        raise NotImplementedError

    def clip_min(self, array, minimum: float):
        """Elementwise ``max(array, minimum)``."""
        raise NotImplementedError

    def maximum(self, a, b):
        raise NotImplementedError

    def hypot(self, a, b):
        raise NotImplementedError

    def where(self, cond, a, b):
        raise NotImplementedError

    def sqrt(self, a):
        raise NotImplementedError

    def abs(self, a):
        raise NotImplementedError

    def row_norms(self, block) -> "np.ndarray":
        """Euclidean norm of every row of a ``(batch, n)`` block (device array)."""
        raise NotImplementedError

    def row_dots(self, a, b):
        """Per-row inner products of two ``(batch, n)`` blocks (device array)."""
        raise NotImplementedError

    def vec_norm(self, vector) -> float:
        """Euclidean norm of a 1-D backend array, as a host float."""
        raise NotImplementedError

    def vec_dot(self, a, b) -> float:
        """Inner product of two 1-D backend arrays, as a host float."""
        raise NotImplementedError

    # -- sparse dispatch -----------------------------------------------------
    def kkt_factor(self, kkt: sp.spmatrix) -> "KKTFactorization":
        """LU-factorise a (host, sparse) KKT matrix for repeated solves.

        The returned factorisation's ``solve`` consumes and produces *backend*
        arrays of shape ``(N,)`` or ``(N, nrhs)``; the implementation decides
        where the triangular solves actually run.
        """
        raise NotImplementedError

    def matvec(self, matrix: sp.spmatrix, vector):
        """``matrix @ vector`` for a host sparse matrix and a backend vector."""
        return self.from_host(matrix @ self.to_host(vector))

    # ------------------------------------------------------------------
    def describe(self) -> str:
        return f"{self.name} (device={'yes' if self.device else 'host'})"

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"ArrayBackend({self.name!r})"


class KKTFactorization:
    """A factorised KKT system: ``solve(rhs)`` on backend arrays."""

    def solve(self, rhs):  # pragma: no cover - interface
        raise NotImplementedError


class _HostLU(KKTFactorization):
    """SciPy ``splu`` wrapper that moves non-NumPy operands through the host."""

    __slots__ = ("_lu", "_backend")

    def __init__(self, lu, backend: ArrayBackend):
        self._lu = lu
        self._backend = backend

    def solve(self, rhs):
        host = self._backend.to_host(rhs)
        solution = self._lu.solve(host)
        return self._backend.from_host(solution)


class NumpyBackend(ArrayBackend):
    """The reference backend: host NumPy arrays, SciPy sparse LU."""

    name = "numpy"
    device = False

    def from_host(self, array: np.ndarray):
        return np.asarray(array, dtype=float)

    def index_from_host(self, array: np.ndarray):
        return np.asarray(array, dtype=np.int64)

    def to_host(self, array) -> np.ndarray:
        return np.asarray(array)

    def copy(self, array):
        return np.array(array, copy=True)

    def zeros(self, shape):
        return np.zeros(shape)

    def empty(self, shape):
        return np.empty(shape)

    def full(self, shape, value: float):
        return np.full(shape, float(value))

    def eigh(self, matrices):
        return np.linalg.eigh(matrices)

    def clip_min(self, array, minimum: float):
        return np.clip(array, minimum, None)

    def maximum(self, a, b):
        return np.maximum(a, b)

    def hypot(self, a, b):
        return np.hypot(a, b)

    def where(self, cond, a, b):
        return np.where(cond, a, b)

    def sqrt(self, a):
        return np.sqrt(a)

    def abs(self, a):
        return np.abs(a)

    def row_norms(self, block) -> np.ndarray:
        # einsum: one fused multiply-reduce pass, less dispatch than
        # norm(axis=1) and no (batch, n) temporary.
        return np.sqrt(np.einsum("ij,ij->i", block, block))

    def row_dots(self, a, b):
        return np.einsum("ij,ij->i", a, b)

    def vec_norm(self, vector) -> float:
        return float(np.linalg.norm(vector))

    def vec_dot(self, a, b) -> float:
        return float(a @ b)

    def kkt_factor(self, kkt: sp.spmatrix) -> KKTFactorization:
        class _Direct(KKTFactorization):
            __slots__ = ("_lu",)

            def __init__(self, lu):
                self._lu = lu

            def solve(self, rhs):
                return self._lu.solve(np.asarray(rhs))

        return _Direct(spla.splu(kkt.tocsc()))

    def matvec(self, matrix: sp.spmatrix, vector):
        return matrix @ vector


class CupyBackend(ArrayBackend):
    """CuPy adapter: iterates and projections on the GPU.

    The KKT solve uses ``cupyx.scipy.sparse.linalg.splu`` when available so
    the whole iteration stays on the device; otherwise it round-trips
    through SciPy on the host.
    """

    name = "cupy"
    device = True

    def __init__(self):
        try:
            import cupy  # noqa: PLC0415 - lazy adapter import
        except ImportError as exc:  # pragma: no cover - depends on environment
            raise BackendUnavailableError(
                "array_backend='cupy' requested but cupy is not importable"
            ) from exc
        try:
            ndev = cupy.cuda.runtime.getDeviceCount()
        except Exception as exc:  # pragma: no cover - no driver / no GPU
            raise BackendUnavailableError(
                f"cupy is installed but no CUDA device is usable: {exc}"
            ) from exc
        if ndev <= 0:  # pragma: no cover - no GPU
            raise BackendUnavailableError("cupy is installed but found no CUDA device")
        self._cp = cupy
        try:  # pragma: no cover - depends on environment
            from cupyx.scipy.sparse import csc_matrix as cp_csc
            from cupyx.scipy.sparse.linalg import splu as cp_splu
            self._cp_csc, self._cp_splu = cp_csc, cp_splu
        except Exception:  # pragma: no cover
            self._cp_csc = self._cp_splu = None

    # pragma-free simple delegations; exercised only when a GPU is present.
    def from_host(self, array):  # pragma: no cover - needs GPU
        return self._cp.asarray(np.asarray(array, dtype=float))

    def index_from_host(self, array):  # pragma: no cover - needs GPU
        return self._cp.asarray(np.asarray(array, dtype=np.int64))

    def to_host(self, array):  # pragma: no cover - needs GPU
        return self._cp.asnumpy(array)

    def copy(self, array):  # pragma: no cover - needs GPU
        return array.copy()

    def zeros(self, shape):  # pragma: no cover - needs GPU
        return self._cp.zeros(shape, dtype=self._cp.float64)

    def empty(self, shape):  # pragma: no cover - needs GPU
        return self._cp.empty(shape, dtype=self._cp.float64)

    def full(self, shape, value):  # pragma: no cover - needs GPU
        return self._cp.full(shape, float(value), dtype=self._cp.float64)

    def eigh(self, matrices):  # pragma: no cover - needs GPU
        return self._cp.linalg.eigh(matrices)

    def clip_min(self, array, minimum):  # pragma: no cover - needs GPU
        return self._cp.clip(array, minimum, None)

    def maximum(self, a, b):  # pragma: no cover - needs GPU
        return self._cp.maximum(a, b)

    def hypot(self, a, b):  # pragma: no cover - needs GPU
        return self._cp.hypot(a, b)

    def where(self, cond, a, b):  # pragma: no cover - needs GPU
        return self._cp.where(cond, a, b)

    def sqrt(self, a):  # pragma: no cover - needs GPU
        return self._cp.sqrt(a)

    def abs(self, a):  # pragma: no cover - needs GPU
        return self._cp.abs(a)

    def row_norms(self, block):  # pragma: no cover - needs GPU
        return self._cp.sqrt(self._cp.einsum("ij,ij->i", block, block))

    def row_dots(self, a, b):  # pragma: no cover - needs GPU
        return self._cp.einsum("ij,ij->i", a, b)

    def vec_norm(self, vector):  # pragma: no cover - needs GPU
        return float(self._cp.linalg.norm(vector))

    def vec_dot(self, a, b):  # pragma: no cover - needs GPU
        return float(a @ b)

    def kkt_factor(self, kkt):  # pragma: no cover - needs GPU
        if self._cp_splu is not None:
            try:
                return _CupyLU(self._cp_splu(self._cp_csc(kkt.tocsc())))
            except Exception:
                pass  # singular-structure corner cases: fall back to host LU
        return _HostLU(spla.splu(kkt.tocsc()), self)


class _CupyLU(KKTFactorization):  # pragma: no cover - needs GPU
    __slots__ = ("_lu",)

    def __init__(self, lu):
        self._lu = lu

    def solve(self, rhs):
        return self._lu.solve(rhs)


class TorchBackend(ArrayBackend):
    """Torch adapter (float64): CUDA when available, CPU tensors otherwise.

    On CPU this mostly measures torch's dispatch overhead against NumPy —
    useful for parity testing (the ``backend-matrix`` CI job) — while CUDA
    moves the stacked projections and residual work onto the GPU.
    """

    name = "torch"
    device = True

    def __init__(self):
        try:
            import torch  # noqa: PLC0415 - lazy adapter import
        except ImportError as exc:
            raise BackendUnavailableError(
                "array_backend='torch' requested but torch is not importable"
            ) from exc
        self._torch = torch
        self._device = torch.device("cuda") if torch.cuda.is_available() \
            else torch.device("cpu")
        self.device = self._device.type != "cpu"

    def from_host(self, array):
        host = np.ascontiguousarray(np.asarray(array, dtype=np.float64))
        return self._torch.from_numpy(host).to(self._device)

    def index_from_host(self, array):
        host = np.ascontiguousarray(np.asarray(array, dtype=np.int64))
        return self._torch.from_numpy(host).to(self._device)

    def to_host(self, array):
        return array.detach().cpu().numpy()

    def copy(self, array):
        return array.clone()

    def zeros(self, shape):
        return self._torch.zeros(shape, dtype=self._torch.float64,
                                 device=self._device)

    def empty(self, shape):
        return self._torch.empty(shape, dtype=self._torch.float64,
                                 device=self._device)

    def full(self, shape, value):
        return self._torch.full(shape, float(value), dtype=self._torch.float64,
                                device=self._device)

    def eigh(self, matrices):
        return self._torch.linalg.eigh(matrices)

    def clip_min(self, array, minimum):
        return self._torch.clamp_min(array, minimum)

    def maximum(self, a, b):
        if not self._torch.is_tensor(b):
            b = self._torch.as_tensor(b, dtype=a.dtype, device=a.device)
        return self._torch.maximum(a, b)

    def hypot(self, a, b):
        return self._torch.hypot(a, b)

    def where(self, cond, a, b):
        if not self._torch.is_tensor(a):
            a = self._torch.as_tensor(a, dtype=self._torch.float64,
                                      device=self._device)
        if not self._torch.is_tensor(b):
            b = self._torch.as_tensor(b, dtype=self._torch.float64,
                                      device=self._device)
        return self._torch.where(cond, a, b)

    def sqrt(self, a):
        return self._torch.sqrt(a)

    def abs(self, a):
        return self._torch.abs(a)

    def row_norms(self, block):
        return self._torch.sqrt(self._torch.einsum("ij,ij->i", block, block))

    def row_dots(self, a, b):
        return self._torch.einsum("ij,ij->i", a, b)

    def vec_norm(self, vector) -> float:
        return float(self._torch.linalg.vector_norm(vector))

    def vec_dot(self, a, b) -> float:
        return float(self._torch.dot(a, b))

    def kkt_factor(self, kkt):
        return _HostLU(spla.splu(kkt.tocsc()), self)


# ----------------------------------------------------------------------
_INSTANCES: Dict[str, ArrayBackend] = {}


def _instantiate(name: str) -> ArrayBackend:
    if name == "numpy":
        return NumpyBackend()
    if name == "cupy":
        return CupyBackend()
    if name == "torch":
        return TorchBackend()
    raise KeyError(
        f"unknown array backend {name!r}; expected one of {ARRAY_BACKENDS}")


def resolve_array_backend(name: Optional[str] = None) -> ArrayBackend:
    """The singleton backend for ``name`` (``None`` / ``"auto"`` resolve).

    ``"auto"`` prefers an accelerator when one is actually usable and falls
    back to NumPy otherwise, so the default configuration is always safe.
    Raises :class:`BackendUnavailableError` for an explicit backend whose
    library (or device) is missing, and ``KeyError`` for an unknown name.
    """
    name = (name or "auto").lower()
    if name not in ARRAY_BACKENDS:
        raise KeyError(
            f"unknown array backend {name!r}; expected one of {ARRAY_BACKENDS}")
    if name == "auto":
        for candidate in ("cupy", "torch"):
            try:
                backend = resolve_array_backend(candidate)
            except BackendUnavailableError:
                continue
            if backend.device:  # only auto-pick real accelerators
                return backend
        return resolve_array_backend("numpy")
    backend = _INSTANCES.get(name)
    if backend is None:
        backend = _instantiate(name)
        _INSTANCES[name] = backend
    return backend


def available_array_backends() -> Tuple[str, ...]:
    """The backend names usable in this process (always includes numpy)."""
    names = []
    for name in ("numpy", "cupy", "torch"):
        try:
            resolve_array_backend(name)
        except BackendUnavailableError:
            continue
        names.append(name)
    return tuple(names)
