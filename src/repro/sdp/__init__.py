"""Conic semidefinite programming substrate (pure numpy/scipy).

Standard form: ``minimize c^T x  s.t.  A x = b,  x in K`` with
``K = R^free x R_+^nonneg x PSD blocks`` (svec coordinates).
"""

from .backend import (
    ARRAY_BACKENDS,
    ArrayBackend,
    BackendUnavailableError,
    available_array_backends,
    resolve_array_backend,
)
from .cones import (
    ConeDims,
    cone_violation,
    project_onto_cone,
    project_onto_cone_many,
    project_psd_svec,
    smat,
    svec,
    svec_dim,
    svec_indices,
)
from .chordal import chordal_decomposition, clique_tree
from .gramcone import (
    AUTO_LADDER,
    GRAM_CONES,
    RELAXATION_CONES,
    RELAXATIONS,
    ChordalGramBlock,
    GramBlockHandle,
    cone_for_relaxation,
    make_gram_block,
    normalize_gram_cone,
    relaxation_ladder,
)
from .context import SolveContext, default_context
from .problem import ConicProblem, ConicProblemBuilder, VariableBlock
from .result import SolveHistory, SolverResult, SolverStatus
from .scaling import (ScalingData, column_inf_norms, drop_zero_rows,
                      equilibrate, presolve, row_inf_norms)
from .admm import ADMMConicSolver, ADMMSettings, WarmStart, unpack_warm_start
from .batch import BatchADMMSolver
from .projection import AlternatingProjectionSolver, ProjectionSettings
from .solver import (
    DEFAULT_BACKEND,
    available_backends,
    canonical_solver_options,
    get_solve_cache,
    make_solver,
    register_backend,
    reset_solve_counters,
    set_solve_cache,
    solve_cache_key,
    solve_conic_problem,
    solve_conic_problems,
    solve_counters,
)

__all__ = [
    "ARRAY_BACKENDS",
    "ArrayBackend",
    "BackendUnavailableError",
    "available_array_backends",
    "resolve_array_backend",
    "ConeDims",
    "svec",
    "smat",
    "svec_dim",
    "svec_indices",
    "project_onto_cone",
    "project_onto_cone_many",
    "project_psd_svec",
    "cone_violation",
    "ConicProblem",
    "ConicProblemBuilder",
    "VariableBlock",
    "GRAM_CONES",
    "RELAXATIONS",
    "RELAXATION_CONES",
    "AUTO_LADDER",
    "ChordalGramBlock",
    "chordal_decomposition",
    "clique_tree",
    "GramBlockHandle",
    "make_gram_block",
    "normalize_gram_cone",
    "cone_for_relaxation",
    "relaxation_ladder",
    "SolveContext",
    "default_context",
    "SolverResult",
    "SolverStatus",
    "SolveHistory",
    "ScalingData",
    "equilibrate",
    "drop_zero_rows",
    "presolve",
    "row_inf_norms",
    "column_inf_norms",
    "ADMMConicSolver",
    "ADMMSettings",
    "WarmStart",
    "unpack_warm_start",
    "BatchADMMSolver",
    "AlternatingProjectionSolver",
    "ProjectionSettings",
    "available_backends",
    "register_backend",
    "make_solver",
    "solve_conic_problem",
    "solve_conic_problems",
    "solve_counters",
    "reset_solve_counters",
    "set_solve_cache",
    "get_solve_cache",
    "solve_cache_key",
    "canonical_solver_options",
    "DEFAULT_BACKEND",
]
