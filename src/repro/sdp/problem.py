"""Conic problem container and incremental builder.

Standard form used throughout the library::

    minimize    c^T x
    subject to  A x = b
                x in K = R^free  x  R_+^nonneg  x  S_+^{k_1} x ... x S_+^{k_p}

PSD blocks are stored in svec coordinates.  The :class:`ConicProblemBuilder`
lets the SOS layer allocate variable blocks and add equality rows — one at a
time through a dict interface, or in bulk as COO triplet batches — without
worrying about offsets.  Finalisation maps all recorded triplets to global
column indices in a single vectorised pass.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from .cones import ConeDims, cone_violation, svec_dim, svec_entry_coefficient


@dataclass
class ConicProblem:
    """An immutable conic program in standard form.

    ``layout`` is an optional tag describing how the cone blocks were
    *derived* (e.g. the Gram-cone relaxation of each SOS constraint,
    ``"dd:10,psd:6"``).  It is part of :meth:`fingerprint`, so two problems
    that happen to share identical ``(c, A, b, dims)`` data but come from
    different relaxations — possible for small Gram orders where e.g. the
    SDD lowering coincides with the PSD block — never share a cache entry.
    """

    c: np.ndarray
    A: sp.csr_matrix
    b: np.ndarray
    dims: ConeDims
    layout: str = ""

    def __post_init__(self) -> None:
        self.c = np.asarray(self.c, dtype=float).ravel()
        self.b = np.asarray(self.b, dtype=float).ravel()
        if not sp.issparse(self.A):
            self.A = sp.csr_matrix(np.atleast_2d(np.asarray(self.A, dtype=float)))
        else:
            self.A = self.A.tocsr()
        if self.c.shape[0] != self.dims.total:
            raise ValueError(
                f"cost vector length {self.c.shape[0]} does not match cone dim {self.dims.total}"
            )
        if self.A.shape[1] != self.dims.total:
            raise ValueError(
                f"A has {self.A.shape[1]} columns, expected {self.dims.total}"
            )
        if self.A.shape[0] != self.b.shape[0]:
            raise ValueError("A and b have inconsistent row counts")

    @property
    def num_constraints(self) -> int:
        return self.A.shape[0]

    @property
    def num_variables(self) -> int:
        return self.dims.total

    def objective_value(self, x: np.ndarray) -> float:
        return float(self.c @ x)

    def equality_residual(self, x: np.ndarray) -> float:
        if self.num_constraints == 0:
            return 0.0
        return float(np.abs(self.A @ x - self.b).max())

    def cone_violation(self, x: np.ndarray) -> float:
        return cone_violation(x, self.dims)

    def fingerprint(self) -> str:
        """Content hash of the problem data, stable across processes and runs.

        Hashes the canonical CSR representation of ``A`` (sorted indices,
        explicit zeros pruned), ``b``, ``c`` and the cone layout with sha256,
        so the digest depends only on the mathematical problem — not on
        assembly order, Python hash seeds or object identities.  Used as the
        content-addressed key of the persistent certificate cache.
        """
        A = self.A.copy()
        A.eliminate_zeros()
        A.sort_indices()
        digest = hashlib.sha256()
        digest.update(np.int64(A.shape[0]).tobytes())
        digest.update(np.int64(A.shape[1]).tobytes())
        digest.update(A.indptr.astype(np.int64).tobytes())
        digest.update(A.indices.astype(np.int64).tobytes())
        digest.update(np.ascontiguousarray(A.data, dtype=np.float64).tobytes())
        digest.update(np.ascontiguousarray(self.b, dtype=np.float64).tobytes())
        digest.update(np.ascontiguousarray(self.c, dtype=np.float64).tobytes())
        digest.update(repr((self.dims.free, self.dims.nonneg,
                            tuple(self.dims.psd))).encode("utf-8"))
        digest.update(self.layout.encode("utf-8"))
        return digest.hexdigest()

    @property
    def layout_kind(self) -> str:
        """Canonical cone-layout kind of the problem, for keyed solve counters.

        Problems built through the SOS layer carry a per-Gram-block layout
        tag (``"dd:10,psd:6"``); the kind is the sorted set of distinct
        cone kinds joined with ``+`` (``"dd+psd"``).  Problems without a
        layout tag report ``"psd"`` when they contain PSD blocks and
        ``"lp"`` otherwise.
        """
        if self.layout:
            kinds = sorted({part.split(":", 1)[0]
                            for part in self.layout.split(",") if part})
            return "+".join(kinds)
        return "psd" if self.dims.psd else "lp"

    def describe(self) -> str:
        return (f"ConicProblem({self.num_constraints} equalities, "
                f"{self.dims.describe()}, nnz(A)={self.A.nnz})")


class VariableBlock:
    """Handle to a block of variables allocated inside a builder."""

    __slots__ = ("kind", "offset", "size", "order", "name")

    def __init__(self, kind: str, offset: int, size: int, order: int = 0, name: str = ""):
        self.kind = kind          # "free" | "nonneg" | "psd"
        self.offset = offset      # filled in at finalisation for non-free blocks
        self.size = size          # number of scalar entries (svec length for psd)
        self.order = order        # matrix order for psd blocks
        self.name = name

    def indices(self) -> range:
        return range(self.offset, self.offset + self.size)

    def __repr__(self) -> str:
        return f"VariableBlock({self.kind}, name={self.name!r}, size={self.size})"


class _TripletBatch:
    """A bulk batch of equality rows recorded as per-block COO triplets."""

    __slots__ = ("row_base", "num_rows", "rhs", "entries")

    def __init__(self, row_base: int, num_rows: int, rhs: np.ndarray,
                 entries: List[Tuple[int, np.ndarray, np.ndarray, np.ndarray]]):
        self.row_base = row_base
        self.num_rows = num_rows
        self.rhs = rhs
        self.entries = entries  # (block_id, local_rows, local_indices, values)


class ConicProblemBuilder:
    """Incrementally assemble a :class:`ConicProblem`.

    Blocks are allocated in any order; at :meth:`build` time they are laid out
    in the canonical order (free, nonneg, psd) and all recorded equality-row
    triplets are mapped to the final column indices in one vectorised pass.
    The built problem is cached until the builder is mutated again.
    """

    def __init__(self) -> None:
        self._free_blocks: List[VariableBlock] = []
        self._nonneg_blocks: List[VariableBlock] = []
        self._psd_blocks: List[VariableBlock] = []
        self._batches: List[_TripletBatch] = []
        self._num_rows: int = 0
        self._cost: Dict[Tuple[int, int], float] = {}
        self._blocks: List[VariableBlock] = []
        self._layout: str = ""
        self._built: Optional[ConicProblem] = None

    # -- block allocation ---------------------------------------------------
    def _register(self, block: VariableBlock) -> int:
        self._blocks.append(block)
        self._built = None
        return len(self._blocks) - 1

    def add_free_block(self, size: int, name: str = "") -> Tuple[int, VariableBlock]:
        if size <= 0:
            raise ValueError("free block size must be positive")
        block = VariableBlock("free", -1, size, name=name)
        self._free_blocks.append(block)
        return self._register(block), block

    def add_nonneg_block(self, size: int, name: str = "") -> Tuple[int, VariableBlock]:
        if size <= 0:
            raise ValueError("nonneg block size must be positive")
        block = VariableBlock("nonneg", -1, size, name=name)
        self._nonneg_blocks.append(block)
        return self._register(block), block

    def add_psd_block(self, order: int, name: str = "") -> Tuple[int, VariableBlock]:
        if order <= 0:
            raise ValueError("PSD block order must be positive")
        block = VariableBlock("psd", -1, svec_dim(order), order=order, name=name)
        self._psd_blocks.append(block)
        return self._register(block), block

    def add_gram_block(self, order: int, cone: str = "psd", name: str = "",
                       **cone_options):
        """Allocate the lifted variables of one Gram matrix under a cone.

        ``cone`` selects the relaxation (``"psd"``, ``"chordal"``, ``"sdd"``
        or ``"dd"``; relaxation aliases ``"sos"``/``"sdsos"``/``"dsos"`` are
        accepted).  ``cone_options`` are forwarded to the handle — the
        ``chordal`` cone takes its correlative-sparsity edge set and
        clique-merge knobs this way.  Returns a
        :class:`~repro.sdp.gramcone.GramBlockHandle` whose
        ``entry_triplets`` lower symmetric Gram-entry coefficients onto the
        allocated blocks and whose ``matrix`` reconstructs the Gram matrix
        from a solution vector.
        """
        from .gramcone import make_gram_block

        return make_gram_block(self, order, cone=cone, name=name,
                               **cone_options)

    def set_layout(self, layout: str) -> None:
        """Tag the built problem with a cone-layout description.

        The tag enters :meth:`ConicProblem.fingerprint`, keeping problems
        lowered under different Gram-cone relaxations cache-distinct even
        when their numeric data coincides.
        """
        self._layout = str(layout)
        self._built = None

    # -- constraints and objective -------------------------------------------
    def add_equality_row(self, entries: Dict[Tuple[int, int], float], rhs: float) -> int:
        """Add a row ``sum coeff * x[block, local] = rhs``.

        ``entries`` maps ``(block_id, local_index)`` to a coefficient, where
        ``local_index`` indexes into the block's svec for PSD blocks.
        """
        cleaned = {key: float(val) for key, val in entries.items() if float(val) != 0.0}
        per_block: Dict[int, Tuple[List[int], List[float]]] = {}
        for (block_id, local), value in cleaned.items():
            locals_, values_ = per_block.setdefault(block_id, ([], []))
            locals_.append(local)
            values_.append(value)
        triplets = [
            (block_id,
             np.zeros(len(locals_), dtype=np.int64),
             np.asarray(locals_, dtype=np.int64),
             np.asarray(values_, dtype=float))
            for block_id, (locals_, values_) in per_block.items()
        ]
        return self.add_equality_rows(np.array([float(rhs)]), triplets)

    def add_equality_rows(
        self,
        rhs: np.ndarray,
        entries: Sequence[Tuple[int, np.ndarray, np.ndarray, np.ndarray]],
    ) -> int:
        """Bulk-add ``len(rhs)`` equality rows from COO triplets.

        Each entry group is ``(block_id, rows, locals, values)`` where ``rows``
        are 0-based indices *within this batch* and ``locals`` index into the
        block (svec coordinates for PSD blocks).  Duplicate (row, column)
        triplets are summed at finalisation.  Returns the global index of the
        batch's first row.
        """
        rhs = np.asarray(rhs, dtype=float).ravel()
        groups: List[Tuple[int, np.ndarray, np.ndarray, np.ndarray]] = []
        for block_id, rows, locals_, values in entries:
            rows = np.asarray(rows, dtype=np.int64).ravel()
            locals_ = np.asarray(locals_, dtype=np.int64).ravel()
            values = np.asarray(values, dtype=float).ravel()
            if not (rows.shape == locals_.shape == values.shape):
                raise ValueError("triplet arrays must have identical lengths")
            if rows.size and (rows.min() < 0 or rows.max() >= rhs.shape[0]):
                raise IndexError("batch row index out of range")
            block = self._blocks[block_id]
            if locals_.size and (locals_.min() < 0 or locals_.max() >= block.size):
                raise IndexError(
                    f"local index out of range for block {block!r}"
                )
            groups.append((block_id, rows, locals_, values))
        base = self._num_rows
        self._batches.append(_TripletBatch(base, rhs.shape[0], rhs, groups))
        self._num_rows += rhs.shape[0]
        self._built = None
        return base

    def add_cost(self, block_id: int, local_index: int, coefficient: float) -> None:
        key = (block_id, local_index)
        self._cost[key] = self._cost.get(key, 0.0) + float(coefficient)
        self._built = None

    def psd_entry_local_index(self, block_id: int, i: int, j: int) -> Tuple[int, float]:
        """svec position and scaling of matrix entry (i, j) of a PSD block.

        The returned coefficient converts a *matrix-entry* coefficient into an
        svec coefficient: to add ``alpha * M_ij`` to a row, add
        ``alpha * coeff`` at the returned local index (``coeff`` is 1 for
        diagonal entries and ``1/sqrt(2)`` for off-diagonal entries, because
        the svec coordinate stores ``sqrt(2) * M_ij``).
        """
        block = self._blocks[block_id]
        if block.kind != "psd":
            raise ValueError("psd_entry_local_index called on a non-PSD block")
        if i > j:
            i, j = j, i
        order = block.order
        if not (0 <= i <= j < order):
            raise IndexError(f"entry ({i}, {j}) out of range for order-{order} block")
        # svec layout per row r: (r, r), (r, r+1), ..., (r, order-1); row r starts
        # after sum_{s<r} (order - s) entries.
        local = i * order - (i * (i - 1)) // 2 + (j - i)
        coeff = 1.0 if i == j else 1.0 / svec_entry_coefficient(i, j)
        return local, coeff

    # -- finalisation ---------------------------------------------------------
    def build(self) -> ConicProblem:
        if self._built is not None:
            return self._built
        offset = 0
        for block in self._free_blocks:
            block.offset = offset
            offset += block.size
        for block in self._nonneg_blocks:
            block.offset = offset
            offset += block.size
        for block in self._psd_blocks:
            block.offset = offset
            offset += block.size
        total = offset
        dims = ConeDims(
            free=sum(b.size for b in self._free_blocks),
            nonneg=sum(b.size for b in self._nonneg_blocks),
            psd=tuple(b.order for b in self._psd_blocks),
        )
        if dims.total != total:
            raise RuntimeError("internal error: block layout mismatch")

        block_offsets = np.array([b.offset for b in self._blocks], dtype=np.int64) \
            if self._blocks else np.zeros(0, dtype=np.int64)
        data_parts: List[np.ndarray] = []
        row_parts: List[np.ndarray] = []
        col_parts: List[np.ndarray] = []
        rhs_parts: List[np.ndarray] = []
        for batch in self._batches:
            rhs_parts.append(batch.rhs)
            for block_id, rows, locals_, values in batch.entries:
                row_parts.append(rows + batch.row_base)
                col_parts.append(locals_ + block_offsets[block_id])
                data_parts.append(values)
        data = np.concatenate(data_parts) if data_parts else np.zeros(0)
        row_idx = np.concatenate(row_parts) if row_parts else np.zeros(0, dtype=np.int64)
        col_idx = np.concatenate(col_parts) if col_parts else np.zeros(0, dtype=np.int64)
        A = sp.csr_matrix(
            (data, (row_idx, col_idx)), shape=(self._num_rows, total)
        )
        A.sum_duplicates()
        b = np.concatenate(rhs_parts) if rhs_parts else np.zeros(0)
        c = np.zeros(total)
        for (block_id, local), coeff in self._cost.items():
            block = self._blocks[block_id]
            c[block.offset + local] += coeff
        self._built = ConicProblem(c=c, A=A, b=b, dims=dims, layout=self._layout)
        return self._built

    # -- solution unpacking ----------------------------------------------------
    def block_value(self, block_id: int, x: np.ndarray) -> np.ndarray:
        """Extract a block's value from a stacked solution vector."""
        block = self._blocks[block_id]
        if block.offset < 0:
            raise RuntimeError("build() must be called before extracting block values")
        return np.asarray(x[block.offset:block.offset + block.size], dtype=float)

    def psd_block_matrix(self, block_id: int, x: np.ndarray) -> np.ndarray:
        from .cones import smat

        block = self._blocks[block_id]
        if block.kind != "psd":
            raise ValueError("psd_block_matrix called on a non-PSD block")
        return smat(self.block_value(block_id, x), block.order)

    @property
    def num_rows(self) -> int:
        return self._num_rows

    @property
    def blocks(self) -> Tuple[VariableBlock, ...]:
        return tuple(self._blocks)
