"""Public API of the verification pipeline.

The stable, documented facade for embedding the verifier: a
:class:`VerificationSession` context object owns every piece of
cross-cutting state (solver backend, certificate cache, solve/compile
counters, RNG seed, default relaxation, timing hooks), and
:func:`verify` runs a registered scenario under a session::

    from repro.api import VerificationSession, verify

    session = VerificationSession(cache_dir="~/.cache/my-verifier",
                                  relaxation="sdsos")
    report = verify("vanderpol", session=session)
    print(report.render_text(), session.solve_counters())

Sessions are isolated: two sessions in one process — different caches,
backends, relaxations — can verify concurrently from a thread pool without
sharing counters or cache entries.  The historical module-global calls
(``repro.sdp.set_solve_cache`` and friends) keep working as deprecated
shims over the process-default session state.

Re-exported building blocks: the :class:`~repro.sdp.context.SolveContext`
that a session wraps, the shared :class:`~repro.core.config.StageConfig`
stage-options base, solver backend registration, and the scenario registry
helpers.
"""

from ..core import InevitabilityOptions, StageConfig, VerificationReport
from ..sdp import (
    RELAXATIONS,
    SolveContext,
    available_backends,
    default_context,
    register_backend,
)
from ..scenarios import all_scenarios, build_problem, scenario_names
from .session import TimingHook, VerificationSession, verify

__all__ = [
    "VerificationSession",
    "verify",
    "TimingHook",
    "SolveContext",
    "default_context",
    "StageConfig",
    "InevitabilityOptions",
    "VerificationReport",
    "RELAXATIONS",
    "available_backends",
    "register_backend",
    "all_scenarios",
    "scenario_names",
    "build_problem",
]
