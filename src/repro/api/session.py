"""The :class:`VerificationSession` context object and the ``verify`` facade.

A session owns everything that used to be ambient module-global state:

* the conic solver backend and its default settings,
* the certificate cache (in-memory object or on-disk directory),
* the solve and compile counters (thread-safe, per-session),
* the default Gram-cone relaxation,
* an RNG seed (the deterministic source behind :meth:`VerificationSession.rng`
  for caller-driven sampling work such as falsification), and
* an optional timing hook observing per-step wall-clock.

Two sessions in one process are fully isolated: they can verify different
(or the same) scenarios concurrently from a thread pool with different
caches, backends and relaxations, and neither observes the other's counters
or cache entries.  This is the supported public surface for embedding the
verifier in services; the module-global accessors
(:func:`repro.sdp.set_solve_cache`, :func:`repro.sdp.reset_solve_counters`)
are deprecated shims over the process-default session state.
"""

from __future__ import annotations

import copy
from typing import Callable, Dict, Optional, Union

import numpy as np

from ..core import InevitabilityOptions, InevitabilityVerifier, VerificationReport
from ..sdp import (
    RELAXATIONS,
    SolveContext,
    cone_for_relaxation,
    relaxation_ladder,
)
from ..sos import SOSProgram
from ..utils import get_logger

LOGGER = get_logger("api.session")

#: Signature of a session timing hook: ``hook(step_name, seconds, detail)``.
TimingHook = Callable[[str, float, str], None]


class VerificationSession:
    """A self-contained verification context (cache, backend, counters, seed).

    Parameters
    ----------
    backend:
        Conic solver backend name (``"admm"``, ``"projection"``, or anything
        registered via :func:`repro.sdp.register_backend`) or a constructed
        solver object; ``None`` uses the registry default.  Stage options and
        per-call arguments can still override it per solve.
    solver_settings:
        Default keyword settings merged under every solve's explicit
        settings.
    array_backend:
        Array namespace of the solver hot loops (``"auto"``, ``"numpy"``,
        ``"cupy"`` or ``"torch"``; see :mod:`repro.sdp.backend`).  ``None``
        leaves the solver default (``"auto"``) in charge.
    cache / cache_dir:
        Certificate cache: either a ready cache object (``get``/``put``
        protocol) or a directory path for a persistent on-disk
        :class:`~repro.engine.cache.CertificateCache`.  ``None`` disables
        caching.  Mutually exclusive.
    relaxation:
        Default Gram-cone relaxation applied when this session builds
        scenario problems (``"dsos"``/``"sdsos"``/``"chordal"``/``"sos"``/
        ``"auto"``);
        ``None`` keeps each scenario's registered relaxation.
    seed:
        Seed of the session's :meth:`rng` — the deterministic generator for
        sampling work the caller drives (e.g.
        ``repro.analysis.random_initial_states(model, n, rng=session.rng())``).
        The certificate pipeline's own sampling validation keeps its fixed
        internal seeds so reports stay reproducible across sessions.
    timing_hook:
        Optional callable ``(step, seconds, detail)`` invoked for every
        pipeline step timed during :meth:`verify`.
    fleet:
        ``"host:port"`` of a running fleet master (see :mod:`repro.fleet`).
        When set, :meth:`submit` sends scenarios to that fleet — executed by
        its workers against its shared certificate cache — instead of
        solving anything in this process.  :meth:`verify` stays in-process
        regardless; targeting a fleet is always the explicit call.
    """

    def __init__(self, *, backend: Union[str, object, None] = None,
                 solver_settings: Optional[Dict[str, object]] = None,
                 cache: Optional[object] = None,
                 cache_dir: Optional[object] = None,
                 relaxation: Optional[str] = None,
                 seed: int = 0,
                 timing_hook: Optional[TimingHook] = None,
                 name: str = "session",
                 array_backend: Optional[str] = None,
                 fleet: Optional[str] = None):
        if cache is not None and cache_dir is not None:
            raise ValueError("pass either cache= or cache_dir=, not both")
        if cache is None and cache_dir is not None:
            from ..engine.cache import CertificateCache

            cache = CertificateCache(cache_dir)
        if relaxation is not None and relaxation not in RELAXATIONS:
            raise ValueError(
                f"unknown relaxation {relaxation!r}; expected one of {RELAXATIONS}")
        self.name = name
        self.context = SolveContext(backend=backend,
                                    solver_settings=solver_settings,
                                    cache=cache, name=name,
                                    array_backend=array_backend)
        self.relaxation = relaxation
        self.seed = int(seed)
        self.timing_hook = timing_hook
        self.fleet = fleet
        self._rng = np.random.default_rng(self.seed)

    # ------------------------------------------------------------------
    # State owned by the session
    # ------------------------------------------------------------------
    @property
    def backend(self) -> Union[str, object, None]:
        """The session's default solver backend (``None`` = registry default)."""
        return self.context.backend

    @property
    def array_backend(self) -> Optional[str]:
        """The session's array-namespace override (``None`` = solver default)."""
        return self.context.array_backend

    @property
    def cache(self) -> Optional[object]:
        """The session's certificate cache (``None`` when caching is off)."""
        return self.context.cache

    def set_cache(self, cache: Optional[object]) -> Optional[object]:
        """Install (or clear) the session cache; returns the previous one."""
        return self.context.set_cache(cache)

    def cache_stats(self) -> Dict[str, int]:
        """Hit/miss/write counters of the cache (empty dict when caching is off)."""
        stats = getattr(self.cache, "stats", None)
        return stats.as_dict() if stats is not None else {}

    def solve_counters(self) -> Dict[str, int]:
        """This session's conic solve counters (``solved``, ``cache_hit``, …)."""
        return self.context.solve_counters()

    def compile_counters(self) -> Dict[str, int]:
        """This session's SOS compile counters (``full``, ``memoised``)."""
        return self.context.compile_counters()

    def reset_counters(self) -> None:
        """Zero this session's solve and compile counters."""
        self.context.reset_counters()

    def rng(self) -> np.random.Generator:
        """The session's random generator (seeded once with the session seed).

        One continuing stream: successive calls return the same generator,
        so repeated sampling (e.g. rounds of falsification) draws fresh
        values while the session as a whole stays deterministic.
        """
        return self._rng

    @property
    def default_cone(self) -> Optional[str]:
        """Gram cone implied by the session relaxation (``None`` if unset).

        For ``"auto"`` this is the most expressive rung of the ladder (the
        full PSD cone); the per-stage escalation machinery handles the
        cheaper rungs.
        """
        if self.relaxation is None:
            return None
        return cone_for_relaxation(relaxation_ladder(self.relaxation)[-1])

    # ------------------------------------------------------------------
    # Building blocks bound to this session
    # ------------------------------------------------------------------
    def program(self, name: str = "sos_program",
                default_cone: Optional[str] = None) -> SOSProgram:
        """A fresh :class:`~repro.sos.program.SOSProgram` bound to this session.

        Its compiles and solves run under the session's cache, counters and
        backend defaults.
        """
        cone = default_cone or self.default_cone or "psd"
        return SOSProgram(name=name, default_cone=cone, context=self.context)

    def verifier(self, problem,
                 options: Optional[InevitabilityOptions] = None
                 ) -> InevitabilityVerifier:
        """An :class:`~repro.core.inevitability.InevitabilityVerifier` bound
        to this session's solve context.

        ``problem`` is anything with the verification-model interface (a
        :class:`~repro.scenarios.problem.ScenarioProblem` or
        :class:`~repro.pll.model.PLLVerificationModel`).

        When the caller passes no explicit ``options``, the session's default
        relaxation is applied to a *copy* of the problem's options — matching
        :meth:`verify` — so the same session configuration drives both entry
        points identically; an explicit ``options`` object is used verbatim.
        """
        explicit = options is not None
        options = options if explicit else getattr(problem, "options", None)
        if not explicit and options is not None and self.relaxation is not None:
            options = copy.deepcopy(options)
            options.apply_relaxation(self.relaxation)
        return InevitabilityVerifier(problem, options, context=self.context)

    # ------------------------------------------------------------------
    # The facade
    # ------------------------------------------------------------------
    def verify(self, scenario: str,
               options: Optional[InevitabilityOptions] = None
               ) -> VerificationReport:
        """Verify a registered scenario under this session (see :func:`verify`)."""
        return verify(scenario, session=self, options=options)

    def submit(self, scenarios: Union[str, list, tuple],
               priority: Optional[int] = None,
               watch: Optional[Callable[[Dict[str, object]], None]] = None,
               fleet: Optional[str] = None) -> Dict[str, object]:
        """Run scenarios on a fleet master; returns the engine-report JSON.

        The fleet executes the jobs on its workers against its shared
        certificate cache, applying this session's relaxation, backend,
        array-backend and seed configuration to every job.  ``fleet``
        overrides the address the session was constructed with; ``watch``
        receives one event dict per job transition as it streams in.
        Blocks until the aggregate report arrives.
        """
        address = fleet or self.fleet
        if address is None:
            raise ValueError(
                "no fleet configured: pass fleet='host:port' here or to "
                "VerificationSession(fleet=...)")
        from ..fleet import PRIORITY_INTERACTIVE, FleetClient

        backend = self.backend if isinstance(self.backend, str) else None
        options = {
            "seed": self.seed,
            "relaxation": self.relaxation,
            "backend": backend,
            "array_backend": self.array_backend,
        }
        client = FleetClient(address)
        done = client.submit(
            scenarios=[scenarios] if isinstance(scenarios, str)
            else list(scenarios),
            priority=PRIORITY_INTERACTIVE if priority is None else priority,
            watch=watch is not None, on_event=watch, options=options)
        return done["report"]

    def sweep(self, family: Union[str, object],
              jobs: int = 1,
              grid: Optional[Dict[str, tuple]] = None,
              samples: Optional[int] = None,
              seed: Optional[int] = None,
              relaxation: Optional[str] = None,
              resume: bool = False,
              shard_size: Optional[int] = None,
              fleet: Optional[str] = None):
        """Run a parameter sweep family under this session's configuration.

        ``family`` is a registered family name (see
        :func:`repro.sweep.sweep_family_names`) or a
        :class:`~repro.sweep.SweepFamily` instance.  The anchor synthesis
        and every per-point probe solve go through this session's
        certificate cache; ``relaxation`` overrides the family's ladder
        (falling back to the session relaxation, then the family's own).
        Returns a :class:`~repro.sweep.SweepReport`.
        """
        from ..engine.cache import CertificateCache
        from ..sweep import SweepOptions, SweepRunner

        backend = self.backend if isinstance(self.backend, str) else None
        options = SweepOptions(
            jobs=int(jobs),
            relaxation=relaxation or self.relaxation,
            backend=backend,
            array_backend=self.array_backend,
            fleet=fleet or self.fleet,
            grid=grid, samples=samples, seed=seed,
            resume=resume, shard_size=shard_size,
        )
        cache = self.cache
        if cache is None:
            options.use_cache = False
            runner = SweepRunner(options)
        elif isinstance(cache, CertificateCache):
            # On-disk cache: plain payloads reconstruct it in pool workers.
            options.cache_dir = str(cache.root)
            runner = SweepRunner(options)
        else:
            # A live cache object (in-memory double, remote client) cannot
            # cross a process boundary; the runner stays inline and threads
            # the object through _execute_job's override path.
            runner = SweepRunner(options, cache_override=cache,
                                 override_cache=True)
        return runner.run(family)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        counters = self.solve_counters()
        return (f"VerificationSession({self.name!r}: "
                f"backend={self.backend!r}, "
                f"relaxation={self.relaxation or 'registered'}, "
                f"cache={'on' if self.cache is not None else 'off'}, "
                f"solved={counters.get('solved', 0)}, "
                f"cache_hit={counters.get('cache_hit', 0)})")

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return self.describe()


# ----------------------------------------------------------------------
def verify(scenario: str,
           session: Optional[VerificationSession] = None,
           options: Optional[InevitabilityOptions] = None) -> VerificationReport:
    """Verify one registered scenario in-process under a session.

    The stable public facade: builds the scenario problem from the registry
    (honouring the session's relaxation override), runs the full
    Lyapunov → level-set → advection/escape pipeline under the session's
    solve context, feeds each step timing to the session's timing hook, and
    returns the :class:`~repro.core.report.VerificationReport`.

    Unlike ``python -m repro verify`` / the
    :class:`~repro.engine.VerificationEngine`, this runs everything inline in
    the calling thread — which is exactly what makes it composable: several
    sessions can call :func:`verify` concurrently from a thread pool, each
    against its own cache/backend/relaxation, with bit-identical results to
    the serial runs.  (The engine's extra falsification cross-check and
    process-pool scheduling remain engine features.)
    """
    from ..scenarios import build_problem

    session = session or VerificationSession()
    problem = build_problem(scenario, relaxation=session.relaxation)
    if options is not None:
        # An explicit options object wins over everything the registry or the
        # session configured — the caller asked for precisely this pipeline.
        # Deep-copied, because the pipeline fills scenario-specific defaults
        # (e.g. the S-procedure domain box) into the options it runs with;
        # the caller's object must stay reusable across scenarios.
        problem.options = copy.deepcopy(options)
    if problem.options.lyapunov.domain_boxes is None:
        problem.options.lyapunov.domain_boxes = problem.state_bounds()
    verifier = InevitabilityVerifier(problem, problem.options,
                                     context=session.context)
    report = verifier.verify()
    report.options_summary.setdefault("scenario", scenario)
    report.options_summary["session"] = session.name
    if session.backend is not None:
        report.options_summary["backend"] = session.backend \
            if isinstance(session.backend, str) else type(session.backend).__name__
    if session.timing_hook is not None:
        for timing in report.timings:
            session.timing_hook(timing.step, timing.seconds, timing.detail)
    return report
