"""repro — SOS-based verification of inevitability of phase-locking in CP PLLs.

Reproduction of: Ul Asad, H. & Jones, K. D., "Verifying inevitability of
phase-locking in a charge pump phase lock loop using sum of squares
programming", GLSVLSI 2015.

Subpackages
-----------
``repro.polynomial``
    Multivariate polynomial algebra (variables, monomials, calculus, Gram forms).
``repro.sdp``
    Pure numpy/scipy conic SDP solvers (ADMM splitting, alternating projection).
``repro.sos``
    SOS programming layer: constraints, S-procedure, certificate validation.
``repro.hybrid``
    Hybrid dynamical systems (Goebel-Sanfelice-Teel flavour) and simulation.
``repro.pll``
    Charge-pump PLL behavioural and verification models (3rd and 4th order).
``repro.core``
    The paper's contribution: multiple Lyapunov certificates, level-set
    maximisation, bounded advection, escape certificates and the end-to-end
    inevitability verification pipeline.
``repro.analysis``
    Projections, sampling-based validation and falsification utilities.
``repro.scenarios``
    Declarative registry of verification workloads (PLLs, buck converter,
    continuous polynomial systems) consumed by the engine and the CLI.
``repro.engine``
    Parallel verification engine: per-scenario job DAGs over a process pool
    with a persistent content-addressed certificate cache
    (``python -m repro``).
``repro.api``
    The stable public facade: ``VerificationSession`` context objects owning
    solver backend, certificate cache, counters, seed and relaxation, plus
    ``repro.api.verify(scenario, session=...)``.  Sessions are isolated and
    thread-safe — the supported entry point for embedding the verifier.
"""

from .exceptions import CertificateError, ModelError, ReproError, VerificationInconclusive

__version__ = "1.1.0"

__all__ = [
    "api",
    "ReproError",
    "ModelError",
    "CertificateError",
    "VerificationInconclusive",
    "__version__",
]


def __getattr__(name):
    # ``repro.api`` pulls in the scenario registry and engine cache; load it
    # lazily so ``import repro`` stays light for users of the lower layers.
    if name == "api":
        import importlib

        return importlib.import_module(".api", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
